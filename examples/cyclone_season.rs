//! Cyclone season: the Section-5.4 pipelines head to head.
//!
//! Runs one simulated season, then analyses it with both tropical-cyclone
//! approaches the paper integrates — the pre-trained CNN localization and
//! the deterministic detect-and-track scheme — and verifies each against
//! the simulator's ground-truth tracks (something the real workflow cannot
//! do, and the reason this repository injects events with known truth).
//!
//! ```text
//! cargo run --release --example cyclone_season [-- <days>]
//! ```

use climate_workflows::{pretrain_cnn, WorkflowParams};
use esm::{EsmConfig, Simulation};
use extremes::tc::cnn::{analysis_grid, FieldSet};
use extremes::tc::detect::{detect_timestep, DetectorParams};
use extremes::tc::metrics::verify;
use extremes::tc::track::{stitch_tracks, TrackParams};
use gridded::Field2;
use ncformat::Reader;

fn main() {
    let days: usize = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(60);
    let out_dir = std::env::temp_dir().join("eflows-cyclone-season");
    std::fs::remove_dir_all(&out_dir).ok();

    // A cyclone-active season on the test grid.
    let mut cfg = EsmConfig::test_small().with_days_per_year(days).with_seed(777);
    cfg.tc_per_year = 18.0;
    let spd = cfg.timesteps_per_day;

    println!("Simulating a {days}-day season on a {}x{} grid...", cfg.grid.nlat, cfg.grid.nlon);
    let mut sim = Simulation::new(cfg.clone(), &out_dir).expect("cannot create simulation");
    let summary = sim.run_years(1, |_, _, _| {}).expect("simulation failed");
    let truth = &summary.truth[0];
    println!(
        "  {} files written ({:.1} MB), ground truth: {} cyclones",
        summary.files_written,
        summary.bytes_written as f64 / 1e6,
        truth.tcs.len()
    );
    for tc in &truth.tcs {
        let p0 = &tc.points[0];
        println!(
            "    TC#{:<2} genesis day {:>3} at ({:>6.1}, {:>6.1}), min pressure {:>6.1} hPa, {} days",
            tc.id,
            p0.day,
            p0.lat,
            p0.lon,
            tc.min_pressure(),
            tc.lifetime_days()
        );
    }

    // Pre-train the CNN exactly as the workflow's load_model task does:
    // synthetic warm-up + fine-tuning on a labelled historical reference
    // run of the same model.
    println!(
        "\nPre-training the localization CNN (synthetic warm-up + reference-run fine-tuning)..."
    );
    let train_params = WorkflowParams::builder(std::env::temp_dir().join("eflows-cyclone-train"))
        .days_per_year(days)
        .training(300, 14)
        .finetuning(30, 12)
        .build()
        .expect("invalid parameters");
    let mut cnn = pretrain_cnn(&train_params);
    println!("  {} parameters", cnn.param_count());

    // Analyse every timestep with both pipelines.
    let analysis = analysis_grid(esm::atmos::tc_radius_deg(&cfg.grid), cnn.patch);
    println!(
        "  CNN analysis grid {}x{} ({} tiles/timestep)\n",
        analysis.nlat,
        analysis.nlon,
        (analysis.nlat / cnn.patch) * (analysis.nlon / cnn.patch)
    );

    let mut per_step_detections = Vec::new();
    let mut cnn_centers = Vec::new();
    let params = DetectorParams::default();
    let mut files: Vec<_> = std::fs::read_dir(&out_dir)
        .unwrap()
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().map(|e| e == "ncx").unwrap_or(false))
        .collect();
    files.sort();

    for (d, file) in files.iter().enumerate() {
        let rd = Reader::open(file).expect("cannot read day file");
        let nlat = rd.dimension("lat").unwrap().size;
        let nlon = rd.dimension("lon").unwrap().size;
        let grid = gridded::Grid::global(nlat, nlon);
        for s in 0..spd {
            let read = |var: &str| {
                let data = rd.read_slab_f32(var, &[s, 0, 0], &[1, nlat, nlon]).unwrap();
                Field2::from_vec(grid.clone(), data)
            };
            let set = FieldSet {
                psl: read("psl"),
                wind: read("sfcWind"),
                tas: read("tas"),
                vort: read("vort"),
            };
            per_step_detections
                .push(detect_timestep(&set.psl, &set.wind, &set.tas, &set.vort, &params));
            let regridded = set.regrid(&analysis);
            for det in cnn.localize_set(&regridded) {
                cnn_centers.push((d * spd + s, det.lat, det.lon));
            }
        }
    }

    let tracks = stitch_tracks(&per_step_detections, &TrackParams::default());
    println!("Deterministic pipeline: {} tracks", tracks.len());
    for (i, t) in tracks.iter().enumerate() {
        println!(
            "  track {i}: steps {}..{}, min pressure {:.0} Pa, max wind {:.1} m/s",
            t.start(),
            t.end(),
            t.min_pressure(),
            t.max_wind()
        );
    }

    // Verification vs truth.
    let truth_centers: Vec<(usize, f64, f64)> = truth
        .tcs
        .iter()
        .flat_map(|t| t.points.iter().map(|p| (p.day * spd + p.step, p.lat, p.lon)))
        .collect();
    let det_centers: Vec<(usize, f64, f64)> = per_step_detections
        .iter()
        .enumerate()
        .flat_map(|(s, dets)| dets.iter().map(move |d| (s, d.lat, d.lon)))
        .collect();

    let det_scores = verify(&truth_centers, &det_centers, 1200.0);
    let cnn_scores = verify(&truth_centers, &cnn_centers, 1200.0);
    println!("\n=== Verification against ground truth (radius 1200 km) ===");
    println!(
        "  deterministic: POD {:.2}  FAR {:.2}  mean error {:>5.0} km  ({} hits / {} misses / {} false alarms)",
        det_scores.pod, det_scores.far, det_scores.mean_error_km,
        det_scores.hits, det_scores.misses, det_scores.false_alarms
    );
    println!(
        "  CNN:           POD {:.2}  FAR {:.2}  mean error {:>5.0} km  ({} hits / {} misses / {} false alarms)",
        cnn_scores.pod, cnn_scores.far, cnn_scores.mean_error_km,
        cnn_scores.hits, cnn_scores.misses, cnn_scores.false_alarms
    );
}
