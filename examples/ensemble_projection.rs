//! Ensemble projection: initial-condition uncertainty in the extremes.
//!
//! Section 3 of the paper notes that ESM campaigns run *ensembles* —
//! groups of runs with perturbed initial conditions — multiplying both the
//! compute and the analysis workload. This example runs a small ensemble
//! of the surrogate model, computes each member's heat-wave-number map
//! through the real datacube pipeline, and reports the ensemble mean and
//! spread: the product a scientist would use to separate forced signal
//! from internal variability.
//!
//! ```text
//! cargo run --release --example ensemble_projection [-- <members> <days>]
//! ```

use datacube::exec::ExecConfig;
use datacube::model::{Cube, Dimension};
use esm::ensemble::{mean_and_spread, member_dir, run_ensemble};
use esm::EsmConfig;
use extremes::heatwave::{compute_indices, WaveParams};
use gridded::Field2;
use ncformat::Reader;

fn main() {
    let members: usize = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(4);
    let days: usize = std::env::args().nth(2).and_then(|a| a.parse().ok()).unwrap_or(40);

    let root = std::env::temp_dir().join("eflows-ensemble");
    std::fs::remove_dir_all(&root).ok();

    let base = EsmConfig::test_small().with_days_per_year(days).with_seed(2030);
    println!(
        "Running a {members}-member ensemble, 1 year x {days} days each, on a {}x{} grid...",
        base.grid.nlat, base.grid.nlon
    );
    let summaries = run_ensemble(&base, members, 1, &root, |m, s| {
        println!(
            "  member {m}: {} files, {} thermal events / {} TCs injected",
            s.files_written,
            s.truth[0].thermal.len(),
            s.truth[0].tcs.len()
        );
    })
    .expect("ensemble run failed");

    // Per-member heat-wave-number maps through the datacube pipeline.
    let cfg = ExecConfig::with_servers(2);
    let warming = esm::Scenario::Historical.warming_k(2014);
    let grid = base.grid.clone();
    let mut hwn_fields = Vec::new();
    for m in 0..members {
        // Daily tmax year cube from the member's files.
        let mut files: Vec<_> = std::fs::read_dir(member_dir(&root, m))
            .unwrap()
            .filter_map(|e| e.ok().map(|e| e.path()))
            .collect();
        files.sort();
        let mut day_cubes = Vec::new();
        for (d, f) in files.iter().enumerate() {
            let rd = Reader::open(f).unwrap();
            let c =
                datacube::ops::import_transposed(&rd, "tas", "time", "lat", "lon", 8, cfg).unwrap();
            let daily =
                datacube::ops::reduce(&c, datacube::ops::ReduceOp::Max, "time", cfg).unwrap();
            day_cubes.push(datacube::ops::add_singleton_implicit(&daily, "day", d as f64).unwrap());
        }
        let refs: Vec<&Cube> = day_cubes.iter().collect();
        let year = datacube::ops::concat_implicit(&refs, "day").unwrap();

        // Baseline from the model's climatology expectation.
        let mut baseline_days = Vec::new();
        for d in 0..days {
            let (tmax, _) = esm::model::expected_daily_extremes(&base, d, warming);
            baseline_days.push(tmax);
        }
        let bdata = datacube::model::SharedData::from_fn(grid.len() * days, |bdata| {
            for (d, f) in baseline_days.iter().enumerate() {
                for idx in 0..f.data.len() {
                    bdata[idx * days + d] = f.data[idx];
                }
            }
        });
        let baseline = Cube::from_shared(
            "tasmax",
            vec![
                Dimension::explicit("lat", grid.lats()),
                Dimension::explicit("lon", grid.lons()),
                Dimension::implicit("day", (0..days).map(|d| d as f64).collect::<Vec<_>>()),
            ],
            bdata,
            8,
            2,
        )
        .unwrap();

        let idx = compute_indices(&year, &baseline, WaveParams::default(), false, cfg).unwrap();
        let hwn = idx.number.to_dense();
        let cells = hwn.iter().filter(|v| **v > 0.0).count();
        println!("  member {m}: {cells} cells with heat waves");
        hwn_fields.push(Field2::from_vec(grid.clone(), hwn));
    }

    let (mean, spread) = mean_and_spread(&hwn_fields);
    println!("\n=== Ensemble heat-wave-number statistics ===");
    println!(
        "  mean map: max {:.2} waves/cell, {} cells with nonzero ensemble mean",
        mean.max().unwrap_or(0.0),
        mean.data.iter().filter(|v| **v > 0.0).count()
    );
    println!(
        "  spread map: max {:.2}, mean {:.3} (internal variability of the extremes)",
        spread.max().unwrap_or(0.0),
        spread.mean()
    );

    // Truth overview: events differ across members (different seeds).
    let counts: Vec<usize> = summaries.iter().map(|s| s.truth[0].thermal.len()).collect();
    println!("  injected thermal events per member: {counts:?}");
    println!("\nMember outputs under {}", root.display());
}
