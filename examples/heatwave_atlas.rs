//! Heat-wave atlas: multi-year index maps and a warming trend.
//!
//! Reproduces the Figure-4 product family across several simulated years:
//! for each year the workflow computes the three heat-wave indices, renders
//! the Heat-Wave-Number map (PPM + ASCII), and at the end prints the
//! multi-year trend — more heat-wave cells as greenhouse forcing grows,
//! the motivation of the paper's Section 5.
//!
//! ```text
//! cargo run --release --example heatwave_atlas [-- <years> <days_per_year> <scenario>]
//! ```

use climate_workflows::{run_pipelined, WorkflowParams};
use esm::Scenario;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let years: usize = args.first().and_then(|a| a.parse().ok()).unwrap_or(3);
    let days: usize = args.get(1).and_then(|a| a.parse().ok()).unwrap_or(90);
    let scenario = match args.get(2).map(|s| s.as_str()) {
        Some("historical") => Scenario::Historical,
        Some("ssp585") => Scenario::Ssp585,
        _ => Scenario::Ssp245,
    };

    let out_dir = std::env::temp_dir().join("eflows-heatwave-atlas");
    std::fs::remove_dir_all(&out_dir).ok();

    let params = WorkflowParams::builder(out_dir.clone())
        .years(years)
        .days_per_year(days)
        .scenario(scenario)
        // The atlas only needs the thermal indices; keep ML training light.
        .training(120, 6)
        .finetuning(10, 10)
        .build()
        .expect("invalid parameters");

    println!(
        "Heat-wave atlas: {years} year(s) x {days} days, scenario {scenario:?}, grid {}x{}",
        params.grid.nlat, params.grid.nlon
    );

    let report = run_pipelined(params).expect("workflow failed");

    println!("\n=== Yearly heat/cold wave summary ===");
    println!(
        "{:<6} {:>9} {:>9} {:>14} {:>8}",
        "year", "HW cells", "CW cells", "thermal truth", "valid"
    );
    for y in &report.years {
        println!(
            "{:<6} {:>9} {:>9} {:>14} {:>8}",
            y.year, y.heatwave_cells, y.coldspell_cells, y.truth_thermal_events, y.validated
        );
    }

    // Render each year's HWN map.
    for y in &report.years {
        if let Some(txt) = y.map_paths.iter().find(|p| {
            p.file_name().map(|n| n.to_string_lossy().starts_with("hwn-map")).unwrap_or(false)
                && p.extension().map(|e| e == "txt").unwrap_or(false)
        }) {
            println!("\nHeat-Wave-Number map, {} (files: {}):", y.year, txt.display());
            print!("{}", std::fs::read_to_string(txt).unwrap_or_default());
        }
    }

    // Bonus: the wider ETCCDI index family on the final year's output.
    etccdi_summary(&out_dir, days);

    println!("\nProducts written under {}", out_dir.join("products").display());
    println!(
        "Task graph: {} tasks / {} edges (dot: {})",
        report.tasks,
        report.edges,
        report.dot_path.display()
    );
}

/// Computes a handful of ETCCDI indices from the last simulated year's
/// daily files and prints global summaries.
fn etccdi_summary(out_dir: &std::path::Path, days: usize) {
    use datacube::exec::ExecConfig;
    use datacube::model::Cube;
    use datacube::ops::{self, ReduceOp};
    use extremes::etccdi;

    let cfg = ExecConfig::with_servers(2);
    let esm_dir = out_dir.join("esm-out");
    let mut files: Vec<_> =
        std::fs::read_dir(&esm_dir).unwrap().filter_map(|e| e.ok().map(|e| e.path())).collect();
    files.sort();
    let last_year: Vec<_> = files.iter().rev().take(days).rev().cloned().collect();

    let daily = |op: ReduceOp| -> Cube {
        let mut day_cubes = Vec::new();
        for (d, f) in last_year.iter().enumerate() {
            let rd = ncformat::Reader::open(f).unwrap();
            let c = ops::import_transposed(&rd, "tas", "time", "lat", "lon", 8, cfg).unwrap();
            let r = ops::reduce(&c, op, "time", cfg).unwrap();
            day_cubes.push(ops::add_singleton_implicit(&r, "day", d as f64).unwrap());
        }
        let refs: Vec<&Cube> = day_cubes.iter().collect();
        ops::concat_implicit(&refs, "day").unwrap()
    };
    let tmax = daily(ReduceOp::Max);
    let tmin = daily(ReduceOp::Min);

    let mean_of = |c: &Cube| {
        let d = c.to_dense();
        d.iter().map(|&v| v as f64).sum::<f64>() / d.len() as f64
    };
    println!("\n=== ETCCDI indices, final simulated year (global means) ===");
    println!(
        "  frost days      {:>7.1} d   summer days    {:>7.1} d",
        mean_of(&etccdi::frost_days(&tmin, cfg).unwrap()),
        mean_of(&etccdi::summer_days(&tmax, cfg).unwrap())
    );
    println!(
        "  icing days      {:>7.1} d   tropical nights{:>7.1} d",
        mean_of(&etccdi::icing_days(&tmax, cfg).unwrap()),
        mean_of(&etccdi::tropical_nights(&tmin, cfg).unwrap())
    );
    println!(
        "  TXx             {:>7.1} K   TNn            {:>7.1} K",
        mean_of(&etccdi::txx(&tmax, cfg).unwrap()),
        mean_of(&etccdi::tnn(&tmin, cfg).unwrap())
    );
}
