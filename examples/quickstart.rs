//! Quickstart: the whole paper in one binary.
//!
//! Runs the end-to-end climate-extremes workflow (ESM surrogate → datacube
//! heat/cold-wave indices → CNN + deterministic tropical-cyclone analysis)
//! on a laptop-sized configuration, printing the run report, the Figure-3
//! task-graph statistics and a Figure-4-style ASCII heat-wave map.
//!
//! ```text
//! cargo run --release --example quickstart [-- <years> <days_per_year>] [--graph]
//! ```

use climate_workflows::{run_pipelined, WorkflowParams};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let print_graph = args.iter().any(|a| a == "--graph");
    let positional: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();
    let years: usize = positional.first().and_then(|a| a.parse().ok()).unwrap_or(1);
    let days: usize = positional.get(1).and_then(|a| a.parse().ok()).unwrap_or(60);

    let out_dir = std::env::temp_dir().join("eflows-quickstart");
    std::fs::remove_dir_all(&out_dir).ok();

    let params = WorkflowParams::builder(out_dir.clone())
        .years(years)
        .days_per_year(days)
        .build()
        .expect("invalid parameters");

    println!(
        "Running the climate-extremes workflow: {years} year(s) x {days} days on a {}x{} grid",
        params.grid.nlat, params.grid.nlon
    );
    println!("(output under {})\n", out_dir.display());

    let report = run_pipelined(params).expect("workflow failed");
    print!("{}", report.render());

    // Figure 4: the Heat Wave Number map of the first year, as ASCII art.
    if let Some(year) = report.years.first() {
        if let Some(map_txt) = year.map_paths.iter().find(|p| {
            p.file_name().map(|n| n.to_string_lossy().starts_with("hwn-map")).unwrap_or(false)
                && p.extension().map(|e| e == "txt").unwrap_or(false)
        }) {
            println!("\nHeat-Wave-Number map, year {} (Figure 4 equivalent):", year.year);
            println!("{}", std::fs::read_to_string(map_txt).unwrap_or_default());
        }
    }

    if print_graph {
        println!("\nTask graph (Figure 3 equivalent, Graphviz DOT):");
        println!("{}", std::fs::read_to_string(&report.dot_path).unwrap_or_default());
    } else {
        println!("\n(task graph DOT at {}; pass --graph to print it)", report.dot_path.display());
    }
}
