//! HPCWaaS end-to-end: the Figure-1/Figure-2 lifecycle.
//!
//! Plays both roles of the paper's Section 4.1 methodology:
//!
//! * the **workflow developer** registers the climate-extremes TOSCA
//!   topology and its entrypoint with the Execution API;
//! * the **end user** deploys it (watching the orchestrator derive the
//!   plan, build container images and run the deploy-time data pipeline),
//!   invokes it with input overrides, reads the report, and undeploys —
//!   then deploys a second instance to show the container layer cache
//!   making redeployment cheap.
//!
//! ```text
//! cargo run --release --example hpcwaas_deploy
//! ```

use climate_workflows::register_with_hpcwaas;
use hpcwaas::orchestrator::{DeploymentPlan, Orchestrator};
use hpcwaas::tosca::climate_case_study;
use hpcwaas::{ExecutionApi, ExecutionStatus};
use std::collections::BTreeMap;

fn main() {
    let work_root = std::env::temp_dir().join("eflows-hpcwaas-deploy");
    std::fs::remove_dir_all(&work_root).ok();

    // -- Developer view: the topology and the plan Yorc would derive.
    let topology = climate_case_study();
    println!("TOSCA topology '{}' ({} node templates):", topology.name, topology.templates.len());
    for t in &topology.templates {
        let reqs: Vec<String> = t.requirements.iter().map(|r| format!("{r:?}")).collect();
        println!("  {:<16} {:<22} {}", t.name, t.type_name, reqs.join(", "));
    }
    let plan = DeploymentPlan::derive(&topology).expect("plan derivation failed");
    println!("\nDerived deployment order: {}", plan.order.join(" -> "));

    // Inspect one deployment in detail with a raw orchestrator.
    let mut orch = Orchestrator::new();
    let record = orch.deploy(&topology).expect("deploy failed");
    println!("\nLifecycle steps ({} total, {} virtual ms):", record.steps.len(), record.total_ms);
    for s in &record.steps {
        println!("  {:<16} {:<10} {:>6} ms", s.template, s.operation, s.cost_ms);
    }
    let warm = orch.deploy(&topology).expect("redeploy failed");
    println!(
        "\nContainer layer cache: cold deploy {} ms -> warm redeploy {} ms ({}x cheaper)",
        record.total_ms,
        warm.total_ms,
        record.total_ms / warm.total_ms.max(1)
    );

    // -- End-user view: the Execution API.
    println!("\n=== HPCWaaS Execution API ===");
    let api = ExecutionApi::new();
    register_with_hpcwaas(&api, work_root);
    println!("registered workflows: {:?}", api.workflows());

    let dep = api.deploy("climate-extremes").expect("deploy failed");
    println!("deployed (cost {} virtual ms)", api.deployment_cost_ms(dep).unwrap());

    let mut inputs = BTreeMap::new();
    inputs.insert("years".to_string(), "1".to_string());
    inputs.insert("days_per_year".to_string(), "30".to_string());
    inputs.insert("scenario".to_string(), "ssp585".to_string());
    println!("running with inputs {inputs:?} ...");
    let handle = api.submit(dep, &inputs).expect("submit failed");
    match handle.wait() {
        ExecutionStatus::Completed { result } => {
            println!("\n--- workflow report (returned through the API) ---");
            print!("{result}");
        }
        other => println!("unexpected status: {other:?}"),
    }

    api.undeploy(dep).expect("undeploy failed");
    println!("\nundeployed. Done.");
}
