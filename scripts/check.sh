#!/usr/bin/env bash
# Repo-wide quality gate: formatting, lints, tests.
# Usage: scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all --check

echo "== cargo clippy (workspace, warnings are errors) =="
cargo clippy --workspace --all-targets -- -D warnings \
    -W clippy::redundant_clone -W clippy::needless_collect

echo "== cargo test (workspace) =="
cargo test --workspace -q

echo "== cargo bench --no-run (benches compile) =="
cargo bench --workspace --no-run -q

echo "== kernel conformance: fused vs scalar oracle, serial and parallel =="
# The differential suite proves the fused per-fragment kernels bitwise
# against the operator-by-operator scalar oracle; run it both single- and
# multi-threaded so lane blocking and fragment-parallel scheduling cannot
# change a single bit.
for t in 1 4; do
  PAR_THREADS="$t" cargo test -p datacube --test fused_conformance -q
done

echo "== smoke workflow with span tracing =="
smoke=$(mktemp -d)
trap 'rm -rf "$smoke"' EXIT
cargo run -q -p climate-workflows --bin climate-wf -- run --years 1 --days 2 \
    --out "$smoke/run" --trace "$smoke/trace.json" --metrics "$smoke/metrics.prom"
python3 - "$smoke/trace.json" <<'EOF'
import json, sys
events = json.load(open(sys.argv[1]))
events = events if isinstance(events, list) else events["traceEvents"]
assert any(e["ph"] == "X" for e in events), "trace has no duration slices"
nested = sum(1 for e in events if e["ph"] == "X" and e.get("args", {}).get("parent", 0))
assert nested > 0, "trace has no parent-linked spans"
# Flow arrows only appear when a parent/child pair ended on different
# threads; at smoke scale that is scheduling-dependent, so just report.
flows = sum(1 for e in events if e["ph"] == "s")
print(f"chrome trace OK: {len(events)} events, {nested} nested spans, {flows} flow arrows")
EOF
grep -q "obs_bus_dropped_total" "$smoke/metrics.prom"

echo "== chaos smoke: seeded fault injection + checkpoint resume =="
cargo run -q -p climate-workflows --bin climate-wf -- chaos --seed 7 --faults 3 \
    --out "$smoke/chaos"
python3 - "$smoke/chaos/chaos-flight.jsonl" <<'EOF'
import json, sys
lines = [l for l in open(sys.argv[1]) if l.strip()]
assert lines, "flight recorder dump is empty"
for l in lines:
    json.loads(l)
kinds = {json.loads(l).get("event") for l in lines}
assert "flight_dump" in kinds, "missing dump header record"
print(f"flight dump OK: {len(lines)} JSONL records, {len(kinds)} event kinds")
EOF

echo "== serve-bench smoke: multi-tenant admission + shared cube cache =="
cargo run -q -p climate-workflows --bin climate-wf -- serve-bench \
    --tenants 4 --rates 300 --duration-ms 200 --seed 7 --workers 2 \
    --out "$smoke/serve.json"
python3 - "$smoke/serve.json" <<'EOF'
import json, sys
report = json.load(open(sys.argv[1]))
assert report["tenants"] >= 4, report
points = report["points"]
assert points, "serve report has no sweep points"
required = {"rate_hz", "offered", "admitted", "coalesced", "rejected",
            "completed", "failed", "p50_us", "p99_us", "goodput_hz",
            "rejection_rate", "cache_hit_rate"}
for p in points:
    missing = required - p.keys()
    assert not missing, f"serve point missing {missing}: {p}"
    assert p["goodput_hz"] > 0, f"zero goodput: {p}"
    assert p["offered"] == p["admitted"] + p["coalesced"] + p["rejected"], p
print(f"serve-bench OK: {len(points)} point(s), "
      f"goodput {points[0]['goodput_hz']:.1f}/s, "
      f"cache hit rate {points[0]['cache_hit_rate']:.2f}")
EOF

echo "== streaming equivalence: staged vs streaming bitwise, serial and parallel =="
# The streaming data plane must be a pure performance change: byte-identical
# products, incremental record indices matching the batch exports, and a
# kill/resume through the file fallback — independent of pool width.
for t in 1 4; do
  PAR_THREADS="$t" cargo test --test streaming_equivalence -q
done

echo "== streaming smoke: in-memory year handoff end to end =="
cargo run -q -p climate-workflows --bin climate-wf -- run --years 2 --days 3 \
    --streaming --out "$smoke/stream-run" > "$smoke/stream-run.out"
grep -q "climate-extremes workflow (streaming)" "$smoke/stream-run.out"
grep -q "^streaming: " "$smoke/stream-run.out"

echo "== obs overhead budget (inactive-bus emit) =="
OBS_OVERHEAD_BUDGET_NS="${OBS_OVERHEAD_BUDGET_NS:-25}" \
    cargo bench -p bench --bench obs_overhead -- --test

echo "== scheduler portfolio: all policies place correctly and deterministically =="
cargo test -p dataflow --test scheduler_portfolio -q
cargo run -q -p climate-workflows --bin climate-wf -- run --years 1 --days 2 \
    --policy heft --out "$smoke/heft-run" > "$smoke/heft-run.out"
grep -q "scheduling: policy heft" "$smoke/heft-run.out"

echo "All checks passed."
