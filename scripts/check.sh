#!/usr/bin/env bash
# Repo-wide quality gate: formatting, lints, tests.
# Usage: scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all --check

echo "== cargo clippy (workspace, warnings are errors) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test (workspace) =="
cargo test --workspace -q

echo "== cargo bench --no-run (benches compile) =="
cargo bench --workspace --no-run -q

echo "All checks passed."
