#!/usr/bin/env bash
# Records the perf trajectory: runs the c2_baseline_reuse,
# c4_fragment_scaling, d1_esm_output, s1_serve_sweep, a1_sched_policy and
# k1_kernels benches (with the counting allocator compiled in) and writes a
# BENCH_<date>[-label].json summary at the repo root, including a `kernels`
# table of per-kernel effective GB/s from the fused vectorized kernels.
#
# Usage: scripts/bench_record.sh [label]
#   label  optional suffix for the output file, e.g. `pre` / `post` when
#          bracketing a change recorded on the same day.
set -euo pipefail
cd "$(dirname "$0")/.."

label="${1:-}"
out="BENCH_$(date +%F)${label:+-$label}.json"
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

benches=(c2_baseline_reuse c4_fragment_scaling d1_esm_output s1_serve_sweep a1_sched_policy k1_kernels c8_streaming)
for b in "${benches[@]}"; do
  echo "[bench_record] running $b ..."
  cargo bench -p bench --features count-alloc --bench "$b" >"$tmp/$b.out" 2>"$tmp/$b.err" \
    || { cat "$tmp/$b.err" >&2; exit 1; }
done

python3 - "$out" "$tmp" "${benches[@]}" <<'PY'
import json, re, sys
from datetime import date

out_path, tmp = sys.argv[1], sys.argv[2]
benches = sys.argv[3:]

# Criterion-shim report line: `label  [min mean max] (N samples)`.
TIME = re.compile(
    r"^(?P<name>\S+)\s+\[(?P<min>[\d.]+) (?P<minu>ns|us|ms|s) "
    r"(?P<mean>[\d.]+) (?P<meanu>ns|us|ms|s) "
    r"(?P<max>[\d.]+) (?P<maxu>ns|us|ms|s)\]\s+\((?P<n>\d+) samples\)"
)
ALLOC = re.compile(r"^\[c4-alloc\] stage=(?P<stage>\S+) allocs=(?P<allocs>\d+) bytes=(?P<bytes>\d+)")
# Serving-sweep metric line: `[serve] stage=sweep key=value ...`.
SERVE = re.compile(r"^\[serve\] stage=(?P<stage>\S+) (?P<kv>.+)$")
# Scheduler-portfolio line: `[a1_sched] shape=... policy=... key=value ...`.
A1 = re.compile(r"^\[a1_sched\] (?P<kv>.+)$")
# Per-kernel bandwidth line from the k1_kernels bench.
K1 = re.compile(
    r"^\[k1_kernels\] kernel=(?P<kernel>\S+) bytes=(?P<bytes>\d+) "
    r"ns=(?P<ns>\d+) gbps=(?P<gbps>[\d.]+)"
)
# Streaming-data-plane metric line: `[c8_stream] stage=... key=value ...`.
C8 = re.compile(r"^\[c8_stream\] (?P<kv>.+)$")
NS = {"ns": 1, "us": 1e3, "ms": 1e6, "s": 1e9}

record = {"date": date.today().isoformat(), "benches": {}, "alloc": {}, "serve": [],
          "a1_sched": [], "kernels": {}, "streaming": []}
for b in benches:
    with open(f"{tmp}/{b}.out") as f:
        for line in f:
            m = TIME.match(line.strip())
            if m:
                record["benches"][m["name"]] = {
                    "min_ns": round(float(m["min"]) * NS[m["minu"]]),
                    "mean_ns": round(float(m["mean"]) * NS[m["meanu"]]),
                    "max_ns": round(float(m["max"]) * NS[m["maxu"]]),
                    "samples": int(m["n"]),
                }
                continue
            m = ALLOC.match(line.strip())
            if m:
                record["alloc"][m["stage"]] = {
                    "allocs": int(m["allocs"]),
                    "bytes": int(m["bytes"]),
                }
                continue
            m = SERVE.match(line.strip())
            if m:
                point = {"stage": m["stage"]}
                for kv in m["kv"].split():
                    k, _, v = kv.partition("=")
                    try:
                        point[k] = int(v) if v.lstrip("-").isdigit() else float(v)
                    except ValueError:
                        point[k] = v
                record["serve"].append(point)
                continue
            m = A1.match(line.strip())
            if m:
                point = {}
                for kv in m["kv"].split():
                    k, _, v = kv.partition("=")
                    try:
                        point[k] = int(v) if v.lstrip("-").isdigit() else float(v)
                    except ValueError:
                        point[k] = v
                record["a1_sched"].append(point)
                continue
            m = K1.match(line.strip())
            if m:
                record["kernels"][m["kernel"]] = {
                    "bytes": int(m["bytes"]),
                    "ns": int(m["ns"]),
                    "gbps": float(m["gbps"]),
                }
                continue
            m = C8.match(line.strip())
            if m:
                point = {}
                for kv in m["kv"].split():
                    k, _, v = kv.partition("=")
                    try:
                        point[k] = int(v) if v.lstrip("-").isdigit() else float(v)
                    except ValueError:
                        point[k] = v
                record["streaming"].append(point)

if not record["benches"]:
    sys.exit("bench_record: no benchmark lines parsed")
with open(out_path, "w") as f:
    json.dump(record, f, indent=2, sort_keys=True)
    f.write("\n")
print(f"[bench_record] wrote {out_path}: "
      f"{len(record['benches'])} benches, {len(record['alloc'])} alloc stages, "
      f"{len(record['serve'])} serve points, {len(record['a1_sched'])} a1_sched points, "
      f"{len(record['kernels'])} kernels, {len(record['streaming'])} streaming points")
PY
