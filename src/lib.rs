//! Umbrella crate re-exporting the whole eflows-repro workspace.
pub use climate_workflows as workflows;
pub use datacube;
pub use dataflow;
pub use esm;
pub use extremes;
pub use gridded;
pub use hpcwaas;
pub use ncformat;
pub use tinyml;
