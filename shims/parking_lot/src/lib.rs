//! Offline stand-in for `parking_lot`.
//!
//! The build environment has no access to crates.io, so the workspace
//! path-replaces `parking_lot` with this shim. It reproduces the
//! parking_lot API *shapes* the workspace relies on — `lock()` without a
//! `Result`, `Condvar::wait(&mut guard)`, no poisoning — over the std
//! primitives. Poisoned std locks are recovered transparently, matching
//! parking_lot's no-poisoning semantics.

use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;
use std::time::Duration;

pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

pub struct MutexGuard<'a, T: ?Sized>(Option<std::sync::MutexGuard<'a, T>>);

impl<T> Mutex<T> {
    pub const fn new(t: T) -> Self {
        Mutex(std::sync::Mutex::new(t))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(PoisonError::into_inner)))
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(Some(g))),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard(Some(p.into_inner()))),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_ref().expect("guard taken during Condvar::wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_mut().expect("guard taken during Condvar::wait")
    }
}

#[derive(Default)]
pub struct Condvar(std::sync::Condvar);

pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

impl Condvar {
    pub const fn new() -> Self {
        Condvar(std::sync::Condvar::new())
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard already taken");
        let inner = self.0.wait(inner).unwrap_or_else(PoisonError::into_inner);
        guard.0 = Some(inner);
    }

    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.0.take().expect("guard already taken");
        let (inner, result) = match self.0.wait_timeout(inner, timeout) {
            Ok((g, r)) => (g, r),
            Err(poison) => {
                let (g, r) = poison.into_inner();
                (g, r)
            }
        };
        guard.0 = Some(inner);
        WaitTimeoutResult(result.timed_out())
    }

    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

pub struct RwLockReadGuard<'a, T: ?Sized>(std::sync::RwLockReadGuard<'a, T>);
pub struct RwLockWriteGuard<'a, T: ?Sized>(std::sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    pub const fn new(t: T) -> Self {
        RwLock(std::sync::RwLock::new(t))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(PoisonError::into_inner))
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(PoisonError::into_inner))
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Instant;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            *m.lock() = true;
            cv.notify_all();
        });
        let (m, cv) = &*pair;
        let mut done = m.lock();
        while !*done {
            cv.wait(&mut done);
        }
        drop(done);
        h.join().unwrap();
    }

    #[test]
    fn wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let start = Instant::now();
        let res = cv.wait_for(&mut g, Duration::from_millis(10));
        assert!(res.timed_out());
        assert!(start.elapsed() >= Duration::from_millis(5));
    }
}
