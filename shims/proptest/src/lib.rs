//! Offline stand-in for `proptest`.
//!
//! The build environment has no access to crates.io, so the workspace
//! path-replaces `proptest` with this shim. It keeps the API surface the
//! workspace's property tests use — the `proptest!` macro, `Strategy`
//! with `prop_map`/`prop_flat_map`/`prop_filter`, `any::<T>()`, `Just`,
//! `prop_oneof!`, range and tuple and `Vec` strategies,
//! `proptest::collection::{vec, btree_map}`, and a tiny character-class
//! subset of the regex string strategies — but does plain random
//! sampling with NO shrinking: a failing case panics with the sampled
//! values, it is not minimized.

use rand::rngs::StdRng;
use rand::{Rng, SampleUniform, SeedableRng};
use std::marker::PhantomData;

/// The RNG threaded through strategy sampling.
pub struct TestRng(StdRng);

impl TestRng {
    pub fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }

    pub fn gen_index(&mut self, len: usize) -> usize {
        self.0.gen_range(0..len.max(1))
    }

    fn gen_uniform<T: SampleUniform>(&mut self, lo: T, hi: T, inclusive: bool) -> T {
        T::sample_between(&mut self.0, lo, hi, inclusive)
    }
}

/// Deterministic per-(test, case) RNG used by the `proptest!` expansion.
pub fn rng_for(test_name: &str, case: u64) -> TestRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    TestRng(StdRng::seed_from_u64(h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15)))
}

/// Run configuration; only the case count is honoured.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A source of random values of one type.
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    fn prop_filter<F>(self, reason: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, reason, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

pub struct Filter<S, F> {
    inner: S,
    reason: &'static str,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.inner.sample(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter({}) rejected 10000 consecutive samples", self.reason);
    }
}

/// Always yields a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Type-erased strategy (built by [`Strategy::boxed`] / `prop_oneof!`).
pub struct BoxedStrategy<V>(Box<dyn Strategy<Value = V>>);

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        self.0.sample(rng)
    }
}

/// Uniform choice among strategies (the `prop_oneof!` expansion).
pub struct Union<V>(Vec<BoxedStrategy<V>>);

impl<V> Union<V> {
    pub fn new(choices: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!choices.is_empty(), "prop_oneof! needs at least one choice");
        Union(choices)
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        let i = rng.gen_index(self.0.len());
        self.0[i].sample(rng)
    }
}

impl<T: SampleUniform + 'static> Strategy for core::ops::Range<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        rng.gen_uniform(self.start, self.end, false)
    }
}

impl<T: SampleUniform + 'static> Strategy for core::ops::RangeInclusive<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        rng.gen_uniform(*self.start(), *self.end(), true)
    }
}

/// Each element sampled from the corresponding strategy.
impl<S: Strategy> Strategy for Vec<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        self.iter().map(|s| s.sample(rng)).collect()
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// Types with a default `any::<T>()` distribution.
pub trait Arbitrary {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        f64::from_bits(rng.next_u64())
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        f32::from_bits(rng.next_u64() as u32)
    }
}

impl Arbitrary for () {
    fn arbitrary(_rng: &mut TestRng) -> Self {}
}

pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — T's default distribution (full bit patterns for
/// numbers, so `any::<f64>()` can yield NaN/inf like the real crate).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Character-class subset of proptest's regex string strategies:
/// sequences of literal characters and `[...]` classes, each optionally
/// quantified with `{m,n}`, `{n}`, `?`, `*` or `+`. Covers patterns like
/// `"[a-z][a-z0-9_]{0,10}"`.
impl Strategy for &'static str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        sample_pattern(self, rng)
    }
}

fn sample_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut out = String::new();
    let mut i = 0;
    while i < chars.len() {
        // Parse one atom: a class or a literal character.
        let choices: Vec<char> = if chars[i] == '[' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == ']')
                .map(|p| i + p)
                .unwrap_or_else(|| panic!("unclosed [ in pattern {pattern}"));
            let class = &chars[i + 1..close];
            i = close + 1;
            parse_class(class, pattern)
        } else {
            let c = chars[i];
            i += 1;
            vec![c]
        };
        // Parse an optional quantifier.
        let (lo, hi) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .map(|p| i + p)
                .unwrap_or_else(|| panic!("unclosed {{ in pattern {pattern}"));
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((a, b)) => {
                    (a.trim().parse::<usize>().unwrap(), b.trim().parse::<usize>().unwrap())
                }
                None => {
                    let n = body.trim().parse::<usize>().unwrap();
                    (n, n)
                }
            }
        } else if i < chars.len() && (chars[i] == '?' || chars[i] == '*' || chars[i] == '+') {
            let q = chars[i];
            i += 1;
            match q {
                '?' => (0, 1),
                '*' => (0, 8),
                _ => (1, 8),
            }
        } else {
            (1, 1)
        };
        let n = if lo == hi { lo } else { rng.gen_uniform(lo, hi, true) };
        for _ in 0..n {
            out.push(choices[rng.gen_index(choices.len())]);
        }
    }
    out
}

fn parse_class(class: &[char], pattern: &str) -> Vec<char> {
    assert!(!class.is_empty(), "empty [] class in pattern {pattern}");
    let mut choices = Vec::new();
    let mut j = 0;
    while j < class.len() {
        if j + 2 < class.len() && class[j + 1] == '-' {
            let (lo, hi) = (class[j] as u32, class[j + 2] as u32);
            assert!(lo <= hi, "bad range in pattern {pattern}");
            for c in lo..=hi {
                choices.push(char::from_u32(c).unwrap());
            }
            j += 3;
        } else {
            choices.push(class[j]);
            j += 1;
        }
    }
    choices
}

pub mod collection {
    //! `proptest::collection` — sized collection strategies.

    use super::{Strategy, TestRng};
    use std::collections::BTreeMap;

    /// Accepted by the size parameter: an exact size, `lo..hi`, `lo..=hi`.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi_inclusive: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi_inclusive: r.end - 1 }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi_inclusive: *r.end() }
        }
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            if self.lo == self.hi_inclusive {
                self.lo
            } else {
                rng.gen_uniform(self.lo, self.hi_inclusive, true)
            }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// `Vec` of `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: SizeRange,
    }

    impl<K, V> Strategy for BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            // Duplicate keys collapse, so the result may be smaller than
            // `n` — same caveat as the real crate.
            (0..n).map(|_| (self.key.sample(rng), self.value.sample(rng))).collect()
        }
    }

    /// `BTreeMap` with up to `size` entries.
    pub fn btree_map<K, V>(key: K, value: V, size: impl Into<SizeRange>) -> BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
    {
        BTreeMapStrategy { key, value, size: size.into() }
    }
}

/// The macro surface. Same shapes as the real crate; no shrinking.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(($cfg); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(($crate::ProptestConfig::default()); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $( $(#[$attr:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block )*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for __case in 0..config.cases as u64 {
                    let mut __rng = $crate::rng_for(stringify!($name), __case);
                    $(let $pat = $crate::Strategy::sample(&($strat), &mut __rng);)+
                    $body
                }
            }
        )*
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($choice:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($choice)),+])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skip the current case when an assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
}

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest, Any,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestRng, Union,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_tuples_and_vecs_sample() {
        let mut rng = crate::rng_for("t", 0);
        let (a, b) = (1usize..5, -1.0f64..1.0).sample(&mut rng);
        assert!((1..5).contains(&a) && (-1.0..1.0).contains(&b));
        let v = crate::collection::vec(0u32..10, 3..=6).sample(&mut rng);
        assert!((3..=6).contains(&v.len()));
        assert!(v.iter().all(|x| *x < 10));
    }

    #[test]
    fn string_patterns_match_shape() {
        let mut rng = crate::rng_for("s", 0);
        for _ in 0..100 {
            let s = "[a-z][a-z0-9_]{0,10}".sample(&mut rng);
            assert!(!s.is_empty() && s.len() <= 11);
            let first = s.chars().next().unwrap();
            assert!(first.is_ascii_lowercase());
            assert!(s.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));
        }
    }

    #[test]
    fn oneof_covers_all_choices() {
        let mut rng = crate::rng_for("o", 0);
        let strat = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[strat.sample(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_roundtrip(x in 0u64..100, (lo, hi) in (0i32..10, 10i32..20)) {
            prop_assume!(x != 99);
            prop_assert!(x < 100);
            prop_assert!(lo < hi);
            prop_assert_eq!(x, x);
        }
    }
}
