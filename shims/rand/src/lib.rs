//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! path-replaces `rand` with this shim (see `[workspace.dependencies]`).
//! It implements exactly the subset the workspace uses — `StdRng`,
//! `SeedableRng::seed_from_u64`, `Rng::gen`, `Rng::gen_range` — on top
//! of xoshiro256++ seeded through SplitMix64. Streams are deterministic
//! per seed but do NOT bit-match the real `rand` crate.

/// A seedable random number generator.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// The subset of `rand::Rng` the workspace uses.
pub trait Rng {
    fn next_u64(&mut self) -> u64;

    /// Uniform sample of `T`'s natural unit distribution
    /// (`[0,1)` for floats, full range for integers).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Uniform sample from a range, e.g. `rng.gen_range(0..10)` or
    /// `rng.gen_range(-1.0f32..1.0)`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

/// Types with a natural `gen()` distribution.
pub trait Standard {
    fn sample<R: Rng>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: Rng>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: Rng>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: Rng>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample<R: Rng>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    fn sample<R: Rng>(self, rng: &mut R) -> T;
}

/// Element types usable with `gen_range`. A single blanket
/// `SampleRange` impl per range shape keeps type inference working for
/// unsuffixed literals (`gen_range(0.1..0.9)` falls back to `f64`).
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`.
    fn sample_between<R: Rng>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample<R: Rng>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "empty range in gen_range");
        T::sample_between(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample<R: Rng>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "empty range in gen_range");
        T::sample_between(rng, lo, hi, true)
    }
}

macro_rules! int_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: Rng>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + if inclusive { 1 } else { 0 };
                (lo as i128 + (uniform_u128(rng, span) as i128)) as $t
            }
        }
    )*};
}

int_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Uniform integer in `[0, span)` (span > 0) with modulo-bias rejection.
fn uniform_u128<R: Rng>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    if span == 1 {
        return 0;
    }
    let zone = u128::MAX - (u128::MAX - span + 1) % span;
    loop {
        let wide = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
        if wide <= zone {
            return wide % span;
        }
    }
}

macro_rules! float_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: Rng>(rng: &mut R, lo: Self, hi: Self, _inclusive: bool) -> Self {
                let unit: $t = <$t as Standard>::sample(rng);
                lo + unit * (hi - lo)
            }
        }
    )*};
}

float_uniform!(f32, f64);

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// xoshiro256++ — the same generator family the real `StdRng` docs
    /// point to for non-crypto use; small, fast, and dependency-free.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.s = s;
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            let y: f32 = rng.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn int_ranges_inclusive_and_exclusive() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 5];
        for _ in 0..1_000 {
            let v = rng.gen_range(0..5usize);
            seen[v] = true;
            let w = rng.gen_range(3..=7i64);
            assert!((3..=7).contains(&w));
            let n = rng.gen_range(-4..4i32);
            assert!((-4..4).contains(&n));
        }
        assert!(seen.iter().all(|&s| s), "all of 0..5 should appear");
    }

    #[test]
    fn float_ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = rng.gen_range(-1.0f32..1.0);
            assert!((-1.0..1.0).contains(&v));
            let w = rng.gen_range(6.5f64..=12.0);
            assert!((6.5..=12.0).contains(&w));
        }
    }

    #[test]
    fn rough_uniformity() {
        let mut rng = StdRng::seed_from_u64(4);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
