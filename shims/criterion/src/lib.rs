//! Offline stand-in for `criterion`.
//!
//! The build environment has no access to crates.io, so the workspace
//! path-replaces `criterion` with this shim. It keeps the API shapes the
//! benches use (`benchmark_group`, `bench_with_input`, `Bencher::iter`,
//! `iter_batched`, the `criterion_group!`/`criterion_main!` macros) and
//! reports min/mean/max wall time per benchmark instead of criterion's
//! statistical machinery. Good enough to compare runs by eye; swap the
//! real criterion back in when a registry is reachable.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` inputs are grouped. All variants behave identically
/// here (one setup per timed routine call).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Identifier `function_name/parameter` for parameterized benchmarks.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { label: format!("{}/{}", function_name.into(), parameter) }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { label: parameter.to_string() }
    }
}

/// Runs the measured closure and accumulates sample durations.
pub struct Bencher {
    samples: Vec<Duration>,
    target: usize,
}

impl Bencher {
    /// Time `routine` once per sample.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        for _ in 0..self.target {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    /// Time `routine` on a fresh `setup()` input per sample; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        for _ in 0..self.target {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }
}

fn report(name: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("{name:<50} (no samples)");
        return;
    }
    let min = samples.iter().min().unwrap();
    let max = samples.iter().max().unwrap();
    let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
    println!(
        "{name:<50} [{} {} {}] ({} samples)",
        fmt_dur(*min),
        fmt_dur(mean),
        fmt_dur(*max),
        samples.len()
    );
}

fn fmt_dur(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} us", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// A named set of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl IntoLabel, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_label());
        self.criterion.run_one(&label, f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoLabel,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into_label());
        self.criterion.run_one(&label, |b| f(b, input));
        self
    }

    pub fn finish(&mut self) {}
}

/// Conversion of the various id types benches pass to `bench_*`.
pub trait IntoLabel {
    fn into_label(self) -> String;
}

impl IntoLabel for BenchmarkId {
    fn into_label(self) -> String {
        self.label
    }
}

impl IntoLabel for &str {
    fn into_label(self) -> String {
        self.to_string()
    }
}

impl IntoLabel for String {
    fn into_label(self) -> String {
        self
    }
}

/// The bench driver: collects samples and prints one line per benchmark.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        // Real criterion defaults to 100 samples; this harness is for
        // offline smoke-benching, so stay quick.
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), criterion: self }
    }

    pub fn bench_function<F>(&mut self, id: impl IntoLabel, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = id.into_label();
        self.run_one(&label, f);
        self
    }

    fn run_one<F>(&mut self, label: &str, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { samples: Vec::new(), target: 1 };
        // One warm-up sample, discarded.
        f(&mut b);
        b.samples.clear();
        b.target = self.sample_size;
        f(&mut b);
        report(label, &b.samples);
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        let mut c = Criterion::default();
        c.benchmark_group("g").sample_size(3).bench_function("f", |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn iter_batched_runs_setup_per_sample() {
        let mut setups = 0;
        let mut b = Bencher { samples: Vec::new(), target: 5 };
        b.iter_batched(
            || {
                setups += 1;
                vec![1u8; 8]
            },
            |v| v.len(),
            BatchSize::SmallInput,
        );
        assert_eq!(setups, 5);
        assert_eq!(b.samples.len(), 5);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).into_label(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").into_label(), "x");
    }
}
