//! Streaming-equivalence suite: the in-memory data plane
//! (`--streaming`) must be a pure performance change. Every science
//! product of a streaming run — index maps, TC inputs, CNN and tracker
//! CSVs, rendered maps — must be byte-identical to the staged run over
//! the same parameters, the incremental record indices must match the
//! batch per-year pipeline, and a run killed mid-stream must resume
//! through the durable file fallback to the same bytes.
//!
//! `scripts/check.sh` runs this binary under `PAR_THREADS=1` and
//! `PAR_THREADS=4`: equivalence may not depend on pool width.
//!
//! Tests hold `SUITE_LOCK` for their whole body: the chaos hook is
//! process-wide, so an armed fault must never bleed into another test's
//! deliberately fault-free reference run.

use climate_workflows::{run_pipelined, run_sequential, WorkflowParams};
use dataflow::inject::{self, Fault};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

static SUITE_LOCK: Mutex<()> = Mutex::new(());

fn suite_lock() -> MutexGuard<'static, ()> {
    SUITE_LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("streaming-equivalence").join(name);
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// Small but non-trivial configuration: two years so the record state
/// crosses a year boundary, enough days for multi-day spells, a real
/// (seeded) CNN training run so the TC products are exercised.
fn params(dir: &Path, years: usize, streaming: bool) -> WorkflowParams {
    let mut p = WorkflowParams::test_scale(dir.to_path_buf());
    p.years = years;
    p.days_per_year = 10;
    p.train_samples = 120;
    p.train_epochs = 6;
    p.streaming = streaming;
    p
}

fn listing(dir: &Path) -> Vec<String> {
    let mut v: Vec<String> = std::fs::read_dir(dir)
        .unwrap_or_else(|e| panic!("read_dir {dir:?}: {e}"))
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .collect();
    v.sort();
    v
}

/// Asserts every file under `a` exists under `b` with identical bytes.
/// (`b` may carry extra files — the streaming run's record products.)
fn assert_superset_bitwise(a: &Path, b: &Path) {
    for name in listing(a) {
        let x = std::fs::read(a.join(&name)).unwrap();
        let y = std::fs::read(b.join(&name))
            .unwrap_or_else(|e| panic!("{name} missing from streaming run: {e}"));
        assert_eq!(x, y, "{name} differs between staged and streaming runs");
    }
}

/// Tentpole acceptance: a streaming run produces byte-identical science
/// to the staged (sequential) run — daily simulation output, all six
/// per-year index maps, the TC input bundle, the batched-CNN CSV, the
/// tracker CSV and the rendered maps — plus the record-to-date products
/// only the streaming plane computes.
#[test]
fn streaming_products_bitwise_match_staged() {
    let _suite = suite_lock();
    let staged_dir = tmp("staged");
    let stream_dir = tmp("stream");
    run_sequential(params(&staged_dir, 2, false)).expect("staged run");
    let report = run_pipelined(params(&stream_dir, 2, true)).expect("streaming run");

    for sub in ["esm-out", "products"] {
        assert_superset_bitwise(&staged_dir.join(sub), &stream_dir.join(sub));
    }

    // The streaming run's extras are exactly the record products.
    let staged: std::collections::BTreeSet<String> =
        listing(&staged_dir.join("products")).into_iter().collect();
    let extras: Vec<String> =
        listing(&stream_dir.join("products")).into_iter().filter(|n| !staged.contains(n)).collect();
    assert_eq!(
        extras,
        [
            "record-cwd.ncx",
            "record-cwf.ncx",
            "record-cwn.ncx",
            "record-etccdi.ncx",
            "record-hwd.ncx",
            "record-hwf.ncx",
            "record-hwn.ncx"
        ],
        "unexpected streaming-only products"
    );

    let st = report.stream.expect("streaming report section");
    assert_eq!(st.years_streamed + st.fallback_years, 2);
    assert_eq!(st.record_years, 2, "record state must fold both years");
    assert!(st.cnn_items > 0 && st.cnn_batches > 0, "CNN service must have batched");
}

/// Incremental-vs-batch at the product level: over a single year the
/// record-to-date wave maps are definitionally the year's own indices,
/// so the `record-*.ncx` files written by the incremental accumulators
/// must be byte-identical to the batch pipeline's per-year exports.
#[test]
fn record_indices_bitwise_match_batch_exports() {
    let _suite = suite_lock();
    let dir = tmp("record-batch");
    let report = run_pipelined(params(&dir, 1, true)).expect("streaming run");
    let year = report.years[0].year;
    let products = dir.join("products");
    for name in ["hwd", "hwn", "hwf", "cwd", "cwn", "cwf"] {
        let batch = std::fs::read(products.join(format!("{name}-{year}.ncx"))).unwrap();
        let record = std::fs::read(products.join(format!("record-{name}.ncx"))).unwrap();
        assert_eq!(record, batch, "record-{name} diverges from the batch export");
    }
}

/// Durability acceptance: a streaming run killed mid-simulation (the
/// second ESM year errors with no retries) resumes from its checkpoint;
/// the already-simulated year re-enters analytics through the directory
/// watcher fallback (its in-memory handoff died with the process), and
/// the final products are byte-identical to a staged run that never
/// failed.
#[test]
fn killed_stream_resumes_via_file_fallback_bitwise() {
    let _suite = suite_lock();
    let with_ckpt = |dir: &Path, years, streaming| {
        let mut p = params(dir, years, streaming);
        p.checkpoint = Some(dir.join("wf.ckpt"));
        p.task_retries = 0;
        p
    };

    // Reference: unfailed staged run (checkpointed too, for identical
    // parameters end to end).
    let clean_dir = tmp("kill-clean");
    run_sequential(with_ckpt(&clean_dir, 2, false)).expect("clean staged run");

    // Victim: streaming run killed at the SECOND ESM-year consult, so
    // year one is simulated (and checkpointed) before the crash.
    let dir = tmp("kill-victim");
    {
        let consults = Arc::new(AtomicU64::new(0));
        let c2 = Arc::clone(&consults);
        let _armed = obs::chaos::install(Arc::new(move |site: &str| {
            (site == inject::SITE_ESM && c2.fetch_add(1, Ordering::SeqCst) == 1)
                .then_some((Fault::Error, 1))
        }));
        let err = run_pipelined(with_ckpt(&dir, 2, true)).expect_err("year-2 fault must kill");
        assert!(err.to_string().contains("chaos"), "unexpected failure: {err}");
    }

    // Disarmed resume from the same checkpoint.
    let report = run_pipelined(with_ckpt(&dir, 2, true)).expect("resume run");
    let st = report.stream.expect("streaming report section");
    assert!(
        st.fallback_years >= 1,
        "the restored year must re-enter through the file fallback: {st:?}"
    );
    assert_eq!(st.record_years, 2, "record catch-up must fold the restored year");

    for sub in ["esm-out", "products"] {
        assert_superset_bitwise(&clean_dir.join(sub), &dir.join(sub));
    }
}
