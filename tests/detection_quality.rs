//! C7 quality gates: the extreme-event pipelines must actually *find* the
//! events the simulator injected — not merely run. Thresholds are
//! deliberately below the typically observed scores (deterministic POD
//! ~0.7, CNN POD ~0.7-0.8 after fine-tuning) to keep the gates stable
//! across seeds while still catching real regressions.

use climate_workflows::{run_pipelined, WorkflowParams};
use esm::ThermalKind;

fn tmp(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("root-quality").join(name);
    std::fs::remove_dir_all(&dir).ok();
    dir
}

#[test]
fn pipelines_detect_injected_events() {
    let params = WorkflowParams::builder(tmp("quality"))
        .years(1)
        .days_per_year(60) // enough room for full events + TC seasons
        .seed(42)
        .build()
        .unwrap();
    let report = run_pipelined(params).unwrap();
    let y = &report.years[0];

    // Ground truth exists for this seed (fixed, deterministic).
    assert!(y.truth_tcs >= 3, "seed should inject several cyclones, got {}", y.truth_tcs);
    assert!(y.truth_thermal_events >= 5, "thermal events expected, got {}", y.truth_thermal_events);

    // Heat/cold waves leave footprints in the index maps.
    assert!(y.heatwave_cells > 0, "no heat-wave cells found");
    assert!(y.coldspell_cells > 0, "no cold-spell cells found");
    assert!(y.validated);

    // Deterministic tracker: high precision, decent recall.
    let det = y.deterministic_scores.as_ref().expect("truth comparison available");
    assert!(det.pod >= 0.5, "deterministic POD {} too low", det.pod);
    assert!(det.far <= 0.10, "deterministic FAR {} too high", det.far);
    assert!(det.mean_error_km < 420.0, "center error {} km", det.mean_error_km);

    // CNN localization: viable recall with bounded false alarms.
    let cnn = y.cnn_scores.as_ref().expect("truth comparison available");
    assert!(cnn.pod >= 0.45, "CNN POD {} too low", cnn.pod);
    assert!(cnn.far <= 0.35, "CNN FAR {} too high", cnn.far);
    assert!(cnn.mean_error_km < 800.0, "CNN center error {} km", cnn.mean_error_km);
}

#[test]
fn strong_heatwave_is_localized_in_the_index_map() {
    // A fully-controlled single event: disable everything else and check
    // the HWN map lights up where (and only roughly where) the event was.
    use datacube::exec::ExecConfig;
    use extremes::heatwave::{compute_indices, WaveParams};

    let mut cfg = esm::EsmConfig::test_small().with_days_per_year(40).with_seed(5);
    cfg.tc_per_year = 0.0;
    cfg.heatwaves_per_year = 0.0;
    cfg.coldspells_per_year = 0.0;
    let warming = cfg.scenario.warming_k(cfg.start_year);

    // Build daily tmax (expected + one strong synthetic event) and the
    // matching baseline, then run the real index pipeline.
    let mut daily = Vec::new();
    let mut baseline_days = Vec::new();
    let event = esm::ThermalEvent {
        kind: ThermalKind::HeatWave,
        start_day: 10,
        duration: 9,
        center_lat: 45.0,
        center_lon: 100.0,
        radius_deg: 14.0,
        amplitude_k: 9.0,
    };
    for day in 0..cfg.days_per_year {
        let (tmax, _) = esm::model::expected_daily_extremes(&cfg, day, warming);
        let mut with_event = tmax.clone();
        for i in 0..cfg.grid.nlat {
            for j in 0..cfg.grid.nlon {
                let a = event.anomaly_at(day, cfg.grid.lat(i), cfg.grid.lon(j));
                *with_event.get_mut(i, j) += a as f32;
            }
        }
        daily.push(with_event);
        baseline_days.push(tmax);
    }

    let to_cube = |days: &[gridded::Field2]| {
        let g = &cfg.grid;
        let nday = days.len();
        let mut data = vec![0.0f32; g.len() * nday];
        for (d, f) in days.iter().enumerate() {
            for idx in 0..f.data.len() {
                data[idx * nday + d] = f.data[idx];
            }
        }
        datacube::model::Cube::from_dense(
            "t",
            vec![
                datacube::model::Dimension::explicit("lat", g.lats()),
                datacube::model::Dimension::explicit("lon", g.lons()),
                datacube::model::Dimension::implicit(
                    "day",
                    (0..nday).map(|d| d as f64).collect::<Vec<_>>(),
                ),
            ],
            data,
            4,
            2,
        )
        .unwrap()
    };
    let daily_cube = to_cube(&daily);
    let baseline_cube = to_cube(&baseline_days);

    let idx = compute_indices(
        &daily_cube,
        &baseline_cube,
        WaveParams::default(),
        false,
        ExecConfig::with_servers(2),
    )
    .unwrap();

    let hwn = idx.number.to_dense();
    let g = &cfg.grid;
    let center_idx = g.index(g.lat_index(45.0), g.lon_index(100.0));
    assert!(hwn[center_idx] >= 1.0, "event center must register a wave");
    // Duration at the center matches the injected event (±1 for ramps).
    let hwd = idx.duration_max.to_dense();
    assert!(
        (7.0..=9.0).contains(&hwd[center_idx]),
        "duration {} at center, injected 9",
        hwd[center_idx]
    );
    // The antipode stays quiet.
    let far_idx = g.index(g.lat_index(-45.0), g.lon_index(280.0));
    assert_eq!(hwn[far_idx], 0.0, "false positive far from the event");
}
