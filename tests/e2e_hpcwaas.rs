//! FIG2 / Section 4.1: the full HPCWaaS lifecycle around the real workflow
//! — registry, TOSCA deployment through the orchestrator (container builds,
//! deploy-time data pipeline), REST-style invocation, status, undeploy.

use climate_workflows::register_with_hpcwaas;
use hpcwaas::orchestrator::{DeploymentPlan, Orchestrator};
use hpcwaas::tosca::climate_case_study;
use hpcwaas::{ExecutionApi, ExecutionStatus};
use std::collections::BTreeMap;

fn tmp(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("root-e2e").join(name);
    std::fs::remove_dir_all(&dir).ok();
    dir
}

#[test]
fn deployment_plan_reflects_figure_2_structure() {
    let topo = climate_case_study();
    let plan = DeploymentPlan::derive(&topo).unwrap();
    // Infrastructure first, application last.
    assert_eq!(plan.order.first().unwrap(), "zeus");
    assert_eq!(plan.order.last().unwrap(), "workflow");
    // The middleware and every image precede the workflow app.
    let pos = |n: &str| plan.order.iter().position(|x| x == n).unwrap();
    for dep in ["pycompss", "esm_image", "analytics_image", "ml_image", "baseline_data"] {
        assert!(pos(dep) < pos("workflow"), "{dep} must start before the workflow");
    }
}

#[test]
fn orchestrator_builds_images_and_stages_data() {
    let mut orch = Orchestrator::new();
    let record = orch.deploy(&climate_case_study()).unwrap();
    // Three container images, each with base + package layers.
    assert_eq!(orch.images.builds(), 3);
    // The baseline stage-in ran through the DLS.
    assert_eq!(orch.dls.history().len(), 1);
    assert_eq!(orch.dls.history()[0].total_bytes, 4_000_000);
    // Lifecycle: every template got create/configure/start.
    let creates = record.steps.iter().filter(|s| s.operation == "create").count();
    assert_eq!(creates, 7);
}

#[test]
fn full_user_journey_deploy_run_undeploy() {
    let api = ExecutionApi::new();
    register_with_hpcwaas(&api, tmp("journey"));

    // Deploy.
    let dep = api.deploy("climate-extremes").unwrap();
    let cold_cost = api.deployment_cost_ms(dep).unwrap();
    assert!(cold_cost > 0);

    // Run with overrides, exactly like the paper's configurable invocation.
    let mut inputs = BTreeMap::new();
    inputs.insert("years".into(), "1".into());
    inputs.insert("days_per_year".into(), "10".into());
    inputs.insert("seed".into(), "11".into());
    let handle = api.submit(dep, &inputs).unwrap();
    let ExecutionStatus::Completed { result } = handle.wait() else {
        panic!("workflow should complete");
    };
    assert!(result.contains("year 2030"));
    assert!(result.contains("task graph: 18 tasks"));

    // A second deployment shares the image layer cache (C5's effect
    // observed through the public API).
    let dep2 = api.deploy("climate-extremes").unwrap();
    assert!(api.deployment_cost_ms(dep2).unwrap() < cold_cost);

    // Undeploy both; further runs must be rejected.
    api.undeploy(dep).unwrap();
    api.undeploy(dep2).unwrap();
    assert!(api.submit(dep, &inputs).is_err());
}
