//! D1 / Section 5.2: the data characteristics the paper states, verified
//! analytically at full resolution and empirically at scaled resolution.

use esm::{CoupledModel, EsmConfig};
use gridded::Grid;

#[test]
fn paper_resolution_file_arithmetic() {
    // "daily NetCDF files of size 271 MB with dimensions of 768 (latitudes)
    //  x 1152 (longitudes) x 4 (6-hourly timesteps) including around 20
    //  single precision floating point variables"
    let mb = esm::output::paper_daily_mb();
    assert!((268.0..274.0).contains(&mb), "daily file {mb:.1} MB, paper says 271 MB");

    // "the files for a whole year ... (i.e., nearly 100 GB)"
    let gb = esm::output::paper_yearly_gb();
    assert!((90.0..101.0).contains(&gb), "yearly volume {gb:.1} GB, paper says ~100 GB");

    // 30-35 year projections (Section 5.2) at this rate.
    let projection_tb = gb * 33.0 / 1024.0;
    assert!((2.8..3.4).contains(&projection_tb), "33-year projection {projection_tb:.2} TB");
}

#[test]
fn file_size_scales_linearly_with_grid() {
    // Write actual files at two scaled resolutions and verify the payload
    // tracks the analytic prediction, which is what justifies trusting the
    // full-resolution arithmetic above.
    let dir = std::env::temp_dir().join("root-scale");
    std::fs::remove_dir_all(&dir).ok();

    let mut sizes = Vec::new();
    for (nlat, nlon) in [(24, 36), (48, 72)] {
        let sub = dir.join(format!("{nlat}x{nlon}"));
        std::fs::create_dir_all(&sub).unwrap();
        let cfg = EsmConfig::test_small().with_grid(Grid::global(nlat, nlon)).with_days_per_year(2);
        let mut model = CoupledModel::new(cfg);
        let fields = model.step_day();
        let path = esm::output::write_daily(&sub, &fields).unwrap();
        let actual = std::fs::metadata(&path).unwrap().len();
        let predicted = esm::output::daily_payload_bytes(nlat, nlon, 4, 20);
        assert!(
            actual as f64 >= predicted as f64 && (actual as f64) < predicted as f64 * 1.05,
            "{nlat}x{nlon}: actual {actual} vs predicted {predicted}"
        );
        sizes.push(actual);
    }
    // Quadrupling the cell count quadruples the payload (within header slack).
    let ratio = sizes[1] as f64 / sizes[0] as f64;
    assert!((3.8..4.2).contains(&ratio), "size ratio {ratio}, expected ~4");
}

#[test]
fn a_year_of_files_is_complete_and_ordered() {
    let dir = std::env::temp_dir().join("root-scale-year");
    std::fs::remove_dir_all(&dir).ok();
    let cfg = EsmConfig::test_small().with_days_per_year(12);
    let mut sim = esm::Simulation::new(cfg, &dir).unwrap();
    let summary = sim.run_years(1, |_, _, _| {}).unwrap();
    assert_eq!(summary.files_written, 12);

    let mut names: Vec<String> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .collect();
    names.sort();
    assert_eq!(names.len(), 12);
    assert_eq!(names[0], "esm-2030-001.ncx");
    assert_eq!(names[11], "esm-2030-012.ncx");
    // Every file parses and has the full variable complement.
    for n in &names {
        let rd = ncformat::Reader::open(dir.join(n)).unwrap();
        assert_eq!(rd.variables().len(), 23); // 20 physics + 3 coordinates
    }
}
