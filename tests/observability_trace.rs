//! Cross-crate observability: one subscription on the global bus watches
//! a whole pipelined run — dataflow task lifecycle, ESM steps and files,
//! datacube kernels — and the resulting Chrome trace agrees with the
//! run's own report.

use climate_workflows::{run_pipelined, WorkflowParams};
use obs::{EventKind, TaskOutcome};
use std::path::PathBuf;

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("obs-trace-e2e").join(name);
    std::fs::remove_dir_all(&dir).ok();
    dir
}

#[test]
fn pipelined_run_trace_agrees_with_report() {
    let days = 8usize;
    let params = WorkflowParams::builder(tmp("agree"))
        .years(1)
        .days_per_year(days)
        .training(60, 3)
        .finetuning(0, 0)
        .build()
        .unwrap();

    let rx = obs::global().subscribe_with_capacity(1 << 20);
    let report = run_pipelined(params).unwrap();
    let events = rx.drain();
    assert_eq!(rx.dropped(), 0, "capacity should cover a test-scale run");
    assert!(!events.is_empty());

    // Sequence numbers are strictly increasing: one interleaved stream.
    for w in events.windows(2) {
        assert!(w[0].seq < w[1].seq, "events out of order: {} then {}", w[0].seq, w[1].seq);
    }

    // Dataflow lifecycle counts match the report's task graph.
    let submitted =
        events.iter().filter(|e| matches!(e.kind, EventKind::TaskSubmitted { .. })).count();
    let completed = events
        .iter()
        .filter(|e| {
            matches!(e.kind, EventKind::TaskFinished { outcome: TaskOutcome::Completed, .. })
        })
        .count();
    assert_eq!(submitted, report.tasks, "every graph task is announced on the bus");
    assert_eq!(completed, report.tasks, "every graph task completes exactly once");
    assert!(!events.iter().any(|e| {
        matches!(
            e.kind,
            EventKind::TaskFinished { outcome: TaskOutcome::Failed | TaskOutcome::Cancelled, .. }
        )
    }));

    // ESM telemetry: one step and one file per simulated day.
    let steps = events.iter().filter(|e| matches!(e.kind, EventKind::StepCompleted { .. })).count();
    let files = events
        .iter()
        .filter_map(|e| match &e.kind {
            EventKind::FileWritten { bytes, .. } => Some(*bytes),
            _ => None,
        })
        .collect::<Vec<_>>();
    assert_eq!(steps, days);
    assert_eq!(files.len(), days);
    assert!(files.iter().all(|&b| b > 0));

    // Datacube kernels ran under at least the thermal-index operators.
    let kernel_rows: usize = events
        .iter()
        .filter_map(|e| match e.kind {
            EventKind::KernelDone { rows, .. } => Some(rows),
            _ => None,
        })
        .sum();
    assert!(kernel_rows > 0, "index computation should run cube kernels");

    // The Chrome trace renders, is structurally sound, and carries one
    // complete slice per finished task.
    let trace = obs::chrome_trace(&events);
    assert!(trace.starts_with("{\"traceEvents\":["));
    assert!(trace.trim_end().ends_with("]}"));
    let (mut depth, mut in_str, mut esc) = (0i64, false, false);
    for c in trace.chars() {
        if esc {
            esc = false;
            continue;
        }
        match c {
            '\\' if in_str => esc = true,
            '"' => in_str = !in_str,
            '{' | '[' if !in_str => depth += 1,
            '}' | ']' if !in_str => depth -= 1,
            _ => {}
        }
        assert!(depth >= 0);
    }
    assert_eq!(depth, 0, "trace JSON is balanced");
    assert!(!in_str);
    let task_slices = trace.matches("task_finished").count();
    assert_eq!(task_slices, report.tasks);

    // Metrics registry saw the same run: the Prometheus dump mentions the
    // instruments the hot paths update.
    let prom = obs::registry().render_prometheus();
    for name in ["dataflow_tasks_total", "esm_files_written_total", "datacube_kernel_us"] {
        assert!(prom.contains(name), "{name} missing from metrics dump");
    }
}
