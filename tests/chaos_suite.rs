//! Chaos suite: the full workflow and workflow-shaped task graphs run
//! under seeded fault plans ([`dataflow::inject::FaultPlan`]) and must
//! come out the other side with every task in a terminal state, the
//! status fold quiescent, and — when a run is killed outright — a
//! checkpoint resume that reproduces the unfailed run byte for byte.
//!
//! Every test holds `SUITE_LOCK` for its whole body: chaos hooks are
//! process-wide, so an armed plan from one test must never bleed into
//! another test's (deliberately fault-free) resume or reference run.

use climate_workflows::{run_pipelined, WorkflowParams};
use dataflow::inject::{self, Fault, FaultPlan};
use dataflow::monitor::StatusFold;
use dataflow::prelude::*;
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

static SUITE_LOCK: Mutex<()> = Mutex::new(());

fn suite_lock() -> MutexGuard<'static, ()> {
    SUITE_LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("chaos-suite").join(name);
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Faults a dataflow-graph chaos run may draw: everything the task site
/// honors, with a short stall so tests stay fast.
const TASK_FAULTS: &[Fault] =
    &[Fault::Panic, Fault::Error, Fault::Poison, Fault::Stall { millis: 5 }];

/// Runs a year-shaped task graph (chained simulation, staging fan-out,
/// index fan-in, gated export) under the seeded plan and asserts the
/// run terminates with every task terminal and the status fold drained.
fn run_graph_under_chaos(seed: u64) {
    let _suite = suite_lock();
    let plan = FaultPlan::for_sites(seed, 4, &[(inject::SITE_TASK, TASK_FAULTS)]);
    let armed = plan.arm();

    let rt: Runtime<Bytes> = Runtime::new(RuntimeConfig::with_cpu_workers(3).with_seed(seed));
    let rx = rt.subscribe();
    let retry = FailurePolicy::RetryBackoff { max_retries: 3, base_ms: 1, cap_ms: 8 };
    let leaf = |v: u64| move |_: &[Arc<Bytes>]| Ok(vec![Bytes::from_u64(v)]);
    let sum = |inp: &[Arc<Bytes>]| {
        Ok(vec![Bytes::from_u64(1 + inp.iter().filter_map(|b| b.as_u64()).sum::<u64>())])
    };

    let esm0 = rt.task("esm").writes(&["y0"]).on_failure(retry).run(leaf(1)).unwrap();
    let esm1 = rt
        .task("esm")
        .reads(&[esm0.outputs[0].clone()])
        .writes(&["y1"])
        .on_failure(retry)
        .run(sum)
        .unwrap();
    let stage = rt
        .task("stage")
        .reads(&[esm1.outputs[0].clone()])
        .writes(&["staged"])
        .on_failure(retry)
        .run(sum)
        .unwrap();
    let indices: Vec<TaskHandle> = (0..4)
        .map(|i| {
            rt.task("index")
                .reads(&[stage.outputs[0].clone()])
                .writes(&[format!("idx{i}").as_str()])
                .on_failure(retry)
                .run(sum)
                .unwrap()
        })
        .collect();
    let idx_refs: Vec<DataRef> = indices.iter().map(|h| h.outputs[0].clone()).collect();
    let validate = rt
        .task("validate")
        .reads(&idx_refs)
        .writes(&["valid"])
        .on_failure(FailurePolicy::IgnoreCancelSuccessors)
        .run(sum)
        .unwrap();
    let mut export_reads = idx_refs.clone();
    export_reads.push(validate.outputs[0].clone());
    rt.task("export").reads(&export_reads).writes(&["out"]).on_failure(retry).run(sum).unwrap();
    rt.task("maps")
        .reads(&[idx_refs[0].clone(), idx_refs[1].clone()])
        .writes(&["maps"])
        .on_failure(retry)
        .run(sum)
        .unwrap();

    // Either outcome is legal under chaos (retries may be exhausted); a
    // hang here IS the deadlock the suite exists to catch.
    let _ = rt.barrier();

    assert!(armed.consultations(inject::SITE_TASK) > 0, "task site never consulted");
    let mut fold = StatusFold::new();
    for ev in rx.drain() {
        fold.apply_event(&ev);
    }
    let snap = fold.snapshot();
    assert!(snap.is_quiescent(), "seed {seed}: fold not drained: {}", snap.render());
    assert_eq!(snap.total(), 10, "seed {seed}: lost tasks: {}", snap.render());
    assert_eq!(
        snap.completed + snap.failed + snap.cancelled + snap.timed_out,
        10,
        "seed {seed}: non-terminal tasks: {}",
        snap.render()
    );
    rt.shutdown();
}

macro_rules! chaos_graph_tests {
    ($($name:ident: $seed:expr,)*) => {
        $(
            #[test]
            fn $name() {
                run_graph_under_chaos($seed);
            }
        )*
    };
}

chaos_graph_tests! {
    chaos_graph_seed_201: 201,
    chaos_graph_seed_202: 202,
    chaos_graph_seed_203: 203,
    chaos_graph_seed_204: 204,
    chaos_graph_seed_205: 205,
    chaos_graph_seed_206: 206,
    chaos_graph_seed_207: 207,
    chaos_graph_seed_208: 208,
    chaos_graph_seed_209: 209,
    chaos_graph_seed_210: 210,
    chaos_graph_seed_211: 211,
    chaos_graph_seed_212: 212,
    chaos_graph_seed_213: 213,
    chaos_graph_seed_214: 214,
}

/// Tiny checkpointed workflow parameters for a chaos run.
fn chaos_params(dir: &std::path::Path, seed: u64, years: usize) -> WorkflowParams {
    WorkflowParams::builder(dir)
        .years(years)
        .days_per_year(4)
        .seed(seed)
        .workers(2)
        .training(30, 2)
        .finetuning(0, 0)
        .checkpoint(dir.join("wf.ckpt"))
        .retries(2, 2)
        .build()
        .unwrap()
}

/// Runs the full climate workflow under a seeded plan (task, pool and
/// ESM-year sites). If the armed run dies, resumes disarmed from the
/// checkpoint; the final report must cover every year cleanly.
fn run_workflow_under_chaos(seed: u64) {
    let _suite = suite_lock();
    let dir = tmp(&format!("wf-{seed}"));
    let plan = FaultPlan::for_sites(
        seed,
        3,
        &[
            (inject::SITE_TASK, TASK_FAULTS),
            (inject::SITE_POOL, &[Fault::Stall { millis: 5 }]),
            (inject::SITE_ESM, &[Fault::Stall { millis: 5 }, Fault::Error]),
        ],
    );
    let first = {
        let _armed = plan.arm();
        run_pipelined(chaos_params(&dir, seed, 1))
    };
    let report = match first {
        Ok(r) if r.years.iter().all(|y| !y.failed) => r,
        _ => run_pipelined(chaos_params(&dir, seed, 1)).expect("disarmed resume must succeed"),
    };
    assert_eq!(report.years.len(), 1, "seed {seed}");
    assert!(report.years.iter().all(|y| !y.failed && y.validated), "seed {seed}");
    assert_eq!(report.metrics.failed, 0, "seed {seed}: {:?}", report.metrics);
}

macro_rules! chaos_workflow_tests {
    ($($name:ident: $seed:expr,)*) => {
        $(
            #[test]
            fn $name() {
                run_workflow_under_chaos($seed);
            }
        )*
    };
}

chaos_workflow_tests! {
    chaos_workflow_seed_11: 11,
    chaos_workflow_seed_12: 12,
    chaos_workflow_seed_13: 13,
    chaos_workflow_seed_14: 14,
}

/// Acceptance: a workflow killed mid-run (injected ESM failure in year
/// 2 with no retries) resumes from its checkpoint to final products
/// byte-identical to an unfailed run, with `ResumedFrom` in the trace.
#[test]
fn chaos_kill_mid_run_resume_is_byte_identical() {
    let _suite = suite_lock();
    let seed = 7u64;

    // Reference: unfailed 2-year run.
    let clean_dir = tmp("kill-clean");
    let mut clean_params = chaos_params(&clean_dir, seed, 2);
    clean_params.task_retries = 0;
    run_pipelined(clean_params).expect("clean run");

    // Victim: same parameters, killed at the second simulated year.
    let dir = tmp("kill-victim");
    let mut params = chaos_params(&dir, seed, 2);
    params.task_retries = 0;
    {
        // Year 1 must complete (so the checkpoint is worth resuming), so
        // the fault targets the SECOND consult of the ESM-year site.
        let consults = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let c2 = Arc::clone(&consults);
        let _armed = obs::chaos::install(Arc::new(move |site: &str| {
            (site == inject::SITE_ESM && c2.fetch_add(1, Ordering::SeqCst) == 1)
                .then_some((Fault::Error, 1))
        }));
        let err = run_pipelined(params).expect_err("year-2 fault must kill the run");
        assert!(err.to_string().contains("chaos"), "unexpected failure: {err}");
    }

    // Resume: disarmed, same checkpoint; watch the trace for ResumedFrom.
    let rx = obs::global().subscribe_with_capacity(1 << 18);
    let mut params = chaos_params(&dir, seed, 2);
    params.task_retries = 0;
    run_pipelined(params).expect("resume run");
    let events = rx.drain();
    let resumed =
        events.iter().filter(|e| matches!(&e.kind, obs::EventKind::ResumedFrom { .. })).count();
    assert!(resumed > 0, "no ResumedFrom events in the resume trace");

    // Every final product must be byte-identical to the unfailed run.
    let list = |d: &std::path::Path| -> Vec<String> {
        let mut v: Vec<String> = std::fs::read_dir(d)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        v.sort();
        v
    };
    for sub in ["products", "esm-out"] {
        let a = clean_dir.join(sub);
        let b = dir.join(sub);
        assert_eq!(list(&a), list(&b), "{sub} listings differ");
        for name in list(&a) {
            let x = std::fs::read(a.join(&name)).unwrap();
            let y = std::fs::read(b.join(&name)).unwrap();
            assert_eq!(x, y, "{sub}/{name} differs after resume");
        }
    }
}

/// Recovery-overhead measurement backing the EXPERIMENTS.md entry; run
/// with `cargo test --test chaos_suite chaos_recovery_overhead --
/// --ignored --nocapture`.
#[test]
#[ignore = "measurement, not a check; see EXPERIMENTS.md"]
fn chaos_recovery_overhead_measurement() {
    let _suite = suite_lock();
    let seed = 7u64;
    let time = |label: &str, f: &mut dyn FnMut()| {
        let t0 = std::time::Instant::now();
        f();
        let dt = t0.elapsed();
        println!("{label}: {:.2}s", dt.as_secs_f64());
        dt
    };

    let clean_dir = tmp("overhead-clean");
    let mut p = chaos_params(&clean_dir, seed, 2);
    p.task_retries = 0;
    let clean = time("clean 2-year run", &mut || {
        run_pipelined(p.clone()).expect("clean");
    });

    let dir = tmp("overhead-victim");
    let mut p = chaos_params(&dir, seed, 2);
    p.task_retries = 0;
    let consults = Arc::new(std::sync::atomic::AtomicU64::new(0));
    let c2 = Arc::clone(&consults);
    let armed = obs::chaos::install(Arc::new(move |site: &str| {
        (site == inject::SITE_ESM && c2.fetch_add(1, Ordering::SeqCst) == 1)
            .then_some((Fault::Error, 1))
    }));
    let p2 = p.clone();
    let killed = time("killed run (dies at year 2)", &mut || {
        run_pipelined(p2.clone()).expect_err("must die");
    });
    drop(armed);
    let resume = time("resume from checkpoint", &mut || {
        run_pipelined(p.clone()).expect("resume");
    });
    println!(
        "recovery total = {:.2}s vs clean {:.2}s (overhead {:+.0}%)",
        (killed + resume).as_secs_f64(),
        clean.as_secs_f64(),
        ((killed + resume).as_secs_f64() / clean.as_secs_f64() - 1.0) * 100.0
    );
}

/// A random DAG: task i reads a subset of tasks 0..i.
#[derive(Debug, Clone)]
struct DagSpec {
    reads: Vec<Vec<usize>>,
}

fn dag_strategy(max_tasks: usize) -> impl Strategy<Value = DagSpec> {
    (3..max_tasks)
        .prop_flat_map(|n| {
            let masks: Vec<_> =
                (0..n).map(|i| proptest::collection::vec(any::<bool>(), i)).collect();
            masks.prop_map(|masks| DagSpec {
                reads: masks
                    .into_iter()
                    .map(|m| m.iter().enumerate().filter(|(_, &t)| t).map(|(j, _)| j).collect())
                    .collect(),
            })
        })
        .prop_filter("at least one edge", |d| d.reads.iter().any(|r| !r.is_empty()))
}

/// Submits the DAG; `kill` makes that task fail (fail-fast) on its first
/// run. Returns each task's value plus the provenance invariants (name,
/// inputs, outputs, final state — not timings or worker placement).
fn run_dag(
    spec: &DagSpec,
    ckpt: Option<&std::path::Path>,
    kill: Option<usize>,
) -> (Result<Vec<u64>, ()>, Vec<String>) {
    let mut config = RuntimeConfig::with_cpu_workers(2);
    if let Some(p) = ckpt {
        config = config.with_checkpoint(p);
    }
    let rt: Runtime<Bytes> = Runtime::new(config);
    let mut outputs: Vec<DataRef> = Vec::new();
    for (i, reads) in spec.reads.iter().enumerate() {
        let read_refs: Vec<DataRef> = reads.iter().map(|&j| outputs[j].clone()).collect();
        let die = kill == Some(i);
        let h = rt
            .task("node")
            .key(&format!("k{i}"))
            .reads(&read_refs)
            .writes(&[format!("v{i}").as_str()])
            .run(move |inp: &[Arc<Bytes>]| {
                if die {
                    return Err("killed here".into());
                }
                let v = 1 + inp.iter().map(|b| b.as_u64().unwrap()).sum::<u64>();
                Ok(vec![Bytes::from_u64(v)])
            })
            .unwrap();
        outputs.push(h.outputs[0].clone());
    }
    let result = match rt.barrier() {
        Ok(()) => {
            Ok(outputs.iter().map(|o| rt.fetch(o).unwrap().as_u64().unwrap()).collect::<Vec<u64>>())
        }
        Err(_) => Err(()),
    };
    let mut prov: Vec<(u64, String)> = rt
        .provenance()
        .records()
        .iter()
        .map(|r| {
            (
                r.task.0,
                format!(
                    "{} used={:?} gen={:?} state={:?}",
                    r.name, r.used, r.generated, r.final_state
                ),
            )
        })
        .collect();
    prov.sort();
    rt.shutdown();
    (result, prov.into_iter().map(|(_, s)| s).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Satellite #2: for random graphs and random kill points, a killed
    /// run resumed from its checkpoint yields the same outputs and the
    /// same provenance invariants as a run that never failed.
    #[test]
    fn chaos_checkpoint_resume_equivalence(
        spec in dag_strategy(12),
        kill_pick in any::<u64>(),
    ) {
        let _suite = suite_lock();
        let n = spec.reads.len();
        let kill = (kill_pick % n as u64) as usize;
        let dir = tmp(&format!("equiv-{n}-{kill}"));

        // Unfailed reference.
        let (clean, clean_prov) = run_dag(&spec, Some(&dir.join("clean.ckpt")), None);
        let clean = clean.expect("clean run");

        // Killed run: same checkpoint file, task `kill` dies (fail-fast).
        let ckpt = dir.join("resume.ckpt");
        let (killed, _) = run_dag(&spec, Some(&ckpt), Some(kill));
        prop_assert!(killed.is_err(), "kill at {kill} did not fail the run");

        // Resume from the frontier the killed run left behind.
        let (resumed, resumed_prov) = run_dag(&spec, Some(&ckpt), None);
        let resumed = resumed.expect("resumed run");
        prop_assert_eq!(&resumed, &clean, "outputs diverge after resume");
        prop_assert_eq!(&resumed_prov, &clean_prov, "provenance diverges after resume");
    }
}

/// One armed [`dataflow::inject`] seed through a *fused* datacube
/// pipeline: the armed run dies mid-graph, and the disarmed resume from
/// the same checkpoint must deliver the export task fused-kernel output
/// byte-identical to a never-faulted reference run — f32 bit patterns
/// (including a NaN payload that rides through the whole chain) and all.
/// The fused kernel's bitwise determinism contract is what makes this
/// byte-identity hold across a kill/resume boundary.
#[test]
fn chaos_fused_pipeline_resume_is_byte_identical() {
    let _suite = suite_lock();

    /// Runs a subset → intercube → apply → reduce chain as ONE fused
    /// kernel and serializes the result's exact bit patterns.
    fn fused_index_bytes(seed: u64) -> Vec<u8> {
        use datacube::exec::ExecConfig;
        use datacube::expr::Expr;
        use datacube::fuse::Pipeline;
        use datacube::model::{Cube, Dimension};
        use datacube::ops::{InterOp, ReduceOp};

        let (rows, nt) = (24usize, 45usize); // 45: ragged 8-lane tail
        let dims = vec![
            Dimension::explicit("cell", (0..rows).map(|i| i as f64).collect::<Vec<_>>()),
            Dimension::implicit("time", (0..nt).map(|i| i as f64).collect::<Vec<_>>()),
        ];
        let mut data: Vec<f32> = (0..rows * nt)
            .map(|i| ((i as u64).wrapping_mul(seed | 1) % 600) as f32 / 10.0 - 30.0)
            .collect();
        data[7 * nt + 3] = f32::from_bits(0x7fc0_1234); // NaN payload cell
        let src = Cube::from_dense("t", dims, data, 5, 3).unwrap();
        let bdims =
            vec![Dimension::explicit("cell", (0..rows).map(|i| i as f64).collect::<Vec<_>>())];
        let baseline =
            Cube::from_dense("b", bdims, (0..rows).map(|i| i as f32 / 4.0).collect(), 3, 2)
                .unwrap();
        let out = Pipeline::new()
            .subset_implicit("time", 2, 43)
            .intercube(&baseline, InterOp::Sub)
            .apply(Expr::parse("x * 2 + 1").unwrap())
            .reduce(ReduceOp::Sum, "time")
            .run(&src, ExecConfig::with_servers(3))
            .expect("fused chain");
        out.cube.to_dense().iter().flat_map(|v| v.to_bits().to_le_bytes()).collect()
    }

    /// ingest → fused-index → export, checkpointed and keyed so a resume
    /// replays only the missing frontier.
    fn run_graph(ckpt: &std::path::Path) -> Result<Vec<u8>, ()> {
        let rt: Runtime<Bytes> =
            Runtime::new(RuntimeConfig::with_cpu_workers(1).with_checkpoint(ckpt));
        let ingest = rt
            .task("ingest")
            .key("ingest")
            .writes(&["seed"])
            .run(|_: &[Arc<Bytes>]| Ok(vec![Bytes::from_u64(42)]))
            .unwrap();
        let fused = rt
            .task("fused-index")
            .key("fused-index")
            .reads(&[ingest.outputs[0].clone()])
            .writes(&["index"])
            .run(|inp: &[Arc<Bytes>]| Ok(vec![Bytes(fused_index_bytes(inp[0].as_u64().unwrap()))]))
            .unwrap();
        let export = rt
            .task("export")
            .key("export")
            .reads(&[fused.outputs[0].clone()])
            .writes(&["out"])
            .run(|inp: &[Arc<Bytes>]| Ok(vec![Bytes(inp[0].0.clone())]))
            .unwrap();
        let res = match rt.barrier() {
            Ok(()) => Ok(rt.fetch(&export.outputs[0]).unwrap().0.clone()),
            Err(_) => Err(()),
        };
        rt.shutdown();
        res
    }

    let dir = tmp("fused-chaos");
    let clean = run_graph(&dir.join("clean.ckpt")).expect("clean run");
    assert!(!clean.is_empty());

    // Armed run: a seeded task-site fault plan kills the graph fail-fast.
    let ckpt = dir.join("victim.ckpt");
    let killed = {
        let plan = FaultPlan::for_sites(909, 2, &[(inject::SITE_TASK, &[Fault::Error])]);
        let _armed = plan.arm();
        run_graph(&ckpt)
    };
    assert!(killed.is_err(), "armed seed 909 must kill the fused graph");

    // Disarmed resume from the same checkpoint.
    let resumed = run_graph(&ckpt).expect("disarmed resume must succeed");
    assert_eq!(resumed, clean, "fused output bytes diverge after checkpoint resume");
}
