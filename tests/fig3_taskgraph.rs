//! FIG3: the runtime-produced task graph must reproduce the structure the
//! paper shows — one node per task invocation, one color per function,
//! per-year repetition of the analysis sub-graph while the ESM chain and
//! the one-off loads appear once.

use climate_workflows::{run_pipelined, WorkflowParams};

fn tmp(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("root-fig3").join(name);
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn small_params(name: &str, years: usize) -> WorkflowParams {
    WorkflowParams::builder(tmp(name))
        .years(years)
        .days_per_year(8)
        .training(80, 4)
        .finetuning(5, 4)
        .build()
        .unwrap()
}

#[test]
fn one_year_graph_matches_paper_structure() {
    let report = run_pipelined(small_params("one-year", 1)).unwrap();
    // 18 distinct task functions, each submitted once for a single year.
    assert_eq!(report.function_counts.len(), 18);
    for (name, count) in &report.function_counts {
        assert_eq!(*count, 1, "function {name} should appear once for one year");
    }
    assert_eq!(report.tasks, 18);
    // The paper's figure is "quite complex" even for one year: the six
    // index tasks all fan into validation, which fans into export.
    assert!(report.edges >= 25, "expected a dense graph, got {} edges", report.edges);
    // Critical path: esm -> stage -> import -> index -> validate -> export.
    assert!((5..=8).contains(&report.critical_path), "critical path {}", report.critical_path);
}

#[test]
fn multi_year_graph_repeats_analysis_but_not_loads() {
    let years = 3;
    let report = run_pipelined(small_params("multi-year", years)).unwrap();
    let count = |n: &str| *report.function_counts.get(n).unwrap_or(&0);
    // The paper: "in case of multiple years, the number of tasks would be
    // repeated with the exception of the first ones related to ESM run and
    // preliminary data loading".
    assert_eq!(count("load_baseline"), 1, "baseline loaded once");
    assert_eq!(count("load_model"), 1, "model loaded once");
    assert_eq!(count("esm_simulation"), years, "one ESM task per year, chained");
    for per_year in [
        "stage_year",
        "import_tmax",
        "import_tmin",
        "hw_duration_max",
        "hw_number",
        "hw_frequency",
        "cw_duration_max",
        "cw_number",
        "cw_frequency",
        "validate_indices",
        "export_indices",
        "tc_preprocess",
        "tc_cnn_localize",
        "tc_track_deterministic",
        "render_maps",
    ] {
        assert_eq!(count(per_year), years, "{per_year} should repeat per year");
    }
    assert_eq!(report.tasks, 2 + years * 16);
}

#[test]
fn dot_rendering_is_wellformed_and_colored_per_function() {
    let report = run_pipelined(small_params("dot", 1)).unwrap();
    let dot = std::fs::read_to_string(&report.dot_path).unwrap();
    assert!(dot.starts_with("digraph workflow {"));
    assert!(dot.trim_end().ends_with('}'));
    // One node line per task, with a fill color and a tooltip naming the
    // function (the legend of Figure 3).
    let nodes = dot.lines().filter(|l| l.contains("label=\"#")).count();
    assert_eq!(nodes, report.tasks);
    let edges = dot.lines().filter(|l| l.contains("->")).count();
    assert_eq!(edges, report.edges);
    for func in ["esm_simulation", "hw_number", "tc_cnn_localize"] {
        assert!(dot.contains(&format!("tooltip=\"{func}\"")), "missing {func} in DOT");
    }
}
