//! Workflow-level fault isolation: a corrupt year of model output must
//! fail *that year's* analysis subtree and nothing else — the paper's
//! per-task failure management ("ignore the failure of the task and
//! continue") applied to a multi-year campaign.

use climate_workflows::{run_pipelined, WorkflowParams};

fn tmp(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("root-fault-iso").join(name);
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn params(name: &str) -> WorkflowParams {
    WorkflowParams::builder(tmp(name))
        .years(2)
        .days_per_year(8)
        .training(60, 3)
        .finetuning(0, 0)
        .build()
        .unwrap()
}

#[test]
fn corrupt_year_fails_alone_campaign_survives() {
    let mut p = params("corrupt-y0");
    p.corrupt_file = Some((0, 2)); // trash day 3 of the first year
    let report = run_pipelined(p).unwrap();

    assert_eq!(report.years.len(), 2);
    let y0 = report.years.iter().find(|y| y.year == 2030).unwrap();
    let y1 = report.years.iter().find(|y| y.year == 2031).unwrap();

    assert!(y0.failed, "corrupt year must be reported failed");
    assert!(!y0.validated);
    assert!(y0.export_paths.is_empty());

    assert!(!y1.failed, "healthy year must complete");
    assert!(y1.validated);
    assert_eq!(y1.export_paths.len(), 6);
    for path in &y1.export_paths {
        assert!(path.exists());
    }

    // Failure management did its job: some tasks failed/cancelled, none
    // aborted the workflow.
    assert!(report.metrics.failed >= 1, "import tasks should have failed");
    assert!(report.metrics.cancelled >= 5, "the year's subtree should be cancelled");
    assert!(report.render().contains("ANALYSIS FAILED"));
}

#[test]
fn clean_run_reports_no_failed_years() {
    let report = run_pipelined(params("clean")).unwrap();
    assert!(report.years.iter().all(|y| !y.failed && y.validated));
    assert_eq!(report.metrics.failed, 0);
    assert_eq!(report.metrics.cancelled, 0);
}
