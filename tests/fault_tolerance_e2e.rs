//! C6: fault tolerance and checkpoint recovery exercised with the
//! workflow's own payload type over workflow-shaped graphs.

use climate_workflows::WfData;
use dataflow::prelude::*;
use dataflow::Error;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("root-ft").join(name);
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A year-shaped fragment: esm -> stage -> {index_a, index_b} -> export,
/// with the chosen task failing `fail_times` times before succeeding.
fn run_year_graph(
    ckpt: Option<PathBuf>,
    flaky_task: &str,
    fail_times: u32,
    executions: Arc<AtomicU32>,
) -> Result<String, Error> {
    let mut config = RuntimeConfig::with_cpu_workers(2);
    if let Some(p) = ckpt {
        config = config.with_checkpoint(p);
    }
    let rt: Runtime<WfData> = Runtime::new(config);

    let flaky = |name: &str| -> FailurePolicy {
        if name == flaky_task {
            FailurePolicy::Retry { max_retries: fail_times + 1 }
        } else {
            FailurePolicy::FailFast
        }
    };
    let attempts = Arc::new(AtomicU32::new(0));

    let make = |rt: &Runtime<WfData>,
                name: &'static str,
                key: String,
                reads: Vec<DataRef>,
                payload: WfData|
     -> TaskHandle {
        let execs = Arc::clone(&executions);
        let attempts = Arc::clone(&attempts);
        let is_flaky = name == flaky_task;
        rt.task(name)
            .key(&key)
            .reads(&reads)
            .writes(&[name])
            .on_failure(flaky(name))
            .run(move |_inp| {
                execs.fetch_add(1, Ordering::SeqCst);
                if is_flaky && attempts.fetch_add(1, Ordering::SeqCst) < fail_times {
                    return Err("injected fault".into());
                }
                Ok(vec![payload.clone()])
            })
            .unwrap()
    };

    let esm = make(&rt, "esm", "k-esm".into(), vec![], WfData::Num(2030.0));
    let stage = make(
        &rt,
        "stage",
        "k-stage".into(),
        vec![esm.outputs[0].clone()],
        WfData::Paths(vec![PathBuf::from("/day1"), PathBuf::from("/day2")]),
    );
    let ia =
        make(&rt, "index_a", "k-ia".into(), vec![stage.outputs[0].clone()], WfData::CubeRef(1));
    let ib =
        make(&rt, "index_b", "k-ib".into(), vec![stage.outputs[0].clone()], WfData::CubeRef(2));
    let export = make(
        &rt,
        "export",
        "k-export".into(),
        vec![ia.outputs[0].clone(), ib.outputs[0].clone()],
        WfData::Text("exported".into()),
    );

    let out = rt.fetch(&export.outputs[0]).map(|v| v.text().unwrap_or("").to_string());
    rt.barrier()?;
    rt.shutdown();
    out
}

#[test]
fn retries_recover_from_transient_faults() {
    let execs = Arc::new(AtomicU32::new(0));
    let out = run_year_graph(None, "index_a", 2, Arc::clone(&execs)).unwrap();
    assert_eq!(out, "exported");
    // 5 tasks + 2 extra attempts of the flaky one.
    assert_eq!(execs.load(Ordering::SeqCst), 7);
}

#[test]
fn checkpoint_resume_skips_finished_workflow_prefix() {
    let dir = tmp("resume");
    let ckpt = dir.join("wf.ckpt");

    // First run: completes fully and checkpoints everything.
    let execs1 = Arc::new(AtomicU32::new(0));
    run_year_graph(Some(ckpt.clone()), "none", 0, Arc::clone(&execs1)).unwrap();
    assert_eq!(execs1.load(Ordering::SeqCst), 5);

    // Re-run: everything replays from the log, nothing executes.
    let execs2 = Arc::new(AtomicU32::new(0));
    let out = run_year_graph(Some(ckpt), "none", 0, Arc::clone(&execs2)).unwrap();
    assert_eq!(out, "exported");
    assert_eq!(execs2.load(Ordering::SeqCst), 0, "all tasks restored from checkpoint");
}

#[test]
fn checkpoint_preserves_workflow_payload_values() {
    let dir = tmp("payloads");
    let ckpt = dir.join("wf.ckpt");

    let rt: Runtime<WfData> =
        Runtime::new(RuntimeConfig::with_cpu_workers(2).with_checkpoint(ckpt.clone()));
    let h = rt
        .task("producer")
        .key("payload-key")
        .writes(&["blob"])
        .run(|_| {
            Ok(vec![WfData::Paths(vec![PathBuf::from("/a/b.ncx"), PathBuf::from("/c d/e.ncx")])])
        })
        .unwrap();
    rt.fetch(&h.outputs[0]).unwrap();
    rt.barrier().unwrap();
    rt.shutdown();

    // Restore in a fresh runtime: the decoded payload must be identical.
    let rt: Runtime<WfData> =
        Runtime::new(RuntimeConfig::with_cpu_workers(2).with_checkpoint(ckpt));
    let h = rt
        .task("producer")
        .key("payload-key")
        .writes(&["blob"])
        .run(|_| panic!("must not execute: checkpointed"))
        .unwrap();
    let v = rt.fetch(&h.outputs[0]).unwrap();
    assert_eq!(v.paths().unwrap(), &[PathBuf::from("/a/b.ncx"), PathBuf::from("/c d/e.ncx")]);
    rt.shutdown();
}

#[test]
fn ignored_failure_cancels_only_its_subtree() {
    let rt: Runtime<WfData> = Runtime::new(RuntimeConfig::with_cpu_workers(2));
    // Year A's import fails with ignore policy; year B proceeds.
    let import_a = rt
        .task("import_a")
        .writes(&["cube_a"])
        .on_failure(FailurePolicy::IgnoreCancelSuccessors)
        .run(|_| Err("corrupt year".into()))
        .unwrap();
    let index_a = rt
        .task("index_a")
        .reads(&[import_a.outputs[0].clone()])
        .writes(&["idx_a"])
        .run(|_| Ok(vec![WfData::Unit]))
        .unwrap();
    let import_b =
        rt.task("import_b").writes(&["cube_b"]).run(|_| Ok(vec![WfData::CubeRef(9)])).unwrap();
    let index_b = rt
        .task("index_b")
        .reads(&[import_b.outputs[0].clone()])
        .writes(&["idx_b"])
        .run(|i| Ok(vec![i[0].as_ref().clone()]))
        .unwrap();

    rt.barrier().unwrap();
    assert_eq!(rt.task_state(index_a.id), Some(TaskState::Cancelled));
    assert_eq!(rt.task_state(index_b.id), Some(TaskState::Completed));
    assert_eq!(rt.fetch(&index_b.outputs[0]).unwrap().cube_id().unwrap().0, 9);
    rt.shutdown();
}
