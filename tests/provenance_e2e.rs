//! End-to-end provenance: the workflow must leave a complete, queryable
//! record of what produced what — the FAIR/reproducibility capability
//! Section 2 of the paper attributes to workflow systems.

use climate_workflows::{CaseStudy, WorkflowParams};

fn tmp(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("root-prov").join(name);
    std::fs::remove_dir_all(&dir).ok();
    dir
}

#[test]
fn workflow_provenance_is_complete_and_linked() {
    let mut params = WorkflowParams::test_scale(tmp("complete"));
    params.years = 1;
    params.days_per_year = 8;
    params.train_samples = 60;
    params.train_epochs = 3;
    params.finetune_days = 0;

    let cs = CaseStudy::new(params).unwrap();
    let report = cs.run().unwrap();

    // Every task appears in the provenance log as a completed activity.
    let prov = cs.rt.provenance();
    assert_eq!(prov.len(), report.tasks, "one record per task");
    assert!(prov.records().iter().all(|r| r.final_state == dataflow::TaskState::Completed));

    // The exported-products datum must trace back to the simulation, the
    // baseline, the imports and the index tasks.
    let exports =
        prov.records().iter().find(|r| r.name == "export_indices").expect("export task recorded");
    let lineage = prov.lineage(&exports.generated[0]);
    let names: Vec<&str> =
        lineage.iter().filter_map(|id| prov.task(*id).map(|r| r.name.as_str())).collect();
    for expected in [
        "export_indices",
        "validate_indices",
        "hw_number",
        "cw_number",
        "import_tmax",
        "import_tmin",
        "stage_year",
        "load_baseline",
    ] {
        assert!(names.contains(&expected), "lineage missing {expected}: {names:?}");
    }

    // The PROV document was exported and holds every relation type.
    let doc = std::fs::read_to_string(&report.prov_path).unwrap();
    assert!(doc.starts_with("document"));
    assert_eq!(doc.matches("activity(").count(), report.tasks);
    assert!(doc.contains("wasGeneratedBy("));
    assert!(doc.contains("used("));

    // Per-task workers and durations were captured for executed tasks.
    let with_worker = prov.records().iter().filter(|r| r.worker.is_some()).count();
    assert!(with_worker >= report.tasks - 1, "executed tasks must record a worker");

    cs.rt.shutdown();
}

#[test]
fn monitoring_reaches_quiescence_with_full_progress() {
    let mut params = WorkflowParams::test_scale(tmp("monitor"));
    params.years = 1;
    params.days_per_year = 6;
    params.train_samples = 60;
    params.train_epochs = 3;
    params.finetune_days = 0;

    let cs = CaseStudy::new(params).unwrap();
    cs.run().unwrap();
    let snap = cs.rt.status();
    assert!(snap.is_quiescent());
    assert_eq!(snap.completed, snap.total());
    assert!((snap.progress() - 1.0).abs() < 1e-12);
    assert!(snap.render().contains("0 failed"));
    cs.rt.shutdown();
}
