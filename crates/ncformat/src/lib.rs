//! # ncformat — a self-describing multidimensional array container
//!
//! The paper's workflow exchanges data between the Earth-System-Model
//! simulation, the datacube analytics engine and the ML pipeline as NetCDF
//! files (one ~271 MB file per simulated day). This crate provides the
//! equivalent substrate for the Rust reproduction: a compact, self-describing
//! binary format ("NCX") holding named dimensions, typed variables laid out
//! row-major over those dimensions, and string/numeric attributes at both
//! file and variable scope.
//!
//! Design goals mirror the subset of NetCDF the workflow relies on:
//!
//! * **Self-description** — a reader needs no side channel to interpret a
//!   file: dimension names/sizes, variable shapes, units and other metadata
//!   all live in the header.
//! * **Streaming writes** — the ESM emits one variable at a time without
//!   buffering the whole file (important at 768×1152×4×20 variables/day).
//! * **Lazy, subsetting reads** — the analytics engine frequently wants a
//!   hyperslab (e.g. one variable, one timestep, a lat/lon window) and must
//!   not pay for the rest of the file.
//!
//! ```
//! use ncformat::{Dataset, Value};
//!
//! let dir = std::env::temp_dir().join("ncformat-doc");
//! std::fs::create_dir_all(&dir).unwrap();
//! let path = dir.join("doc.ncx");
//!
//! let mut ds = Dataset::new();
//! ds.add_dimension("time", 4).unwrap();
//! ds.add_dimension("lat", 3).unwrap();
//! ds.set_attribute("title", Value::from("demo"));
//! ds.add_variable_f32("tas", &["time", "lat"], (0..12).map(|i| i as f32).collect())
//!     .unwrap();
//! ds.write_to_path(&path).unwrap();
//!
//! let rd = ncformat::Reader::open(&path).unwrap();
//! let sub = rd.read_slab_f32("tas", &[1, 0], &[2, 3]).unwrap();
//! assert_eq!(sub, vec![3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
//! ```

pub mod codec;
pub mod error;
pub mod read;
pub mod types;
pub mod write;

pub use error::{Error, Result};
pub use read::{Reader, VarView};
pub use types::{Attribute, DataType, Dimension, Value, Variable};
pub use write::{Dataset, Writer};

/// File magic bytes identifying the NCX container, followed in the file by a
/// format version byte. Bump the version on incompatible layout changes.
pub const MAGIC: &[u8; 4] = b"NCX1";

/// Current on-disk format version.
pub const VERSION: u8 = 1;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn magic_is_four_bytes() {
        assert_eq!(MAGIC.len(), 4);
    }

    #[test]
    fn end_to_end_roundtrip() {
        let dir = std::env::temp_dir().join("ncformat-e2e");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("rt.ncx");

        let mut ds = Dataset::new();
        ds.add_dimension("x", 2).unwrap();
        ds.add_variable_f64("v", &["x"], vec![1.5, -2.5]).unwrap();
        ds.write_to_path(&path).unwrap();

        let rd = Reader::open(&path).unwrap();
        assert_eq!(rd.read_all_f64("v").unwrap(), vec![1.5, -2.5]);
    }
}
