//! Core metadata types: dimensions, variables, attributes and element types.

use crate::error::{Error, Result};

/// Element type of a variable's payload.
///
/// The ESM writes single-precision fields (as CMCC-CM3 does); coordinate
/// variables and derived indices sometimes use wider types, and masks use
/// bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    F32,
    F64,
    I32,
    I64,
    U8,
}

impl DataType {
    /// Size in bytes of one element of this type.
    pub fn size(self) -> usize {
        match self {
            DataType::F32 | DataType::I32 => 4,
            DataType::F64 | DataType::I64 => 8,
            DataType::U8 => 1,
        }
    }

    /// Stable single-byte tag used in the on-disk header.
    pub fn tag(self) -> u8 {
        match self {
            DataType::F32 => 0,
            DataType::F64 => 1,
            DataType::I32 => 2,
            DataType::I64 => 3,
            DataType::U8 => 4,
        }
    }

    /// Inverse of [`DataType::tag`].
    pub fn from_tag(tag: u8) -> Result<Self> {
        Ok(match tag {
            0 => DataType::F32,
            1 => DataType::F64,
            2 => DataType::I32,
            3 => DataType::I64,
            4 => DataType::U8,
            other => return Err(Error::Corrupt(format!("unknown dtype tag {other}"))),
        })
    }

    /// Human-readable name, used in error messages.
    pub fn name(self) -> &'static str {
        match self {
            DataType::F32 => "f32",
            DataType::F64 => "f64",
            DataType::I32 => "i32",
            DataType::I64 => "i64",
            DataType::U8 => "u8",
        }
    }
}

/// A named axis shared by variables (e.g. `lat`, `lon`, `time`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dimension {
    pub name: String,
    pub size: usize,
}

/// Attribute value: a scalar string, number, or numeric list.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Text(String),
    F64(f64),
    I64(i64),
    F64List(Vec<f64>),
}

impl Value {
    /// Returns the text payload if this is a [`Value::Text`].
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s),
            _ => None,
        }
    }

    /// Returns a numeric view of scalar values (`F64` or `I64`).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::F64(v) => Some(*v),
            Value::I64(v) => Some(*v as f64),
            _ => None,
        }
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Text(s.to_string())
    }
}
impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Text(s)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}
impl From<Vec<f64>> for Value {
    fn from(v: Vec<f64>) -> Self {
        Value::F64List(v)
    }
}

/// A named attribute at file or variable scope.
#[derive(Debug, Clone, PartialEq)]
pub struct Attribute {
    pub name: String,
    pub value: Value,
}

/// Metadata describing one variable: its element type, the dimensions it is
/// laid out over (row-major, outermost first), and its attributes.
#[derive(Debug, Clone)]
pub struct Variable {
    pub name: String,
    pub dtype: DataType,
    /// Indices into the dataset's dimension table, outermost axis first.
    pub dims: Vec<usize>,
    pub attributes: Vec<Attribute>,
    /// Byte offset of this variable's payload within the data section.
    pub(crate) data_offset: u64,
}

impl Variable {
    /// Number of elements (product of dimension sizes), given the dataset's
    /// dimension table.
    pub fn len(&self, dims: &[Dimension]) -> usize {
        self.dims.iter().map(|&d| dims[d].size).product()
    }

    /// True when the variable has zero elements.
    pub fn is_empty(&self, dims: &[Dimension]) -> bool {
        self.len(dims) == 0
    }

    /// Shape of the variable as a size-per-axis vector.
    pub fn shape(&self, dims: &[Dimension]) -> Vec<usize> {
        self.dims.iter().map(|&d| dims[d].size).collect()
    }

    /// Looks up an attribute by name.
    pub fn attribute(&self, name: &str) -> Option<&Value> {
        self.attributes.iter().find(|a| a.name == name).map(|a| &a.value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dtype_tags_roundtrip() {
        for dt in [DataType::F32, DataType::F64, DataType::I32, DataType::I64, DataType::U8] {
            assert_eq!(DataType::from_tag(dt.tag()).unwrap(), dt);
        }
        assert!(DataType::from_tag(99).is_err());
    }

    #[test]
    fn dtype_sizes() {
        assert_eq!(DataType::F32.size(), 4);
        assert_eq!(DataType::F64.size(), 8);
        assert_eq!(DataType::U8.size(), 1);
    }

    #[test]
    fn value_conversions() {
        assert_eq!(Value::from("x").as_text(), Some("x"));
        assert_eq!(Value::from(2.5).as_f64(), Some(2.5));
        assert_eq!(Value::from(3i64).as_f64(), Some(3.0));
        assert_eq!(Value::from("x").as_f64(), None);
    }

    #[test]
    fn variable_shape_math() {
        let dims =
            vec![Dimension { name: "t".into(), size: 4 }, Dimension { name: "y".into(), size: 3 }];
        let v = Variable {
            name: "v".into(),
            dtype: DataType::F32,
            dims: vec![0, 1],
            attributes: vec![],
            data_offset: 0,
        };
        assert_eq!(v.len(&dims), 12);
        assert_eq!(v.shape(&dims), vec![4, 3]);
        assert!(!v.is_empty(&dims));
    }
}
