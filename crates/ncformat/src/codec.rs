//! Low-level binary primitives shared by the writer and reader.
//!
//! Everything is little-endian. Strings are length-prefixed UTF-8. The codec
//! is deliberately boring: fixed-width integers and raw element payloads, so
//! hyperslab reads can compute byte offsets arithmetically.

use crate::error::{Error, Result};
use crate::types::{Attribute, Value};
use std::io::{Read, Write};

/// Writes a `u64` little-endian.
pub fn put_u64<W: Write>(w: &mut W, v: u64) -> Result<()> {
    w.write_all(&v.to_le_bytes())?;
    Ok(())
}

/// Writes a `u32` little-endian.
pub fn put_u32<W: Write>(w: &mut W, v: u32) -> Result<()> {
    w.write_all(&v.to_le_bytes())?;
    Ok(())
}

/// Writes a single byte.
pub fn put_u8<W: Write>(w: &mut W, v: u8) -> Result<()> {
    w.write_all(&[v])?;
    Ok(())
}

/// Writes an `f64` little-endian.
pub fn put_f64<W: Write>(w: &mut W, v: f64) -> Result<()> {
    w.write_all(&v.to_le_bytes())?;
    Ok(())
}

/// Writes a length-prefixed UTF-8 string.
pub fn put_str<W: Write>(w: &mut W, s: &str) -> Result<()> {
    put_u32(w, s.len() as u32)?;
    w.write_all(s.as_bytes())?;
    Ok(())
}

/// Reads a `u64` little-endian.
pub fn get_u64<R: Read>(r: &mut R) -> Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

/// Reads a `u32` little-endian.
pub fn get_u32<R: Read>(r: &mut R) -> Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

/// Reads a single byte.
pub fn get_u8<R: Read>(r: &mut R) -> Result<u8> {
    let mut b = [0u8; 1];
    r.read_exact(&mut b)?;
    Ok(b[0])
}

/// Reads an `f64` little-endian.
pub fn get_f64<R: Read>(r: &mut R) -> Result<f64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(f64::from_le_bytes(b))
}

/// Reads a length-prefixed UTF-8 string.
///
/// Lengths are sanity-capped to guard against reading garbage headers as
/// multi-gigabyte allocations.
pub fn get_str<R: Read>(r: &mut R) -> Result<String> {
    let len = get_u32(r)? as usize;
    const MAX_STR: usize = 1 << 20;
    if len > MAX_STR {
        return Err(Error::Corrupt(format!("string length {len} exceeds cap")));
    }
    let mut buf = vec![0u8; len];
    r.read_exact(&mut buf)?;
    String::from_utf8(buf).map_err(|_| Error::Corrupt("non-UTF-8 string".into()))
}

const VAL_TEXT: u8 = 0;
const VAL_F64: u8 = 1;
const VAL_I64: u8 = 2;
const VAL_F64LIST: u8 = 3;

/// Serializes an attribute value.
pub fn put_value<W: Write>(w: &mut W, v: &Value) -> Result<()> {
    match v {
        Value::Text(s) => {
            put_u8(w, VAL_TEXT)?;
            put_str(w, s)
        }
        Value::F64(x) => {
            put_u8(w, VAL_F64)?;
            put_f64(w, *x)
        }
        Value::I64(x) => {
            put_u8(w, VAL_I64)?;
            put_u64(w, *x as u64)
        }
        Value::F64List(xs) => {
            put_u8(w, VAL_F64LIST)?;
            put_u32(w, xs.len() as u32)?;
            for x in xs {
                put_f64(w, *x)?;
            }
            Ok(())
        }
    }
}

/// Deserializes an attribute value.
pub fn get_value<R: Read>(r: &mut R) -> Result<Value> {
    match get_u8(r)? {
        VAL_TEXT => Ok(Value::Text(get_str(r)?)),
        VAL_F64 => Ok(Value::F64(get_f64(r)?)),
        VAL_I64 => Ok(Value::I64(get_u64(r)? as i64)),
        VAL_F64LIST => {
            let n = get_u32(r)? as usize;
            const MAX_LIST: usize = 1 << 24;
            if n > MAX_LIST {
                return Err(Error::Corrupt(format!("attribute list length {n} exceeds cap")));
            }
            let mut xs = Vec::with_capacity(n);
            for _ in 0..n {
                xs.push(get_f64(r)?);
            }
            Ok(Value::F64List(xs))
        }
        other => Err(Error::Corrupt(format!("unknown value tag {other}"))),
    }
}

/// Serializes an attribute list.
pub fn put_attributes<W: Write>(w: &mut W, attrs: &[Attribute]) -> Result<()> {
    put_u32(w, attrs.len() as u32)?;
    for a in attrs {
        put_str(w, &a.name)?;
        put_value(w, &a.value)?;
    }
    Ok(())
}

/// Deserializes an attribute list.
pub fn get_attributes<R: Read>(r: &mut R) -> Result<Vec<Attribute>> {
    let n = get_u32(r)? as usize;
    const MAX_ATTRS: usize = 1 << 16;
    if n > MAX_ATTRS {
        return Err(Error::Corrupt(format!("attribute count {n} exceeds cap")));
    }
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let name = get_str(r)?;
        let value = get_value(r)?;
        out.push(Attribute { name, value });
    }
    Ok(out)
}

/// Reinterprets a slice of `f32` as little-endian bytes for bulk output.
pub fn f32_bytes(data: &[f32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() * 4);
    for v in data {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Reinterprets a slice of `f64` as little-endian bytes for bulk output.
pub fn f64_bytes(data: &[f64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() * 8);
    for v in data {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Decodes little-endian bytes into `f32`s.
pub fn bytes_f32(bytes: &[u8]) -> Vec<f32> {
    bytes.chunks_exact(4).map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]])).collect()
}

/// Decodes little-endian bytes into `f64`s.
pub fn bytes_f64(bytes: &[u8]) -> Vec<f64> {
    bytes
        .chunks_exact(8)
        .map(|c| f64::from_le_bytes([c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7]]))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn scalar_roundtrips() {
        let mut buf = Vec::new();
        put_u64(&mut buf, 0xDEADBEEF).unwrap();
        put_u32(&mut buf, 7).unwrap();
        put_u8(&mut buf, 3).unwrap();
        put_f64(&mut buf, -1.25).unwrap();
        put_str(&mut buf, "héllo").unwrap();

        let mut c = Cursor::new(buf);
        assert_eq!(get_u64(&mut c).unwrap(), 0xDEADBEEF);
        assert_eq!(get_u32(&mut c).unwrap(), 7);
        assert_eq!(get_u8(&mut c).unwrap(), 3);
        assert_eq!(get_f64(&mut c).unwrap(), -1.25);
        assert_eq!(get_str(&mut c).unwrap(), "héllo");
    }

    #[test]
    fn value_roundtrips() {
        for v in [
            Value::Text("units".into()),
            Value::F64(2.5),
            Value::I64(-9),
            Value::F64List(vec![1.0, 2.0, 3.0]),
        ] {
            let mut buf = Vec::new();
            put_value(&mut buf, &v).unwrap();
            let got = get_value(&mut Cursor::new(buf)).unwrap();
            assert_eq!(got, v);
        }
    }

    #[test]
    fn attribute_list_roundtrip() {
        let attrs = vec![
            Attribute { name: "units".into(), value: Value::from("K") },
            Attribute { name: "scale".into(), value: Value::from(0.5) },
        ];
        let mut buf = Vec::new();
        put_attributes(&mut buf, &attrs).unwrap();
        assert_eq!(get_attributes(&mut Cursor::new(buf)).unwrap(), attrs);
    }

    #[test]
    fn float_byte_views_roundtrip() {
        let xs = vec![0.0f32, -1.5, f32::MAX, f32::MIN_POSITIVE];
        assert_eq!(bytes_f32(&f32_bytes(&xs)), xs);
        let ys = vec![0.0f64, 6.02e23, -2.2250738585072014e-308];
        assert_eq!(bytes_f64(&f64_bytes(&ys)), ys);
    }

    #[test]
    fn oversized_string_is_rejected() {
        let mut buf = Vec::new();
        put_u32(&mut buf, u32::MAX).unwrap();
        assert!(get_str(&mut Cursor::new(buf)).is_err());
    }

    #[test]
    fn bad_value_tag_is_rejected() {
        let buf = vec![200u8];
        assert!(get_value(&mut Cursor::new(buf)).is_err());
    }
}
