//! Writing NCX containers.
//!
//! Two entry points:
//!
//! * [`Writer`] — streaming: variable payloads are appended to the file as
//!   they are produced, and the header is written last (the fixed-size
//!   prelude stores a pointer to it). This is what the ESM output path uses,
//!   so a day's ~20 large fields never need to coexist in memory.
//! * [`Dataset`] — an in-memory builder for small files (indices, tests,
//!   examples) that assembles everything and writes in one call.
//!
//! On-disk layout:
//!
//! ```text
//! [magic 4B][version 1B][header_offset u64]  <- prelude (13 bytes)
//! [variable payloads, in append order]
//! [header: global attrs, dims, variables]    <- at header_offset
//! ```

use crate::codec;
use crate::error::{Error, Result};
use crate::types::{Attribute, DataType, Dimension, Value, Variable};
use crate::{MAGIC, VERSION};
use std::fs::File;
use std::io::{BufWriter, Seek, SeekFrom, Write};
use std::path::Path;

/// Size in bytes of the fixed prelude preceding the data section.
pub(crate) const PRELUDE_LEN: u64 = 4 + 1 + 8;

/// Size of the reused little-endian encode buffer: big enough to amortize
/// write syscalls, small enough to stay cache-resident. Payloads of any
/// size stream through it, so encoding a variable never allocates
/// proportionally to its length.
const ENCODE_CHUNK_BYTES: usize = 256 * 1024;

/// A variable opened with [`Writer::begin_variable_f32`] whose payload is
/// arriving chunk by chunk.
struct OpenVariable {
    name: String,
    dtype: DataType,
    dim_idx: Vec<usize>,
    attrs: Vec<Attribute>,
    offset: u64,
    expected: usize,
    written: usize,
}

/// Streaming writer: append variable payloads as they become available.
pub struct Writer {
    file: BufWriter<File>,
    dims: Vec<Dimension>,
    vars: Vec<Variable>,
    attrs: Vec<Attribute>,
    cursor: u64,
    finished: bool,
    /// Reused encode buffer; capacity persists across variables.
    scratch: Vec<u8>,
    open: Option<OpenVariable>,
    reserved: bool,
}

impl Writer {
    /// Creates the file and writes the prelude with a zero header pointer
    /// (patched by [`Writer::finish`]).
    pub fn create<P: AsRef<Path>>(path: P) -> Result<Self> {
        let mut file = BufWriter::new(File::create(path)?);
        file.write_all(MAGIC)?;
        codec::put_u8(&mut file, VERSION)?;
        codec::put_u64(&mut file, 0)?;
        Ok(Writer {
            file,
            dims: Vec::new(),
            vars: Vec::new(),
            attrs: Vec::new(),
            cursor: PRELUDE_LEN,
            finished: false,
            scratch: Vec::new(),
            open: None,
            reserved: false,
        })
    }

    /// Preallocates the on-disk extent for `payload_bytes` of variable
    /// payload (plus the prelude) in one call, so large streaming writes do
    /// not grow the file incrementally. [`Writer::finish`] truncates any
    /// unused tail back to the real end of file.
    pub fn reserve(&mut self, payload_bytes: u64) -> Result<()> {
        self.file.get_ref().set_len(PRELUDE_LEN + payload_bytes)?;
        self.reserved = true;
        Ok(())
    }

    /// Sets (or replaces) a global attribute.
    pub fn set_attribute(&mut self, name: &str, value: Value) {
        if let Some(a) = self.attrs.iter_mut().find(|a| a.name == name) {
            a.value = value;
        } else {
            self.attrs.push(Attribute { name: name.into(), value });
        }
    }

    /// Declares a dimension. Dimensions must be declared before any variable
    /// that uses them.
    pub fn add_dimension(&mut self, name: &str, size: usize) -> Result<()> {
        if self.dims.iter().any(|d| d.name == name) {
            return Err(Error::DuplicateDimension(name.into()));
        }
        self.dims.push(Dimension { name: name.into(), size });
        Ok(())
    }

    fn dim_indices(&self, dims: &[&str]) -> Result<Vec<usize>> {
        dims.iter()
            .map(|n| {
                self.dims
                    .iter()
                    .position(|d| d.name == *n)
                    .ok_or_else(|| Error::UnknownDimension((*n).into()))
            })
            .collect()
    }

    fn check_new_var(&self, name: &str) -> Result<()> {
        if self.vars.iter().any(|v| v.name == name) {
            return Err(Error::DuplicateVariable(name.into()));
        }
        Ok(())
    }

    fn expected_len(&self, dim_idx: &[usize]) -> usize {
        dim_idx.iter().map(|&d| self.dims[d].size).product()
    }

    fn push_var(
        &mut self,
        name: &str,
        dtype: DataType,
        dim_idx: Vec<usize>,
        attrs: Vec<Attribute>,
        payload: &[u8],
    ) -> Result<()> {
        let offset = self.cursor;
        self.file.write_all(payload)?;
        self.cursor += payload.len() as u64;
        self.vars.push(Variable {
            name: name.into(),
            dtype,
            dims: dim_idx,
            attributes: attrs,
            data_offset: offset,
        });
        Ok(())
    }

    /// Streams `data` little-endian. On little-endian hosts the in-memory
    /// layout already matches the on-disk layout, so the payload goes to
    /// the writer directly; otherwise it is byte-swapped through the
    /// reused scratch buffer.
    fn write_f32_le(&mut self, data: &[f32]) -> Result<()> {
        if cfg!(target_endian = "little") {
            // SAFETY: viewing `data` as raw bytes is sound — the pointer
            // is valid for `data.len() * 4` bytes and `u8` has no
            // alignment requirement (mirrors the read path).
            let bytes =
                unsafe { std::slice::from_raw_parts(data.as_ptr().cast::<u8>(), data.len() * 4) };
            self.file.write_all(bytes)?;
        } else {
            for chunk in data.chunks(ENCODE_CHUNK_BYTES / 4) {
                self.scratch.clear();
                for v in chunk {
                    self.scratch.extend_from_slice(&v.to_le_bytes());
                }
                self.file.write_all(&self.scratch)?;
            }
        }
        self.cursor += data.len() as u64 * 4;
        Ok(())
    }

    /// Streams `data` little-endian through the reused scratch buffer.
    fn write_f64_le(&mut self, data: &[f64]) -> Result<()> {
        for chunk in data.chunks(ENCODE_CHUNK_BYTES / 8) {
            self.scratch.clear();
            for v in chunk {
                self.scratch.extend_from_slice(&v.to_le_bytes());
            }
            self.file.write_all(&self.scratch)?;
        }
        self.cursor += data.len() as u64 * 8;
        Ok(())
    }

    /// Opens an `f32` variable whose payload will arrive through
    /// [`Writer::write_chunk_f32`] calls; [`Writer::end_variable`] closes
    /// it once the element count matches the declared shape. This lets a
    /// producer (e.g. a fragmented datacube) export without ever
    /// materializing the dense payload.
    pub fn begin_variable_f32(
        &mut self,
        name: &str,
        dims: &[&str],
        attrs: Vec<Attribute>,
    ) -> Result<()> {
        if let Some(open) = &self.open {
            return Err(Error::UnfinishedVariable(open.name.clone()));
        }
        self.check_new_var(name)?;
        let dim_idx = self.dim_indices(dims)?;
        let expected = self.expected_len(&dim_idx);
        self.open = Some(OpenVariable {
            name: name.into(),
            dtype: DataType::F32,
            dim_idx,
            attrs,
            offset: self.cursor,
            expected,
            written: 0,
        });
        Ok(())
    }

    /// Appends one chunk of the currently open `f32` variable's payload.
    pub fn write_chunk_f32(&mut self, data: &[f32]) -> Result<()> {
        let open = self.open.as_ref().ok_or(Error::NoOpenVariable)?;
        if open.written + data.len() > open.expected {
            return Err(Error::ShapeMismatch {
                expected: open.expected,
                actual: open.written + data.len(),
            });
        }
        self.write_f32_le(data)?;
        self.open.as_mut().expect("checked above").written += data.len();
        Ok(())
    }

    /// Closes the variable opened by [`Writer::begin_variable_f32`],
    /// verifying the streamed element count against the declared shape.
    pub fn end_variable(&mut self) -> Result<()> {
        let open = self.open.take().ok_or(Error::NoOpenVariable)?;
        if open.written != open.expected {
            return Err(Error::ShapeMismatch { expected: open.expected, actual: open.written });
        }
        self.vars.push(Variable {
            name: open.name,
            dtype: open.dtype,
            dims: open.dim_idx,
            attributes: open.attrs,
            data_offset: open.offset,
        });
        Ok(())
    }

    /// Appends an `f32` variable with optional attributes.
    pub fn add_variable_f32(
        &mut self,
        name: &str,
        dims: &[&str],
        data: &[f32],
        attrs: Vec<Attribute>,
    ) -> Result<()> {
        self.begin_variable_f32(name, dims, attrs)?;
        let expected = self.open.as_ref().expect("just opened").expected;
        if expected != data.len() {
            // Nothing written yet; abandon the open variable cleanly.
            self.open = None;
            return Err(Error::ShapeMismatch { expected, actual: data.len() });
        }
        self.write_chunk_f32(data)?;
        self.end_variable()
    }

    /// Appends an `f64` variable with optional attributes.
    pub fn add_variable_f64(
        &mut self,
        name: &str,
        dims: &[&str],
        data: &[f64],
        attrs: Vec<Attribute>,
    ) -> Result<()> {
        if let Some(open) = &self.open {
            return Err(Error::UnfinishedVariable(open.name.clone()));
        }
        self.check_new_var(name)?;
        let idx = self.dim_indices(dims)?;
        let expected = self.expected_len(&idx);
        if expected != data.len() {
            return Err(Error::ShapeMismatch { expected, actual: data.len() });
        }
        let offset = self.cursor;
        self.write_f64_le(data)?;
        self.vars.push(Variable {
            name: name.into(),
            dtype: DataType::F64,
            dims: idx,
            attributes: attrs,
            data_offset: offset,
        });
        Ok(())
    }

    /// Appends a `u8` variable (masks, categorical fields).
    pub fn add_variable_u8(
        &mut self,
        name: &str,
        dims: &[&str],
        data: &[u8],
        attrs: Vec<Attribute>,
    ) -> Result<()> {
        if let Some(open) = &self.open {
            return Err(Error::UnfinishedVariable(open.name.clone()));
        }
        self.check_new_var(name)?;
        let idx = self.dim_indices(dims)?;
        let expected = self.expected_len(&idx);
        if expected != data.len() {
            return Err(Error::ShapeMismatch { expected, actual: data.len() });
        }
        self.push_var(name, DataType::U8, idx, attrs, data)
    }

    /// Appends an `i32` variable (counts, integer indices).
    pub fn add_variable_i32(
        &mut self,
        name: &str,
        dims: &[&str],
        data: &[i32],
        attrs: Vec<Attribute>,
    ) -> Result<()> {
        if let Some(open) = &self.open {
            return Err(Error::UnfinishedVariable(open.name.clone()));
        }
        self.check_new_var(name)?;
        let idx = self.dim_indices(dims)?;
        let expected = self.expected_len(&idx);
        if expected != data.len() {
            return Err(Error::ShapeMismatch { expected, actual: data.len() });
        }
        let offset = self.cursor;
        for chunk in data.chunks(ENCODE_CHUNK_BYTES / 4) {
            self.scratch.clear();
            for v in chunk {
                self.scratch.extend_from_slice(&v.to_le_bytes());
            }
            self.file.write_all(&self.scratch)?;
        }
        self.cursor += data.len() as u64 * 4;
        self.vars.push(Variable {
            name: name.into(),
            dtype: DataType::I32,
            dims: idx,
            attributes: attrs,
            data_offset: offset,
        });
        Ok(())
    }

    /// Writes the header, patches the prelude pointer and flushes. Must be
    /// called exactly once; dropping an unfinished writer leaves an invalid
    /// file by design (truncated output should not parse).
    pub fn finish(mut self) -> Result<()> {
        if let Some(open) = &self.open {
            return Err(Error::UnfinishedVariable(open.name.clone()));
        }
        let header_offset = self.cursor;

        codec::put_attributes(&mut self.file, &self.attrs)?;

        codec::put_u32(&mut self.file, self.dims.len() as u32)?;
        for d in &self.dims {
            codec::put_str(&mut self.file, &d.name)?;
            codec::put_u64(&mut self.file, d.size as u64)?;
        }

        codec::put_u32(&mut self.file, self.vars.len() as u32)?;
        for v in &self.vars {
            codec::put_str(&mut self.file, &v.name)?;
            codec::put_u8(&mut self.file, v.dtype.tag())?;
            codec::put_u32(&mut self.file, v.dims.len() as u32)?;
            for &d in &v.dims {
                codec::put_u32(&mut self.file, d as u32)?;
            }
            codec::put_attributes(&mut self.file, &v.attributes)?;
            codec::put_u64(&mut self.file, v.data_offset)?;
        }

        self.file.flush()?;
        let file = self.file.get_mut();
        if self.reserved {
            // Trim any tail left over from an over-estimating reserve().
            let end = file.stream_position()?;
            file.set_len(end)?;
        }
        file.seek(SeekFrom::Start(5))?;
        file.write_all(&header_offset.to_le_bytes())?;
        file.flush()?;
        self.finished = true;
        Ok(())
    }

    /// Bytes of payload written so far (excludes prelude and header).
    pub fn payload_bytes(&self) -> u64 {
        self.cursor - PRELUDE_LEN
    }
}

/// Owned variable payload used by the in-memory [`Dataset`] builder.
#[derive(Debug, Clone)]
enum Payload {
    F32(Vec<f32>),
    F64(Vec<f64>),
    I32(Vec<i32>),
    U8(Vec<u8>),
}

impl Payload {
    fn len(&self) -> usize {
        match self {
            Payload::F32(v) => v.len(),
            Payload::F64(v) => v.len(),
            Payload::I32(v) => v.len(),
            Payload::U8(v) => v.len(),
        }
    }

    fn byte_len(&self) -> usize {
        match self {
            Payload::F32(v) => v.len() * 4,
            Payload::F64(v) => v.len() * 8,
            Payload::I32(v) => v.len() * 4,
            Payload::U8(v) => v.len(),
        }
    }
}

/// In-memory dataset builder: collect dimensions, attributes and variables,
/// then serialize with [`Dataset::write_to_path`].
#[derive(Default)]
pub struct Dataset {
    dims: Vec<Dimension>,
    attrs: Vec<Attribute>,
    vars: Vec<(String, Vec<usize>, Vec<Attribute>, Payload)>,
}

impl Dataset {
    /// Creates an empty dataset.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares a dimension.
    pub fn add_dimension(&mut self, name: &str, size: usize) -> Result<()> {
        if self.dims.iter().any(|d| d.name == name) {
            return Err(Error::DuplicateDimension(name.into()));
        }
        self.dims.push(Dimension { name: name.into(), size });
        Ok(())
    }

    /// Sets (or replaces) a global attribute.
    pub fn set_attribute(&mut self, name: &str, value: Value) {
        if let Some(a) = self.attrs.iter_mut().find(|a| a.name == name) {
            a.value = value;
        } else {
            self.attrs.push(Attribute { name: name.into(), value });
        }
    }

    fn add_var(&mut self, name: &str, dims: &[&str], payload: Payload) -> Result<()> {
        if self.vars.iter().any(|(n, ..)| n == name) {
            return Err(Error::DuplicateVariable(name.into()));
        }
        let idx: Vec<usize> = dims
            .iter()
            .map(|n| {
                self.dims
                    .iter()
                    .position(|d| d.name == *n)
                    .ok_or_else(|| Error::UnknownDimension((*n).into()))
            })
            .collect::<Result<_>>()?;
        let expected: usize = idx.iter().map(|&d| self.dims[d].size).product();
        if expected != payload.len() {
            return Err(Error::ShapeMismatch { expected, actual: payload.len() });
        }
        self.vars.push((name.into(), idx, Vec::new(), payload));
        Ok(())
    }

    /// Adds an `f32` variable.
    pub fn add_variable_f32(&mut self, name: &str, dims: &[&str], data: Vec<f32>) -> Result<()> {
        self.add_var(name, dims, Payload::F32(data))
    }

    /// Adds an `f64` variable.
    pub fn add_variable_f64(&mut self, name: &str, dims: &[&str], data: Vec<f64>) -> Result<()> {
        self.add_var(name, dims, Payload::F64(data))
    }

    /// Adds an `i32` variable.
    pub fn add_variable_i32(&mut self, name: &str, dims: &[&str], data: Vec<i32>) -> Result<()> {
        self.add_var(name, dims, Payload::I32(data))
    }

    /// Adds a `u8` variable.
    pub fn add_variable_u8(&mut self, name: &str, dims: &[&str], data: Vec<u8>) -> Result<()> {
        self.add_var(name, dims, Payload::U8(data))
    }

    /// Attaches an attribute to an already-added variable.
    pub fn set_variable_attribute(&mut self, var: &str, name: &str, value: Value) -> Result<()> {
        let entry = self
            .vars
            .iter_mut()
            .find(|(n, ..)| n == var)
            .ok_or_else(|| Error::UnknownVariable(var.into()))?;
        entry.2.push(Attribute { name: name.into(), value });
        Ok(())
    }

    /// Total payload bytes this dataset will serialize (excluding prelude
    /// and header). [`Dataset::write_to_path`] sizes the output file from
    /// this up front instead of growing it variable by variable.
    pub fn payload_bytes(&self) -> u64 {
        self.vars.iter().map(|(.., p)| p.byte_len() as u64).sum()
    }

    /// Serializes the dataset to `path` via the streaming [`Writer`].
    pub fn write_to_path<P: AsRef<Path>>(&self, path: P) -> Result<()> {
        let mut w = Writer::create(path)?;
        w.reserve(self.payload_bytes())?;
        for a in &self.attrs {
            w.set_attribute(&a.name, a.value.clone());
        }
        for d in &self.dims {
            w.add_dimension(&d.name, d.size)?;
        }
        let dim_names: Vec<&str> = self.dims.iter().map(|d| d.name.as_str()).collect();
        for (name, idx, attrs, payload) in &self.vars {
            let dims: Vec<&str> = idx.iter().map(|&i| dim_names[i]).collect();
            match payload {
                Payload::F32(v) => w.add_variable_f32(name, &dims, v, attrs.clone())?,
                Payload::F64(v) => w.add_variable_f64(name, &dims, v, attrs.clone())?,
                Payload::I32(v) => w.add_variable_i32(name, &dims, v, attrs.clone())?,
                Payload::U8(v) => w.add_variable_u8(name, &dims, v, attrs.clone())?,
            }
        }
        w.finish()
    }

    /// Predicted on-disk size in bytes for a file with the given variable
    /// shapes, counting payload only (headers are O(metadata)). Used by the
    /// ESM to reproduce the paper's "271 MB per daily file" arithmetic
    /// without writing a full-resolution file.
    pub fn payload_size(var_elems: &[(DataType, usize)]) -> u64 {
        var_elems.iter().map(|(dt, n)| (dt.size() * n) as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::read::Reader;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("ncx-write-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn duplicate_dimension_rejected() {
        let mut ds = Dataset::new();
        ds.add_dimension("x", 2).unwrap();
        assert!(matches!(ds.add_dimension("x", 3), Err(Error::DuplicateDimension(_))));
    }

    #[test]
    fn duplicate_variable_rejected() {
        let mut ds = Dataset::new();
        ds.add_dimension("x", 1).unwrap();
        ds.add_variable_f32("v", &["x"], vec![1.0]).unwrap();
        assert!(matches!(
            ds.add_variable_f32("v", &["x"], vec![1.0]),
            Err(Error::DuplicateVariable(_))
        ));
    }

    #[test]
    fn unknown_dimension_rejected() {
        let mut ds = Dataset::new();
        assert!(matches!(
            ds.add_variable_f32("v", &["nope"], vec![]),
            Err(Error::UnknownDimension(_))
        ));
    }

    #[test]
    fn shape_mismatch_rejected() {
        let mut ds = Dataset::new();
        ds.add_dimension("x", 3).unwrap();
        let err = ds.add_variable_f32("v", &["x"], vec![1.0]).unwrap_err();
        assert!(matches!(err, Error::ShapeMismatch { expected: 3, actual: 1 }));
    }

    #[test]
    fn streaming_writer_tracks_payload_bytes() {
        let path = tmp("stream.ncx");
        let mut w = Writer::create(&path).unwrap();
        w.add_dimension("x", 4).unwrap();
        w.add_variable_f32("a", &["x"], &[1.0, 2.0, 3.0, 4.0], vec![]).unwrap();
        assert_eq!(w.payload_bytes(), 16);
        w.add_variable_u8("m", &["x"], &[0, 1, 0, 1], vec![]).unwrap();
        assert_eq!(w.payload_bytes(), 20);
        w.finish().unwrap();
        let rd = Reader::open(&path).unwrap();
        assert_eq!(rd.read_all_f32("a").unwrap(), vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(rd.read_all_u8("m").unwrap(), vec![0, 1, 0, 1]);
    }

    #[test]
    fn variable_attributes_roundtrip() {
        let path = tmp("attrs.ncx");
        let mut ds = Dataset::new();
        ds.add_dimension("x", 1).unwrap();
        ds.add_variable_f32("t", &["x"], vec![273.15]).unwrap();
        ds.set_variable_attribute("t", "units", Value::from("K")).unwrap();
        ds.set_attribute("model", Value::from("CMCC-CM3-surrogate"));
        ds.write_to_path(&path).unwrap();

        let rd = Reader::open(&path).unwrap();
        let v = rd.variable("t").unwrap();
        assert_eq!(v.attribute("units").unwrap().as_text(), Some("K"));
        assert_eq!(rd.attribute("model").unwrap().as_text(), Some("CMCC-CM3-surrogate"));
    }

    #[test]
    fn payload_size_math() {
        // The paper's daily file: 768 x 1152 x 4 timesteps x 20 f32 vars.
        let elems = 768 * 1152 * 4;
        let vars: Vec<(DataType, usize)> = (0..20).map(|_| (DataType::F32, elems)).collect();
        let bytes = Dataset::payload_size(&vars);
        let mb = bytes as f64 / (1024.0 * 1024.0);
        assert!((mb - 270.0).abs() < 1.0, "expected ~270 MB, got {mb}");
    }

    #[test]
    fn chunked_variable_roundtrips() {
        let path = tmp("chunked.ncx");
        let mut w = Writer::create(&path).unwrap();
        w.add_dimension("x", 6).unwrap();
        w.begin_variable_f32("v", &["x"], vec![]).unwrap();
        w.write_chunk_f32(&[0.0, 1.0]).unwrap();
        w.write_chunk_f32(&[2.0]).unwrap();
        w.write_chunk_f32(&[3.0, 4.0, 5.0]).unwrap();
        w.end_variable().unwrap();
        w.finish().unwrap();
        let rd = Reader::open(&path).unwrap();
        assert_eq!(rd.read_all_f32("v").unwrap(), vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0]);
    }

    #[test]
    fn chunked_element_count_enforced() {
        let path = tmp("chunked-arity.ncx");
        let mut w = Writer::create(&path).unwrap();
        w.add_dimension("x", 3).unwrap();
        w.begin_variable_f32("v", &["x"], vec![]).unwrap();
        w.write_chunk_f32(&[1.0]).unwrap();
        // Overflow rejected before any bytes are written.
        assert!(matches!(
            w.write_chunk_f32(&[2.0, 3.0, 4.0]),
            Err(Error::ShapeMismatch { expected: 3, actual: 4 })
        ));
        // Underflow rejected at close.
        assert!(matches!(w.end_variable(), Err(Error::ShapeMismatch { expected: 3, actual: 1 })));
    }

    #[test]
    fn open_variable_blocks_other_writes() {
        let path = tmp("chunked-open.ncx");
        let mut w = Writer::create(&path).unwrap();
        w.add_dimension("x", 2).unwrap();
        assert!(matches!(w.write_chunk_f32(&[1.0]), Err(Error::NoOpenVariable)));
        assert!(matches!(w.end_variable(), Err(Error::NoOpenVariable)));
        w.begin_variable_f32("v", &["x"], vec![]).unwrap();
        assert!(matches!(
            w.begin_variable_f32("w", &["x"], vec![]),
            Err(Error::UnfinishedVariable(_))
        ));
        assert!(matches!(
            w.add_variable_u8("m", &["x"], &[0, 1], vec![]),
            Err(Error::UnfinishedVariable(_))
        ));
        assert!(matches!(w.finish(), Err(Error::UnfinishedVariable(_))));
    }

    #[test]
    fn reserve_preallocates_and_finish_trims() {
        let path = tmp("reserve.ncx");
        let mut w = Writer::create(&path).unwrap();
        w.add_dimension("x", 4).unwrap();
        // Over-reserve far beyond the real payload.
        w.reserve(1 << 20).unwrap();
        w.add_variable_f32("a", &["x"], &[1.0, 2.0, 3.0, 4.0], vec![]).unwrap();
        w.finish().unwrap();
        // The tail must be trimmed: the file ends right after the header.
        let len = std::fs::metadata(&path).unwrap().len();
        assert!(len < 1024, "reserved tail not trimmed: {len} bytes");
        let rd = Reader::open(&path).unwrap();
        assert_eq!(rd.read_all_f32("a").unwrap(), vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn dataset_payload_bytes_matches_writer() {
        let mut ds = Dataset::new();
        ds.add_dimension("x", 3).unwrap();
        ds.add_variable_f32("a", &["x"], vec![1.0, 2.0, 3.0]).unwrap();
        ds.add_variable_f64("b", &["x"], vec![1.0, 2.0, 3.0]).unwrap();
        ds.add_variable_u8("m", &["x"], vec![0, 1, 0]).unwrap();
        assert_eq!(ds.payload_bytes(), 12 + 24 + 3);
        let path = tmp("payload-bytes.ncx");
        ds.write_to_path(&path).unwrap();
        let rd = Reader::open(&path).unwrap();
        assert_eq!(rd.read_all_f64("b").unwrap(), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn zero_sized_variable_allowed() {
        let path = tmp("empty.ncx");
        let mut ds = Dataset::new();
        ds.add_dimension("x", 0).unwrap();
        ds.add_variable_f32("v", &["x"], vec![]).unwrap();
        ds.write_to_path(&path).unwrap();
        let rd = Reader::open(&path).unwrap();
        assert!(rd.read_all_f32("v").unwrap().is_empty());
    }

    #[test]
    fn scalar_variable_with_no_dims() {
        let path = tmp("scalar.ncx");
        let mut ds = Dataset::new();
        ds.add_variable_f64("pi", &[], vec![std::f64::consts::PI]).unwrap();
        ds.write_to_path(&path).unwrap();
        let rd = Reader::open(&path).unwrap();
        assert_eq!(rd.read_all_f64("pi").unwrap(), vec![std::f64::consts::PI]);
    }
}
