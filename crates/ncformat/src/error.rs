//! Error type shared by the reader and writer.

use std::fmt;

/// Errors produced while building, writing or reading NCX containers.
#[derive(Debug)]
pub enum Error {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The file does not start with the NCX magic bytes.
    BadMagic,
    /// The file declares a format version this build cannot read.
    UnsupportedVersion(u8),
    /// A dimension with this name already exists in the dataset.
    DuplicateDimension(String),
    /// A variable with this name already exists in the dataset.
    DuplicateVariable(String),
    /// A referenced dimension name is not declared.
    UnknownDimension(String),
    /// A referenced variable name is not present.
    UnknownVariable(String),
    /// The supplied data length does not match the product of the variable's
    /// dimension sizes. Holds `(expected, actual)`.
    ShapeMismatch { expected: usize, actual: usize },
    /// A hyperslab request falls outside the variable's extent, or its rank
    /// does not match the variable's rank.
    BadSlab(String),
    /// The variable exists but holds a different element type.
    TypeMismatch { want: &'static str, have: &'static str },
    /// Header bytes could not be decoded (truncated or corrupt file).
    Corrupt(String),
    /// A chunked variable opened with `begin_variable_*` has not been
    /// closed with `end_variable` yet.
    UnfinishedVariable(String),
    /// `write_chunk_*`/`end_variable` called with no variable open.
    NoOpenVariable,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Io(e) => write!(f, "i/o error: {e}"),
            Error::BadMagic => write!(f, "not an NCX file (bad magic)"),
            Error::UnsupportedVersion(v) => write!(f, "unsupported NCX version {v}"),
            Error::DuplicateDimension(n) => write!(f, "dimension '{n}' already defined"),
            Error::DuplicateVariable(n) => write!(f, "variable '{n}' already defined"),
            Error::UnknownDimension(n) => write!(f, "unknown dimension '{n}'"),
            Error::UnknownVariable(n) => write!(f, "unknown variable '{n}'"),
            Error::ShapeMismatch { expected, actual } => {
                write!(f, "data length {actual} does not match shape product {expected}")
            }
            Error::BadSlab(msg) => write!(f, "invalid hyperslab: {msg}"),
            Error::TypeMismatch { want, have } => {
                write!(f, "type mismatch: requested {want}, stored {have}")
            }
            Error::Corrupt(msg) => write!(f, "corrupt NCX file: {msg}"),
            Error::UnfinishedVariable(n) => {
                write!(f, "variable '{n}' is still open (missing end_variable)")
            }
            Error::NoOpenVariable => write!(f, "no chunked variable is open"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = Error::ShapeMismatch { expected: 12, actual: 7 };
        assert!(e.to_string().contains("12"));
        assert!(e.to_string().contains("7"));
        assert!(Error::BadMagic.to_string().contains("magic"));
        assert!(Error::UnknownVariable("tas".into()).to_string().contains("tas"));
    }

    #[test]
    fn io_error_converts_and_sources() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e: Error = io.into();
        assert!(matches!(e, Error::Io(_)));
        assert!(std::error::Error::source(&e).is_some());
    }
}
