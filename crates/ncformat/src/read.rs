//! Reading NCX containers: header parsing, whole-variable reads and
//! hyperslab (start/count) subset reads.

use crate::codec;
use crate::error::{Error, Result};
use crate::types::{Attribute, DataType, Dimension, Value, Variable};
use crate::{MAGIC, VERSION};
use std::fs::File;
use std::io::{BufReader, Read, Seek, SeekFrom};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// Lazy reader over an NCX file. The header is parsed eagerly; variable
/// payloads are read on demand. `Reader` is `Send + Sync`; concurrent slab
/// reads serialize on an internal handle lock (each read is seek+read).
pub struct Reader {
    path: PathBuf,
    file: Mutex<BufReader<File>>,
    dims: Vec<Dimension>,
    vars: Vec<Variable>,
    attrs: Vec<Attribute>,
}

impl Reader {
    /// Opens `path` and parses the header.
    pub fn open<P: AsRef<Path>>(path: P) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        let mut file = BufReader::new(File::open(&path)?);

        let mut magic = [0u8; 4];
        file.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(Error::BadMagic);
        }
        let version = codec::get_u8(&mut file)?;
        if version != VERSION {
            return Err(Error::UnsupportedVersion(version));
        }
        let header_offset = codec::get_u64(&mut file)?;
        if header_offset == 0 {
            return Err(Error::Corrupt("unfinished file (header pointer is zero)".into()));
        }
        file.seek(SeekFrom::Start(header_offset))?;

        let attrs = codec::get_attributes(&mut file)?;

        let ndims = codec::get_u32(&mut file)? as usize;
        let mut dims = Vec::with_capacity(ndims);
        for _ in 0..ndims {
            let name = codec::get_str(&mut file)?;
            let size = codec::get_u64(&mut file)? as usize;
            dims.push(Dimension { name, size });
        }

        let nvars = codec::get_u32(&mut file)? as usize;
        let mut vars = Vec::with_capacity(nvars);
        for _ in 0..nvars {
            let name = codec::get_str(&mut file)?;
            let dtype = DataType::from_tag(codec::get_u8(&mut file)?)?;
            let rank = codec::get_u32(&mut file)? as usize;
            let mut vdims = Vec::with_capacity(rank);
            for _ in 0..rank {
                let d = codec::get_u32(&mut file)? as usize;
                if d >= dims.len() {
                    return Err(Error::Corrupt(format!("dimension index {d} out of range")));
                }
                vdims.push(d);
            }
            let attributes = codec::get_attributes(&mut file)?;
            let data_offset = codec::get_u64(&mut file)?;
            vars.push(Variable { name, dtype, dims: vdims, attributes, data_offset });
        }

        Ok(Reader { path, file: Mutex::new(file), dims, vars, attrs })
    }

    /// Path this reader was opened from.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Declared dimensions.
    pub fn dimensions(&self) -> &[Dimension] {
        &self.dims
    }

    /// Declared variables (metadata only).
    pub fn variables(&self) -> &[Variable] {
        &self.vars
    }

    /// Global attribute lookup.
    pub fn attribute(&self, name: &str) -> Option<&Value> {
        self.attrs.iter().find(|a| a.name == name).map(|a| &a.value)
    }

    /// Variable metadata lookup.
    pub fn variable(&self, name: &str) -> Result<&Variable> {
        self.vars.iter().find(|v| v.name == name).ok_or_else(|| Error::UnknownVariable(name.into()))
    }

    /// Dimension lookup by name.
    pub fn dimension(&self, name: &str) -> Result<&Dimension> {
        self.dims
            .iter()
            .find(|d| d.name == name)
            .ok_or_else(|| Error::UnknownDimension(name.into()))
    }

    /// Shape (size per axis) of a variable.
    pub fn shape(&self, name: &str) -> Result<Vec<usize>> {
        Ok(self.variable(name)?.shape(&self.dims))
    }

    fn read_raw(&self, offset: u64, len: usize) -> Result<Vec<u8>> {
        let mut buf = vec![0u8; len];
        let mut file = self.file.lock().expect("reader handle poisoned");
        file.seek(SeekFrom::Start(offset))?;
        file.read_exact(&mut buf)?;
        Ok(buf)
    }

    fn whole(&self, name: &str, want: DataType) -> Result<Vec<u8>> {
        let v = self.variable(name)?;
        if v.dtype != want {
            return Err(Error::TypeMismatch { want: want.name(), have: v.dtype.name() });
        }
        let len = v.len(&self.dims) * v.dtype.size();
        self.read_raw(v.data_offset, len)
    }

    /// Reads an entire `f32` variable.
    pub fn read_all_f32(&self, name: &str) -> Result<Vec<f32>> {
        Ok(codec::bytes_f32(&self.whole(name, DataType::F32)?))
    }

    /// Reads an entire `f64` variable.
    pub fn read_all_f64(&self, name: &str) -> Result<Vec<f64>> {
        Ok(codec::bytes_f64(&self.whole(name, DataType::F64)?))
    }

    /// Reads an entire `u8` variable.
    pub fn read_all_u8(&self, name: &str) -> Result<Vec<u8>> {
        self.whole(name, DataType::U8)
    }

    /// Reads an entire `i32` variable.
    pub fn read_all_i32(&self, name: &str) -> Result<Vec<i32>> {
        let bytes = self.whole(name, DataType::I32)?;
        Ok(bytes.chunks_exact(4).map(|c| i32::from_le_bytes([c[0], c[1], c[2], c[3]])).collect())
    }

    /// Reads a contiguous element range of an `f32` variable directly into
    /// `out` — no intermediate byte buffer. `start` is the linear element
    /// index of the first value; `out.len()` elements are read. Ingest
    /// paths call this in a loop with one reused buffer to stream a large
    /// variable through constant memory.
    pub fn read_f32_into(&self, name: &str, start: usize, out: &mut [f32]) -> Result<()> {
        let v = self.variable(name)?;
        self.var_f32_into(v, start, out)
    }

    /// Reads an entire `f32` variable into one shared, immutable buffer
    /// (a single allocation). Datacube ingest slices fragments out of the
    /// returned buffer without further copies.
    pub fn read_shared_f32(&self, name: &str) -> Result<Arc<[f32]>> {
        let v = self.variable(name)?;
        self.var_shared_f32(v)
    }

    /// Borrowed, lazy view of one variable: metadata is available
    /// immediately, payload reads happen on demand.
    pub fn var(&self, name: &str) -> Result<VarView<'_>> {
        Ok(VarView { reader: self, var: self.variable(name)? })
    }

    fn var_f32_into(&self, v: &Variable, start: usize, out: &mut [f32]) -> Result<()> {
        if v.dtype != DataType::F32 {
            return Err(Error::TypeMismatch { want: "f32", have: v.dtype.name() });
        }
        let total = v.len(&self.dims);
        if start + out.len() > total {
            return Err(Error::BadSlab(format!(
                "element range {start}..{} exceeds variable length {total}",
                start + out.len()
            )));
        }
        if out.is_empty() {
            return Ok(());
        }
        {
            let mut file = self.file.lock().expect("reader handle poisoned");
            file.seek(SeekFrom::Start(v.data_offset + (start * 4) as u64))?;
            // SAFETY: viewing `out` as raw bytes is sound — the pointer is
            // valid for `out.len() * 4` bytes, `u8` has no alignment
            // requirement, and every 4-byte pattern is a valid f32.
            let bytes = unsafe {
                std::slice::from_raw_parts_mut(out.as_mut_ptr().cast::<u8>(), out.len() * 4)
            };
            file.read_exact(bytes)?;
        }
        // Payload is little-endian on disk; fix up on big-endian hosts.
        if cfg!(target_endian = "big") {
            for x in out.iter_mut() {
                *x = f32::from_bits(x.to_bits().swap_bytes());
            }
        }
        Ok(())
    }

    fn var_shared_f32(&self, v: &Variable) -> Result<Arc<[f32]>> {
        if v.dtype != DataType::F32 {
            return Err(Error::TypeMismatch { want: "f32", have: v.dtype.name() });
        }
        let n = v.len(&self.dims);
        let mut buf: Arc<[f32]> = std::iter::repeat_n(0.0f32, n).collect();
        if n > 0 {
            let dst = Arc::get_mut(&mut buf).expect("freshly collected Arc is unique");
            self.var_f32_into(v, 0, dst)?;
        }
        Ok(buf)
    }

    /// Validates a hyperslab request against a variable's shape and returns
    /// the byte-level read plan: a list of `(file_offset, elems)` contiguous
    /// runs in output order.
    fn slab_plan(
        &self,
        name: &str,
        start: &[usize],
        count: &[usize],
        want: DataType,
    ) -> Result<Vec<(u64, usize)>> {
        let v = self.variable(name)?;
        if v.dtype != want {
            return Err(Error::TypeMismatch { want: want.name(), have: v.dtype.name() });
        }
        let shape = v.shape(&self.dims);
        if start.len() != shape.len() || count.len() != shape.len() {
            return Err(Error::BadSlab(format!(
                "rank mismatch: variable rank {}, start rank {}, count rank {}",
                shape.len(),
                start.len(),
                count.len()
            )));
        }
        for (axis, ((&s, &c), &n)) in start.iter().zip(count).zip(&shape).enumerate() {
            if s + c > n {
                return Err(Error::BadSlab(format!(
                    "axis {axis}: start {s} + count {c} exceeds size {n}"
                )));
            }
        }

        let esize = v.dtype.size() as u64;
        // Strides (in elements) of each axis in the stored layout.
        let rank = shape.len();
        let mut strides = vec![1usize; rank];
        for i in (0..rank.saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * shape[i + 1];
        }

        if rank == 0 {
            return Ok(vec![(v.data_offset, 1)]);
        }
        let total: usize = count.iter().product();
        if total == 0 {
            return Ok(Vec::new());
        }

        // Iterate over all outer-index combinations; each yields a contiguous
        // run of `count[rank-1]` elements.
        let run = count[rank - 1];
        let outer_total: usize = count[..rank - 1].iter().product();
        let mut plan = Vec::with_capacity(outer_total.max(1));
        let mut idx = vec![0usize; rank.saturating_sub(1)];
        for _ in 0..outer_total.max(1) {
            let mut elem_off = start[rank - 1] * strides[rank - 1];
            for (axis, &i) in idx.iter().enumerate() {
                elem_off += (start[axis] + i) * strides[axis];
            }
            plan.push((v.data_offset + elem_off as u64 * esize, run));
            // Odometer increment over the outer axes.
            for axis in (0..idx.len()).rev() {
                idx[axis] += 1;
                if idx[axis] < count[axis] {
                    break;
                }
                idx[axis] = 0;
            }
        }
        Ok(plan)
    }

    /// Reads a hyperslab of an `f32` variable. `start[i]` is the first index
    /// along axis `i`, `count[i]` the number of indices to read. The result
    /// is row-major over `count`.
    pub fn read_slab_f32(&self, name: &str, start: &[usize], count: &[usize]) -> Result<Vec<f32>> {
        let plan = self.slab_plan(name, start, count, DataType::F32)?;
        let mut out = Vec::with_capacity(plan.iter().map(|&(_, n)| n).sum());
        for (off, n) in plan {
            let bytes = self.read_raw(off, n * 4)?;
            out.extend(codec::bytes_f32(&bytes));
        }
        Ok(out)
    }

    /// Reads a hyperslab of an `f64` variable.
    pub fn read_slab_f64(&self, name: &str, start: &[usize], count: &[usize]) -> Result<Vec<f64>> {
        let plan = self.slab_plan(name, start, count, DataType::F64)?;
        let mut out = Vec::with_capacity(plan.iter().map(|&(_, n)| n).sum());
        for (off, n) in plan {
            let bytes = self.read_raw(off, n * 8)?;
            out.extend(codec::bytes_f64(&bytes));
        }
        Ok(out)
    }
}

/// Borrowed, lazy view of a single variable obtained from [`Reader::var`]:
/// shape and attributes are served from the parsed header; payload reads
/// go straight from the file into caller-chosen buffers, so consumers
/// decide whether to pay for a copy at all.
pub struct VarView<'r> {
    reader: &'r Reader,
    var: &'r Variable,
}

impl VarView<'_> {
    /// Variable name.
    pub fn name(&self) -> &str {
        &self.var.name
    }

    /// Element type.
    pub fn dtype(&self) -> DataType {
        self.var.dtype
    }

    /// Shape as a size-per-axis vector.
    pub fn shape(&self) -> Vec<usize> {
        self.var.shape(&self.reader.dims)
    }

    /// Total element count.
    pub fn len(&self) -> usize {
        self.var.len(&self.reader.dims)
    }

    /// True when the variable has zero elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Attribute lookup on this variable.
    pub fn attribute(&self, name: &str) -> Option<&Value> {
        self.var.attribute(name)
    }

    /// Entire payload as one shared buffer (a single allocation).
    pub fn read_shared_f32(&self) -> Result<Arc<[f32]>> {
        self.reader.var_shared_f32(self.var)
    }

    /// Contiguous element range straight into `out`.
    pub fn read_f32_into(&self, start: usize, out: &mut [f32]) -> Result<()> {
        self.reader.var_f32_into(self.var, start, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::write::Dataset;
    use std::io::Write;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("ncx-read-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn sample(path: &Path) {
        // 2 x 3 x 4 cube with values 0..24.
        let mut ds = Dataset::new();
        ds.add_dimension("t", 2).unwrap();
        ds.add_dimension("y", 3).unwrap();
        ds.add_dimension("x", 4).unwrap();
        ds.add_variable_f32("v", &["t", "y", "x"], (0..24).map(|i| i as f32).collect()).unwrap();
        ds.write_to_path(path).unwrap();
    }

    #[test]
    fn rejects_wrong_magic() {
        let path = tmp("badmagic.ncx");
        std::fs::File::create(&path).unwrap().write_all(b"NOPE123456789").unwrap();
        assert!(matches!(Reader::open(&path), Err(Error::BadMagic)));
    }

    #[test]
    fn rejects_unfinished_file() {
        let path = tmp("unfinished.ncx");
        let mut f = std::fs::File::create(&path).unwrap();
        f.write_all(crate::MAGIC).unwrap();
        f.write_all(&[crate::VERSION]).unwrap();
        f.write_all(&0u64.to_le_bytes()).unwrap();
        assert!(matches!(Reader::open(&path), Err(Error::Corrupt(_))));
    }

    #[test]
    fn rejects_future_version() {
        let path = tmp("future.ncx");
        let mut f = std::fs::File::create(&path).unwrap();
        f.write_all(crate::MAGIC).unwrap();
        f.write_all(&[99]).unwrap();
        f.write_all(&13u64.to_le_bytes()).unwrap();
        assert!(matches!(Reader::open(&path), Err(Error::UnsupportedVersion(99))));
    }

    #[test]
    fn full_slab_equals_read_all() {
        let path = tmp("full.ncx");
        sample(&path);
        let rd = Reader::open(&path).unwrap();
        let all = rd.read_all_f32("v").unwrap();
        let slab = rd.read_slab_f32("v", &[0, 0, 0], &[2, 3, 4]).unwrap();
        assert_eq!(all, slab);
    }

    #[test]
    fn inner_slab_values() {
        let path = tmp("inner.ncx");
        sample(&path);
        let rd = Reader::open(&path).unwrap();
        // t=1, y=1..3, x=2..4 -> linear offsets 12 + y*4 + x
        let slab = rd.read_slab_f32("v", &[1, 1, 2], &[1, 2, 2]).unwrap();
        assert_eq!(slab, vec![18.0, 19.0, 22.0, 23.0]);
    }

    #[test]
    fn out_of_range_slab_rejected() {
        let path = tmp("oob.ncx");
        sample(&path);
        let rd = Reader::open(&path).unwrap();
        assert!(matches!(rd.read_slab_f32("v", &[0, 0, 3], &[1, 1, 2]), Err(Error::BadSlab(_))));
        assert!(matches!(rd.read_slab_f32("v", &[0, 0], &[1, 1]), Err(Error::BadSlab(_))));
    }

    #[test]
    fn empty_slab_is_empty() {
        let path = tmp("emptyslab.ncx");
        sample(&path);
        let rd = Reader::open(&path).unwrap();
        assert!(rd.read_slab_f32("v", &[0, 0, 0], &[0, 3, 4]).unwrap().is_empty());
    }

    #[test]
    fn type_mismatch_reported() {
        let path = tmp("tmismatch.ncx");
        sample(&path);
        let rd = Reader::open(&path).unwrap();
        assert!(matches!(rd.read_all_f64("v"), Err(Error::TypeMismatch { .. })));
    }

    #[test]
    fn shared_read_equals_read_all() {
        let path = tmp("shared.ncx");
        sample(&path);
        let rd = Reader::open(&path).unwrap();
        let shared = rd.read_shared_f32("v").unwrap();
        assert_eq!(&shared[..], &rd.read_all_f32("v").unwrap()[..]);
    }

    #[test]
    fn read_into_ranges_and_bounds() {
        let path = tmp("into.ncx");
        sample(&path);
        let rd = Reader::open(&path).unwrap();
        let mut buf = [0.0f32; 4];
        rd.read_f32_into("v", 12, &mut buf).unwrap();
        assert_eq!(buf, [12.0, 13.0, 14.0, 15.0]);
        // Reused buffer, different window.
        rd.read_f32_into("v", 20, &mut buf).unwrap();
        assert_eq!(buf, [20.0, 21.0, 22.0, 23.0]);
        assert!(matches!(rd.read_f32_into("v", 21, &mut buf), Err(Error::BadSlab(_))));
        rd.read_f32_into("v", 24, &mut []).unwrap();
    }

    #[test]
    fn var_view_metadata_and_reads() {
        let path = tmp("varview.ncx");
        sample(&path);
        let rd = Reader::open(&path).unwrap();
        let v = rd.var("v").unwrap();
        assert_eq!(v.name(), "v");
        assert_eq!(v.dtype(), DataType::F32);
        assert_eq!(v.shape(), vec![2, 3, 4]);
        assert_eq!(v.len(), 24);
        assert!(!v.is_empty());
        let shared = v.read_shared_f32().unwrap();
        assert_eq!(shared.len(), 24);
        let mut one = [0.0f32; 1];
        v.read_f32_into(5, &mut one).unwrap();
        assert_eq!(one[0], 5.0);
        assert!(rd.var("nope").is_err());
    }

    #[test]
    fn metadata_queries() {
        let path = tmp("meta.ncx");
        sample(&path);
        let rd = Reader::open(&path).unwrap();
        assert_eq!(rd.dimensions().len(), 3);
        assert_eq!(rd.dimension("y").unwrap().size, 3);
        assert_eq!(rd.shape("v").unwrap(), vec![2, 3, 4]);
        assert!(rd.variable("nope").is_err());
        assert!(rd.dimension("nope").is_err());
    }
}
