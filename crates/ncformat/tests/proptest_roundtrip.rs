//! Property tests: any dataset we can build must round-trip bit-exactly
//! through the on-disk format, and hyperslab reads must agree with the
//! equivalent in-memory slicing.

use ncformat::{Dataset, Reader, Value};
use proptest::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};

static FILE_ID: AtomicU64 = AtomicU64::new(0);

fn tmp() -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("ncx-proptests");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("case-{}.ncx", FILE_ID.fetch_add(1, Ordering::Relaxed)))
}

/// In-memory reference implementation of a row-major hyperslab.
fn slab_reference(data: &[f32], shape: &[usize], start: &[usize], count: &[usize]) -> Vec<f32> {
    let rank = shape.len();
    let mut strides = vec![1usize; rank];
    for i in (0..rank.saturating_sub(1)).rev() {
        strides[i] = strides[i + 1] * shape[i + 1];
    }
    let total: usize = count.iter().product();
    let mut out = Vec::with_capacity(total);
    let mut idx = vec![0usize; rank];
    for _ in 0..total {
        let mut off = 0;
        for a in 0..rank {
            off += (start[a] + idx[a]) * strides[a];
        }
        out.push(data[off]);
        for a in (0..rank).rev() {
            idx[a] += 1;
            if idx[a] < count[a] {
                break;
            }
            idx[a] = 0;
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn f32_roundtrip(data in proptest::collection::vec(-1e6f32..1e6, 1..200)) {
        let path = tmp();
        let mut ds = Dataset::new();
        ds.add_dimension("n", data.len()).unwrap();
        ds.add_variable_f32("v", &["n"], data.clone()).unwrap();
        ds.write_to_path(&path).unwrap();
        let rd = Reader::open(&path).unwrap();
        prop_assert_eq!(rd.read_all_f32("v").unwrap(), data);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn f64_roundtrip_preserves_bits(data in proptest::collection::vec(any::<f64>().prop_filter("finite", |v| v.is_finite()), 1..100)) {
        let path = tmp();
        let mut ds = Dataset::new();
        ds.add_dimension("n", data.len()).unwrap();
        ds.add_variable_f64("v", &["n"], data.clone()).unwrap();
        ds.write_to_path(&path).unwrap();
        let rd = Reader::open(&path).unwrap();
        let back = rd.read_all_f64("v").unwrap();
        for (a, b) in back.iter().zip(&data) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn slab_matches_reference(
        (t, y, x) in (1usize..5, 1usize..6, 1usize..7),
        seed in any::<u64>(),
    ) {
        let shape = [t, y, x];
        let n = t * y * x;
        let data: Vec<f32> = (0..n).map(|i| (i as f32) * 0.5 + (seed % 97) as f32).collect();

        // Derive a valid slab deterministically from the seed.
        let start = [
            (seed as usize) % t,
            (seed as usize / 7) % y,
            (seed as usize / 49) % x,
        ];
        let count = [
            1 + (seed as usize / 11) % (t - start[0]),
            1 + (seed as usize / 13) % (y - start[1]),
            1 + (seed as usize / 17) % (x - start[2]),
        ];

        let path = tmp();
        let mut ds = Dataset::new();
        ds.add_dimension("t", t).unwrap();
        ds.add_dimension("y", y).unwrap();
        ds.add_dimension("x", x).unwrap();
        ds.add_variable_f32("v", &["t", "y", "x"], data.clone()).unwrap();
        ds.write_to_path(&path).unwrap();

        let rd = Reader::open(&path).unwrap();
        let got = rd.read_slab_f32("v", &start, &count).unwrap();
        let want = slab_reference(&data, &shape, &start, &count);
        prop_assert_eq!(got, want);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn attributes_roundtrip(name in "[a-z]{1,12}", text in ".{0,40}", num in -1e9f64..1e9) {
        let path = tmp();
        let mut ds = Dataset::new();
        ds.set_attribute(&name, Value::from(text.clone()));
        ds.set_attribute("num", Value::from(num));
        ds.write_to_path(&path).unwrap();
        let rd = Reader::open(&path).unwrap();
        prop_assert_eq!(rd.attribute(&name).unwrap().as_text(), Some(text.as_str()));
        prop_assert_eq!(rd.attribute("num").unwrap().as_f64(), Some(num));
        std::fs::remove_file(path).ok();
    }
}
