//! Property tests: every parallel primitive must agree exactly with its
//! serial counterpart for arbitrary inputs and pool sizes (including a
//! single worker), and output order must never depend on steal order.

use par::Pool;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// `par_map` equals serial `map` for any input and any pool width.
    #[test]
    fn par_map_matches_serial_map(
        items in proptest::collection::vec(any::<i64>(), 0..300),
        threads in 1usize..8,
    ) {
        let pool = Pool::new(threads);
        let f = |&x: &i64| x.wrapping_mul(31).wrapping_add(7);
        let parallel = pool.par_map(&items, f);
        let serial: Vec<i64> = items.iter().map(f).collect();
        prop_assert_eq!(parallel, serial);
    }

    /// Indexed map sees every index exactly once, in order.
    #[test]
    fn par_map_indexed_matches_enumerate(
        items in proptest::collection::vec(any::<u32>(), 0..200),
        threads in 1usize..6,
    ) {
        let pool = Pool::new(threads);
        let parallel = pool.par_map_indexed(&items, |i, &x| (i, x));
        let serial: Vec<(usize, u32)> = items.iter().copied().enumerate().collect();
        prop_assert_eq!(parallel, serial);
    }

    /// Lane-scheduled map is order-deterministic for any width, even
    /// widths exceeding the item count or the worker count.
    #[test]
    fn par_map_lanes_matches_serial(
        items in proptest::collection::vec(any::<i32>(), 0..200),
        threads in 1usize..6,
        width in 0usize..12,
    ) {
        let pool = Pool::new(threads);
        let parallel = pool.par_map_lanes(width, &items, |_, i, &x| x.wrapping_add(i as i32));
        let serial: Vec<i32> =
            items.iter().enumerate().map(|(i, &x)| x.wrapping_add(i as i32)).collect();
        prop_assert_eq!(parallel, serial);
    }

    /// `par_chunks_mut` touches each element exactly once with the same
    /// chunk geometry as serial `chunks_mut`.
    #[test]
    fn par_chunks_mut_matches_serial(
        len in 0usize..400,
        chunk in 1usize..64,
        threads in 1usize..6,
    ) {
        let pool = Pool::new(threads);
        let mut parallel = vec![0u64; len];
        pool.par_chunks_mut(&mut parallel, chunk, |ci, c| {
            for (k, v) in c.iter_mut().enumerate() {
                *v = (ci * 1000 + k) as u64;
            }
        });
        let mut serial = vec![0u64; len];
        for (ci, c) in serial.chunks_mut(chunk).enumerate() {
            for (k, v) in c.iter_mut().enumerate() {
                *v = (ci * 1000 + k) as u64;
            }
        }
        prop_assert_eq!(parallel, serial);
    }
}
