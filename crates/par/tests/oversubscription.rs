//! Oversubscription: far more tasks than workers, nested fork/join from
//! inside pool tasks, and scopes opened concurrently from many external
//! threads. None of it may deadlock — blocked threads must help drain
//! the queues. The whole file runs under a hard watchdog so a scheduling
//! bug fails fast instead of hanging CI.

use par::Pool;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// Fails the test if `f` does not finish within `secs`.
fn watchdog<F: FnOnce() + Send + 'static>(secs: u64, f: F) {
    let (tx, rx) = std::sync::mpsc::channel();
    let h = std::thread::spawn(move || {
        f();
        let _ = tx.send(());
    });
    rx.recv_timeout(Duration::from_secs(secs)).expect("deadlock: pool did not make progress");
    h.join().unwrap();
}

#[test]
fn many_more_tasks_than_workers() {
    watchdog(30, || {
        let pool = Pool::new(2);
        let hits = AtomicUsize::new(0);
        pool.scope(|s| {
            for _ in 0..5_000 {
                s.spawn(|| {
                    hits.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(hits.load(Ordering::Relaxed), 5_000);
    });
}

#[test]
fn deeply_nested_join_on_tiny_pool() {
    watchdog(30, || {
        // 1 worker + helping callers: every join blocks a thread that
        // must keep executing queued tasks for the recursion to finish.
        fn fib(pool: &Pool, n: u64) -> u64 {
            if n < 2 {
                return n;
            }
            let (a, b) = pool.join(|| fib(pool, n - 1), || fib(pool, n - 2));
            a + b
        }
        let pool = Pool::new(1);
        assert_eq!(fib(&pool, 16), 987);
    });
}

#[test]
fn nested_scopes_inside_tasks() {
    watchdog(30, || {
        let pool = Pool::new(2);
        let total = AtomicUsize::new(0);
        pool.scope(|outer| {
            for _ in 0..16 {
                outer.spawn(|| {
                    // Each task opens its own scope on the same pool.
                    pool.scope(|inner| {
                        for _ in 0..32 {
                            inner.spawn(|| {
                                total.fetch_add(1, Ordering::Relaxed);
                            });
                        }
                    });
                });
            }
        });
        assert_eq!(total.load(Ordering::Relaxed), 16 * 32);
    });
}

#[test]
fn concurrent_external_callers_share_the_pool() {
    watchdog(30, || {
        let pool = std::sync::Arc::new(Pool::new(2));
        let mut handles = Vec::new();
        for t in 0..6 {
            let pool = std::sync::Arc::clone(&pool);
            handles.push(std::thread::spawn(move || {
                let items: Vec<u64> = (0..500).collect();
                let out = pool.par_map(&items, |&x| x + t);
                assert_eq!(out, items.iter().map(|&x| x + t).collect::<Vec<_>>());
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    });
}

#[test]
fn slow_and_fast_tasks_interleave_without_starvation() {
    watchdog(30, || {
        let pool = Pool::new(4);
        let t0 = Instant::now();
        // One 200ms straggler among 63 fast tasks: total wall time must
        // be far below the serial sum, i.e. the straggler does not gate
        // the other workers.
        let items: Vec<usize> = (0..64).collect();
        let out = pool.par_map(&items, |&i| {
            if i == 0 {
                std::thread::sleep(Duration::from_millis(200));
            }
            i * 2
        });
        assert_eq!(out, (0..64).map(|i| i * 2).collect::<Vec<_>>());
        assert!(t0.elapsed() < Duration::from_secs(10));
    });
}
