//! Span context must survive the pool handoff: a task spawned on the
//! pool inside an ambient span opens a `par_task` child whose parent is
//! that span, even though it executes on a different thread.

use std::collections::HashSet;

#[test]
fn parent_span_ids_survive_pool_handoff() {
    let rx = obs::global().subscribe();
    let pool = par::Pool::new(3);

    let outer = obs::trace::span("outer_work");
    let ctx = outer.context();
    let doubled = pool.par_map(&[1u64, 2, 3, 4, 5, 6, 7, 8], |&x| x * 2);
    assert_eq!(doubled, vec![2, 4, 6, 8, 10, 12, 14, 16]);
    drop(outer);

    let events = rx.drain();
    let mut parents = HashSet::new();
    let mut traces = HashSet::new();
    for e in &events {
        if let obs::EventKind::SpanEnded { name, trace, parent, .. } = &e.kind {
            if &**name == "par_task" && *trace == ctx.trace {
                parents.insert(*parent);
                traces.insert(*trace);
            }
        }
    }
    assert!(
        !parents.is_empty(),
        "pool tasks inside an ambient span must open par_task child spans"
    );
    assert_eq!(parents, HashSet::from([ctx.span]), "every child must point at the outer span");
    assert_eq!(traces, HashSet::from([ctx.trace]), "children share the root's trace id");

    // The outer span itself closed as a root (no parent).
    assert!(events.iter().any(|e| matches!(
        &e.kind,
        obs::EventKind::SpanEnded { name, span, parent: 0, .. }
            if &**name == "outer_work" && *span == ctx.span
    )));
}

#[test]
fn scope_spawn_carries_context_explicitly() {
    let rx = obs::global().subscribe();
    let pool = par::Pool::new(2);

    let root = obs::trace::span("scope_root");
    let ctx = root.context();
    pool.scope(|s| {
        for _ in 0..4 {
            s.spawn(|| {
                // The ambient span on the worker thread must belong to
                // the caller's trace, not be empty or a fresh root.
                let inner = obs::trace::current().expect("context attached on worker");
                assert_eq!(inner.trace, ctx.trace);
            });
        }
    });
    drop(root);
    drop(rx);
}

#[test]
fn no_ambient_span_means_no_par_task_spans() {
    let rx = obs::global().subscribe();
    let pool = par::Pool::new(2);
    // Unique marker computed on the pool so we only look at our events.
    let out = pool.par_map(&[100u64, 200], |&x| x + 11);
    assert_eq!(out, vec![111, 211]);
    // Tasks spawned with no ambient span must not invent root spans.
    let rootless = rx
        .drain()
        .iter()
        .filter(|e| {
            matches!(&e.kind, obs::EventKind::SpanEnded { parent: 0, name, .. } if &**name == "par_task")
        })
        .count();
    assert_eq!(rootless, 0);
}
