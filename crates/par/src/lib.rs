//! Unified work-stealing compute pool — the one parallel substrate for
//! every compute crate in the workspace.
//!
//! The paper's performance story is parallelism at every layer: Ophidia
//! fans analytics out over I/O servers (§4.2.2) while PyCOMPSs overlaps
//! simulation and analysis (§5.1). Before this crate each layer brought
//! its own threading idiom (per-call `thread::scope` in the datacube,
//! nothing at all in the CNN / regridding / index kernels). `par` gives
//! them one persistent substrate:
//!
//! - a process-global pool ([`global`]) sized from
//!   `available_parallelism`, overridable with `PAR_THREADS`;
//! - chunked primitives — [`par_map`], [`par_map_indexed`],
//!   [`par_chunks`], [`par_chunks_mut`] — with **deterministic output
//!   ordering** regardless of steal order (slot `i` always holds
//!   `f(items[i])`);
//! - [`par_map_lanes`]: a width-bounded, dynamically self-scheduling
//!   map modelling the paper's I/O-server lanes — at most `width` lane
//!   tasks, each claiming the next unprocessed item, so one slow item
//!   never idles a statically dealt stripe;
//! - [`join`] and [`Pool::scope`] for fork/join with borrows, safe to
//!   nest from inside pool workers (blocked threads help execute);
//! - obs instrumentation: `par_workers` / `par_workers_busy` gauges,
//!   `par_steals_total` / `par_tasks_total` counters, `par_queue_depth`
//!   and `par_task_us` metrics, all labelled by pool name.
//!
//! Layering is strict: `obs` → `par` → everything else.

mod pool;

pub use pool::{Pool, Scope, WorkerStats};

use std::mem::{ManuallyDrop, MaybeUninit};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Environment variable overriding the global pool's worker count.
pub const THREADS_ENV: &str = "PAR_THREADS";

/// The process-global pool, created on first use with
/// `available_parallelism` workers (or `PAR_THREADS` when set to a
/// positive integer). Shared by every compute crate so the process has
/// one set of worker threads, not one per subsystem.
pub fn global() -> &'static Pool {
    static GLOBAL: OnceLock<Pool> = OnceLock::new();
    GLOBAL.get_or_init(|| {
        let threads = std::env::var(THREADS_ENV)
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1));
        Pool::with_name(threads, "global")
    })
}

/// The calling thread's worker index on the global pool, if any.
pub fn current_worker() -> Option<usize> {
    global().current_worker()
}

/// `f` over every item, on the global pool. Output order matches input
/// order. See [`Pool::par_map`].
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    global().par_map(items, f)
}

/// Indexed variant of [`par_map`], on the global pool.
pub fn par_map_indexed<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    global().par_map_indexed(items, f)
}

/// Width-bounded dynamic map on the global pool. See
/// [`Pool::par_map_lanes`].
pub fn par_map_lanes<T, R, F>(width: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, usize, &T) -> R + Sync,
{
    global().par_map_lanes(width, items, f)
}

/// `f(chunk_index, chunk)` over `chunk`-sized pieces of `data`, on the
/// global pool.
pub fn par_chunks<T, F>(data: &[T], chunk: usize, f: F)
where
    T: Sync,
    F: Fn(usize, &[T]) + Sync,
{
    global().par_chunks(data, chunk, f)
}

/// `f(chunk_index, chunk)` over disjoint mutable `chunk`-sized pieces
/// of `data`, on the global pool.
pub fn par_chunks_mut<T, F>(data: &mut [T], chunk: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    global().par_chunks_mut(data, chunk, f)
}

/// Fork/join on the global pool: `a` on the calling thread, `b` queued.
pub fn join<A, RA, B, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB + Send,
    RB: Send,
{
    global().join(a, b)
}

/// Scoped spawning on the global pool.
pub fn scope<'scope, OP, R>(op: OP) -> R
where
    OP: FnOnce(&Scope<'scope>) -> R,
{
    global().scope(op)
}

/// A raw pointer into a result buffer that many tasks write disjoint
/// slots of. `Copy` so every spawned closure can capture it by value.
struct Slots<R>(*mut MaybeUninit<R>);

impl<R> Clone for Slots<R> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<R> Copy for Slots<R> {}

// SAFETY: the pointer is only ever used to write slot `i` from the one
// task that owns index `i`; the owning Vec outlives the scope.
unsafe impl<R: Send> Send for Slots<R> {}
unsafe impl<R: Send> Sync for Slots<R> {}

impl<R> Slots<R> {
    /// # Safety
    /// Each index must be written by exactly one task, and all writes
    /// must complete (scope drained) before the buffer is assumed
    /// initialized.
    unsafe fn write(self, i: usize, v: R) {
        self.0.add(i).write(MaybeUninit::new(v));
    }
}

/// Assumes all `n` slots were initialized and converts the buffer.
///
/// # Safety
/// Every element of `buf` must have been written.
unsafe fn assume_init_vec<R>(buf: Vec<MaybeUninit<R>>) -> Vec<R> {
    let mut buf = ManuallyDrop::new(buf);
    let (ptr, len, cap) = (buf.as_mut_ptr(), buf.len(), buf.capacity());
    Vec::from_raw_parts(ptr as *mut R, len, cap)
}

fn uninit_buf<R>(n: usize) -> Vec<MaybeUninit<R>> {
    let mut buf = Vec::with_capacity(n);
    buf.resize_with(n, MaybeUninit::uninit);
    buf
}

impl Pool {
    /// `f` over every item; the result at index `i` is `f(&items[i])`
    /// no matter which worker computed it. Items are dealt to tasks in
    /// contiguous chunks sized for ~4 tasks per worker so stealing can
    /// rebalance without drowning in per-item dispatch.
    pub fn par_map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        self.par_map_indexed(items, |_, t| f(t))
    }

    /// Indexed variant of [`Pool::par_map`].
    pub fn par_map_indexed<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        let n = items.len();
        if n <= 1 || self.threads() == 1 {
            return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
        }
        let chunk = n.div_ceil(self.threads() * 4).max(1);
        let mut out = uninit_buf::<R>(n);
        let slots = Slots(out.as_mut_ptr());
        let f = &f;
        self.scope(|s| {
            let mut start = 0;
            while start < n {
                let end = (start + chunk).min(n);
                s.spawn(move || {
                    for (k, item) in items[start..end].iter().enumerate() {
                        let i = start + k;
                        // SAFETY: this task owns exactly [start, end).
                        unsafe { slots.write(i, f(i, item)) };
                    }
                });
                start = end;
            }
        });
        // SAFETY: the chunks above cover 0..n exactly once and the
        // scope has drained.
        unsafe { assume_init_vec(out) }
    }

    /// Width-bounded, dynamically self-scheduling map: at most `width`
    /// lane tasks run, each repeatedly claiming the next unclaimed item
    /// — so a slow item stalls only its own lane while the remaining
    /// lanes drain the rest. `f(lane, index, item)`; output order
    /// matches input order. This models the paper's Ophidia I/O-server
    /// fan-out (§4.2.2): `width` is the configured server count, the
    /// lane is the logical server that actually executed the fragment.
    pub fn par_map_lanes<T, R, F>(&self, width: usize, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, usize, &T) -> R + Sync,
    {
        let n = items.len();
        let width = width.min(n).max(1);
        if n == 0 {
            return Vec::new();
        }
        if width == 1 {
            return items.iter().enumerate().map(|(i, t)| f(0, i, t)).collect();
        }
        let next = AtomicUsize::new(0);
        let mut out = uninit_buf::<R>(n);
        let slots = Slots(out.as_mut_ptr());
        let (f, next) = (&f, &next);
        self.scope(|s| {
            for lane in 0..width {
                s.spawn(move || loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    // SAFETY: fetch_add hands out each index once.
                    unsafe { slots.write(i, f(lane, i, &items[i])) };
                });
            }
        });
        // SAFETY: indices 0..n each claimed exactly once; scope drained.
        unsafe { assume_init_vec(out) }
    }

    /// `f(chunk_index, chunk)` over `chunk`-sized pieces of `data`.
    pub fn par_chunks<T, F>(&self, data: &[T], chunk: usize, f: F)
    where
        T: Sync,
        F: Fn(usize, &[T]) + Sync,
    {
        let chunk = chunk.max(1);
        if data.len() <= chunk || self.threads() == 1 {
            for (i, c) in data.chunks(chunk).enumerate() {
                f(i, c);
            }
            return;
        }
        let f = &f;
        self.scope(|s| {
            for (i, c) in data.chunks(chunk).enumerate() {
                s.spawn(move || f(i, c));
            }
        });
    }

    /// `f(chunk_index, chunk)` over disjoint mutable `chunk`-sized
    /// pieces of `data`. Disjointness comes from `chunks_mut`, so no
    /// locking and no unsafe at the call site.
    pub fn par_chunks_mut<T, F>(&self, data: &mut [T], chunk: usize, f: F)
    where
        T: Send,
        F: Fn(usize, &mut [T]) + Sync,
    {
        let chunk = chunk.max(1);
        if data.len() <= chunk || self.threads() == 1 {
            for (i, c) in data.chunks_mut(chunk).enumerate() {
                f(i, c);
            }
            return;
        }
        let f = &f;
        self.scope(|s| {
            for (i, c) in data.chunks_mut(chunk).enumerate() {
                s.spawn(move || f(i, c));
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::time::Duration;

    #[test]
    fn par_map_preserves_order() {
        let pool = Pool::new(4);
        let items: Vec<u64> = (0..1000).collect();
        let out = pool.par_map(&items, |&x| x * 2 + 1);
        assert_eq!(out, items.iter().map(|&x| x * 2 + 1).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_on_one_thread_matches_serial() {
        let pool = Pool::new(1);
        let items: Vec<i32> = (-50..50).collect();
        assert_eq!(
            pool.par_map(&items, |&x| x * x),
            items.iter().map(|&x| x * x).collect::<Vec<_>>()
        );
    }

    #[test]
    fn par_map_empty_and_singleton() {
        let pool = Pool::new(3);
        assert_eq!(pool.par_map(&[] as &[u8], |&b| b), Vec::<u8>::new());
        assert_eq!(pool.par_map(&[7u8], |&b| b + 1), vec![8]);
    }

    #[test]
    fn par_map_lanes_order_independent_of_lane_timing() {
        let pool = Pool::new(4);
        let items: Vec<usize> = (0..64).collect();
        let out = pool.par_map_lanes(4, &items, |lane, i, &x| {
            if x % 7 == 0 {
                std::thread::sleep(Duration::from_millis(2));
            }
            assert!(lane < 4);
            (i, x * 10)
        });
        for (i, &(idx, v)) in out.iter().enumerate() {
            assert_eq!(idx, i);
            assert_eq!(v, i * 10);
        }
    }

    #[test]
    fn par_map_lanes_width_clamps() {
        let pool = Pool::new(2);
        let items = vec![1u32, 2, 3];
        // Width larger than item count and zero width both behave.
        assert_eq!(pool.par_map_lanes(100, &items, |_, _, &x| x + 1), vec![2, 3, 4]);
        assert_eq!(pool.par_map_lanes(0, &items, |_, _, &x| x + 1), vec![2, 3, 4]);
    }

    #[test]
    fn par_chunks_mut_writes_disjoint_pieces() {
        let pool = Pool::new(4);
        let mut data = vec![0u64; 103];
        pool.par_chunks_mut(&mut data, 10, |ci, c| {
            for (k, v) in c.iter_mut().enumerate() {
                *v = (ci * 10 + k) as u64;
            }
        });
        assert_eq!(data, (0..103).collect::<Vec<u64>>());
    }

    #[test]
    fn join_returns_both_halves() {
        let pool = Pool::new(2);
        let (a, b) = pool.join(|| 21 * 2, || "right".len());
        assert_eq!((a, b), (42, 5));
    }

    #[test]
    fn nested_join_from_workers_makes_progress() {
        // Recursive fork/join fanning far past the worker count.
        fn sum(pool: &Pool, lo: u64, hi: u64) -> u64 {
            if hi - lo <= 8 {
                return (lo..hi).sum();
            }
            let mid = lo + (hi - lo) / 2;
            let (a, b) = pool.join(|| sum(pool, lo, mid), || sum(pool, mid, hi));
            a + b
        }
        let pool = Pool::new(2);
        assert_eq!(sum(&pool, 0, 1000), 499_500);
    }

    #[test]
    fn scope_runs_every_spawn() {
        let pool = Pool::new(3);
        let hits = AtomicU64::new(0);
        pool.scope(|s| {
            for _ in 0..100 {
                s.spawn(|| {
                    hits.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(hits.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn task_panic_propagates_after_drain() {
        let pool = Pool::new(2);
        let ran = AtomicU64::new(0);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.scope(|s| {
                s.spawn(|| panic!("boom"));
                for _ in 0..9 {
                    s.spawn(|| {
                        ran.fetch_add(1, Ordering::SeqCst);
                    });
                }
            });
        }));
        assert!(r.is_err());
        // Every non-panicking sibling still ran to completion.
        assert_eq!(ran.load(Ordering::SeqCst), 9);
    }

    #[test]
    fn global_pool_is_shared_and_sized() {
        let p1 = global() as *const Pool;
        let p2 = global() as *const Pool;
        assert_eq!(p1, p2);
        assert!(global().threads() >= 1);
    }

    #[test]
    fn current_worker_is_none_off_pool_and_some_on_pool() {
        let pool = Pool::new(2);
        assert!(pool.current_worker().is_none());
        let seen = pool.par_map_lanes(2, &[0u8; 16], |_, _, _| pool.current_worker());
        // Tasks may also run on the helping caller thread (None), but
        // any Some(w) must be a valid worker index.
        for w in seen.into_iter().flatten() {
            assert!(w < 2);
        }
    }
}
