//! The persistent work-stealing pool and its scoped task API.
//!
//! Design: each worker owns a deque (own end popped LIFO for locality,
//! victims stolen FIFO) plus one shared injector queue for tasks
//! submitted from outside the pool. Queues are short — tasks are
//! coarse-grained kernels, not micro-ops — so plain `Mutex<VecDeque>`
//! queues beat a lock-free deque on simplicity without showing up in
//! profiles; `par_overhead` in `crates/bench` keeps that claim honest.
//!
//! Deadlock freedom: a thread waiting for a [`Scope`] to drain never
//! parks unconditionally — it *helps*, executing queued tasks (its own
//! or stolen) until the scope's pending count reaches zero. That is what
//! makes nested `join`/`scope` calls from inside pool workers safe even
//! when tasks heavily oversubscribe the workers.

use obs::{Counter, Gauge, Histogram};
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// A lifetime-erased unit of work. Scopes guarantee every job completes
/// before the borrows it captures go out of scope.
type Job = Box<dyn FnOnce() + Send>;

thread_local! {
    /// (pool identity, worker index) when the current thread is a pool
    /// worker; `None` on every other thread.
    static WORKER: std::cell::Cell<Option<(usize, usize)>> =
        const { std::cell::Cell::new(None) };
}

struct Metrics {
    tasks: Counter,
    steals: Counter,
    queue_depth: Gauge,
    busy: Gauge,
    task_us: Histogram,
}

impl Metrics {
    fn new(pool_name: &'static str) -> Self {
        let r = obs::registry();
        let l: &[(&'static str, &str)] = &[("pool", pool_name)];
        Metrics {
            tasks: r.counter("par_tasks_total", l),
            steals: r.counter("par_steals_total", l),
            queue_depth: r.gauge("par_queue_depth", l),
            busy: r.gauge("par_workers_busy", l),
            task_us: r.histogram("par_task_us", l),
        }
    }
}

/// Per-worker profiling cells (see [`Pool::worker_stats`]). Busy time is
/// accumulated as each job finishes; idle is derived at snapshot time as
/// pool-lifetime minus busy, so parked workers need no bookkeeping.
#[derive(Default)]
struct WorkerStat {
    busy_us: AtomicU64,
    steals: AtomicU64,
    tasks: AtomicU64,
}

/// Snapshot of one worker's profile since pool creation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerStats {
    /// Worker index within the pool.
    pub worker: usize,
    /// Time spent executing jobs, in microseconds.
    pub busy_us: u64,
    /// Time not executing jobs (queue scans, stealing, parked), µs.
    pub idle_us: u64,
    /// Jobs this worker took from a sibling's deque.
    pub steals: u64,
    /// Jobs this worker executed.
    pub tasks: u64,
}

impl WorkerStats {
    /// Fraction of the pool's lifetime this worker spent executing jobs.
    pub fn utilization(&self) -> f64 {
        let total = self.busy_us + self.idle_us;
        if total == 0 {
            0.0
        } else {
            self.busy_us as f64 / total as f64
        }
    }
}

struct Shared {
    /// One local deque per worker.
    locals: Vec<Mutex<VecDeque<Job>>>,
    /// Submission queue for tasks arriving from non-worker threads.
    injector: Mutex<VecDeque<Job>>,
    /// Total queued (not yet started) jobs across all queues; lets
    /// workers park without racing a concurrent push.
    queued: AtomicUsize,
    shutdown: AtomicBool,
    sleep_mx: Mutex<()>,
    sleep_cv: Condvar,
    metrics: Metrics,
    /// One profiling cell per worker.
    stats: Vec<WorkerStat>,
    /// Pool creation time; the denominator for idle derivation.
    epoch: Instant,
}

impl Shared {
    /// Identity used to match `WORKER` entries to this pool.
    fn id(self: &Arc<Self>) -> usize {
        Arc::as_ptr(self) as usize
    }

    fn push(self: &Arc<Self>, job: Job) {
        let me = WORKER.with(|w| w.get());
        let queue = match me {
            // Nested spawns from a worker of *this* pool stay local.
            Some((pool, idx)) if pool == self.id() => &self.locals[idx],
            _ => &self.injector,
        };
        queue.lock().unwrap().push_back(job);
        self.queued.fetch_add(1, Ordering::SeqCst);
        self.metrics.queue_depth.add(1);
        // Notify under the sleep lock so a worker that just checked
        // `queued` and is about to wait cannot miss the wakeup.
        let _g = self.sleep_mx.lock().unwrap();
        self.sleep_cv.notify_one();
    }

    fn take(&self, queue: &Mutex<VecDeque<Job>>, lifo: bool) -> Option<Job> {
        let mut q = queue.lock().unwrap();
        let job = if lifo { q.pop_back() } else { q.pop_front() };
        if job.is_some() {
            self.queued.fetch_sub(1, Ordering::SeqCst);
            self.metrics.queue_depth.add(-1);
        }
        job
    }

    /// Next job for worker `idx`: own deque first (LIFO), then the
    /// injector, then steal from siblings (FIFO), rotating the start
    /// point so victims are spread evenly.
    fn find_job(&self, idx: Option<usize>) -> Option<Job> {
        if self.queued.load(Ordering::SeqCst) == 0 {
            return None;
        }
        if let Some(i) = idx {
            if let Some(j) = self.take(&self.locals[i], true) {
                return Some(j);
            }
        }
        if let Some(j) = self.take(&self.injector, false) {
            return Some(j);
        }
        let n = self.locals.len();
        let start = idx.map(|i| i + 1).unwrap_or(0);
        for k in 0..n {
            let v = (start + k) % n;
            if Some(v) == idx {
                continue;
            }
            if let Some(j) = self.take(&self.locals[v], false) {
                self.metrics.steals.inc();
                if let Some(i) = idx {
                    self.stats[i].steals.fetch_add(1, Ordering::Relaxed);
                }
                return Some(j);
            }
        }
        None
    }

    /// Execute one job, attributing its time to `worker` when the
    /// executing thread is one of this pool's workers (helping caller
    /// threads contribute to pool totals but not to a worker's profile).
    fn run_job(&self, job: Job, worker: Option<usize>) {
        self.metrics.busy.add(1);
        // Chaos site "par.worker": a stalled (slow) pool worker. Only the
        // Stall fault applies here — pool jobs have no error channel, so
        // harder faults belong to the dataflow task layer above.
        if let Some(obs::chaos::Fault::Stall { millis }) = obs::chaos::fire("par.worker") {
            std::thread::sleep(std::time::Duration::from_millis(millis));
        }
        let t0 = Instant::now();
        job();
        let us = t0.elapsed().as_micros() as u64;
        self.metrics.task_us.observe(us);
        self.metrics.tasks.inc();
        self.metrics.busy.add(-1);
        if let Some(i) = worker {
            self.stats[i].busy_us.fetch_add(us, Ordering::Relaxed);
            self.stats[i].tasks.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn worker_loop(self: Arc<Self>, idx: usize) {
        WORKER.with(|w| w.set(Some((self.id(), idx))));
        loop {
            if let Some(job) = self.find_job(Some(idx)) {
                self.run_job(job, Some(idx));
                continue;
            }
            let g = self.sleep_mx.lock().unwrap();
            if self.shutdown.load(Ordering::SeqCst) {
                return;
            }
            if self.queued.load(Ordering::SeqCst) == 0 {
                // Woken by a push or by shutdown; loop re-checks both.
                drop(self.sleep_cv.wait(g).unwrap());
            }
        }
    }
}

/// A persistent pool of worker threads executing scoped tasks with
/// work stealing. Calling threads are not passive: any thread blocked
/// on a [`Scope`] helps execute queued tasks, so parallel width is
/// effectively `threads() + concurrent callers`.
pub struct Pool {
    shared: Arc<Shared>,
    handles: Vec<std::thread::JoinHandle<()>>,
    name: &'static str,
}

impl Pool {
    /// A pool with `threads` workers (clamped to at least 1), reporting
    /// metrics under `pool="adhoc"`.
    pub fn new(threads: usize) -> Self {
        Self::with_name(threads, "adhoc")
    }

    /// A pool with `threads` workers whose obs instruments carry the
    /// given `pool` label. Pools sharing a name share instruments.
    pub fn with_name(threads: usize, name: &'static str) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            locals: (0..threads).map(|_| Mutex::new(VecDeque::new())).collect(),
            injector: Mutex::new(VecDeque::new()),
            queued: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            sleep_mx: Mutex::new(()),
            sleep_cv: Condvar::new(),
            metrics: Metrics::new(name),
            stats: (0..threads).map(|_| WorkerStat::default()).collect(),
            epoch: Instant::now(),
        });
        obs::registry().gauge("par_workers", &[("pool", name)]).set(threads as i64);
        let handles = (0..threads)
            .map(|i| {
                let s = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("par-{name}-{i}"))
                    .spawn(move || s.worker_loop(i))
                    .expect("spawn pool worker")
            })
            .collect();
        Pool { shared, handles, name }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.shared.locals.len()
    }

    /// The pool's obs label.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The calling thread's worker index, if it is one of this pool's
    /// workers. Kernels use this for execution-lane attribution.
    pub fn current_worker(&self) -> Option<usize> {
        match WORKER.with(|w| w.get()) {
            Some((pool, idx)) if pool == self.shared.id() => Some(idx),
            _ => None,
        }
    }

    /// Per-worker busy/idle/steal profile since pool creation, and keep
    /// the `par_worker_busy_pct{pool,worker}` / `par_pool_busy_pct{pool}`
    /// utilization gauges current in the obs registry. Idle is derived
    /// (lifetime − busy), so a snapshot taken mid-job undercounts busy
    /// by the in-flight job's elapsed time.
    pub fn worker_stats(&self) -> Vec<WorkerStats> {
        let lifetime_us = self.shared.epoch.elapsed().as_micros() as u64;
        let r = obs::registry();
        let stats: Vec<WorkerStats> = self
            .shared
            .stats
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let busy_us = s.busy_us.load(Ordering::Relaxed);
                WorkerStats {
                    worker: i,
                    busy_us,
                    idle_us: lifetime_us.saturating_sub(busy_us),
                    steals: s.steals.load(Ordering::Relaxed),
                    tasks: s.tasks.load(Ordering::Relaxed),
                }
            })
            .collect();
        for w in &stats {
            r.gauge(
                "par_worker_busy_pct",
                &[("pool", self.name), ("worker", &w.worker.to_string())],
            )
            .set((w.utilization() * 100.0).round() as i64);
        }
        let pool_busy: u64 = stats.iter().map(|w| w.busy_us).sum();
        let denom = lifetime_us.saturating_mul(stats.len() as u64).max(1);
        r.gauge("par_pool_busy_pct", &[("pool", self.name)])
            .set((pool_busy as f64 / denom as f64 * 100.0).round() as i64);
        stats
    }

    /// Runs `op` with a [`Scope`] on which tasks borrowing the caller's
    /// stack can be spawned; returns only after every spawned task has
    /// finished. Panics from `op` or any task are propagated (the first
    /// task panic wins over later ones).
    pub fn scope<'scope, OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce(&Scope<'scope>) -> R,
    {
        let state = Arc::new(ScopeState {
            pending: AtomicUsize::new(0),
            panic: Mutex::new(None),
            done_mx: Mutex::new(()),
            done_cv: Condvar::new(),
        });
        let scope = Scope {
            shared: Arc::clone(&self.shared),
            state: Arc::clone(&state),
            _marker: PhantomData,
        };
        let result = catch_unwind(AssertUnwindSafe(|| op(&scope)));
        // Always drain before returning: spawned tasks borrow the
        // caller's stack, so unwinding past them would be unsound.
        self.help_until_done(&state);
        match result {
            Err(p) => resume_unwind(p),
            Ok(r) => {
                if let Some(p) = state.panic.lock().unwrap().take() {
                    resume_unwind(p);
                }
                r
            }
        }
    }

    /// Runs `a` on the calling thread while `b` runs on the pool;
    /// returns both results. Nests freely: a worker blocked here keeps
    /// executing other queued tasks, so oversubscription cannot
    /// deadlock.
    pub fn join<A, RA, B, RB>(&self, a: A, b: B) -> (RA, RB)
    where
        A: FnOnce() -> RA,
        B: FnOnce() -> RB + Send,
        RB: Send,
    {
        let mut rb = None;
        let ra = self.scope(|s| {
            s.spawn(|| rb = Some(b()));
            a()
        });
        (ra, rb.expect("join: spawned half did not run"))
    }

    /// Executes queued work until `state.pending` drains to zero.
    fn help_until_done(&self, state: &ScopeState) {
        let me = self.current_worker();
        while state.pending.load(Ordering::SeqCst) != 0 {
            if let Some(job) = self.shared.find_job(me) {
                self.shared.run_job(job, me);
                continue;
            }
            // Nothing stealable right now (tasks are in flight on other
            // workers): sleep briefly on the scope's own condvar, which
            // the final decrement notifies.
            let g = state.done_mx.lock().unwrap();
            if state.pending.load(Ordering::SeqCst) != 0 {
                let _ = state.done_cv.wait_timeout(g, Duration::from_micros(200)).unwrap();
            }
        }
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        {
            let _g = self.shared.sleep_mx.lock().unwrap();
            self.shared.sleep_cv.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

struct ScopeState {
    pending: AtomicUsize,
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
    done_mx: Mutex<()>,
    done_cv: Condvar,
}

/// Handle for spawning tasks that may borrow data living at least as
/// long as `'scope`. Obtained from [`Pool::scope`], which blocks until
/// all spawned tasks complete.
pub struct Scope<'scope> {
    shared: Arc<Shared>,
    state: Arc<ScopeState>,
    /// Invariant over `'scope` (mirrors `std::thread::Scope`).
    _marker: PhantomData<&'scope mut &'scope ()>,
}

impl<'scope> Scope<'scope> {
    /// Queues `f` on the pool. The closure may borrow anything that
    /// outlives `'scope`; the surrounding [`Pool::scope`] call will not
    /// return until it has run.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'scope,
    {
        self.state.pending.fetch_add(1, Ordering::SeqCst);
        let state = Arc::clone(&self.state);
        // Capture the spawning thread's span context so causality
        // survives the hop onto a pool worker: the job re-attaches it
        // and (when someone is tracing) runs under a child span.
        let ctx = obs::trace::current();
        let job: Box<dyn FnOnce() + Send + 'scope> = Box::new(move || {
            let result = {
                let _ctx = ctx.map(obs::SpanContext::attach);
                let _span = match ctx {
                    Some(_) if obs::global_active() => Some(obs::trace::span(par_task_name())),
                    _ => None,
                };
                catch_unwind(AssertUnwindSafe(f))
            };
            if let Err(p) = result {
                let mut slot = state.panic.lock().unwrap();
                slot.get_or_insert(p);
            }
            if state.pending.fetch_sub(1, Ordering::SeqCst) == 1 {
                let _g = state.done_mx.lock().unwrap();
                state.done_cv.notify_all();
            }
        });
        // SAFETY: `Pool::scope` blocks (helping) until `pending` is
        // zero before the borrows captured in `job` can expire, even if
        // the scope closure or another task panics. Erasing the
        // lifetime is therefore sound; this is the same latch argument
        // rayon's scope makes.
        let job: Job = unsafe {
            std::mem::transmute::<Box<dyn FnOnce() + Send + 'scope>, Box<dyn FnOnce() + Send>>(job)
        };
        self.shared.push(job);
    }
}

/// Shared name for pool-task spans (avoids an allocation per spawn).
fn par_task_name() -> Arc<str> {
    static NAME: OnceLock<Arc<str>> = OnceLock::new();
    Arc::clone(NAME.get_or_init(|| Arc::from("par_task")))
}
