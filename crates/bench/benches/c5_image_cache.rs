//! C5 — Container Image Creation: cold builds vs layer-cached rebuilds.
//!
//! Section 4.1's image service compiles workflow software per target
//! platform; the measurable property the paper's redeployment story rests
//! on is that a warm layer cache makes subsequent builds nearly free.
//! Measured: building the case study's three images cold, rebuilding them
//! warm, and building a sibling workflow that shares the software prefix.

use criterion::{criterion_group, criterion_main, Criterion};
use hpcwaas::containers::{Arch, BuildService, ImageSpec};

fn specs() -> Vec<ImageSpec> {
    let mk = |name: &str, packages: &[&str]| ImageSpec {
        name: name.into(),
        base: "rockylinux9".into(),
        packages: packages.iter().map(|s| s.to_string()).collect(),
        arch: Arch::X86_64,
    };
    vec![
        mk("esm_image", &["mpi", "netcdf", "esm-surrogate"]),
        mk("analytics_image", &["mpi", "netcdf", "ophidia-engine"]),
        mk("ml_image", &["mpi", "netcdf", "tinyml", "tc-cnn-weights"]),
    ]
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("c5_image_cache");

    g.bench_function("cold_build_3_images", |b| {
        b.iter(|| {
            let mut svc = BuildService::new();
            let mut total = 0u64;
            for s in specs() {
                total += svc.build(&s).cost_ms;
            }
            std::hint::black_box(total)
        });
    });

    g.bench_function("warm_rebuild_3_images", |b| {
        b.iter_batched(
            || {
                let mut svc = BuildService::new();
                for s in specs() {
                    svc.build(&s);
                }
                svc
            },
            |mut svc| {
                let mut total = 0u64;
                for s in specs() {
                    total += svc.build(&s).cost_ms;
                }
                std::hint::black_box(total)
            },
            criterion::BatchSize::SmallInput,
        );
    });

    g.bench_function("sibling_workflow_shared_prefix", |b| {
        b.iter_batched(
            || {
                let mut svc = BuildService::new();
                for s in specs() {
                    svc.build(&s);
                }
                svc
            },
            |mut svc| {
                let sibling = ImageSpec {
                    name: "other_wf".into(),
                    base: "rockylinux9".into(),
                    packages: vec!["mpi".into(), "netcdf".into(), "other-app".into()],
                    arch: Arch::X86_64,
                };
                std::hint::black_box(svc.build(&sibling).cost_ms)
            },
            criterion::BatchSize::SmallInput,
        );
    });

    g.finish();

    // Report the virtual costs once (the paper-relevant quantity).
    let mut svc = BuildService::new();
    let cold: u64 = specs().iter().map(|s| svc.build(s).cost_ms).sum();
    let warm: u64 = specs().iter().map(|s| svc.build(s).cost_ms).sum();
    eprintln!("[c5] virtual build cost: cold {cold} ms, warm {warm} ms");
}

criterion_group!(benches, bench);
criterion_main!(benches);
