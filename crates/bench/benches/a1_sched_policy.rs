//! A1 (ablation) — the scheduler portfolio head-to-head.
//!
//! Section 3 argues an integrated WMS "can allow for better optimization
//! in terms of data movement and access". The four policies (FIFO,
//! data-locality, HEFT upward-rank, one-step lookahead) run the same
//! three DAG shapes and are compared on makespan and bytes moved:
//!
//! * `chain`    — 8 independent producer→transform→transform→transform
//!   chains with 1 MB intermediates. Locality should keep each chain on
//!   the worker that holds its data (moved bytes ≈ 0).
//! * `fanout`   — one 1 MB producer feeding 16 independent consumers.
//!   No policy can avoid movement here; placement barely matters.
//! * `workflow` — 12 short analysis tasks submitted *before* a deep
//!   6-deep simulation chain, the shape of the paper's mixed workload.
//!   FIFO drains the fan-out first and only then starts the chain that
//!   dominates the critical path; HEFT's upward rank starts the chain
//!   immediately, overlapping it with the fan-out.
//!
//! Per shape × policy a `[a1_sched] shape=… policy=… makespan_ms=…
//! bytes_moved_mb=…` line goes to stdout for `scripts/bench_record.sh`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dataflow::prelude::*;
use std::time::{Duration, Instant};

const BLOB: usize = 1 << 20;

fn runtime(policy: Policy) -> Runtime<Bytes> {
    let config = RuntimeConfig {
        workers: vec![WorkerProfile::cpu(4); 4],
        policy,
        ..RuntimeConfig::with_cpu_workers(1)
    };
    Runtime::new(config)
}

/// 8 independent 4-stage chains with 1 MB intermediates.
fn shape_chain(rt: &Runtime<Bytes>) {
    let mut frontier = Vec::new();
    for k in 0..8 {
        let h = rt
            .task("produce")
            .writes(&[format!("blob{k}").as_str()])
            .run(|_| {
                std::thread::sleep(Duration::from_millis(2));
                Ok(vec![Bytes(vec![7u8; BLOB])])
            })
            .unwrap();
        frontier.push(h.outputs[0].clone());
    }
    for stage in 0..3 {
        let mut next = Vec::new();
        for (k, input) in frontier.iter().enumerate() {
            let h = rt
                .task("transform")
                .reads(std::slice::from_ref(input))
                .writes(&[format!("t{stage}-{k}").as_str()])
                .run(|inp| {
                    std::thread::sleep(Duration::from_millis(2));
                    Ok(vec![Bytes(inp[0].0.clone())])
                })
                .unwrap();
            next.push(h.outputs[0].clone());
        }
        frontier = next;
    }
}

/// One 1 MB producer feeding 16 independent consumers.
fn shape_fanout(rt: &Runtime<Bytes>) {
    let src = rt
        .task("produce")
        .writes(&["src"])
        .run(|_| {
            std::thread::sleep(Duration::from_millis(2));
            Ok(vec![Bytes(vec![7u8; BLOB])])
        })
        .unwrap();
    for k in 0..16 {
        rt.task("consume")
            .reads(&[src.outputs[0].clone()])
            .writes(&[format!("c{k}").as_str()])
            .run(|inp| {
                std::thread::sleep(Duration::from_millis(2));
                Ok(vec![Bytes::from_u64(inp[0].0.len() as u64)])
            })
            .unwrap();
    }
}

/// 12 short tasks submitted before a deep 6-task chain: the critical path
/// is the chain, but submission order hides that from FIFO.
fn shape_workflow(rt: &Runtime<Bytes>) {
    for k in 0..12 {
        rt.task("analysis")
            .writes(&[format!("a{k}").as_str()])
            .run(|_| {
                std::thread::sleep(Duration::from_millis(3));
                Ok(vec![Bytes::from_u64(1)])
            })
            .unwrap();
    }
    let mut prev: Option<dataflow::DataRef> = None;
    for step in 0..6 {
        let mut t = rt.task("simulate");
        if let Some(p) = &prev {
            t = t.reads(std::slice::from_ref(p));
        }
        let h = t
            .writes(&[format!("sim{step}").as_str()])
            .run(|_| {
                std::thread::sleep(Duration::from_millis(6));
                Ok(vec![Bytes::from_u64(0)])
            })
            .unwrap();
        prev = Some(h.outputs[0].clone());
    }
}

type ShapeFn = fn(&Runtime<Bytes>);

const SHAPES: [(&str, ShapeFn); 3] =
    [("chain", shape_chain), ("fanout", shape_fanout), ("workflow", shape_workflow)];

/// Runs one shape under one policy; returns (makespan, bytes moved).
fn run(policy: Policy, build: ShapeFn) -> (Duration, u64) {
    let rt = runtime(policy);
    let start = Instant::now();
    build(&rt);
    rt.barrier().unwrap();
    let makespan = start.elapsed();
    let moved = rt.ledger().bytes_moved;
    rt.shutdown();
    (makespan, moved)
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("a1_sched_policy");
    g.sample_size(10);
    for (shape, build) in SHAPES {
        for policy in Policy::ALL {
            g.bench_with_input(BenchmarkId::new(shape, policy), &policy, |b, &p| {
                b.iter(|| run(p, build));
            });
        }
    }
    g.finish();

    // Summary lines for bench_record.sh: median makespan of 5 runs plus
    // mean moved bytes, per shape x policy.
    for (shape, build) in SHAPES {
        for policy in Policy::ALL {
            let mut spans: Vec<u64> = Vec::new();
            let mut moved_total = 0u64;
            for _ in 0..5 {
                let (span, moved) = run(policy, build);
                spans.push(span.as_micros() as u64);
                moved_total += moved;
            }
            spans.sort_unstable();
            println!(
                "[a1_sched] shape={shape} policy={policy} makespan_ms={:.1} bytes_moved_mb={:.1}",
                spans[spans.len() / 2] as f64 / 1000.0,
                moved_total as f64 / 5.0 / (1 << 20) as f64
            );
        }
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
