//! A1 (ablation) — scheduler policy: FIFO vs data-locality placement.
//!
//! Section 3 argues an integrated WMS "can allow for better optimization
//! in terms of data movement and access". The runtime's locality policy
//! (with bounded delay scheduling) is compared against FIFO on a
//! producer→consumer workload with 1 MB intermediates and a simulated
//! network cost per remote byte. Expect locality to cut both moved bytes
//! (reported once to stderr) and makespan.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dataflow::prelude::*;
use std::time::Duration;

const BLOB: usize = 1 << 20;
const CHAINS: usize = 8;

fn run(policy: Policy, transfer_ns_per_byte: u64) -> u64 {
    let config = RuntimeConfig {
        workers: vec![WorkerProfile::cpu(4); 4],
        policy,
        checkpoint_path: None,
        transfer_ns_per_byte,
        seed: 0,
    };
    let rt: Runtime<Bytes> = Runtime::new(config);
    // Producers make 1 MB blobs; a chain of 3 consumers transforms each.
    let mut frontier = Vec::new();
    for k in 0..CHAINS {
        let h = rt
            .task("produce")
            .writes(&[format!("blob{k}").as_str()])
            .run(|_| {
                std::thread::sleep(Duration::from_millis(2));
                Ok(vec![Bytes(vec![7u8; BLOB])])
            })
            .unwrap();
        frontier.push(h.outputs[0].clone());
    }
    for stage in 0..3 {
        let mut next = Vec::new();
        for (k, input) in frontier.iter().enumerate() {
            let h = rt
                .task("transform")
                .reads(std::slice::from_ref(input))
                .writes(&[format!("t{stage}-{k}").as_str()])
                .run(|inp| {
                    std::thread::sleep(Duration::from_millis(2));
                    Ok(vec![Bytes(inp[0].0.clone())])
                })
                .unwrap();
            next.push(h.outputs[0].clone());
        }
        frontier = next;
    }
    rt.barrier().unwrap();
    let moved = rt.ledger().bytes_moved;
    rt.shutdown();
    moved
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("a1_sched_policy");
    g.sample_size(15);
    // 200 ns/byte ~ 5 MB/ms: a fast-LAN-ish simulated interconnect.
    for ns in [0u64, 200] {
        g.bench_with_input(BenchmarkId::new("fifo", ns), &ns, |b, &ns| {
            b.iter(|| run(Policy::Fifo, ns));
        });
        g.bench_with_input(BenchmarkId::new("locality", ns), &ns, |b, &ns| {
            b.iter(|| run(Policy::Locality, ns));
        });
    }
    g.finish();

    // Report moved bytes once (average of 5 runs, no transfer delay).
    let avg = |p: Policy| (0..5).map(|_| run(p, 0)).sum::<u64>() / 5;
    eprintln!(
        "[a1] bytes moved: fifo {} MB, locality {} MB",
        avg(Policy::Fifo) >> 20,
        avg(Policy::Locality) >> 20
    );
}

criterion_group!(benches, bench);
criterion_main!(benches);
