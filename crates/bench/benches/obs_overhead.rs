//! Observability overhead — the substrate's core promise.
//!
//! With no subscriber, every `emit_with` on a bus is one relaxed atomic
//! load and a never-taken branch; the event payload is not even
//! constructed. With a subscriber, the cost is stamping plus a bounded
//! queue push. This bench measures both sides, plus the metrics
//! fast path, so regressions in the "observability is free when off"
//! property show up as numbers.

use criterion::{criterion_group, criterion_main, Criterion};
use obs::{Bus, EventKind};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("obs_overhead");
    g.sample_size(50);

    // A private bus keeps this measurement independent of whatever other
    // benches do to the global one.
    let idle = Bus::new();
    g.bench_function("emit_with_no_subscriber", |b| {
        b.iter(|| {
            idle.emit_with(|| EventKind::QueueDepth {
                ready: std::hint::black_box(3),
                running: std::hint::black_box(2),
            });
        });
    });

    let active = Bus::new();
    let rx = active.subscribe_with_capacity(1 << 16);
    g.bench_function("emit_with_one_subscriber", |b| {
        b.iter(|| {
            active.emit_with(|| EventKind::QueueDepth {
                ready: std::hint::black_box(3),
                running: std::hint::black_box(2),
            });
            if rx.len() > 32_000 {
                rx.drain();
            }
        });
    });

    let counter = obs::registry().counter("bench_obs_counter_total", &[]);
    g.bench_function("counter_inc", |b| {
        b.iter(|| counter.inc());
    });

    let hist = obs::registry().histogram("bench_obs_hist_us", &[]);
    g.bench_function("histogram_observe", |b| {
        b.iter(|| hist.observe(std::hint::black_box(1234)));
    });

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
