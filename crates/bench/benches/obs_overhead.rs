//! Observability overhead — the substrate's core promise.
//!
//! With no subscriber, every `emit_with` on a bus is one relaxed atomic
//! load and a never-taken branch; the event payload is not even
//! constructed. With a subscriber, the cost is stamping plus a bounded
//! queue push. This bench measures both sides, plus the metrics
//! fast path, so regressions in the "observability is free when off"
//! property show up as numbers.

use criterion::{criterion_group, criterion_main, Criterion};
use obs::{Bus, EventKind};

/// Hard gate on the "observability is free when off" promise: with
/// `OBS_OVERHEAD_BUDGET_NS` set (as `scripts/check.sh` does), measure the
/// inactive-bus fast path directly and abort the bench run if one
/// `emit_with` exceeds the budget.
fn budget_gate() {
    let Ok(budget) = std::env::var("OBS_OVERHEAD_BUDGET_NS") else { return };
    let budget_ns: f64 = budget.parse().expect("OBS_OVERHEAD_BUDGET_NS must be a number");
    let bus = Bus::new();
    let n = 2_000_000u64;
    let t0 = std::time::Instant::now();
    for i in 0..n {
        bus.emit_with(|| EventKind::QueueDepth {
            ready: std::hint::black_box(i as usize),
            running: 2,
        });
    }
    let per = t0.elapsed().as_nanos() as f64 / n as f64;
    assert!(
        per <= budget_ns,
        "inactive-bus emit_with costs {per:.2}ns/op, over the {budget_ns}ns budget"
    );
    eprintln!("obs overhead gate: {per:.2}ns/op (budget {budget_ns}ns)");
}

fn bench(c: &mut Criterion) {
    budget_gate();
    let mut g = c.benchmark_group("obs_overhead");
    g.sample_size(50);

    // A private bus keeps this measurement independent of whatever other
    // benches do to the global one.
    let idle = Bus::new();
    g.bench_function("emit_with_no_subscriber", |b| {
        b.iter(|| {
            idle.emit_with(|| EventKind::QueueDepth {
                ready: std::hint::black_box(3),
                running: std::hint::black_box(2),
            });
        });
    });

    let active = Bus::new();
    let rx = active.subscribe_with_capacity(1 << 16);
    g.bench_function("emit_with_one_subscriber", |b| {
        b.iter(|| {
            active.emit_with(|| EventKind::QueueDepth {
                ready: std::hint::black_box(3),
                running: std::hint::black_box(2),
            });
            if rx.len() > 32_000 {
                rx.drain();
            }
        });
    });

    let counter = obs::registry().counter("bench_obs_counter_total", &[]);
    g.bench_function("counter_inc", |b| {
        b.iter(|| counter.inc());
    });

    let hist = obs::registry().histogram("bench_obs_hist_us", &[]);
    g.bench_function("histogram_observe", |b| {
        b.iter(|| hist.observe(std::hint::black_box(1234)));
    });

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
