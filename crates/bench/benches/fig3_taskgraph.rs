//! FIG3 — task-graph construction and rendering at projection scale.
//!
//! The paper's Figure 3 shows the runtime-built graph for one year and
//! notes a full projection repeats the per-year sub-graph for 30–35 years.
//! This bench builds case-study-shaped graphs for 1–35 years through the
//! real dependency-detection path and renders them to DOT, measuring the
//! bookkeeping cost a long projection imposes on the runtime.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dataflow::graph::{Node, TaskGraph};
use dataflow::{DataRef, TaskId};

/// Builds the case-study graph shape for `years` years (16 tasks/year +
/// 2 one-off loads + chained ESM tasks), mirroring the workflow's real
/// submission pattern.
fn build_graph(years: usize) -> TaskGraph {
    let mut g = TaskGraph::new();
    let mut next_task = 1u64;
    let mut next_data = 1u64;
    let mut task = |g: &mut TaskGraph, name: &str, reads: Vec<DataRef>, writes: usize| {
        let id = TaskId(next_task);
        next_task += 1;
        let outs: Vec<DataRef> = (0..writes)
            .map(|k| {
                let d = DataRef { id: next_data, name: format!("{name}-{k}"), version: 1 };
                next_data += 1;
                d
            })
            .collect();
        g.add_node(Node { id, name: name.into(), reads, writes: outs.clone() });
        outs
    };

    let baseline = task(&mut g, "load_baseline", vec![], 2);
    let model = task(&mut g, "load_model", vec![], 1);
    let mut esm_prev: Option<DataRef> = None;
    for _ in 0..years {
        let esm = task(&mut g, "esm_simulation", esm_prev.iter().cloned().collect(), 1);
        esm_prev = Some(esm[0].clone());

        let stage = task(&mut g, "stage_year", vec![], 1);
        let tmax = task(&mut g, "import_tmax", vec![stage[0].clone()], 1);
        let tmin = task(&mut g, "import_tmin", vec![stage[0].clone()], 1);
        let mut indices = Vec::new();
        for (name, src, base) in [
            ("hw_duration_max", &tmax, &baseline[0]),
            ("hw_number", &tmax, &baseline[0]),
            ("hw_frequency", &tmax, &baseline[0]),
            ("cw_duration_max", &tmin, &baseline[1]),
            ("cw_number", &tmin, &baseline[1]),
            ("cw_frequency", &tmin, &baseline[1]),
        ] {
            let idx = task(&mut g, name, vec![src[0].clone(), base.clone()], 1);
            indices.push(idx[0].clone());
        }
        let validate = task(&mut g, "validate_indices", indices.clone(), 1);
        let mut exp_reads = indices.clone();
        exp_reads.push(validate[0].clone());
        task(&mut g, "export_indices", exp_reads, 1);
        let tcp = task(&mut g, "tc_preprocess", vec![stage[0].clone()], 1);
        task(&mut g, "tc_cnn_localize", vec![tcp[0].clone(), model[0].clone()], 1);
        task(&mut g, "tc_track_deterministic", vec![tcp[0].clone()], 1);
        task(
            &mut g,
            "render_maps",
            vec![indices[1].clone(), indices[4].clone(), validate[0].clone()],
            1,
        );
    }
    g
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig3_taskgraph");
    for years in [1usize, 10, 35] {
        g.bench_with_input(BenchmarkId::new("build", years), &years, |b, &y| {
            b.iter(|| std::hint::black_box(build_graph(y).len()));
        });
        g.bench_with_input(BenchmarkId::new("to_dot", years), &years, |b, &y| {
            let graph = build_graph(y);
            b.iter(|| std::hint::black_box(graph.to_dot().len()));
        });
        g.bench_with_input(BenchmarkId::new("critical_path", years), &years, |b, &y| {
            let graph = build_graph(y);
            b.iter(|| std::hint::black_box(graph.critical_path_len()));
        });
    }
    g.finish();

    // Structure report for EXPERIMENTS.md.
    for years in [1usize, 35] {
        let graph = build_graph(years);
        eprintln!(
            "[fig3] {years:>2} year(s): {} tasks, {} edges, critical path {}",
            graph.len(),
            graph.edges().len(),
            graph.critical_path_len()
        );
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
