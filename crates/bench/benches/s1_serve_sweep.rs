//! S1 — multi-tenant serving sweep (the HPCWaaS-as-a-service layer).
//!
//! Measures the serving stack end to end: per-tenant admission control,
//! weighted fair-share dispatch onto the bounded executor pool, request
//! coalescing and the shared cross-tenant cube cache. A seeded open-loop
//! generator offers the same request schedule every run; criterion times
//! one full sweep point while the `[serve] stage=sweep ...` lines (one
//! per arrival rate, printed once up front) carry the service metrics —
//! p50/p99 queue-to-finish latency, goodput, rejection rate and cache
//! hit rate — into `scripts/bench_record.sh`.

use climate_workflows::servebench::{self, ServeBenchConfig};
use criterion::{criterion_group, criterion_main, Criterion};

fn sweep_config() -> ServeBenchConfig {
    ServeBenchConfig {
        tenants: 4,
        rates_hz: vec![100.0, 400.0, 1600.0],
        duration_ms: 250,
        workers: 4,
        queue_capacity: 64,
        max_in_flight: 12,
        distinct_cubes: 3,
        work_spin_us: 150,
        load_spin_us: 2_000,
        ..ServeBenchConfig::default()
    }
}

fn bench_serve_sweep(c: &mut Criterion) {
    // One full sweep up front for the recorded service metrics.
    let report = servebench::run(&sweep_config()).expect("serve sweep");
    for line in report.summary_lines() {
        println!("{line}");
    }

    let mut g = c.benchmark_group("s1_serve_sweep");
    g.sample_size(10);
    // Timed: one mid-rate point, the whole serving stack included
    // (deploy, admission, fair-share dispatch, drain).
    let point = ServeBenchConfig { rates_hz: vec![400.0], ..sweep_config() };
    g.bench_function("sweep_point_400hz", |b| {
        b.iter(|| servebench::run(&point).expect("serve point"))
    });
    g.finish();
}

criterion_group!(benches, bench_serve_sweep);
criterion_main!(benches);
