//! C6 — checkpointing: logging overhead and restart savings.
//!
//! The COMPSs task-level checkpointing the runtime reimplements (Vergés
//! et al.) trades per-task log appends for restart-from-last-task
//! recovery. Measured on a 24-task chain of 2 ms tasks:
//!   * `no_checkpoint`   — plain execution (baseline);
//!   * `with_checkpoint` — same run, every task logged (the overhead);
//!   * `resume_full_log` — re-running against a complete log (the payoff:
//!     no task executes).

use bench::spin_for_micros;
use criterion::{criterion_group, criterion_main, Criterion};
use dataflow::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

const TASKS: usize = 24;
const TASK_US: u64 = 2_000;

static RUN: AtomicU64 = AtomicU64::new(0);

fn run_chain(ckpt: Option<PathBuf>) {
    let mut config = RuntimeConfig::with_cpu_workers(2);
    if let Some(p) = ckpt {
        config = config.with_checkpoint(p);
    }
    let rt: Runtime<Bytes> = Runtime::new(config);
    let mut prev: Option<DataRef> = None;
    for i in 0..TASKS {
        let mut b = rt.task("step").key(&format!("step-{i}"));
        if let Some(p) = &prev {
            b = b.reads(std::slice::from_ref(p));
        }
        let h = b
            .writes(&["state"])
            .run(|_| {
                spin_for_micros(TASK_US);
                Ok(vec![Bytes::from_u64(1)])
            })
            .unwrap();
        prev = Some(h.outputs[0].clone());
    }
    rt.barrier().unwrap();
    rt.shutdown();
}

fn fresh_log() -> PathBuf {
    let dir = std::env::temp_dir().join("bench-c6");
    std::fs::create_dir_all(&dir).unwrap();
    let p = dir.join(format!("log-{}.ckpt", RUN.fetch_add(1, Ordering::Relaxed)));
    std::fs::remove_file(&p).ok();
    p
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("c6_checkpoint");
    g.sample_size(20);

    g.bench_function("no_checkpoint", |b| b.iter(|| run_chain(None)));

    g.bench_function("with_checkpoint", |b| {
        b.iter_batched(fresh_log, |p| run_chain(Some(p)), criterion::BatchSize::SmallInput);
    });

    g.bench_function("resume_full_log", |b| {
        b.iter_batched(
            || {
                let p = fresh_log();
                run_chain(Some(p.clone()));
                p
            },
            |p| run_chain(Some(p)),
            criterion::BatchSize::SmallInput,
        );
    });

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
