//! A2 (ablation) — Data Logistics Service: deploy-time vs run-time staging.
//!
//! Section 4.1: the DLS "executes the required data pipelines either at
//! deployment or execution time". For the case study's baseline archive
//! (one 4 GB dataset used by every year), staging once at deployment beats
//! re-staging per run — unless only one year ever runs. Both virtual-time
//! totals are reported; criterion measures the (cheap) pipeline engine
//! itself.

use criterion::{criterion_group, criterion_main, Criterion};
use hpcwaas::dls::{DataLogistics, Link, PipelineSpec};

const BASELINE_BYTES: u64 = 4_000_000_000;
const PER_YEAR_SUBSET: u64 = 400_000_000;

fn wan() -> DataLogistics {
    let mut dls = DataLogistics::new();
    dls.set_link("archive", "zeus", Link { bandwidth_mbps: 250.0, latency_ms: 80 });
    dls.set_link("archive", "cloud", Link { bandwidth_mbps: 800.0, latency_ms: 30 });
    dls.set_link("cloud", "zeus", Link { bandwidth_mbps: 400.0, latency_ms: 20 });
    dls
}

/// Deploy-time: the whole baseline once; runs are free.
fn deploy_time(years: usize) -> u64 {
    let mut dls = wan();
    let stage_in = PipelineSpec::new().stage("baseline", "archive", "zeus", BASELINE_BYTES);
    let mut total = dls.execute(&stage_in).total_ms;
    for _ in 0..years {
        total += 0; // data already resident
    }
    total
}

/// Run-time: each year stages the subset it needs.
fn run_time(years: usize) -> u64 {
    let mut dls = wan();
    let mut total = 0;
    for y in 0..years {
        let p =
            PipelineSpec::new().stage(&format!("subset-{y}"), "archive", "zeus", PER_YEAR_SUBSET);
        total += dls.execute(&p).total_ms;
    }
    total
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("a2_dls_staging");
    g.bench_function("deploy_time_10y", |b| b.iter(|| std::hint::black_box(deploy_time(10))));
    g.bench_function("run_time_10y", |b| b.iter(|| std::hint::black_box(run_time(10))));
    g.finish();

    // The paper-relevant numbers are the virtual transfer times:
    for years in [1usize, 5, 10, 35] {
        eprintln!(
            "[a2] {years:>2} year(s): deploy-time staging {:>7} virtual ms, run-time staging {:>7} virtual ms",
            deploy_time(years),
            run_time(years)
        );
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
