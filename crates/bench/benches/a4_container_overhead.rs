//! A4 (extension) — container impact on workflow execution.
//!
//! The paper's future work asks for "the assessment of [containers']
//! impact on the climate simulation and processing performance". The
//! dominant mechanism is per-task start-up: the first task of an image on
//! a worker pays a cold start; later tasks reuse the warm container.
//! A case-study-shaped DAG (simulated task durations) runs bare-metal,
//! containerized with warm reuse, and containerized with eviction after
//! every task (the pathological no-reuse case).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dataflow::prelude::*;
use hpcwaas::containers::{ContainerRuntime, LayerId};
use parking_lot::Mutex;
use std::sync::Arc;
use std::time::Duration;

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    BareMetal,
    Containers,
    ContainersNoReuse,
}

/// Three years of the case-study shape; every task sleeps its simulated
/// duration plus (when containerized) the start-up overhead of its image
/// on the executing worker. The worker index is approximated by thread id
/// hash (stable per worker thread).
fn run(mode: Mode, years: usize) {
    let rt: Runtime<Bytes> = Runtime::new(RuntimeConfig::with_cpu_workers(4));
    let containers = Arc::new(Mutex::new(ContainerRuntime::new(150, 3)));

    let task = |image: u64, work_ms: u64| {
        let containers = Arc::clone(&containers);
        move |_: &[std::sync::Arc<Bytes>]| {
            if mode != Mode::BareMetal {
                let worker = {
                    use std::hash::{Hash, Hasher};
                    let mut h = std::collections::hash_map::DefaultHasher::new();
                    std::thread::current().id().hash(&mut h);
                    (h.finish() % 64) as usize
                };
                let mut c = containers.lock();
                let overhead = c.task_overhead_ms(worker, LayerId(image));
                if mode == Mode::ContainersNoReuse {
                    c.evict_all();
                }
                drop(c);
                std::thread::sleep(Duration::from_millis(overhead / 10)); // scaled down
            }
            std::thread::sleep(Duration::from_millis(work_ms));
            Ok(vec![Bytes::empty()])
        }
    };

    const ESM_IMG: u64 = 1;
    const ANALYTICS_IMG: u64 = 2;
    const ML_IMG: u64 = 3;

    let mut prev: Option<DataRef> = None;
    for y in 0..years {
        let mut b = rt.task("esm").writes(&[format!("esm-{y}").as_str()]);
        if let Some(p) = &prev {
            b = b.reads(std::slice::from_ref(p));
        }
        let esm = b.run(task(ESM_IMG, 10)).unwrap();
        prev = Some(esm.outputs[0].clone());
        for i in 0..6 {
            rt.task("analytics")
                .reads(&[esm.outputs[0].clone()])
                .writes(&[format!("a{i}-{y}").as_str()])
                .run(task(ANALYTICS_IMG, 4))
                .unwrap();
        }
        rt.task("ml")
            .reads(&[esm.outputs[0].clone()])
            .writes(&[format!("ml-{y}").as_str()])
            .run(task(ML_IMG, 4))
            .unwrap();
    }
    rt.barrier().unwrap();
    rt.shutdown();
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("a4_container_overhead");
    g.sample_size(15);
    for (name, mode) in [
        ("bare_metal", Mode::BareMetal),
        ("containers_warm_reuse", Mode::Containers),
        ("containers_no_reuse", Mode::ContainersNoReuse),
    ] {
        g.bench_with_input(BenchmarkId::new(name, 3), &mode, |b, &m| {
            b.iter(|| run(m, 3));
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
