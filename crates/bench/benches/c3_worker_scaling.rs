//! C3 — task-graph parallelism: makespan vs worker count.
//!
//! Section 4.2.1: the COMPSs runtime "is able to exploit the potential
//! parallelism of the task graph by scheduling those tasks that do not
//! have data dependencies between them". A year of the case study fans
//! out into six independent index tasks plus two TC pipelines; this bench
//! runs a case-study-shaped DAG on 1–8 workers.
//!
//! Task durations are *simulated* (sleeps): this isolates the runtime's
//! ability to overlap independent tasks from the host's core count, which
//! matters because the reproduction environment may have a single core
//! while the paper's testbed had 12,528. With simulated durations the
//! expected shape is near-linear gains until the graph's width (≈6 at the
//! index stage) is exhausted.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dataflow::prelude::*;
use std::time::Duration;

/// One "year" of the case-study shape: stage -> {2 imports} -> {6 indices}
/// -> validate -> export, plus tc_pre -> {cnn, track}. Every task simulates
/// `task_us` of execution.
fn submit_year(rt: &Runtime<Bytes>, year: usize, task_us: u64) -> DataRef {
    let work = move |_: &[std::sync::Arc<Bytes>]| {
        std::thread::sleep(Duration::from_micros(task_us));
        Ok(vec![Bytes::empty()])
    };
    let y = year.to_string();
    let stage = rt.task("stage").writes(&[format!("s-{y}").as_str()]).run(work).unwrap();
    let tmax = rt
        .task("import_tmax")
        .reads(&[stage.outputs[0].clone()])
        .writes(&[format!("tx-{y}").as_str()])
        .run(work)
        .unwrap();
    let tmin = rt
        .task("import_tmin")
        .reads(&[stage.outputs[0].clone()])
        .writes(&[format!("tn-{y}").as_str()])
        .run(work)
        .unwrap();
    let mut index_outs = Vec::new();
    for (i, src) in [&tmax, &tmax, &tmax, &tmin, &tmin, &tmin].iter().enumerate() {
        let h = rt
            .task("index")
            .reads(&[src.outputs[0].clone()])
            .writes(&[format!("i{i}-{y}").as_str()])
            .run(work)
            .unwrap();
        index_outs.push(h.outputs[0].clone());
    }
    let validate = rt
        .task("validate")
        .reads(&index_outs)
        .writes(&[format!("v-{y}").as_str()])
        .run(work)
        .unwrap();
    let tc_pre = rt
        .task("tc_pre")
        .reads(&[stage.outputs[0].clone()])
        .writes(&[format!("tp-{y}").as_str()])
        .run(work)
        .unwrap();
    rt.task("tc_cnn")
        .reads(&[tc_pre.outputs[0].clone()])
        .writes(&[format!("tc-{y}").as_str()])
        .run(work)
        .unwrap();
    rt.task("tc_track")
        .reads(&[tc_pre.outputs[0].clone()])
        .writes(&[format!("tt-{y}").as_str()])
        .run(work)
        .unwrap();
    validate.outputs[0].clone()
}

fn run_dag(workers: usize, years: usize, task_us: u64) {
    let rt: Runtime<Bytes> = Runtime::new(RuntimeConfig::with_cpu_workers(workers));
    for y in 0..years {
        submit_year(&rt, y, task_us);
    }
    rt.barrier().unwrap();
    rt.shutdown();
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("c3_worker_scaling");
    g.sample_size(20);
    for workers in [1usize, 2, 4, 8] {
        g.bench_with_input(BenchmarkId::new("case_study_dag", workers), &workers, |b, &w| {
            b.iter(|| run_dag(w, 3, 3_000));
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
