//! Dispatch overhead of the shared work-stealing pool (`crates/par`).
//!
//! Every compute layer now routes through one persistent pool, so the
//! cost of handing work to it must stay small and pinned. This bench
//! measures the fixed costs — `par_map` on trivial kernels against a
//! serial baseline, fork/join, and scoped spawning — on a dedicated
//! pool, so regressions in task hand-off show up directly rather than
//! hiding inside operator benches.

use criterion::{criterion_group, criterion_main, Criterion};
use par::Pool;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("par_overhead");
    g.sample_size(50);

    // A dedicated pool keeps the measurement independent of global-pool
    // sizing on the host.
    let pool = Pool::with_name(4, "bench");
    let items: Vec<u64> = (0..1024).collect();

    g.bench_function("serial_map_1k_trivial", |b| {
        b.iter(|| {
            let out: Vec<u64> = items.iter().map(|&x| std::hint::black_box(x * 2 + 1)).collect();
            std::hint::black_box(out)
        });
    });

    g.bench_function("par_map_1k_trivial", |b| {
        b.iter(|| std::hint::black_box(pool.par_map(&items, |&x| std::hint::black_box(x * 2 + 1))));
    });

    g.bench_function("par_map_lanes_1k_trivial", |b| {
        b.iter(|| {
            std::hint::black_box(
                pool.par_map_lanes(4, &items, |_, _, &x| std::hint::black_box(x * 2 + 1)),
            )
        });
    });

    g.bench_function("join_trivial", |b| {
        b.iter(|| {
            let (a, bb) = pool.join(|| std::hint::black_box(1u64), || std::hint::black_box(2u64));
            std::hint::black_box(a + bb)
        });
    });

    g.bench_function("scope_spawn_64_empty", |b| {
        b.iter(|| {
            pool.scope(|s| {
                for _ in 0..64 {
                    s.spawn(|| {
                        std::hint::black_box(0u64);
                    });
                }
            });
        });
    });

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
