//! D1 — ESM output characteristics (Section 5.2).
//!
//! Measures one day of coupled-model stepping and the daily-file write at
//! two scaled resolutions, and reports the analytic full-resolution
//! arithmetic the paper states (271 MB/day, ~100 GB/year at 768×1152).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use esm::{CoupledModel, EsmConfig};
use gridded::Grid;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("d1_esm_output");
    g.sample_size(10);

    for (nlat, nlon) in [(48usize, 72usize), (96, 144)] {
        let cfg =
            EsmConfig::test_small().with_grid(Grid::global(nlat, nlon)).with_days_per_year(1000); // never roll over during the bench
        let dir = std::env::temp_dir().join(format!("bench-d1-{nlat}x{nlon}"));
        std::fs::create_dir_all(&dir).unwrap();

        g.bench_with_input(
            BenchmarkId::new("step_day", format!("{nlat}x{nlon}")),
            &cfg,
            |b, cfg| {
                let mut model = CoupledModel::new(cfg.clone());
                b.iter(|| std::hint::black_box(model.step_day()));
            },
        );

        g.bench_with_input(
            BenchmarkId::new("write_daily", format!("{nlat}x{nlon}")),
            &cfg,
            |b, cfg| {
                let mut model = CoupledModel::new(cfg.clone());
                let fields = model.step_day();
                b.iter(|| esm::output::write_daily(&dir, &fields).unwrap());
            },
        );

        let bytes = esm::output::daily_payload_bytes(nlat, nlon, 4, 20);
        eprintln!("[d1] {nlat}x{nlon}: daily payload {:.1} MB", bytes as f64 / 1048576.0);
    }
    g.finish();

    eprintln!(
        "[d1] paper resolution 768x1152: {:.1} MB/day, {:.1} GB/year (paper: 271 MB, ~100 GB)",
        esm::output::paper_daily_mb(),
        esm::output::paper_yearly_gb()
    );
}

criterion_group!(benches, bench);
criterion_main!(benches);
