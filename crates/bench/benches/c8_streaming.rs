//! C8 — streaming data plane vs staged file round-trip.
//!
//! The tentpole claim of the streaming rebuild: handing completed years
//! to analytics as in-memory [`DayBlock`]s removes the
//! encode→write→poll→read→decode→transpose tax from the hot path. Three
//! measurements:
//!
//! * `plane_*` — the analytics data plane at the C4 workload (96×144
//!   grid, 4 steps/day): from "year available" to heat-wave indices.
//!   The staged path starts from the daily files on disk (per-day open
//!   → decode → transpose → reduce → concat); the streaming path starts
//!   from the same days as `Arc<[f32]>` blocks (one fused fold). Both
//!   end in the identical fused index pipeline, and the daily files are
//!   written in both modes upstream (the simulation's durable output),
//!   so the delta is exactly the file round-trip.
//! * `real_*` — the full workflow both ways (`run_sequential` vs
//!   `run_pipelined` with `streaming`), shared pre-trained model.
//! * the CNN batch sweep — the batched inference service at
//!   `max_batch ∈ {1, 2, 4, 8, 16}` over a fixed request set, reporting
//!   throughput, mean batch occupancy and queue wait per point.
//!
//! Machine-readable `[c8_stream]` lines feed `scripts/bench_record.sh`'s
//! `streaming` table.

use climate_workflows::{run_pipelined, run_sequential, WorkflowParams};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use datacube::exec::ExecConfig;
use datacube::model::{Cube, Dimension, SharedData};
use datacube::ops::{self, ReduceOp};
use esm::output::DayBlock;
use extremes::heatwave::{compute_indices, WaveParams};
use extremes::tc::serve::{BatchPolicy, CnnService};
use gridded::Grid;
use ncformat::Reader;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

const NLAT: usize = 96;
const NLON: usize = 144;
const SPD: usize = 4;
const NFRAG: usize = 16;

static RUN_ID: AtomicU64 = AtomicU64::new(0);

/// Synthesizes one day of model output as an in-memory block: the four
/// TC-analysis variables, deterministic values, time-major stacks —
/// exactly what `esm::output` hands the streaming plane.
fn day_block(grid: &Grid, day: usize) -> DayBlock {
    let n = grid.len();
    let mk = |base: f32, amp: f32, seed: u64| -> Arc<[f32]> {
        (0..SPD * n)
            .map(|i| {
                let h = ((i as u64 + day as u64) << 7).wrapping_mul(seed | 1) >> 17;
                base + amp * ((h % 1000) as f32 / 1000.0 - 0.5)
            })
            .collect()
    };
    DayBlock {
        year: 2030,
        day,
        grid: grid.clone(),
        steps_per_day: SPD,
        vars: vec![
            ("psl".into(), mk(101_300.0, 2_000.0, 3)),
            ("sfcWind".into(), mk(9.0, 10.0, 5)),
            ("tas".into(), mk(299.0, 18.0, 7)),
            ("vort".into(), mk(0.0, 1.0e-4, 9)),
        ],
    }
}

/// Staged ingest: the daily files back into a `(lat, lon | day)` maximum
/// cube through the reader — per-day open → decode → transpose → reduce
/// → stack, the exact shape of the workflow's file-keyed import task.
fn ingest_from_files(files: &[PathBuf], cfg: ExecConfig) -> Cube {
    let mut day_cubes = Vec::with_capacity(files.len());
    for (d, f) in files.iter().enumerate() {
        let rd = Reader::open(f).unwrap();
        let cube = ops::import_transposed(&rd, "tas", "time", "lat", "lon", NFRAG, cfg).unwrap();
        let daily = ops::reduce(&cube, ReduceOp::Max, "time", cfg).unwrap();
        day_cubes.push(ops::add_singleton_implicit(&daily, "day", d as f64).unwrap());
    }
    let refs: Vec<&Cube> = day_cubes.iter().collect();
    ops::concat_implicit(&refs, "day").unwrap()
}

/// Streaming ingest: the same cube folded straight out of the in-memory
/// blocks — one pass, no decode, no transpose staging.
fn ingest_from_blocks(days: &[DayBlock]) -> Cube {
    let grid = &days[0].grid;
    let n = grid.len();
    let nday = days.len();
    let data = SharedData::from_fn(n * nday, |data| {
        for (d, block) in days.iter().enumerate() {
            let stack = block.var("tas").unwrap();
            for idx in 0..n {
                let mut acc = f32::NEG_INFINITY;
                for t in 0..SPD {
                    acc = acc.max(stack[t * n + idx]);
                }
                data[idx * nday + d] = acc;
            }
        }
    });
    Cube::from_shared(
        "tas",
        vec![
            Dimension::explicit("lat", grid.lats()),
            Dimension::explicit("lon", grid.lons()),
            Dimension::implicit("day", (0..nday).map(|d| d as f64).collect::<Vec<_>>()),
        ],
        data,
        NFRAG,
        NFRAG,
    )
    .unwrap()
}

/// Full-workflow parameters with a shared pre-trained model (training
/// cost outside the measured loop), mirroring the C1 bench.
fn wf_params(tag: &str, years: usize, streaming: bool) -> WorkflowParams {
    let run = RUN_ID.fetch_add(1, Ordering::Relaxed);
    let out = std::env::temp_dir().join(format!("bench-c8-{tag}-{run}"));
    std::fs::remove_dir_all(&out).ok();
    let mut p = WorkflowParams::test_scale(out);
    p.years = years;
    p.days_per_year = 10;
    p.workers = 4;
    p.streaming = streaming;
    let model_dir = std::env::temp_dir().join("bench-c8-model");
    std::fs::create_dir_all(&model_dir).ok();
    p.model_path = Some(model_dir.join("model.tml"));
    p.train_samples = 100;
    p.train_epochs = 5;
    p.finetune_days = 5;
    p.finetune_epochs = 3;
    p
}

fn bench(c: &mut Criterion) {
    let cfg = ExecConfig::with_servers(4);
    let grid = Grid::global(NLAT, NLON);
    let baseline = bench::baseline_cube(NLAT, NLON, NFRAG);
    let wave = WaveParams::default();

    // One simulated year, both representations. The durable daily files
    // are written once here — the simulation writes them in both modes,
    // so neither measured path includes the write.
    let days: Vec<DayBlock> = (0..120).map(|d| day_block(&grid, d)).collect();
    let dir = std::env::temp_dir().join("bench-c8-plane");
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    let files: Vec<PathBuf> = days.iter().map(|b| b.write(&dir).unwrap()).collect();

    // The two ingest routes must agree bitwise before being compared on
    // speed (the tentpole's "pure performance change" contract).
    assert_eq!(
        ingest_from_files(&files, cfg).to_dense(),
        ingest_from_blocks(&days).to_dense(),
        "staged and streaming ingest diverge"
    );

    let mut g = c.benchmark_group("c8_streaming");
    g.sample_size(10);

    for ndays in [30usize, 120] {
        let window = &days[..ndays];
        let wfiles = &files[..ndays];
        g.bench_with_input(BenchmarkId::new("plane_staged", ndays), &ndays, |b, _| {
            b.iter(|| {
                let year = ingest_from_files(wfiles, cfg);
                compute_indices(&year, &baseline, wave, false, cfg).unwrap()
            });
        });
        g.bench_with_input(BenchmarkId::new("plane_stream", ndays), &ndays, |b, _| {
            b.iter(|| {
                let year = ingest_from_blocks(window);
                compute_indices(&year, &baseline, wave, false, cfg).unwrap()
            });
        });
    }

    // One timed pass of each route for the exact recorded ratio.
    let ndays = 120usize;
    let t0 = Instant::now();
    let year = ingest_from_files(&files[..ndays], cfg);
    compute_indices(&year, &baseline, wave, false, cfg).unwrap();
    let staged_ns = t0.elapsed().as_nanos();
    let t0 = Instant::now();
    let year = ingest_from_blocks(&days[..ndays]);
    compute_indices(&year, &baseline, wave, false, cfg).unwrap();
    let stream_ns = t0.elapsed().as_nanos();
    println!(
        "[c8_stream] stage=plane days={ndays} staged_ns={staged_ns} stream_ns={stream_ns} \
         speedup={:.2}",
        staged_ns as f64 / stream_ns as f64
    );

    // Full workflow, both orchestrations (training shared, outside loop).
    drop(run_pipelined(wf_params("warmup", 1, false)).unwrap());
    let years = 2usize;
    g.bench_with_input(BenchmarkId::new("real_staged", years), &years, |b, &y| {
        b.iter(|| run_sequential(wf_params("seq", y, false)).unwrap());
    });
    g.bench_with_input(BenchmarkId::new("real_streaming", years), &years, |b, &y| {
        b.iter(|| run_pipelined(wf_params("stream", y, true)).unwrap());
    });

    // One streaming run's report for the channel/service counters.
    let report = run_pipelined(wf_params("probe", 2, true)).unwrap();
    let st = report.stream.expect("streaming section");
    println!(
        "[c8_stream] stage=e2e years=2 streamed={} fallback={} stall_us={} cnn_batches={} \
         cnn_items={} mean_batch={:.2}",
        st.years_streamed,
        st.fallback_years,
        st.stall_us,
        st.cnn_batches,
        st.cnn_items,
        st.cnn_mean_batch
    );

    // CNN batch sweep: fixed request set against the shared-model
    // service, one point per max_batch. Requests are submitted up front
    // (the workflow submits a replica's whole year the same way), so the
    // dispatcher can actually fill batches.
    let model_path = {
        drop(bench::trained_cnn());
        std::env::temp_dir().join("bench-cnn").join("bench-cnn.tml")
    };
    let analysis = extremes::tc::cnn::analysis_grid(
        esm::atmos::tc_radius_deg(&bench::sample_fieldset(0).psl.grid),
        16,
    );
    const REQS: usize = 64;
    for max_batch in [1usize, 2, 4, 8, 16] {
        let svc = CnnService::new(
            16,
            model_path.clone(),
            BatchPolicy { max_batch, ..BatchPolicy::default() },
        );
        let t0 = Instant::now();
        let tickets: Vec<_> = (0..REQS)
            .map(|i| svc.submit(bench::sample_fieldset(i % SPD), analysis.clone()))
            .collect();
        for t in tickets {
            t.wait().unwrap();
        }
        let wall_us = t0.elapsed().as_micros();
        let stats = svc.stats();
        println!(
            "[c8_stream] stage=batch_sweep max_batch={max_batch} reqs={REQS} wall_us={wall_us} \
             batches={} mean_batch={:.2} wait_us={} throughput_rps={:.1}",
            stats.batches,
            stats.mean_occupancy(),
            stats.wait_us,
            REQS as f64 / (wall_us as f64 / 1e6)
        );
    }

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
