//! K1 — per-kernel effective bandwidth of the fused vectorized kernels.
//!
//! Each kernel runs over a year-sized workload and reports one
//! `[k1_kernels] kernel=<name> bytes=<n> ns=<n> gbps=<x>` line, where
//! `bytes` is the kernel's streamed operand traffic (reads + writes of
//! payload data; for conv2d, 4 bytes per multiply-accumulate) and `gbps`
//! is that traffic divided by the best-of-N wall time. The scalar
//! operator chain is timed alongside its fused equivalent so the
//! `BENCH_<date>-kernels.json` trajectory records the fusion speedup
//! per kernel, not just end to end (`scripts/bench_record.sh` parses
//! these lines into the `kernels` table).

use bench::{baseline_cube, year_cube};
use datacube::exec::ExecConfig;
use datacube::expr::Expr;
use datacube::fuse::Pipeline;
use datacube::ops::InterOp;
use datacube::ops::{self, ReduceOp};
use std::time::Instant;
use tinyml::layers::{Conv2d, Layer};
use tinyml::tensor::Tensor;

const NLAT: usize = 96;
const NLON: usize = 144;
const DAYS: usize = 365;
const NFRAG: usize = 16;

/// Best-of-`reps` wall time in nanoseconds, after one warmup call.
fn time_best(reps: usize, mut f: impl FnMut()) -> u128 {
    f();
    let mut best = u128::MAX;
    for _ in 0..reps {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_nanos());
    }
    best
}

fn report(name: &str, bytes: usize, ns: u128) {
    // bytes / ns is numerically GB/s.
    let gbps = bytes as f64 / ns.max(1) as f64;
    println!("[k1_kernels] kernel={name} bytes={bytes} ns={ns} gbps={gbps:.3}");
}

fn main() {
    let cube = year_cube(NLAT, NLON, DAYS, NFRAG, 9);
    let baseline = baseline_cube(NLAT, NLON, NFRAG);
    let cfg = ExecConfig::with_servers(4);
    let n = NLAT * NLON * DAYS;
    let rows = NLAT * NLON;
    let mask_expr = Expr::from_oph_predicate("x", ">5", "1", "0").unwrap();

    // Single fused apply: stream n in, n out.
    let p = Pipeline::new().apply(mask_expr.clone());
    let ns = time_best(5, || {
        std::hint::black_box(p.run(&cube, cfg).unwrap());
    });
    report("fused_apply", n * 8, ns);

    // The heat-wave chain (anomaly − baseline, mask, reduce) fused vs the
    // operator-by-operator oracle: identical bits, different traversals.
    let chain = Pipeline::new()
        .intercube(&baseline, InterOp::Sub)
        .apply(mask_expr)
        .reduce(ReduceOp::Sum, "day");
    let traffic = (n + 2 * rows) * 4; // read n + baseline, write rows
    let ns = time_best(5, || {
        std::hint::black_box(chain.run(&cube, cfg).unwrap());
    });
    report("fused_sub_mask_reduce", traffic, ns);
    let ns = time_best(3, || {
        std::hint::black_box(chain.run_scalar(&cube, cfg).unwrap());
    });
    report("scalar_sub_mask_reduce", traffic, ns);

    // Standalone reduce over the day axis.
    let ns = time_best(5, || {
        std::hint::black_box(ops::reduce(&cube, ReduceOp::Max, "day", cfg).unwrap());
    });
    report("reduce_max", (n + rows) * 4, ns);

    // Blocked run-length scan over year-long 0/1 series.
    let mask: Vec<f32> = (0..n).map(|i| if (i / 5) % 3 == 0 { 1.0 } else { 0.0 }).collect();
    let ns = time_best(5, || {
        let mut acc = 0usize;
        for row in mask.chunks(DAYS) {
            acc += extremes::heatwave::wave_stats(row, 6).0;
        }
        std::hint::black_box(acc);
    });
    report("wave_scan", n * 4, ns);

    // Lane-blocked conv2d forward (TC-patch shaped workload).
    let (ic, oc, k, h, w) = (8usize, 16usize, 3usize, 64usize, 64usize);
    let mut conv = Conv2d::new(ic, oc, k, 1, 3);
    let x = Tensor::uniform(&[ic, h, w], 1.0, 4);
    let macs = oc * h * w * ic * k * k;
    let ns = time_best(5, || {
        std::hint::black_box(conv.forward(&x));
    });
    report("conv2d_forward", macs * 4, ns);
}
