//! C7 — tropical-cyclone pipelines: CNN localization vs deterministic
//! detection (Section 5.4).
//!
//! Throughput per timestep of the two approaches the workflow integrates,
//! on real simulated fields containing cyclones. The CNN path includes
//! its full preprocessing (regrid → tile → scale), matching the paper's
//! pipeline; the deterministic path is the criteria detector. Accuracy
//! for both is reported by `tests/detection_quality.rs` and EXPERIMENTS.md.

use bench::{quiet_fields, sample_fieldset, trained_cnn};
use criterion::{criterion_group, criterion_main, Criterion};
use extremes::tc::cnn::analysis_grid;
use extremes::tc::detect::{detect_timestep, DetectorParams};

fn bench(c: &mut Criterion) {
    let active = sample_fieldset(1);
    let quiet = quiet_fields(48, 72);
    let params = DetectorParams::default();
    let mut cnn = trained_cnn();
    let grid = analysis_grid(esm::atmos::tc_radius_deg(&active.psl.grid), cnn.patch);

    let mut g = c.benchmark_group("c7_tc_detect");

    g.bench_function("deterministic_active_step", |b| {
        b.iter(|| {
            std::hint::black_box(detect_timestep(
                &active.psl,
                &active.wind,
                &active.tas,
                &active.vort,
                &params,
            ))
        });
    });

    g.bench_function("deterministic_quiet_step", |b| {
        b.iter(|| {
            std::hint::black_box(detect_timestep(
                &quiet.psl,
                &quiet.wind,
                &quiet.tas,
                &quiet.vort,
                &params,
            ))
        });
    });

    g.bench_function("cnn_full_pipeline_step", |b| {
        b.iter(|| {
            let regridded = active.regrid(&grid);
            std::hint::black_box(cnn.localize_set(&regridded))
        });
    });

    g.bench_function("cnn_inference_only_step", |b| {
        let regridded = active.regrid(&grid);
        b.iter(|| std::hint::black_box(cnn.localize_set(&regridded)));
    });

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
