//! C1 — concurrent ESM + analytics vs sequential post-processing.
//!
//! The paper's core efficiency claim (Sections 3, 5.1): integrating
//! simulation and analysis "can help in reducing the overall execution
//! time as different tasks of the workflow can be executed concurrently".
//! This bench runs the *same* multi-year case study both ways and measures
//! end-to-end makespan. Expect pipelined < sequential, with the gap
//! growing with year count (analysis of year N overlaps simulation of
//! year N+1).

use climate_workflows::{run_pipelined, run_sequential, WorkflowParams};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::sync::atomic::{AtomicU64, Ordering};

static RUN_ID: AtomicU64 = AtomicU64::new(0);

fn params(tag: &str, years: usize) -> WorkflowParams {
    let run = RUN_ID.fetch_add(1, Ordering::Relaxed);
    let out = std::env::temp_dir().join(format!("bench-c1-{tag}-{run}"));
    std::fs::remove_dir_all(&out).ok();
    let mut p = WorkflowParams::test_scale(out);
    p.years = years;
    p.days_per_year = 10;
    p.workers = 4;
    // Share one pre-trained model so training cost is outside the loop.
    let model_dir = std::env::temp_dir().join("bench-c1-model");
    std::fs::create_dir_all(&model_dir).ok();
    p.model_path = Some(model_dir.join("model.tml"));
    p.train_samples = 100;
    p.train_epochs = 5;
    p.finetune_days = 5;
    p.finetune_epochs = 3;
    p
}

/// The same orchestration question with *simulated* task durations, which
/// decouples the overlap measurement from the host's core count (the real
/// workflow's tasks are compute-bound and cannot physically overlap on a
/// single-core host, while the paper's cluster had thousands of cores).
/// Each "year" is an ESM task (sleep 40 ms) followed by an analysis chain
/// (stage 2 ms -> 6 x index 5 ms in parallel -> export 2 ms).
fn simulated_run(years: usize, pipelined: bool) {
    use dataflow::prelude::*;
    use std::time::Duration;
    let rt: Runtime<Bytes> = Runtime::new(RuntimeConfig::with_cpu_workers(4));
    let sleep_task = |ms: u64| {
        move |_: &[std::sync::Arc<Bytes>]| {
            std::thread::sleep(Duration::from_millis(ms));
            Ok(vec![Bytes::empty()])
        }
    };
    let mut esm_prev: Option<DataRef> = None;
    let mut year_tokens = Vec::new();
    for y in 0..years {
        let mut b = rt.task("esm").writes(&[format!("esm-{y}").as_str()]);
        if let Some(p) = &esm_prev {
            b = b.reads(std::slice::from_ref(p));
        }
        let h = b.run(sleep_task(40)).unwrap();
        esm_prev = Some(h.outputs[0].clone());
        year_tokens.push(h.outputs[0].clone());
    }
    if !pipelined {
        // Sequential baseline: wait for the entire simulation first.
        rt.barrier().unwrap();
    }
    for (y, token) in year_tokens.iter().enumerate() {
        let stage = rt
            .task("stage")
            .reads(std::slice::from_ref(token))
            .writes(&[format!("stage-{y}").as_str()])
            .run(sleep_task(2))
            .unwrap();
        let mut outs = Vec::new();
        for i in 0..6 {
            let h = rt
                .task("index")
                .reads(&[stage.outputs[0].clone()])
                .writes(&[format!("idx{i}-{y}").as_str()])
                .run(sleep_task(5))
                .unwrap();
            outs.push(h.outputs[0].clone());
        }
        rt.task("export")
            .reads(&outs)
            .writes(&[format!("exp-{y}").as_str()])
            .run(sleep_task(2))
            .unwrap();
    }
    rt.barrier().unwrap();
    rt.shutdown();
}

fn bench(c: &mut Criterion) {
    // Warm up the shared model file once.
    drop(run_pipelined(params("warmup", 1)).unwrap());

    let mut g = c.benchmark_group("c1_overlap");
    g.sample_size(10);

    // The real workflow, both orchestrations. On multi-core hosts the
    // pipelined variant wins; on a single core the two converge (documented
    // in EXPERIMENTS.md).
    for years in [1usize, 2, 3] {
        g.bench_with_input(BenchmarkId::new("real_sequential", years), &years, |b, &y| {
            b.iter(|| run_sequential(params("seq", y)).unwrap());
        });
        g.bench_with_input(BenchmarkId::new("real_pipelined", years), &years, |b, &y| {
            b.iter(|| run_pipelined(params("pipe", y)).unwrap());
        });
    }

    // The orchestration effect in isolation (simulated durations): expect
    // pipelined ≈ sequential for 1 year and a widening gap as analysis of
    // year N overlaps simulation of year N+1.
    for years in [1usize, 3, 6] {
        g.bench_with_input(BenchmarkId::new("sim_sequential", years), &years, |b, &y| {
            b.iter(|| simulated_run(y, false));
        });
        g.bench_with_input(BenchmarkId::new("sim_pipelined", years), &years, |b, &y| {
            b.iter(|| simulated_run(y, true));
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
