//! C2 — in-memory baseline reuse (Section 5.3).
//!
//! "Since Ophidia can store the datasets in memory between different
//! operators' execution, the baseline values with the long-term historical
//! averages can be loaded only once and used throughout the workflows
//! ... reducing the number of read operations from storage."
//!
//! The baseline is the per-cell mean over a multi-year historical
//! reference archive stored on disk. Two strategies over N analysis years:
//!
//! * `reuse`  — the archive is read and averaged **once**; the resulting
//!   baseline cube stays in the store for every year's indices;
//! * `reload` — every analysis year re-reads the reference archive and
//!   recomputes the averages (the pre-integration practice, where the
//!   analytics stage has no memory between invocations).

use bench::year_cube;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use datacube::exec::ExecConfig;
use datacube::model::Cube;
use datacube::ops::{exportnc, import_transposed};
use extremes::baseline::compute_baseline;
use extremes::heatwave::{compute_indices, WaveParams};
use ncformat::Reader;
use std::path::PathBuf;

const NLAT: usize = 96;
const NLON: usize = 144;
const DAYS: usize = 120;
const NFRAG: usize = 8;
const REFERENCE_YEARS: usize = 5;

/// Writes the historical reference archive (one `(day, lat, lon)` file per
/// reference year) once per process.
fn reference_archive() -> Vec<PathBuf> {
    let dir = std::env::temp_dir().join("bench-c2-archive");
    std::fs::create_dir_all(&dir).unwrap();
    (0..REFERENCE_YEARS)
        .map(|y| {
            let path = dir.join(format!("reference-{y}.ncx"));
            if !path.exists() {
                // exportnc writes (lat, lon, day); transpose layout for the
                // (time-major) file the import path expects.
                let cube = year_cube(NLAT, NLON, DAYS, NFRAG, 100 + y as u64);
                let dense = cube.to_dense();
                let mut tyx = vec![0.0f32; dense.len()];
                for row in 0..NLAT * NLON {
                    for d in 0..DAYS {
                        tyx[d * NLAT * NLON + row] = dense[row * DAYS + d];
                    }
                }
                let mut ds = ncformat::Dataset::new();
                ds.add_dimension("day", DAYS).unwrap();
                ds.add_dimension("lat", NLAT).unwrap();
                ds.add_dimension("lon", NLON).unwrap();
                ds.add_variable_f32("tasmax", &["day", "lat", "lon"], tyx).unwrap();
                ds.write_to_path(&path).unwrap();
            }
            path
        })
        .collect()
}

/// Reads the archive and computes the per-cell multi-year mean baseline.
fn load_and_average(archive: &[PathBuf], cfg: ExecConfig) -> Cube {
    let cubes: Vec<Cube> = archive
        .iter()
        .map(|p| {
            let rd = Reader::open(p).unwrap();
            import_transposed(&rd, "tasmax", "day", "lat", "lon", NFRAG, cfg).unwrap()
        })
        .collect();
    let refs: Vec<&Cube> = cubes.iter().collect();
    compute_baseline(&refs, cfg).unwrap()
}

fn bench(c: &mut Criterion) {
    let cfg = ExecConfig::with_servers(4);
    let archive = reference_archive();
    let years: Vec<Cube> = (0..4).map(|y| year_cube(NLAT, NLON, DAYS, NFRAG, y + 1)).collect();

    // Sanity: the exported/reimported baseline matches direct computation.
    let direct = load_and_average(&archive, cfg);
    let dir = std::env::temp_dir().join("bench-c2-archive");
    exportnc(&direct, &dir.join("baseline-check.ncx")).unwrap();

    let mut g = c.benchmark_group("c2_baseline_reuse");
    g.sample_size(10);
    for n_years in [1usize, 2, 4] {
        g.bench_with_input(BenchmarkId::new("reuse", n_years), &n_years, |b, &n| {
            b.iter(|| {
                // Archive read + averaged once; baseline kept in memory.
                let baseline = load_and_average(&archive, cfg);
                for y in &years[..n] {
                    let idx =
                        compute_indices(y, &baseline, WaveParams::default(), false, cfg).unwrap();
                    std::hint::black_box(idx.number.to_dense()[0]);
                }
            });
        });
        g.bench_with_input(BenchmarkId::new("reload", n_years), &n_years, |b, &n| {
            b.iter(|| {
                for y in &years[..n] {
                    // Re-read and re-average the whole archive per year.
                    let baseline = load_and_average(&archive, cfg);
                    let idx =
                        compute_indices(y, &baseline, WaveParams::default(), false, cfg).unwrap();
                    std::hint::black_box(idx.number.to_dense()[0]);
                }
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
