//! C4 — Ophidia-style analytics scaling over I/O servers.
//!
//! Section 4.2.2: "the number of Ophidia computing components can be
//! scaled up ... over multiple nodes of the infrastructure to address
//! more intensive data analytics workloads." The operator pipeline of the
//! heat-wave indices (intercube → apply → map_series) runs over a
//! 96×144×365 cube fragmented 16 ways, with 1–8 I/O server threads.
//!
//! Besides the operator-scaling groups, `pipeline_e2e` measures the full
//! data plane — NetCDF ingest → operators → NetCDF export — and reports
//! allocations/bytes per stage (one `[c4-alloc]` line each, meaningful
//! when built with `--features count-alloc`; `scripts/bench_record.sh`
//! records them into the `BENCH_<date>.json` perf trajectory).

use bench::{alloc, baseline_cube, year_cube};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use datacube::exec::ExecConfig;
use datacube::expr::Expr;
use datacube::fuse::Pipeline;
use datacube::model::Cube;
use datacube::ops::{
    apply, exportnc, import_transposed, intercube, map_series, reduce, InterOp, ReduceOp,
};
use ncformat::Reader;
use std::path::{Path, PathBuf};

const NLAT: usize = 96;
const NLON: usize = 144;
const DAYS: usize = 365;
const NFRAG: usize = 16;

/// Writes the `(day, lat, lon)` ingest file once per process.
fn ingest_file() -> PathBuf {
    let dir = std::env::temp_dir().join("bench-c4");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("year.ncx");
    if !path.exists() {
        let cube = year_cube(NLAT, NLON, DAYS, NFRAG, 9);
        let dense = cube.to_dense();
        let mut tyx = vec![0.0f32; dense.len()];
        for row in 0..NLAT * NLON {
            for d in 0..DAYS {
                tyx[d * NLAT * NLON + row] = dense[row * DAYS + d];
            }
        }
        let mut ds = ncformat::Dataset::new();
        ds.add_dimension("day", DAYS).unwrap();
        ds.add_dimension("lat", NLAT).unwrap();
        ds.add_dimension("lon", NLON).unwrap();
        ds.add_variable_f32("tasmax", &["day", "lat", "lon"], tyx).unwrap();
        ds.write_to_path(&path).unwrap();
    }
    path
}

/// Builds the fused anomaly→mask→index chain: one kernel per fragment
/// touches every day exactly once, with a tap materializing the anomaly
/// cube (the pipeline's export boundary) in the same pass.
fn fused_chain(baseline: &Cube, mask_expr: &Expr) -> Pipeline {
    Pipeline::new().intercube(baseline, InterOp::Sub).tap().apply(mask_expr.clone()).map_series(
        "hwd",
        1,
        |row, out| {
            out[0] = extremes::heatwave::longest_wave(row, 6) as f32;
        },
    )
}

/// The measured e2e data plane: ingest → fused(anomaly ⊕ mask ⊕ index)
/// → export. The anomaly cube — the pipeline's materialization boundary —
/// comes out of the fused pass as a tap and is exported alongside the
/// index map, mirroring the paper's per-year outputs.
fn pipeline_e2e(
    src: &Path,
    baseline: &Cube,
    mask_expr: &Expr,
    out_path: &Path,
    cfg: ExecConfig,
) -> f32 {
    let rd = Reader::open(src).unwrap();
    let cube = import_transposed(&rd, "tasmax", "day", "lat", "lon", NFRAG, cfg).unwrap();
    let fused = fused_chain(baseline, mask_expr).run(&cube, cfg).unwrap();
    let anom = fused.tapped.expect("tap requested");
    exportnc(&anom, out_path).unwrap();
    fused.cube.to_dense()[0]
}

/// One-shot per-stage allocation audit of the e2e pipeline, printed as
/// `[c4-alloc] stage=<name> allocs=<n> bytes=<n>` lines.
fn report_stage_allocs(src: &Path, baseline: &Cube, mask_expr: &Expr, out_path: &Path) {
    let cfg = ExecConfig::with_servers(4);
    let mut lines: Vec<(&str, alloc::AllocStats)> = Vec::new();

    let rd = Reader::open(src).unwrap();
    let (cube, st) =
        alloc::measured(|| import_transposed(&rd, "tasmax", "day", "lat", "lon", NFRAG, cfg));
    let cube = cube.unwrap();
    lines.push(("ingest", st));

    let (anom, st) = alloc::measured(|| intercube(&cube, baseline, InterOp::Sub, cfg));
    let anom = anom.unwrap();
    lines.push(("anomaly", st));

    let (mask, st) = alloc::measured(|| apply(&anom, mask_expr, cfg));
    lines.push(("mask", st));

    let (runs, st) =
        alloc::measured(|| {
            map_series(&mask, "hwd", 1, cfg, |row| {
                vec![extremes::heatwave::longest_wave(row, 6) as f32]
            })
        });
    let runs = runs.unwrap();
    std::hint::black_box(runs.to_dense()[0]);
    lines.push(("index", st));

    let (_, st) = alloc::measured(|| exportnc(&anom, out_path).unwrap());
    lines.push(("export", st));

    // The fused equivalent of anomaly+mask+index in one traversal.
    let (fused, st) = alloc::measured(|| fused_chain(baseline, mask_expr).run(&cube, cfg));
    std::hint::black_box(fused.unwrap().cube.to_dense()[0]);
    lines.push(("fused_chain", st));

    let total: alloc::AllocStats =
        lines.iter().fold(alloc::AllocStats::default(), |acc, (_, s)| alloc::AllocStats {
            allocs: acc.allocs + s.allocs,
            bytes: acc.bytes + s.bytes,
        });
    lines.push(("total", total));

    if !alloc::counting_enabled() {
        println!("[c4-alloc] counting allocator disabled; rebuild with --features count-alloc");
    }
    for (stage, st) in lines {
        println!("[c4-alloc] stage={stage} allocs={} bytes={}", st.allocs, st.bytes);
    }
}

fn bench(c: &mut Criterion) {
    let cube = year_cube(NLAT, NLON, DAYS, NFRAG, 9);
    let baseline = baseline_cube(NLAT, NLON, NFRAG);
    let mask_expr = Expr::from_oph_predicate("x", ">5", "1", "0").unwrap();
    let src = ingest_file();
    let out_path = std::env::temp_dir().join("bench-c4").join("anom-out.ncx");

    report_stage_allocs(&src, &baseline, &mask_expr, &out_path);

    let mut g = c.benchmark_group("c4_fragment_scaling");
    g.sample_size(20);
    for servers in [1usize, 2, 4, 8] {
        let cfg = ExecConfig::with_servers(servers);
        g.bench_with_input(BenchmarkId::new("index_pipeline", servers), &servers, |b, _| {
            b.iter(|| {
                let anom = intercube(&cube, &baseline, InterOp::Sub, cfg).unwrap();
                let mask = apply(&anom, &mask_expr, cfg);
                let runs = map_series(&mask, "hwd", 1, cfg, |row| {
                    vec![extremes::heatwave::longest_wave(row, 6) as f32]
                })
                .unwrap();
                std::hint::black_box(runs.to_dense()[0]);
            });
        });
        g.bench_with_input(BenchmarkId::new("fused_pipeline", servers), &servers, |b, _| {
            let p = fused_chain(&baseline, &mask_expr);
            b.iter(|| {
                let out = p.run(&cube, cfg).unwrap();
                std::hint::black_box(out.cube.to_dense()[0]);
            });
        });
        g.bench_with_input(BenchmarkId::new("reduce_max", servers), &servers, |b, _| {
            b.iter(|| {
                let r = reduce(&cube, ReduceOp::Max, "day", cfg).unwrap();
                std::hint::black_box(r.to_dense()[0]);
            });
        });
    }
    let cfg = ExecConfig::with_servers(4);
    g.sample_size(10);
    g.bench_function("pipeline_e2e/4", |b| {
        b.iter(|| std::hint::black_box(pipeline_e2e(&src, &baseline, &mask_expr, &out_path, cfg)));
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
