//! C4 — Ophidia-style analytics scaling over I/O servers.
//!
//! Section 4.2.2: "the number of Ophidia computing components can be
//! scaled up ... over multiple nodes of the infrastructure to address
//! more intensive data analytics workloads." The operator pipeline of the
//! heat-wave indices (intercube → apply → map_series) runs over a
//! 96×144×365 cube fragmented 16 ways, with 1–8 I/O server threads.

use bench::{baseline_cube, year_cube};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use datacube::exec::ExecConfig;
use datacube::expr::Expr;
use datacube::ops::{apply, intercube, map_series, reduce, InterOp, ReduceOp};

fn bench(c: &mut Criterion) {
    let cube = year_cube(96, 144, 365, 16, 9);
    let baseline = baseline_cube(96, 144, 16);
    let mask_expr = Expr::from_oph_predicate("x", ">5", "1", "0").unwrap();

    let mut g = c.benchmark_group("c4_fragment_scaling");
    g.sample_size(20);
    for servers in [1usize, 2, 4, 8] {
        let cfg = ExecConfig::with_servers(servers);
        g.bench_with_input(BenchmarkId::new("index_pipeline", servers), &servers, |b, _| {
            b.iter(|| {
                let anom = intercube(&cube, &baseline, InterOp::Sub, cfg).unwrap();
                let mask = apply(&anom, &mask_expr, cfg);
                let runs = map_series(&mask, "hwd", 1, cfg, |row| {
                    vec![extremes::heatwave::longest_wave(row, 6) as f32]
                })
                .unwrap();
                std::hint::black_box(runs.to_dense()[0]);
            });
        });
        g.bench_with_input(BenchmarkId::new("reduce_max", servers), &servers, |b, _| {
            b.iter(|| {
                let r = reduce(&cube, ReduceOp::Max, "day", cfg).unwrap();
                std::hint::black_box(r.to_dense()[0]);
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
