//! A3 (extension) — multi-site federated execution vs single-site.
//!
//! The paper's future work: run the ESM on a large HPC system, the Big
//! Data analytics on a data-oriented/cloud site and the ML inference on a
//! GPU partition, with the Data Logistics Service moving each year's
//! output between them. The experiment sweeps the per-year data volume
//! and reports the crossover: class-affinity placement wins while the
//! specialized-site speedups (2.5x analytics, 6x inference) outweigh the
//! WAN transfers; single-site wins once shipping dominates.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hpcwaas::{Federation, Placement, Workload};

fn workload(bytes_per_year: u64) -> Workload {
    Workload::case_study(3, 20_000, 6_000, 6, 9_000, bytes_per_year)
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("a3_distributed");
    for gb in [0.05f64, 1.0, 20.0, 80.0] {
        let bytes = (gb * 1e9) as u64;
        g.bench_with_input(BenchmarkId::new("single_site", format!("{gb}GB")), &bytes, |b, &by| {
            b.iter(|| {
                let mut fed = Federation::testbed();
                std::hint::black_box(fed.evaluate(&workload(by), Placement::SingleSite).unwrap())
            });
        });
        g.bench_with_input(
            BenchmarkId::new("class_affinity", format!("{gb}GB")),
            &bytes,
            |b, &by| {
                b.iter(|| {
                    let mut fed = Federation::testbed();
                    std::hint::black_box(
                        fed.evaluate(&workload(by), Placement::ClassAffinity).unwrap(),
                    )
                });
            },
        );
    }
    g.finish();

    // The paper-relevant output: virtual makespans and the crossover.
    eprintln!("[a3] per-year volume | single-site ms | affinity ms | affinity transfer ms");
    for gb in [0.05f64, 0.5, 1.0, 5.0, 20.0, 80.0] {
        let bytes = (gb * 1e9) as u64;
        let mut f1 = Federation::testbed();
        let mut f2 = Federation::testbed();
        let s = f1.evaluate(&workload(bytes), Placement::SingleSite).unwrap();
        let a = f2.evaluate(&workload(bytes), Placement::ClassAffinity).unwrap();
        eprintln!(
            "[a3] {gb:>6.2} GB       | {:>12} | {:>10} | {:>9}",
            s.makespan_ms, a.makespan_ms, a.transfer_ms
        );
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
