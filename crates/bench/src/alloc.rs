//! Counting-allocator harness for allocation benchmarking.
//!
//! With the `count-alloc` feature enabled, a `#[global_allocator]` wrapper
//! around the system allocator counts every allocation (and realloc) and the
//! bytes requested, process-wide — pool worker threads included. The counters
//! are two relaxed atomics per allocation, cheap enough that wall-clock
//! numbers from counted runs stay comparable. Without the feature the system
//! allocator is untouched and [`stats`] reports zeros.
//!
//! `scripts/bench_record.sh` runs the benches with the feature on and records
//! the per-stage deltas printed by `c4_fragment_scaling` into the
//! `BENCH_<date>.json` perf trajectory.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);

/// System-allocator wrapper that counts allocations and requested bytes.
pub struct CountingAlloc;

// SAFETY: delegates every operation verbatim to `System`; the counters do
// not affect allocator behaviour.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // A growing realloc requests `new_size` fresh bytes in the worst
        // case; counting the full new size makes incremental Vec growth
        // visible instead of free.
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[cfg(feature = "count-alloc")]
#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Whether the counting allocator is compiled in.
pub fn counting_enabled() -> bool {
    cfg!(feature = "count-alloc")
}

/// Cumulative allocation counters since process start (zeros when the
/// `count-alloc` feature is off).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AllocStats {
    pub allocs: u64,
    pub bytes: u64,
}

impl std::ops::Sub for AllocStats {
    type Output = AllocStats;
    fn sub(self, rhs: AllocStats) -> AllocStats {
        AllocStats {
            allocs: self.allocs.saturating_sub(rhs.allocs),
            bytes: self.bytes.saturating_sub(rhs.bytes),
        }
    }
}

/// Current counter snapshot.
pub fn stats() -> AllocStats {
    AllocStats { allocs: ALLOCS.load(Ordering::Relaxed), bytes: BYTES.load(Ordering::Relaxed) }
}

/// Runs `f` and returns its result together with the allocation delta it
/// caused (process-wide, so run measured sections without concurrent noise).
pub fn measured<R>(f: impl FnOnce() -> R) -> (R, AllocStats) {
    let before = stats();
    let out = f();
    (out, stats() - before)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measured_reports_vec_allocation() {
        let (v, delta) = measured(|| vec![0u8; 1 << 16]);
        assert_eq!(v.len(), 1 << 16);
        if counting_enabled() {
            assert!(delta.allocs >= 1);
            assert!(delta.bytes >= 1 << 16, "counted {} bytes", delta.bytes);
        } else {
            assert_eq!(delta, AllocStats::default());
        }
    }

    #[test]
    fn stats_are_monotonic() {
        let a = stats();
        std::hint::black_box(vec![1u64; 512]);
        let b = stats();
        assert!(b.allocs >= a.allocs && b.bytes >= a.bytes);
    }
}
