//! Shared workload builders for the benchmark harness.
//!
//! Each bench target under `benches/` regenerates one experiment from the
//! DESIGN.md index (C1–C7, A1–A2, D1, FIG3). The helpers here build the
//! common inputs — simulated fields, year cubes, trained CNNs — once per
//! process so the measured sections time only the operation under study.

pub mod alloc;

use datacube::model::{Cube, Dimension, SharedData};
use esm::{CoupledModel, EsmConfig};
use extremes::tc::cnn::{FieldSet, TcCnn};
use gridded::{Field2, Grid};
use std::sync::OnceLock;

/// A deterministic `(lat, lon | day)` cube shaped like one analysis year.
pub fn year_cube(nlat: usize, nlon: usize, days: usize, nfrag: usize, seed: u64) -> Cube {
    let g = Grid::global(nlat, nlon);
    let data = SharedData::from_fn(g.len() * days, |data| {
        for (i, v) in data.iter_mut().enumerate() {
            *v = 290.0 + (((i as u64).wrapping_mul(seed | 1) >> 17) % 400) as f32 / 20.0;
        }
    });
    Cube::from_shared(
        "tasmax",
        vec![
            Dimension::explicit("lat", g.lats()),
            Dimension::explicit("lon", g.lons()),
            Dimension::implicit("day", (0..days).map(|d| d as f64).collect::<Vec<_>>()),
        ],
        data,
        nfrag,
        nfrag,
    )
    .unwrap()
}

/// A `(lat, lon)` baseline matching [`year_cube`]'s grid.
pub fn baseline_cube(nlat: usize, nlon: usize, nfrag: usize) -> Cube {
    let g = Grid::global(nlat, nlon);
    Cube::from_shared(
        "tasmax",
        vec![Dimension::explicit("lat", g.lats()), Dimension::explicit("lon", g.lons())],
        SharedData::from_fn(g.len(), |d| d.fill(295.0)),
        nfrag,
        nfrag,
    )
    .unwrap()
}

/// One simulated day of model output on the test grid (cached).
pub fn sample_day() -> &'static esm::DailyFields {
    static DAY: OnceLock<esm::DailyFields> = OnceLock::new();
    DAY.get_or_init(|| {
        let mut cfg = EsmConfig::test_small().with_days_per_year(10);
        cfg.tc_per_year = 30.0; // make sure cyclones are in frame
        let mut model = CoupledModel::new(cfg);
        // Step into the season a little so events are active.
        let mut out = model.step_day();
        for _ in 0..3 {
            out = model.step_day();
        }
        out
    })
}

/// The four TC-analysis fields of one timestep of [`sample_day`].
pub fn sample_fieldset(step: usize) -> FieldSet {
    let day = sample_day();
    FieldSet {
        psl: day.get("psl").unwrap().level(step),
        wind: day.get("sfcWind").unwrap().level(step),
        tas: day.get("tas").unwrap().level(step),
        vort: day.get("vort").unwrap().level(step),
    }
}

/// A quickly-trained CNN shared across benches (training excluded from the
/// measured sections).
pub fn trained_cnn() -> TcCnn {
    static WEIGHTS: OnceLock<Vec<u8>> = OnceLock::new();
    let bytes = WEIGHTS.get_or_init(|| {
        let dir = std::env::temp_dir().join("bench-cnn");
        std::fs::create_dir_all(&dir).ok();
        let path = dir.join("bench-cnn.tml");
        let mut m = TcCnn::new(16, 7);
        m.train_synthetic(200, 10, 11);
        m.save(&path).unwrap();
        std::fs::read(&path).unwrap()
    });
    let dir = std::env::temp_dir().join("bench-cnn");
    std::fs::create_dir_all(&dir).ok();
    let path = dir.join("bench-cnn-load.tml");
    std::fs::write(&path, bytes).unwrap();
    TcCnn::load(16, &path).unwrap()
}

/// A synthetic busy-work task body with a calibrated duration, used by the
/// scheduler-scaling benches so task cost is controlled.
pub fn spin_for_micros(us: u64) -> u64 {
    let start = std::time::Instant::now();
    let mut acc = 0u64;
    while start.elapsed().as_micros() < us as u128 {
        acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        std::hint::black_box(acc);
    }
    acc
}

/// A quiet field set (climatology + mild noise) for detector benches.
pub fn quiet_fields(nlat: usize, nlon: usize) -> FieldSet {
    let g = Grid::global(nlat, nlon);
    let mk = |base: f32, amp: f32, seed: u64| {
        let mut f = Field2::constant(g.clone(), base);
        for (i, v) in f.data.iter_mut().enumerate() {
            *v += amp * ((((i as u64).wrapping_mul(seed | 1)) >> 23) % 100) as f32 / 100.0;
        }
        f
    };
    FieldSet {
        psl: mk(101_300.0, 400.0, 3),
        wind: mk(8.0, 4.0, 5),
        tas: mk(295.0, 3.0, 7),
        vort: mk(0.0, 0.2, 9),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn year_cube_shape() {
        let c = year_cube(12, 24, 30, 4, 1);
        assert_eq!(c.rows(), 288);
        assert_eq!(c.implicit_len(), 30);
        c.validate().unwrap();
    }

    #[test]
    fn sample_day_has_tc_fields() {
        let f = sample_fieldset(0);
        assert_eq!(f.psl.grid.nlat, 48);
        assert!(f.psl.data.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn spin_is_roughly_calibrated() {
        let t = std::time::Instant::now();
        spin_for_micros(2000);
        let took = t.elapsed().as_micros();
        assert!((1800..20_000).contains(&took), "spin took {took} us");
    }

    #[test]
    fn trained_cnn_loads() {
        let m = trained_cnn();
        assert!(m.param_count() > 0);
    }
}
