//! Parallel-vs-serial equivalence for the pooled gridded paths.
//!
//! The in-crate unit tests all use grids below the parallel dispatch
//! threshold, so these tests use large grids that take the pooled path
//! and check them against serial oracles. Row/tile kernels are
//! self-contained (no cross-row accumulation), so results must be
//! *bitwise* identical to serial, not merely close.

use gridded::field::Field2;
use gridded::grid::Grid;
use gridded::regrid::{coarsen, regrid_bilinear};
use gridded::tile::{TileSpec, Tiling};

fn wavy(g: &Grid) -> Field2 {
    let mut f = Field2::zeros(g.clone());
    for i in 0..g.nlat {
        for j in 0..g.nlon {
            let v = ((i * 31 + j * 17) % 101) as f32 / 7.0 - 5.0;
            f.set(i, j, v);
        }
    }
    f
}

#[test]
fn large_identity_regrid_takes_parallel_path_and_is_exact() {
    // 128*192 = 24576 destination cells: above the dispatch threshold.
    let g = Grid::global(128, 192);
    let f = wavy(&g);
    let out = regrid_bilinear(&f, &g);
    for i in 0..g.nlat {
        for j in 0..g.nlon {
            let (a, b) = (out.get(i, j), f.get(i, j));
            assert!((a - b).abs() < 1e-4, "({i},{j}): {a} vs {b}");
        }
    }
}

#[test]
fn large_constant_regrid_is_constant() {
    let f = Field2::constant(Grid::global(96, 144), 3.25);
    let out = regrid_bilinear(&f, &Grid::global(160, 240));
    for v in &out.data {
        assert!((v - 3.25).abs() < 1e-5);
    }
}

#[test]
fn large_coarsen_matches_naive_block_mean_bitwise() {
    // Source work 256*128 cells: coarsen dispatches block rows onto the
    // pool. The per-block accumulation order matches the oracle's, so
    // the result must be bitwise identical.
    let g = Grid::global(256, 128);
    let f = wavy(&g);
    let (flat, flon) = (2, 2);
    let c = coarsen(&f, flat, flon);
    assert_eq!((c.grid.nlat, c.grid.nlon), (128, 64));
    for bi in 0..c.grid.nlat {
        for bj in 0..c.grid.nlon {
            let mut sum = 0.0f32;
            for di in 0..flat {
                for dj in 0..flon {
                    sum += f.get(bi * flat + di, bj * flon + dj);
                }
            }
            let want = sum / (flat * flon) as f32;
            assert_eq!(c.get(bi, bj), want, "block ({bi},{bj})");
        }
    }
}

#[test]
fn large_extract_all_matches_per_tile_extract_bitwise() {
    // 20*20 tiles of 8x8 = 25600 covered cells: extract_all fans tiles
    // out onto the pool, while Tiling::extract stays serial — comparing
    // the two is a direct parallel-vs-serial equivalence check.
    let g = Grid::global(160, 160);
    let f = wavy(&g);
    let t = Tiling::plan(g, TileSpec { patch: 8 });
    assert_eq!(t.len(), 400);
    let all = t.extract_all(&f);
    assert_eq!(all.len(), t.len());
    for r in 0..t.rows {
        for c in 0..t.cols {
            assert_eq!(all[r * t.cols + c], t.extract(&f, r, c), "tile ({r},{c})");
        }
    }
}
