//! Property tests on the raster toolbox invariants.

use gridded::{
    coarsen, regrid_bilinear, Field2, Grid, MinMaxScaler, TileSpec, Tiling, ZScoreScaler,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Bilinear regridding is bounded by the source field's range.
    #[test]
    fn regrid_is_bounded(
        (snlat, snlon) in (4usize..12, 6usize..16),
        (dnlat, dnlon) in (3usize..14, 4usize..20),
        seed in any::<u64>(),
    ) {
        let sg = Grid::global(snlat, snlon);
        let data: Vec<f32> = (0..sg.len())
            .map(|i| (((i as u64).wrapping_mul(seed | 1) >> 16) % 1000) as f32 / 10.0)
            .collect();
        let f = Field2::from_vec(sg, data);
        let (lo, hi) = (f.min().unwrap(), f.max().unwrap());
        let out = regrid_bilinear(&f, &Grid::global(dnlat, dnlon));
        for v in &out.data {
            prop_assert!(*v >= lo - 1e-4 && *v <= hi + 1e-4, "{v} outside [{lo},{hi}]");
        }
    }

    /// Coarsening preserves the (unweighted) mean exactly up to f32 error.
    #[test]
    fn coarsen_preserves_mean(
        blocks in (1usize..5, 1usize..5),
        factors in (1usize..4, 1usize..4),
        seed in any::<u64>(),
    ) {
        let (br, bc) = blocks;
        let (fr, fc) = factors;
        let g = Grid::global(br * fr, bc * fc);
        let data: Vec<f32> = (0..g.len())
            .map(|i| (((i as u64).wrapping_mul(seed | 3) >> 12) % 256) as f32)
            .collect();
        let f = Field2::from_vec(g, data);
        let c = coarsen(&f, fr, fc);
        prop_assert!((c.mean() - f.mean()).abs() < 1e-3);
    }

    /// Tile extraction partitions the covered region: every covered cell
    /// appears exactly once across all tiles.
    #[test]
    fn tiling_partitions(
        (nlat, nlon) in (4usize..20, 4usize..24),
        patch in 2usize..6,
    ) {
        let g = Grid::global(nlat, nlon);
        let f = Field2::from_vec(g.clone(), (0..g.len()).map(|i| i as f32).collect());
        let t = Tiling::plan(g, TileSpec { patch });
        let mut covered: Vec<f32> = t.extract_all(&f).into_iter().flatten().collect();
        prop_assert_eq!(covered.len(), t.rows * t.cols * patch * patch);
        covered.sort_by(|a, b| a.partial_cmp(b).unwrap());
        covered.dedup();
        prop_assert_eq!(covered.len(), t.rows * t.cols * patch * patch);
    }

    /// locate() and to_grid() are mutually inverse on covered cells.
    #[test]
    fn tile_locate_roundtrip(
        (nlat, nlon) in (4usize..16, 4usize..16),
        patch in 1usize..5,
        cell in any::<u64>(),
    ) {
        let g = Grid::global(nlat, nlon);
        let t = Tiling::plan(g.clone(), TileSpec { patch });
        prop_assume!(!t.is_empty());
        let i = (cell as usize) % (t.rows * patch);
        let j = ((cell >> 16) as usize) % (t.cols * patch);
        let (r, c, pi, pj) = t.locate(i, j).unwrap();
        prop_assert_eq!(t.to_grid(r, c, pi, pj), (i, j));
    }

    /// Scalers invert exactly (within float tolerance).
    #[test]
    fn scalers_invert(data in proptest::collection::vec(-1e4f32..1e4, 2..50), probe in -1e4f32..1e4) {
        let mm = MinMaxScaler::fit(&data);
        prop_assert!((mm.invert(mm.apply(probe)) - probe).abs() < 1e-1);
        let zs = ZScoreScaler::fit(&data);
        prop_assert!((zs.invert(zs.apply(probe)) - probe).abs() < 1e-1);
    }

    /// Area weights always sum to one and are non-negative.
    #[test]
    fn area_weights_normalized((nlat, nlon) in (1usize..40, 1usize..40)) {
        let g = Grid::global(nlat, nlon);
        let w = g.area_weights();
        prop_assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        prop_assert!(w.iter().all(|&x| x >= 0.0));
    }

    /// Haversine distance satisfies symmetry and the triangle inequality on
    /// random triples.
    #[test]
    fn haversine_metric(
        a in (-89.0f64..89.0, 0.0f64..360.0),
        b in (-89.0f64..89.0, 0.0f64..360.0),
        c in (-89.0f64..89.0, 0.0f64..360.0),
    ) {
        let d = |p: (f64, f64), q: (f64, f64)| Grid::distance_km(p.0, p.1, q.0, q.1);
        prop_assert!((d(a, b) - d(b, a)).abs() < 1e-6);
        prop_assert!(d(a, c) <= d(a, b) + d(b, c) + 1e-6);
        prop_assert!(d(a, a) < 1e-9);
    }
}
