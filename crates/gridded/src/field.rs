//! Field containers: a 2-D field is one variable on one grid at one time;
//! a 3-D field stacks a time axis on top (time-major storage, matching the
//! `(time, lat, lon)` layout of the NetCDF-like files).

use crate::grid::Grid;

/// A single-level, single-time field on a [`Grid`]. Row-major `(lat, lon)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Field2 {
    pub grid: Grid,
    pub data: Vec<f32>,
}

impl Field2 {
    /// A field filled with a constant.
    pub fn constant(grid: Grid, value: f32) -> Self {
        let n = grid.len();
        Field2 { grid, data: vec![value; n] }
    }

    /// A field of zeros.
    pub fn zeros(grid: Grid) -> Self {
        Field2::constant(grid, 0.0)
    }

    /// Wraps existing data; panics if the length does not match the grid.
    pub fn from_vec(grid: Grid, data: Vec<f32>) -> Self {
        assert_eq!(grid.len(), data.len(), "data length must match grid size");
        Field2 { grid, data }
    }

    /// Consumes the field, handing its payload to the caller without a
    /// copy — the bridge into zero-copy consumers (`SharedData::from` turns
    /// the vector into a shared fragment buffer with a single move).
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Value at `(i, j)`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f32 {
        self.data[self.grid.index(i, j)]
    }

    /// Mutable value at `(i, j)`.
    #[inline]
    pub fn get_mut(&mut self, i: usize, j: usize) -> &mut f32 {
        let idx = self.grid.index(i, j);
        &mut self.data[idx]
    }

    /// Sets the value at `(i, j)`.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f32) {
        *self.get_mut(i, j) = v;
    }

    /// Applies `f` to every cell in place.
    pub fn map_inplace<F: FnMut(f32) -> f32>(&mut self, mut f: F) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Element-wise combination with another field on the same grid.
    pub fn zip_with<F: FnMut(f32, f32) -> f32>(&self, other: &Field2, mut f: F) -> Field2 {
        assert_eq!(self.grid, other.grid, "fields must share a grid");
        let data = self.data.iter().zip(&other.data).map(|(&a, &b)| f(a, b)).collect();
        Field2 { grid: self.grid.clone(), data }
    }

    /// Minimum value (NaNs ignored; returns `None` for an empty field or
    /// all-NaN data).
    pub fn min(&self) -> Option<f32> {
        self.data.iter().copied().filter(|v| !v.is_nan()).fold(None, |m, v| {
            Some(match m {
                None => v,
                Some(m) => m.min(v),
            })
        })
    }

    /// Maximum value (NaNs ignored).
    pub fn max(&self) -> Option<f32> {
        self.data.iter().copied().filter(|v| !v.is_nan()).fold(None, |m, v| {
            Some(match m {
                None => v,
                Some(m) => m.max(v),
            })
        })
    }

    /// Unweighted arithmetic mean.
    pub fn mean(&self) -> f64 {
        if self.data.is_empty() {
            return f64::NAN;
        }
        self.data.iter().map(|&v| v as f64).sum::<f64>() / self.data.len() as f64
    }

    /// Area-weighted global mean (cos-latitude weights).
    pub fn area_mean(&self) -> f64 {
        let w = self.grid.area_weights();
        self.data.iter().zip(&w).map(|(&v, &wi)| v as f64 * wi).sum()
    }

    /// Index of the minimum value as `(i, j)`, ignoring NaNs.
    pub fn argmin(&self) -> Option<(usize, usize)> {
        let mut best: Option<(usize, f32)> = None;
        for (idx, &v) in self.data.iter().enumerate() {
            if v.is_nan() {
                continue;
            }
            if best.is_none_or(|(_, bv)| v < bv) {
                best = Some((idx, v));
            }
        }
        best.map(|(idx, _)| self.grid.coords(idx))
    }

    /// Index of the maximum value as `(i, j)`, ignoring NaNs.
    pub fn argmax(&self) -> Option<(usize, usize)> {
        let mut best: Option<(usize, f32)> = None;
        for (idx, &v) in self.data.iter().enumerate() {
            if v.is_nan() {
                continue;
            }
            if best.is_none_or(|(_, bv)| v > bv) {
                best = Some((idx, v));
            }
        }
        best.map(|(idx, _)| self.grid.coords(idx))
    }
}

/// A time-stacked field: `ntime` levels of `(lat, lon)` planes, time-major.
#[derive(Debug, Clone, PartialEq)]
pub struct Field3 {
    pub grid: Grid,
    pub ntime: usize,
    pub data: Vec<f32>,
}

impl Field3 {
    /// An all-zero stack.
    pub fn zeros(grid: Grid, ntime: usize) -> Self {
        let n = grid.len() * ntime;
        Field3 { grid, ntime, data: vec![0.0; n] }
    }

    /// Wraps existing data; panics on length mismatch.
    pub fn from_vec(grid: Grid, ntime: usize, data: Vec<f32>) -> Self {
        assert_eq!(grid.len() * ntime, data.len(), "data length must be ntime * grid");
        Field3 { grid, ntime, data }
    }

    /// Builds a stack from per-time 2-D fields (all on the same grid).
    pub fn from_slices(fields: &[Field2]) -> Self {
        assert!(!fields.is_empty(), "need at least one time slice");
        let grid = fields[0].grid.clone();
        let mut data = Vec::with_capacity(grid.len() * fields.len());
        for f in fields {
            assert_eq!(f.grid, grid, "all slices must share a grid");
            data.extend_from_slice(&f.data);
        }
        Field3 { grid, ntime: fields.len(), data }
    }

    /// Consumes the stack, handing its payload to the caller without a
    /// copy (time-major, matching the file layout).
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Borrowed view of time level `t`.
    pub fn slice(&self, t: usize) -> &[f32] {
        let n = self.grid.len();
        &self.data[t * n..(t + 1) * n]
    }

    /// Owned copy of time level `t` as a [`Field2`].
    pub fn level(&self, t: usize) -> Field2 {
        Field2::from_vec(self.grid.clone(), self.slice(t).to_vec())
    }

    /// Value at `(t, i, j)`.
    #[inline]
    pub fn get(&self, t: usize, i: usize, j: usize) -> f32 {
        self.data[t * self.grid.len() + self.grid.index(i, j)]
    }

    /// Sets the value at `(t, i, j)`.
    #[inline]
    pub fn set(&mut self, t: usize, i: usize, j: usize, v: f32) {
        let idx = t * self.grid.len() + self.grid.index(i, j);
        self.data[idx] = v;
    }

    /// Per-cell reduction over the time axis with `f` (e.g. running max).
    pub fn reduce_time<F: Fn(f32, f32) -> f32>(&self, init: f32, f: F) -> Field2 {
        let n = self.grid.len();
        let mut out = vec![init; n];
        for t in 0..self.ntime {
            let lvl = self.slice(t);
            for (o, &v) in out.iter_mut().zip(lvl) {
                *o = f(*o, v);
            }
        }
        Field2::from_vec(self.grid.clone(), out)
    }

    /// Per-cell time mean.
    pub fn time_mean(&self) -> Field2 {
        if self.ntime == 0 {
            return Field2::zeros(self.grid.clone());
        }
        let sum = self.reduce_time(0.0, |a, b| a + b);
        let n = self.ntime as f32;
        let data = sum.data.iter().map(|&v| v / n).collect();
        Field2::from_vec(self.grid.clone(), data)
    }

    /// Per-cell time maximum.
    pub fn time_max(&self) -> Field2 {
        self.reduce_time(f32::NEG_INFINITY, f32::max)
    }

    /// Per-cell time minimum.
    pub fn time_min(&self) -> Field2 {
        self.reduce_time(f32::INFINITY, f32::min)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Grid {
        Grid::global(4, 6)
    }

    #[test]
    fn constant_and_zeros() {
        let f = Field2::constant(small(), 3.0);
        assert_eq!(f.data.len(), 24);
        assert!(f.data.iter().all(|&v| v == 3.0));
        assert_eq!(Field2::zeros(small()).mean(), 0.0);
    }

    #[test]
    #[should_panic(expected = "data length")]
    fn from_vec_length_checked() {
        Field2::from_vec(small(), vec![0.0; 5]);
    }

    #[test]
    fn get_set_roundtrip() {
        let mut f = Field2::zeros(small());
        f.set(2, 3, 7.5);
        assert_eq!(f.get(2, 3), 7.5);
        assert_eq!(f.get(2, 2), 0.0);
    }

    #[test]
    fn zip_with_adds() {
        let a = Field2::constant(small(), 1.0);
        let b = Field2::constant(small(), 2.0);
        let c = a.zip_with(&b, |x, y| x + y);
        assert!(c.data.iter().all(|&v| v == 3.0));
    }

    #[test]
    fn min_max_ignore_nan() {
        let mut f = Field2::constant(small(), 1.0);
        f.set(0, 0, f32::NAN);
        f.set(1, 1, -5.0);
        f.set(2, 2, 9.0);
        assert_eq!(f.min(), Some(-5.0));
        assert_eq!(f.max(), Some(9.0));
        assert_eq!(f.argmin(), Some((1, 1)));
        assert_eq!(f.argmax(), Some((2, 2)));
    }

    #[test]
    fn area_mean_of_constant_is_constant() {
        let f = Field2::constant(small(), 4.0);
        assert!((f.area_mean() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn field3_slicing_and_reductions() {
        let g = small();
        let n = g.len();
        let mut data = Vec::new();
        for t in 0..3 {
            data.extend(std::iter::repeat_n(t as f32, n));
        }
        let f3 = Field3::from_vec(g, 3, data);
        assert_eq!(f3.slice(1), &vec![1.0; n][..]);
        assert_eq!(f3.level(2).data, vec![2.0; n]);
        assert_eq!(f3.time_max().data, vec![2.0; n]);
        assert_eq!(f3.time_min().data, vec![0.0; n]);
        assert_eq!(f3.time_mean().data, vec![1.0; n]);
    }

    #[test]
    fn field3_from_slices_matches_manual() {
        let g = small();
        let a = Field2::constant(g.clone(), 1.0);
        let b = Field2::constant(g, 2.0);
        let f3 = Field3::from_slices(&[a.clone(), b.clone()]);
        assert_eq!(f3.ntime, 2);
        assert_eq!(f3.level(0), a);
        assert_eq!(f3.level(1), b);
    }

    #[test]
    fn field3_get_set() {
        let mut f3 = Field3::zeros(small(), 2);
        f3.set(1, 3, 5, -2.0);
        assert_eq!(f3.get(1, 3, 5), -2.0);
        assert_eq!(f3.get(0, 3, 5), 0.0);
    }

    #[test]
    fn into_vec_moves_payload_without_copy() {
        let g = small();
        let mut f = Field2::zeros(g.clone());
        f.set(0, 0, 7.0);
        let ptr = f.data.as_ptr();
        let v = f.into_vec();
        assert_eq!(v.as_ptr(), ptr, "into_vec must not reallocate");
        assert_eq!(v[0], 7.0);

        let f3 = Field3::zeros(g, 2);
        let ptr = f3.data.as_ptr();
        let v = f3.into_vec();
        assert_eq!(v.as_ptr(), ptr);
        assert_eq!(v.len(), 2 * small().len());
    }
}
