//! Feature scaling for the ML pipelines (Section 5.4: "feature scaling"
//! before CNN inference). Scalers are fitted once on training-distribution
//! data, serialized alongside the model, and re-applied at inference time;
//! both directions are exposed so predictions can be mapped back.

/// Min-max scaler mapping the fitted range onto `[0, 1]`.
#[derive(Debug, Clone, PartialEq)]
pub struct MinMaxScaler {
    pub min: f32,
    pub max: f32,
}

impl MinMaxScaler {
    /// Fits on data, ignoring NaNs. Degenerate (constant or empty) input
    /// yields a unit-range scaler so `apply` stays finite.
    pub fn fit(data: &[f32]) -> Self {
        let mut min = f32::INFINITY;
        let mut max = f32::NEG_INFINITY;
        for &v in data {
            if v.is_nan() {
                continue;
            }
            min = min.min(v);
            max = max.max(v);
        }
        if !min.is_finite() || !max.is_finite() || min == max {
            let base = if min.is_finite() { min } else { 0.0 };
            return MinMaxScaler { min: base, max: base + 1.0 };
        }
        MinMaxScaler { min, max }
    }

    /// Scales one value into `[0, 1]` (values outside the fitted range map
    /// outside the unit interval; callers clamp when needed).
    #[inline]
    pub fn apply(&self, v: f32) -> f32 {
        (v - self.min) / (self.max - self.min)
    }

    /// Inverse transform.
    #[inline]
    pub fn invert(&self, s: f32) -> f32 {
        self.min + s * (self.max - self.min)
    }

    /// Scales a buffer in place.
    pub fn apply_slice(&self, data: &mut [f32]) {
        for v in data {
            *v = self.apply(*v);
        }
    }
}

/// Standard-score scaler: `(v - mean) / std`.
#[derive(Debug, Clone, PartialEq)]
pub struct ZScoreScaler {
    pub mean: f32,
    pub std: f32,
}

impl ZScoreScaler {
    /// Fits on data, ignoring NaNs; degenerate input yields unit std.
    pub fn fit(data: &[f32]) -> Self {
        let vals: Vec<f64> = data.iter().filter(|v| !v.is_nan()).map(|&v| v as f64).collect();
        if vals.is_empty() {
            return ZScoreScaler { mean: 0.0, std: 1.0 };
        }
        let mean = vals.iter().sum::<f64>() / vals.len() as f64;
        let var = vals.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / vals.len() as f64;
        let std = var.sqrt();
        ZScoreScaler { mean: mean as f32, std: if std > 0.0 { std as f32 } else { 1.0 } }
    }

    /// Standardizes one value.
    #[inline]
    pub fn apply(&self, v: f32) -> f32 {
        (v - self.mean) / self.std
    }

    /// Inverse transform.
    #[inline]
    pub fn invert(&self, s: f32) -> f32 {
        self.mean + s * self.std
    }

    /// Standardizes a buffer in place.
    pub fn apply_slice(&self, data: &mut [f32]) {
        for v in data {
            *v = self.apply(*v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minmax_maps_range_to_unit() {
        let s = MinMaxScaler::fit(&[2.0, 4.0, 6.0]);
        assert_eq!(s.apply(2.0), 0.0);
        assert_eq!(s.apply(6.0), 1.0);
        assert_eq!(s.apply(4.0), 0.5);
    }

    #[test]
    fn minmax_invert_roundtrips() {
        let s = MinMaxScaler::fit(&[-3.0, 10.0]);
        for v in [-3.0f32, 0.0, 5.5, 10.0, 20.0] {
            assert!((s.invert(s.apply(v)) - v).abs() < 1e-5);
        }
    }

    #[test]
    fn minmax_constant_input_is_safe() {
        let s = MinMaxScaler::fit(&[7.0, 7.0, 7.0]);
        let v = s.apply(7.0);
        assert!(v.is_finite());
    }

    #[test]
    fn minmax_empty_input_is_safe() {
        let s = MinMaxScaler::fit(&[]);
        assert!(s.apply(3.0).is_finite());
    }

    #[test]
    fn minmax_ignores_nan() {
        let s = MinMaxScaler::fit(&[1.0, f32::NAN, 3.0]);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
    }

    #[test]
    fn zscore_standardizes() {
        let s = ZScoreScaler::fit(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert!((s.mean - 3.0).abs() < 1e-6);
        assert!((s.apply(3.0)).abs() < 1e-6);
        let mut buf = [1.0, 5.0];
        s.apply_slice(&mut buf);
        assert!((buf[0] + buf[1]).abs() < 1e-5, "symmetric points standardize symmetrically");
    }

    #[test]
    fn zscore_invert_roundtrips() {
        let s = ZScoreScaler::fit(&[10.0, 20.0, 30.0]);
        for v in [0.0f32, 10.0, 25.0, 99.0] {
            assert!((s.invert(s.apply(v)) - v).abs() < 1e-3);
        }
    }

    #[test]
    fn zscore_degenerate_input_is_safe() {
        let s = ZScoreScaler::fit(&[]);
        assert!(s.apply(1.0).is_finite());
        let s = ZScoreScaler::fit(&[4.0, 4.0]);
        assert_eq!(s.apply(4.0), 0.0);
    }
}
