//! Non-overlapping patch tiling with inverse geo-referencing.
//!
//! Section 5.4 of the paper: the TC-localization pipeline tiles each
//! regridded field into non-overlapping patches, runs the CNN per patch, and
//! geo-references the predicted cyclone-center pixel back onto the global
//! map. [`Tiling`] owns both directions of that mapping.

use crate::field::Field2;
use crate::grid::Grid;

/// Total cell count at which [`Tiling::extract_all`] fans tiles out onto
/// the shared pool; smaller tilings copy faster than they dispatch.
const TILE_PAR_MIN_CELLS: usize = 1 << 14;

/// Size specification for a tiling: square patches of `patch` cells.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TileSpec {
    pub patch: usize,
}

/// A concrete tiling of a grid into non-overlapping `patch × patch` tiles.
/// Edge cells that do not fill a whole tile are dropped (the paper's
/// pipeline regrids to a resolution divisible by its patch size; we keep the
/// truncating behaviour explicit and tested).
#[derive(Debug, Clone)]
pub struct Tiling {
    pub grid: Grid,
    pub patch: usize,
    /// Number of tile rows.
    pub rows: usize,
    /// Number of tile columns.
    pub cols: usize,
}

impl Tiling {
    /// Plans a tiling of `grid` into `spec.patch`-sized tiles.
    pub fn plan(grid: Grid, spec: TileSpec) -> Self {
        assert!(spec.patch > 0, "patch size must be positive");
        let rows = grid.nlat / spec.patch;
        let cols = grid.nlon / spec.patch;
        Tiling { grid, patch: spec.patch, rows, cols }
    }

    /// Total number of tiles.
    pub fn len(&self) -> usize {
        self.rows * self.cols
    }

    /// True when the grid is too small for a single tile.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Extracts tile `(r, c)` from a field as a row-major `patch × patch`
    /// buffer.
    pub fn extract(&self, field: &Field2, r: usize, c: usize) -> Vec<f32> {
        assert_eq!(field.grid, self.grid, "field grid must match tiling grid");
        assert!(r < self.rows && c < self.cols, "tile index out of range");
        let p = self.patch;
        let mut out = Vec::with_capacity(p * p);
        for di in 0..p {
            let i = r * p + di;
            let base = self.grid.index(i, c * p);
            out.extend_from_slice(&field.data[base..base + p]);
        }
        out
    }

    /// Extracts every tile in row-major tile order. Tiles are independent
    /// reads, so extraction fans out over the shared [`par`] pool when
    /// there is enough work to amortize dispatch; ordering is preserved
    /// either way.
    pub fn extract_all(&self, field: &Field2) -> Vec<Vec<f32>> {
        let n = self.len();
        if n * self.patch * self.patch >= TILE_PAR_MIN_CELLS {
            let ids: Vec<usize> = (0..n).collect();
            par::par_map(&ids, |&idx| self.extract(field, idx / self.cols, idx % self.cols))
        } else {
            let mut out = Vec::with_capacity(n);
            for r in 0..self.rows {
                for c in 0..self.cols {
                    out.push(self.extract(field, r, c));
                }
            }
            out
        }
    }

    /// Grid coordinates `(i, j)` of pixel `(pi, pj)` inside tile `(r, c)`.
    pub fn to_grid(&self, r: usize, c: usize, pi: usize, pj: usize) -> (usize, usize) {
        assert!(pi < self.patch && pj < self.patch, "pixel outside patch");
        (r * self.patch + pi, c * self.patch + pj)
    }

    /// Geographic coordinates (lat, lon in degrees) of pixel `(pi, pj)`
    /// inside tile `(r, c)` — the geo-referencing step of the TC pipeline.
    pub fn to_latlon(&self, r: usize, c: usize, pi: usize, pj: usize) -> (f64, f64) {
        let (i, j) = self.to_grid(r, c, pi, pj);
        (self.grid.lat(i), self.grid.lon(j))
    }

    /// Inverse of [`Tiling::to_grid`]: which tile and in-tile pixel covers
    /// grid cell `(i, j)`; `None` when the cell lies in the truncated edge.
    pub fn locate(&self, i: usize, j: usize) -> Option<(usize, usize, usize, usize)> {
        let r = i / self.patch;
        let c = j / self.patch;
        if r >= self.rows || c >= self.cols {
            return None;
        }
        Some((r, c, i % self.patch, j % self.patch))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> Grid {
        Grid::global(12, 16)
    }

    #[test]
    fn plan_counts_whole_tiles_only() {
        let t = Tiling::plan(grid(), TileSpec { patch: 4 });
        assert_eq!((t.rows, t.cols), (3, 4));
        let t = Tiling::plan(grid(), TileSpec { patch: 5 });
        assert_eq!((t.rows, t.cols), (2, 3)); // 12/5=2, 16/5=3
        let t = Tiling::plan(grid(), TileSpec { patch: 20 });
        assert!(t.is_empty());
    }

    #[test]
    fn extract_reads_the_right_cells() {
        let g = grid();
        let f = Field2::from_vec(g.clone(), (0..g.len()).map(|i| i as f32).collect());
        let t = Tiling::plan(g, TileSpec { patch: 4 });
        let tile = t.extract(&f, 1, 2);
        // Tile (1,2) starts at grid (4, 8); first row should be 4*16+8 ..
        assert_eq!(tile[0], (4 * 16 + 8) as f32);
        assert_eq!(tile[3], (4 * 16 + 11) as f32);
        assert_eq!(tile[4], (5 * 16 + 8) as f32);
        assert_eq!(tile.len(), 16);
    }

    #[test]
    fn extract_all_covers_whole_region_once() {
        let g = grid();
        let f = Field2::from_vec(g.clone(), (0..g.len()).map(|i| i as f32).collect());
        let t = Tiling::plan(g, TileSpec { patch: 4 });
        let tiles = t.extract_all(&f);
        assert_eq!(tiles.len(), 12);
        let mut seen: Vec<f32> = tiles.into_iter().flatten().collect();
        seen.sort_by(|a, b| a.partial_cmp(b).unwrap());
        seen.dedup();
        assert_eq!(seen.len(), 12 * 16); // every covered cell exactly once
    }

    #[test]
    fn tiling_roundtrip_locate_to_grid() {
        let t = Tiling::plan(grid(), TileSpec { patch: 4 });
        for i in 0..12 {
            for j in 0..16 {
                let (r, c, pi, pj) = t.locate(i, j).unwrap();
                assert_eq!(t.to_grid(r, c, pi, pj), (i, j));
            }
        }
    }

    #[test]
    fn locate_is_none_on_truncated_edge() {
        let t = Tiling::plan(grid(), TileSpec { patch: 5 });
        assert!(t.locate(11, 0).is_none()); // row 11 beyond 2*5
        assert!(t.locate(0, 15).is_none()); // col 15 beyond 3*5
        assert!(t.locate(9, 14).is_some());
    }

    #[test]
    fn to_latlon_matches_grid_centers() {
        let g = grid();
        let t = Tiling::plan(g.clone(), TileSpec { patch: 4 });
        let (lat, lon) = t.to_latlon(2, 3, 1, 2);
        assert_eq!(lat, g.lat(9));
        assert_eq!(lon, g.lon(14));
    }

    #[test]
    #[should_panic(expected = "pixel outside patch")]
    fn to_grid_checks_pixel_bounds() {
        let t = Tiling::plan(grid(), TileSpec { patch: 4 });
        t.to_grid(0, 0, 4, 0);
    }
}
