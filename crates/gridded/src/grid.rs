//! Regular latitude/longitude grids.
//!
//! Grids are cell-centered and global by default: latitude runs from south
//! to north, longitude eastward from 0°. Row-major storage convention
//! everywhere in the workspace: index `i * nlon + j` with `i` the latitude
//! row and `j` the longitude column.

/// A regular (equal-angle) latitude/longitude grid.
#[derive(Debug, Clone, PartialEq)]
pub struct Grid {
    /// Number of latitude rows.
    pub nlat: usize,
    /// Number of longitude columns.
    pub nlon: usize,
    /// Southern edge of the domain in degrees (inclusive of the first cell).
    pub lat_south: f64,
    /// Northern edge of the domain in degrees.
    pub lat_north: f64,
    /// Western edge of the domain in degrees.
    pub lon_west: f64,
    /// Eastern edge of the domain in degrees.
    pub lon_east: f64,
}

impl Grid {
    /// A global grid with the given cell counts, spanning 90°S–90°N and
    /// 0–360°E.
    pub fn global(nlat: usize, nlon: usize) -> Self {
        Grid { nlat, nlon, lat_south: -90.0, lat_north: 90.0, lon_west: 0.0, lon_east: 360.0 }
    }

    /// The paper's CMCC-CM3 atmosphere/ocean grid: 0.25°, 768 × 1152
    /// (25 km × 25 km spacing).
    pub fn cmcc_cm3() -> Self {
        Grid::global(768, 1152)
    }

    /// A small global grid for fast tests (same aspect ratio as CMCC-CM3:
    /// 2 lon cells per 1.5 lat cell).
    pub fn test_small() -> Self {
        Grid::global(48, 72)
    }

    /// A regional (limited-area) grid.
    pub fn regional(
        nlat: usize,
        nlon: usize,
        lat_south: f64,
        lat_north: f64,
        lon_west: f64,
        lon_east: f64,
    ) -> Self {
        Grid { nlat, nlon, lat_south, lat_north, lon_west, lon_east }
    }

    /// Total number of cells.
    pub fn len(&self) -> usize {
        self.nlat * self.nlon
    }

    /// True when the grid has no cells.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Latitude extent of one cell in degrees.
    pub fn dlat(&self) -> f64 {
        (self.lat_north - self.lat_south) / self.nlat as f64
    }

    /// Longitude extent of one cell in degrees.
    pub fn dlon(&self) -> f64 {
        (self.lon_east - self.lon_west) / self.nlon as f64
    }

    /// Center latitude of row `i` (0 = southernmost).
    pub fn lat(&self, i: usize) -> f64 {
        self.lat_south + (i as f64 + 0.5) * self.dlat()
    }

    /// Center longitude of column `j` (0 = westernmost).
    pub fn lon(&self, j: usize) -> f64 {
        self.lon_west + (j as f64 + 0.5) * self.dlon()
    }

    /// All row-center latitudes, south to north.
    pub fn lats(&self) -> Vec<f64> {
        (0..self.nlat).map(|i| self.lat(i)).collect()
    }

    /// All column-center longitudes, west to east.
    pub fn lons(&self) -> Vec<f64> {
        (0..self.nlon).map(|j| self.lon(j)).collect()
    }

    /// Linear index of cell `(i, j)`.
    pub fn index(&self, i: usize, j: usize) -> usize {
        debug_assert!(i < self.nlat && j < self.nlon);
        i * self.nlon + j
    }

    /// Inverse of [`Grid::index`].
    pub fn coords(&self, idx: usize) -> (usize, usize) {
        (idx / self.nlon, idx % self.nlon)
    }

    /// Row index whose cell contains latitude `lat` (clamped to the domain).
    pub fn lat_index(&self, lat: f64) -> usize {
        let f = (lat - self.lat_south) / self.dlat();
        (f.floor().max(0.0) as usize).min(self.nlat - 1)
    }

    /// Column index whose cell contains longitude `lon`. Longitudes wrap
    /// into the domain for global grids.
    pub fn lon_index(&self, lon: f64) -> usize {
        let width = self.lon_east - self.lon_west;
        let mut l = lon;
        if self.is_global_lon() {
            l = (lon - self.lon_west).rem_euclid(width) + self.lon_west;
        }
        let f = (l - self.lon_west) / self.dlon();
        (f.floor().max(0.0) as usize).min(self.nlon - 1)
    }

    /// True when the grid spans the full 360° of longitude (wrap-around
    /// neighbours are meaningful).
    pub fn is_global_lon(&self) -> bool {
        (self.lon_east - self.lon_west - 360.0).abs() < 1e-9
    }

    /// Area weight of row `i`: cos(latitude), the standard equal-angle
    /// quadrature weight. Normalized weights sum to 1 over the full grid.
    pub fn row_weight(&self, i: usize) -> f64 {
        self.lat(i).to_radians().cos().max(0.0)
    }

    /// Per-cell normalized area weights (sum over all cells = 1).
    pub fn area_weights(&self) -> Vec<f64> {
        let mut w = Vec::with_capacity(self.len());
        for i in 0..self.nlat {
            let rw = self.row_weight(i);
            for _ in 0..self.nlon {
                w.push(rw);
            }
        }
        let sum: f64 = w.iter().sum();
        if sum > 0.0 {
            for v in &mut w {
                *v /= sum;
            }
        }
        w
    }

    /// Great-circle distance between two points in kilometres (haversine,
    /// spherical Earth of radius 6371 km). Used by the TC tracker's
    /// max-speed gating and by localization error metrics.
    pub fn distance_km(lat1: f64, lon1: f64, lat2: f64, lon2: f64) -> f64 {
        const R: f64 = 6371.0;
        let (p1, p2) = (lat1.to_radians(), lat2.to_radians());
        let dp = (lat2 - lat1).to_radians();
        let dl = (lon2 - lon1).to_radians();
        let a = (dp / 2.0).sin().powi(2) + p1.cos() * p2.cos() * (dl / 2.0).sin().powi(2);
        2.0 * R * a.sqrt().asin()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cmcc_cm3_matches_paper_geometry() {
        let g = Grid::cmcc_cm3();
        assert_eq!(g.nlat, 768);
        assert_eq!(g.nlon, 1152);
        // 0.25 degree spacing in both directions.
        assert!((g.dlat() - 180.0 / 768.0).abs() < 1e-12);
        assert!((g.dlon() - 0.3125).abs() < 1e-12);
        assert!(g.is_global_lon());
    }

    #[test]
    fn index_roundtrip() {
        let g = Grid::global(10, 20);
        for idx in [0, 5, 19, 20, 199] {
            let (i, j) = g.coords(idx);
            assert_eq!(g.index(i, j), idx);
        }
    }

    #[test]
    fn lat_lon_centers_are_inside_cells() {
        let g = Grid::global(4, 8);
        assert!((g.lat(0) - (-67.5)).abs() < 1e-9);
        assert!((g.lat(3) - 67.5).abs() < 1e-9);
        assert!((g.lon(0) - 22.5).abs() < 1e-9);
    }

    #[test]
    fn lat_index_inverts_lat() {
        let g = Grid::global(48, 72);
        for i in 0..g.nlat {
            assert_eq!(g.lat_index(g.lat(i)), i);
        }
        assert_eq!(g.lat_index(-1000.0), 0);
        assert_eq!(g.lat_index(1000.0), g.nlat - 1);
    }

    #[test]
    fn lon_index_wraps_global() {
        let g = Grid::global(4, 8);
        for j in 0..g.nlon {
            assert_eq!(g.lon_index(g.lon(j)), j);
            assert_eq!(g.lon_index(g.lon(j) + 360.0), j);
            assert_eq!(g.lon_index(g.lon(j) - 720.0), j);
        }
    }

    #[test]
    fn area_weights_sum_to_one_and_peak_at_equator() {
        let g = Grid::global(48, 72);
        let w = g.area_weights();
        let sum: f64 = w.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        let eq_row = g.nlat / 2;
        assert!(w[g.index(eq_row, 0)] > w[g.index(0, 0)]);
        assert!(w[g.index(eq_row, 0)] > w[g.index(g.nlat - 1, 0)]);
    }

    #[test]
    fn haversine_known_values() {
        // Equatorial degree of longitude is ~111.19 km.
        let d = Grid::distance_km(0.0, 0.0, 0.0, 1.0);
        assert!((d - 111.19).abs() < 0.5, "got {d}");
        // Same point -> 0.
        assert_eq!(Grid::distance_km(45.0, 100.0, 45.0, 100.0), 0.0);
        // Symmetric.
        let a = Grid::distance_km(10.0, 20.0, -30.0, 150.0);
        let b = Grid::distance_km(-30.0, 150.0, 10.0, 20.0);
        assert!((a - b).abs() < 1e-9);
    }

    #[test]
    fn regional_grid_is_not_global() {
        let g = Grid::regional(10, 10, 20.0, 50.0, -30.0, 40.0);
        assert!(!g.is_global_lon());
        assert_eq!(g.lat_index(20.0 + 1e-9), 0);
    }
}
