//! Regridding: bilinear interpolation between regular lat/lon grids, plus
//! integer-factor block coarsening.
//!
//! The TC-localization pipeline in the paper regrids the CMCC-CM3 output
//! before tiling it into CNN patches (Section 5.4); [`regrid_bilinear`]
//! implements that step. [`coarsen`] is the cheap exact alternative when the
//! target resolution divides the source.

use crate::field::Field2;
use crate::grid::Grid;

/// Destination cell count at which regrid/coarsen dispatch rows onto the
/// shared pool; below it the per-task overhead exceeds the stencil work.
const REGRID_PAR_MIN_CELLS: usize = 1 << 14;

/// Bilinearly interpolates `src` onto `dst_grid`.
///
/// Longitude wraps on global source grids; latitude clamps at the poles.
/// NaNs in the source propagate to any destination cell whose stencil
/// touches them (conservative behaviour for masked data). Every output
/// row is independent, so large targets are computed row-parallel on the
/// shared [`par`] pool — results are bitwise-identical to serial because
/// each cell's stencil arithmetic is self-contained.
pub fn regrid_bilinear(src: &Field2, dst_grid: &Grid) -> Field2 {
    let sg = &src.grid;
    let mut out = vec![0.0f32; dst_grid.len()];

    let slat0 = sg.lat(0);
    let dlat = sg.dlat();
    let slon0 = sg.lon(0);
    let dlon = sg.dlon();

    let row = |i: usize, out_row: &mut [f32]| {
        let lat = dst_grid.lat(i);
        // Fractional row position in the source's cell-center coordinates.
        let fy = (lat - slat0) / dlat;
        let y0 = fy.floor();
        let ty = (fy - y0) as f32;
        let i0 = (y0.max(0.0) as usize).min(sg.nlat - 1);
        let i1 = (i0 + 1).min(sg.nlat - 1);
        let ty = if fy < 0.0 || fy > (sg.nlat - 1) as f64 { 0.0 } else { ty };

        for (j, slot) in out_row.iter_mut().enumerate() {
            let lon = dst_grid.lon(j);
            let mut fx = (lon - slon0) / dlon;
            if sg.is_global_lon() {
                fx = fx.rem_euclid(sg.nlon as f64);
            }
            let x0 = fx.floor();
            let tx = (fx - x0) as f32;
            let j0raw = x0.max(0.0) as usize;
            let (j0, j1, tx) = if sg.is_global_lon() {
                let j0 = j0raw % sg.nlon;
                (j0, (j0 + 1) % sg.nlon, tx)
            } else {
                let j0 = j0raw.min(sg.nlon - 1);
                let j1 = (j0 + 1).min(sg.nlon - 1);
                let tx = if fx < 0.0 || fx > (sg.nlon - 1) as f64 { 0.0 } else { tx };
                (j0, j1, tx)
            };

            let v00 = src.get(i0, j0);
            let v01 = src.get(i0, j1);
            let v10 = src.get(i1, j0);
            let v11 = src.get(i1, j1);
            let top = v00 * (1.0 - tx) + v01 * tx;
            let bot = v10 * (1.0 - tx) + v11 * tx;
            *slot = top * (1.0 - ty) + bot * ty;
        }
    };

    if dst_grid.len() >= REGRID_PAR_MIN_CELLS && dst_grid.nlat > 1 {
        par::par_chunks_mut(&mut out, dst_grid.nlon, |i, out_row| row(i, out_row));
    } else {
        for (i, out_row) in out.chunks_mut(dst_grid.nlon).enumerate() {
            row(i, out_row);
        }
    }
    Field2::from_vec(dst_grid.clone(), out)
}

/// Block-averages `src` by integer factors `(flat, flon)`, producing a grid
/// with `nlat/flat × nlon/flon` cells. Panics unless the factors divide the
/// source dimensions exactly.
pub fn coarsen(src: &Field2, flat: usize, flon: usize) -> Field2 {
    assert!(flat > 0 && flon > 0, "factors must be positive");
    let sg = &src.grid;
    assert_eq!(sg.nlat % flat, 0, "flat must divide nlat");
    assert_eq!(sg.nlon % flon, 0, "flon must divide nlon");
    let g = Grid { nlat: sg.nlat / flat, nlon: sg.nlon / flon, ..sg.clone() };
    let mut out = vec![0.0f32; g.len()];
    let norm = (flat * flon) as f32;
    let row = |bi: usize, out_row: &mut [f32]| {
        for (bj, slot) in out_row.iter_mut().enumerate() {
            let mut sum = 0.0f32;
            for di in 0..flat {
                for dj in 0..flon {
                    sum += src.get(bi * flat + di, bj * flon + dj);
                }
            }
            *slot = sum / norm;
        }
    };
    if g.len() * flat * flon >= REGRID_PAR_MIN_CELLS && g.nlat > 1 {
        par::par_chunks_mut(&mut out, g.nlon, |bi, out_row| row(bi, out_row));
    } else {
        for (bi, out_row) in out.chunks_mut(g.nlon).enumerate() {
            row(bi, out_row);
        }
    }
    Field2::from_vec(g, out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_regrid_is_exact() {
        let g = Grid::global(8, 12);
        let data: Vec<f32> = (0..g.len()).map(|i| i as f32).collect();
        let f = Field2::from_vec(g.clone(), data.clone());
        let out = regrid_bilinear(&f, &g);
        for (a, b) in out.data.iter().zip(&data) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn constant_field_survives_any_regrid() {
        let f = Field2::constant(Grid::global(16, 24), 5.5);
        let out = regrid_bilinear(&f, &Grid::global(7, 13));
        for v in &out.data {
            assert!((v - 5.5).abs() < 1e-5);
        }
    }

    #[test]
    fn linear_in_latitude_is_reproduced() {
        // Bilinear interpolation reproduces fields linear in latitude away
        // from the polar clamp rows.
        let g = Grid::global(32, 8);
        let mut f = Field2::zeros(g.clone());
        for i in 0..g.nlat {
            for j in 0..g.nlon {
                f.set(i, j, g.lat(i) as f32);
            }
        }
        let dst = Grid::global(16, 8);
        let out = regrid_bilinear(&f, &dst);
        for i in 1..dst.nlat - 1 {
            for j in 0..dst.nlon {
                let want = dst.lat(i) as f32;
                let got = out.get(i, j);
                assert!((got - want).abs() < 0.4, "row {i}: {got} vs {want}");
            }
        }
    }

    #[test]
    fn longitude_wraps_on_global_grids() {
        // A bump at the dateline edge must interpolate smoothly across wrap.
        let g = Grid::global(4, 8);
        let mut f = Field2::zeros(g.clone());
        for i in 0..g.nlat {
            f.set(i, 0, 10.0);
            f.set(i, g.nlon - 1, 10.0);
        }
        // Destination cell centered exactly on the wrap point between the
        // last and first source columns.
        let dst = Grid::global(4, 16);
        let out = regrid_bilinear(&f, &dst);
        // No output value should exceed the source max or go negative by a
        // large margin (bilinear is bounded by its stencil).
        for v in &out.data {
            assert!(*v >= -1e-5 && *v <= 10.0 + 1e-5);
        }
        // And the wrap column should see a contribution from the edge bump.
        let near_wrap = out.get(1, 0).max(out.get(1, dst.nlon - 1));
        assert!(near_wrap > 4.0, "wrap interpolation lost the edge bump: {near_wrap}");
    }

    #[test]
    fn coarsen_2x_is_block_mean() {
        let g = Grid::global(4, 4);
        let f = Field2::from_vec(g, (0..16).map(|i| i as f32).collect());
        let c = coarsen(&f, 2, 2);
        assert_eq!(c.grid.nlat, 2);
        assert_eq!(c.grid.nlon, 2);
        // Block (0,0) holds values 0,1,4,5 -> mean 2.5
        assert_eq!(c.get(0, 0), 2.5);
        assert_eq!(c.get(0, 1), 4.5);
        assert_eq!(c.get(1, 0), 10.5);
        assert_eq!(c.get(1, 1), 12.5);
    }

    #[test]
    fn coarsen_preserves_mean() {
        let g = Grid::global(8, 8);
        let f = Field2::from_vec(g, (0..64).map(|i| (i * 7 % 13) as f32).collect());
        let c = coarsen(&f, 4, 2);
        assert!((c.mean() - f.mean()).abs() < 1e-5);
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn coarsen_requires_divisibility() {
        let f = Field2::zeros(Grid::global(5, 4));
        coarsen(&f, 2, 2);
    }
}
