//! # gridded — geospatial grids, fields and the raster toolbox
//!
//! Shared substrate for the ESM surrogate, the datacube engine and the
//! ML pipelines: regular latitude/longitude grids, 2-D/3-D field containers,
//! bilinear regridding, non-overlapping patch tiling (with the inverse
//! geo-referencing map the TC-localization workflow needs), feature scaling
//! and descriptive statistics.
//!
//! The paper's CMCC-CM3 runs at 0.25° (768 latitudes × 1152 longitudes);
//! [`grid::Grid::cmcc_cm3`] reproduces exactly that geometry, while smaller
//! constructors keep tests and examples laptop-sized.

pub mod field;
pub mod grid;
pub mod regrid;
pub mod scale;
pub mod stats;
pub mod tile;

pub use field::{Field2, Field3};
pub use grid::Grid;
pub use regrid::{coarsen, regrid_bilinear};
pub use scale::{MinMaxScaler, ZScoreScaler};
pub use tile::{TileSpec, Tiling};
