//! Descriptive statistics used across the analytics pipelines: moments,
//! percentiles, correlation, and area-weighted aggregates.

/// Arithmetic mean; NaN for empty input.
pub fn mean(data: &[f32]) -> f64 {
    if data.is_empty() {
        return f64::NAN;
    }
    data.iter().map(|&v| v as f64).sum::<f64>() / data.len() as f64
}

/// Population variance; NaN for empty input.
pub fn variance(data: &[f32]) -> f64 {
    if data.is_empty() {
        return f64::NAN;
    }
    let m = mean(data);
    data.iter().map(|&v| (v as f64 - m).powi(2)).sum::<f64>() / data.len() as f64
}

/// Population standard deviation.
pub fn std_dev(data: &[f32]) -> f64 {
    variance(data).sqrt()
}

/// Percentile by linear interpolation between closest ranks. `q` in `[0,100]`.
/// NaN for empty input.
pub fn percentile(data: &[f32], q: f64) -> f64 {
    if data.is_empty() {
        return f64::NAN;
    }
    let mut sorted: Vec<f32> = data.iter().copied().filter(|v| !v.is_nan()).collect();
    if sorted.is_empty() {
        return f64::NAN;
    }
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let q = q.clamp(0.0, 100.0) / 100.0;
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] as f64 * (1.0 - frac) + sorted[hi] as f64 * frac
}

/// Pearson correlation coefficient; NaN when either side is constant or the
/// inputs are empty/mismatched.
pub fn pearson(a: &[f32], b: &[f32]) -> f64 {
    if a.len() != b.len() || a.is_empty() {
        return f64::NAN;
    }
    let ma = mean(a);
    let mb = mean(b);
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for (&x, &y) in a.iter().zip(b) {
        let dx = x as f64 - ma;
        let dy = y as f64 - mb;
        cov += dx * dy;
        va += dx * dx;
        vb += dy * dy;
    }
    if va == 0.0 || vb == 0.0 {
        return f64::NAN;
    }
    cov / (va.sqrt() * vb.sqrt())
}

/// Weighted mean with explicit weights (not required to be normalized).
/// NaN when the total weight is zero.
pub fn weighted_mean(data: &[f32], weights: &[f64]) -> f64 {
    assert_eq!(data.len(), weights.len(), "weights must match data");
    let wsum: f64 = weights.iter().sum();
    if wsum == 0.0 {
        return f64::NAN;
    }
    data.iter().zip(weights).map(|(&v, &w)| v as f64 * w).sum::<f64>() / wsum
}

/// Root-mean-square error between two equal-length series.
pub fn rmse(a: &[f32], b: &[f32]) -> f64 {
    assert_eq!(a.len(), b.len(), "series must match");
    if a.is_empty() {
        return f64::NAN;
    }
    let ss: f64 = a.iter().zip(b).map(|(&x, &y)| ((x - y) as f64).powi(2)).sum();
    (ss / a.len() as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance_known() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-9);
        assert!((variance(&xs) - 4.0).abs() < 1e-9);
        assert!((std_dev(&xs) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn empty_inputs_are_nan() {
        assert!(mean(&[]).is_nan());
        assert!(variance(&[]).is_nan());
        assert!(percentile(&[], 50.0).is_nan());
        assert!(pearson(&[], &[]).is_nan());
    }

    #[test]
    fn percentile_median_and_extremes() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 100.0), 5.0);
        assert_eq!(percentile(&xs, 50.0), 3.0);
        assert_eq!(percentile(&xs, 25.0), 2.0);
        // Interpolated value.
        assert!((percentile(&[1.0, 2.0], 50.0) - 1.5).abs() < 1e-9);
    }

    #[test]
    fn percentile_skips_nan() {
        let xs = [1.0, f32::NAN, 3.0];
        assert_eq!(percentile(&xs, 50.0), 2.0);
    }

    #[test]
    fn pearson_perfect_and_inverse() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&a, &b) - 1.0).abs() < 1e-9);
        let c = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&a, &c) + 1.0).abs() < 1e-9);
        assert!(pearson(&a, &[1.0, 1.0, 1.0, 1.0]).is_nan());
    }

    #[test]
    fn weighted_mean_behaviour() {
        let d = [1.0, 3.0];
        assert!((weighted_mean(&d, &[1.0, 1.0]) - 2.0).abs() < 1e-9);
        assert!((weighted_mean(&d, &[3.0, 1.0]) - 1.5).abs() < 1e-9);
        assert!(weighted_mean(&d, &[0.0, 0.0]).is_nan());
    }

    #[test]
    fn rmse_known() {
        assert_eq!(rmse(&[1.0, 2.0], &[1.0, 2.0]), 0.0);
        assert!((rmse(&[0.0, 0.0], &[3.0, 4.0]) - (12.5f64).sqrt()).abs() < 1e-9);
    }
}
