//! Serving-layer behaviour through the public Execution API: admission
//! gates, fair-share dispatch, request coalescing, and ledger/condvar
//! correctness under concurrent hammering.

use hpcwaas::tosca::climate_case_study;
use hpcwaas::{
    Error, ExecutionApi, ExecutionStatus, Rejection, ServeConfig, TenantQuota, DEFAULT_TENANT,
};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Duration;

/// A gate the test opens to let blocked entrypoints finish.
#[derive(Clone, Default)]
struct Gate(Arc<AtomicBool>);

impl Gate {
    fn open(&self) {
        self.0.store(true, Ordering::SeqCst);
    }

    fn wait_open(&self) {
        while !self.0.load(Ordering::SeqCst) {
            std::thread::sleep(Duration::from_millis(1));
        }
    }
}

fn inputs(pairs: &[(&str, &str)]) -> BTreeMap<String, String> {
    pairs.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect()
}

fn quota(max_in_flight: usize, burst: u32, rate: f64, weight: u32) -> TenantQuota {
    TenantQuota { max_in_flight, submit_burst: burst, submit_rate_per_sec: rate, weight }
}

#[test]
fn concurrent_hammer_submit_status_wait() {
    let api = Arc::new(ExecutionApi::with_config(ServeConfig {
        workers: 4,
        queue_capacity: 1024,
        default_quota: TenantQuota::default(),
    }));
    api.register(climate_case_study(), |inputs| {
        Ok(format!("req {}", inputs.get("req").cloned().unwrap_or_default()))
    });
    let dep = api.deploy("climate-extremes").unwrap();

    let threads = 8;
    let per_thread = 25;
    let mut joins = Vec::new();
    for t in 0..threads {
        let api = Arc::clone(&api);
        joins.push(std::thread::spawn(move || {
            for i in 0..per_thread {
                // Distinct inputs per request so nothing coalesces here.
                let req = format!("{t}-{i}");
                let handle =
                    api.submit_as(&format!("tenant-{t}"), dep, &inputs(&[("req", &req)])).unwrap();
                // Race the ledger view against the handle view while the
                // execution is anywhere in queued/running/terminal.
                let via_ledger = api.status(handle.id()).unwrap();
                assert!(matches!(
                    via_ledger,
                    ExecutionStatus::Queued
                        | ExecutionStatus::Running
                        | ExecutionStatus::Completed { .. }
                ));
                let status = handle.wait();
                let ExecutionStatus::Completed { result } = status else {
                    panic!("request {req} did not complete: {status:?}");
                };
                assert_eq!(result, format!("req {req}"));
                // Terminal status is stable and visible through the ledger.
                assert_eq!(api.status(handle.id()).unwrap(), handle.status());
            }
        }));
    }
    for j in joins {
        j.join().unwrap();
    }
    let stats = api.serve_stats();
    assert_eq!(stats.admitted, (threads * per_thread) as u64);
    assert_eq!(stats.rejected(), 0);
    assert_eq!(stats.coalesced, 0);
    assert_eq!(stats.queue_depth, 0);
    assert_eq!(stats.running, 0);
    let dispatched: u64 = stats.dispatched.values().sum();
    assert_eq!(dispatched, (threads * per_thread) as u64);
}

#[test]
fn in_flight_quota_enforced_and_released() {
    let api = ExecutionApi::with_config(ServeConfig {
        workers: 4,
        queue_capacity: 64,
        default_quota: TenantQuota::default(),
    });
    let gate = Gate::default();
    {
        let gate = gate.clone();
        api.register(climate_case_study(), move |_| {
            gate.wait_open();
            Ok("done".into())
        });
    }
    api.set_quota("acme", quota(2, 0, 0.0, 1));
    let dep = api.deploy("climate-extremes").unwrap();

    let a = api.submit_as("acme", dep, &inputs(&[("req", "a")])).unwrap();
    let b = api.submit_as("acme", dep, &inputs(&[("req", "b")])).unwrap();
    let third = api.submit_as("acme", dep, &inputs(&[("req", "c")]));
    match third {
        Err(Error::Rejected(Rejection::QuotaExceeded { tenant, in_flight, max_in_flight })) => {
            assert_eq!(tenant, "acme");
            assert_eq!((in_flight, max_in_flight), (2, 2));
        }
        other => panic!("expected quota rejection, got {other:?}"),
    }
    // Another tenant is unaffected by acme's quota.
    let other = api.submit_as("zen", dep, &inputs(&[("req", "z")])).unwrap();

    gate.open();
    assert!(a.wait().is_terminal());
    assert!(b.wait().is_terminal());
    assert!(other.wait().is_terminal());
    // Slots released on completion: acme may submit again.
    let again = api.submit_as("acme", dep, &inputs(&[("req", "d")])).unwrap();
    assert!(again.wait().is_terminal());
    assert_eq!(api.serve_stats().rejected_quota, 1);
}

#[test]
fn token_bucket_rate_limits_submissions() {
    let api = ExecutionApi::new();
    api.register(climate_case_study(), |_| Ok("ok".into()));
    // Hard budget: burst of 3, zero refill.
    api.set_quota("bursty", quota(1024, 3, 0.0, 1));
    let dep = api.deploy("climate-extremes").unwrap();

    for i in 0..3 {
        let h = api.submit_as("bursty", dep, &inputs(&[("req", &i.to_string())])).unwrap();
        assert!(h.wait().is_terminal());
    }
    // Even with everything drained, the empty bucket rejects the fourth.
    match api.submit_as("bursty", dep, &inputs(&[("req", "4")])) {
        Err(Error::Rejected(Rejection::RateLimited { tenant })) => assert_eq!(tenant, "bursty"),
        other => panic!("expected rate rejection, got {other:?}"),
    }
    assert_eq!(api.serve_stats().rejected_rate, 1);
}

#[test]
fn bounded_queue_rejects_when_full() {
    let api = ExecutionApi::with_config(ServeConfig {
        workers: 1,
        queue_capacity: 1,
        default_quota: TenantQuota::default(),
    });
    let gate = Gate::default();
    {
        let gate = gate.clone();
        api.register(climate_case_study(), move |_| {
            gate.wait_open();
            Ok("done".into())
        });
    }
    let dep = api.deploy("climate-extremes").unwrap();

    let running = api.submit_as("a", dep, &inputs(&[("req", "running")])).unwrap();
    // Wait until the single worker has dequeued it, freeing the queue slot.
    while running.status() == ExecutionStatus::Queued {
        std::thread::sleep(Duration::from_millis(1));
    }
    let queued = api.submit_as("b", dep, &inputs(&[("req", "queued")])).unwrap();
    match api.submit_as("c", dep, &inputs(&[("req", "overflow")])) {
        Err(Error::Rejected(Rejection::QueueFull { depth, capacity })) => {
            assert_eq!((depth, capacity), (1, 1));
        }
        other => panic!("expected queue-full rejection, got {other:?}"),
    }
    gate.open();
    assert!(running.wait().is_terminal());
    assert!(queued.wait().is_terminal());
    assert_eq!(api.serve_stats().rejected_queue_full, 1);
}

#[test]
fn fair_share_interleaves_and_never_starves() {
    // One worker so dispatch order is a pure scheduler decision.
    let api = ExecutionApi::with_config(ServeConfig {
        workers: 1,
        queue_capacity: 256,
        default_quota: TenantQuota::default(),
    });
    let gate = Gate::default();
    {
        let gate = gate.clone();
        api.register(climate_case_study(), move |inputs| {
            if inputs.get("warmup").is_some() {
                gate.wait_open();
            }
            Ok("ok".into())
        });
    }
    api.set_quota("heavy", quota(256, 0, 0.0, 3));
    api.set_quota("light", quota(256, 0, 0.0, 1));
    let dep = api.deploy("climate-extremes").unwrap();

    // Block the only worker so both backlogs build before any dispatch.
    let warmup = api.submit_as("warmup", dep, &inputs(&[("warmup", "1")])).unwrap();
    while warmup.status() == ExecutionStatus::Queued {
        std::thread::sleep(Duration::from_millis(1));
    }
    let mut handles = Vec::new();
    for i in 0..12 {
        handles.push(api.submit_as("heavy", dep, &inputs(&[("req", &format!("h{i}"))])).unwrap());
    }
    for i in 0..4 {
        handles.push(api.submit_as("light", dep, &inputs(&[("req", &format!("l{i}"))])).unwrap());
    }
    gate.open();
    for h in &handles {
        assert!(h.wait().is_terminal());
    }

    let order: Vec<String> = api
        .serve_stats()
        .dispatch_order
        .into_iter()
        .filter(|t| t == "heavy" || t == "light")
        .collect();
    assert_eq!(order.len(), 16);
    // Weighted share: heavy (weight 3) gets ~3 of every 4 dispatches
    // while light still has work, so light's last job leaves well before
    // heavy's backlog is done — starvation-freedom, not FIFO.
    let light_done = order.iter().rposition(|t| t == "light").unwrap();
    assert!(light_done < order.len() - 1, "light must finish before the queue drains: {order:?}");
    let heavy_in_first_8 = order[..8].iter().filter(|t| *t == "heavy").count();
    assert!(
        (5..=7).contains(&heavy_in_first_8),
        "heavy should get ~6 of the first 8 dispatches: {order:?}"
    );
    // Light appears early despite submitting after heavy's full backlog.
    let first_light = order.iter().position(|t| t == "light").unwrap();
    assert!(first_light <= 4, "light's first dispatch came too late: {order:?}");
}

#[test]
fn identical_concurrent_requests_coalesce_to_one_execution() {
    let api = Arc::new(ExecutionApi::with_config(ServeConfig {
        workers: 2,
        queue_capacity: 64,
        default_quota: TenantQuota::default(),
    }));
    let gate = Gate::default();
    let executions = Arc::new(AtomicU64::new(0));
    {
        let gate = gate.clone();
        let executions = Arc::clone(&executions);
        api.register(climate_case_study(), move |_| {
            let n = executions.fetch_add(1, Ordering::SeqCst) + 1;
            gate.wait_open();
            Ok(format!("execution #{n}"))
        });
    }
    let dep = api.deploy("climate-extremes").unwrap();
    let same = inputs(&[("years", "3"), ("seed", "11")]);

    // N identical requests from N threads while the first is in flight.
    let n = 6;
    let (tx, rx) = mpsc::channel();
    let mut joins = Vec::new();
    for _ in 0..n {
        let api = Arc::clone(&api);
        let same = same.clone();
        let tx = tx.clone();
        joins.push(std::thread::spawn(move || {
            let handle = api.submit(dep, &same).unwrap();
            tx.send(handle.id()).unwrap();
            handle.wait()
        }));
    }
    drop(tx);
    // All N submissions are in (ids collected) before the gate opens.
    // recv exactly n: the senders stay alive inside wait(), so draining
    // the channel by iterator-until-close would deadlock against them.
    let ids: Vec<_> = (0..n).map(|_| rx.recv().unwrap()).collect();
    gate.open();

    let results: Vec<ExecutionStatus> = joins.into_iter().map(|j| j.join().unwrap()).collect();
    // Exactly one underlying execution ran...
    assert_eq!(executions.load(Ordering::SeqCst), 1);
    // ...and every waiter received its (identical) result.
    for status in &results {
        assert_eq!(status, &ExecutionStatus::Completed { result: "execution #1".into() });
    }
    // Every submitter got its own valid ledger id, all resolving terminal.
    let mut unique = ids.clone();
    unique.sort_by_key(|id| id.to_string());
    unique.dedup();
    assert_eq!(unique.len(), n);
    for id in &ids {
        assert!(api.status(*id).unwrap().is_terminal());
    }
    let stats = api.serve_stats();
    assert_eq!(stats.coalesced, (n - 1) as u64);
    assert_eq!(stats.admitted, 1);

    // A later identical request, after the shared one finished, runs fresh.
    let later = api.submit(dep, &same).unwrap();
    assert_eq!(later.wait(), ExecutionStatus::Completed { result: "execution #2".into() });
    assert_eq!(executions.load(Ordering::SeqCst), 2);
}

#[test]
fn coalesced_waiters_see_shared_event_log() {
    let api = ExecutionApi::new();
    let gate = Gate::default();
    {
        let gate = gate.clone();
        api.register(climate_case_study(), move |_| {
            gate.wait_open();
            Ok("shared".into())
        });
    }
    let dep = api.deploy("climate-extremes").unwrap();
    let same = inputs(&[("req", "same")]);
    let first = api.submit_as("alice", dep, &same).unwrap();
    let second = api.submit_as("bob", dep, &same).unwrap();
    gate.open();
    first.wait();
    second.wait();
    // Both handles observe the one execution's record, including the
    // coalesce mark naming bob as the joiner.
    assert_eq!(first.events().len(), second.events().len());
    assert!(second.events().iter().any(|e| matches!(
        &e.kind,
        obs::EventKind::ExecutionCoalesced { tenant, .. } if &**tenant == "bob"
    )));
    // The shared execution is charged to its primary submitter.
    assert_eq!(second.tenant(), "alice");
    assert_eq!(api.serve_stats().coalesced, 1);
}

#[test]
fn default_tenant_is_used_for_plain_submit() {
    let api = ExecutionApi::new();
    api.register(climate_case_study(), |_| Ok("ok".into()));
    let dep = api.deploy("climate-extremes").unwrap();
    let h = api.submit(dep, &BTreeMap::new()).unwrap();
    h.wait();
    assert_eq!(h.tenant(), DEFAULT_TENANT);
    assert_eq!(api.serve_stats().dispatched.get(DEFAULT_TENANT), Some(&1));
}
