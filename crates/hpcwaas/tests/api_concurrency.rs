//! Execution-API concurrency: multiple end users deploying and running
//! against one HPCWaaS service (the paper's HPCWaaS serves a community,
//! not one scientist).

use hpcwaas::tosca::climate_case_study;
use hpcwaas::{ExecutionApi, ExecutionStatus};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

#[test]
fn many_users_deploy_and_run_concurrently() {
    let api = Arc::new(ExecutionApi::new());
    let executions = Arc::new(AtomicU32::new(0));
    {
        let executions = Arc::clone(&executions);
        api.register(climate_case_study(), move |inputs| {
            executions.fetch_add(1, Ordering::SeqCst);
            Ok(format!("user {} ok", inputs.get("user").cloned().unwrap_or_default()))
        });
    }

    let mut joins = Vec::new();
    for u in 0..8 {
        let api = Arc::clone(&api);
        joins.push(std::thread::spawn(move || {
            let dep = api.deploy("climate-extremes").unwrap();
            let mut inputs = BTreeMap::new();
            inputs.insert("user".to_string(), u.to_string());
            let handle = api.submit(dep, &inputs).unwrap();
            let status = handle.wait();
            assert!(matches!(
                status,
                ExecutionStatus::Completed { ref result } if result.contains(&format!("user {u}"))
            ));
            api.undeploy(dep).unwrap();
            dep
        }));
    }
    let deps: Vec<_> = joins.into_iter().map(|j| j.join().unwrap()).collect();
    assert_eq!(executions.load(Ordering::SeqCst), 8);
    // Deployment ids are distinct (opaque ids: compare Display names).
    let mut ids: Vec<_> = deps.iter().map(|d| d.to_string()).collect();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), 8);
    // Everything is undeployed: further runs rejected.
    for d in deps {
        assert!(api.submit(d, &BTreeMap::new()).is_err());
    }
}

#[test]
fn shared_image_cache_benefits_all_users() {
    let api = ExecutionApi::new();
    api.register(climate_case_study(), |_| Ok("ok".into()));
    let first = api.deploy("climate-extremes").unwrap();
    let cold = api.deployment_cost_ms(first).unwrap();
    // Later users deploy against the warm layer cache.
    let mut joins = Vec::new();
    let api = Arc::new(api);
    for _ in 0..4 {
        let api = Arc::clone(&api);
        joins.push(std::thread::spawn(move || {
            let dep = api.deploy("climate-extremes").unwrap();
            api.deployment_cost_ms(dep).unwrap()
        }));
    }
    for j in joins {
        let warm = j.join().unwrap();
        assert!(warm < cold, "warm deploy {warm} should beat cold {cold}");
    }
}
