//! Property tests: TOSCA documents round-trip through
//! serialize → parse, and plan derivation is safe on arbitrary valid
//! topologies.

use hpcwaas::orchestrator::DeploymentPlan;
use hpcwaas::tosca::{NodeTemplate, Requirement, Topology};
use proptest::prelude::*;
use std::collections::BTreeMap;

fn ident() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,10}".prop_map(|s| s)
}

fn value_str() -> impl Strategy<Value = String> {
    // Values must survive `key: value` syntax: no newlines, no leading or
    // trailing whitespace.
    "[a-zA-Z0-9][a-zA-Z0-9 ._/-]{0,20}[a-zA-Z0-9]"
        .prop_map(|s| s)
        .prop_filter("no comment marker", |s| !s.starts_with('#'))
}

/// A valid topology: unique template names, requirements only on earlier
/// templates (guaranteeing acyclicity).
fn topology_strategy() -> impl Strategy<Value = Topology> {
    (ident(), 1usize..8).prop_flat_map(|(name, n)| {
        let template_specs: Vec<_> = (0..n)
            .map(|i| {
                (
                    ident(),
                    proptest::collection::btree_map(ident(), value_str(), 0..3),
                    proptest::collection::vec((0usize..3, 0usize..i.max(1)), 0..=i.min(3)),
                )
            })
            .collect();
        let inputs = proptest::collection::btree_map(ident(), value_str(), 0..3);
        (Just(name), inputs, template_specs).prop_map(|(name, inputs, specs)| {
            let mut templates: Vec<NodeTemplate> = Vec::new();
            for (i, (type_name, properties, reqs)) in specs.into_iter().enumerate() {
                let tname = format!("t{i}");
                let requirements = if i == 0 {
                    Vec::new()
                } else {
                    reqs.into_iter()
                        .map(|(kind, j)| {
                            let target = format!("t{}", j % i);
                            match kind {
                                0 => Requirement::HostedOn(target),
                                1 => Requirement::Uses(target),
                                _ => Requirement::DependsOn(target),
                            }
                        })
                        .collect()
                };
                templates.push(NodeTemplate {
                    name: tname,
                    type_name: format!("ns.{type_name}"),
                    properties,
                    requirements,
                });
            }
            Topology { name, inputs, templates }
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn serialize_parse_roundtrip(topo in topology_strategy()) {
        let src = topo.to_source();
        let back = Topology::parse(&src).unwrap_or_else(|e| panic!("parse failed: {e}\n{src}"));
        prop_assert_eq!(back, topo);
    }

    /// Plan derivation succeeds on every valid topology and respects all
    /// requirement edges.
    #[test]
    fn plan_respects_all_edges(topo in topology_strategy()) {
        let plan = DeploymentPlan::derive(&topo).unwrap();
        prop_assert_eq!(plan.order.len(), topo.templates.len());
        let pos: BTreeMap<&str, usize> = plan
            .order
            .iter()
            .enumerate()
            .map(|(i, n)| (n.as_str(), i))
            .collect();
        for t in &topo.templates {
            for r in &t.requirements {
                prop_assert!(
                    pos[r.target()] < pos[t.name.as_str()],
                    "{} must start before {}",
                    r.target(),
                    t.name
                );
            }
        }
    }

    /// The built-in case-study topology also round-trips.
    #[test]
    fn builtin_roundtrip(_x in Just(())) {
        let topo = hpcwaas::tosca::climate_case_study();
        let back = Topology::parse(&topo.to_source()).unwrap();
        prop_assert_eq!(back, topo);
    }
}
