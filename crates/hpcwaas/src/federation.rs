//! Multi-site (federated) workflow execution.
//!
//! The paper's future work (Sections 6–7): "the different parts of the
//! workflow could be run on different infrastructures according to their
//! requirements, using, for instance, large HPC systems for the ESM
//! simulation, data-oriented/Cloud systems for Big Data processing and
//! GPU-partitions for the ML-based models", with the Data Logistics
//! Service moving data between them. This module implements that
//! execution model in virtual time:
//!
//! * a [`Federation`] of named [`Site`]s, each with a kind and a cluster,
//!   connected by DLS links;
//! * a case-study-shaped [`Workload`] (per year: one simulation job, a
//!   batch of analytics jobs, one ML job), with job durations that depend
//!   on where the job runs (GPU partitions accelerate inference,
//!   data-oriented sites accelerate analytics);
//! * two placement policies — everything on the HPC site
//!   ([`Placement::SingleSite`]) vs class-affinity placement
//!   ([`Placement::ClassAffinity`]) — evaluated end to end, including the
//!   inter-site transfers affinity placement has to pay.
//!
//! The interesting output is the crossover: affinity wins when the
//! specialized-site speedups outweigh the WAN cost of shipping each
//! year's output, and loses for small compute / big data.

use crate::cluster::{Cluster, JobSpec};
use crate::dls::{DataLogistics, Link, PipelineSpec};
use crate::error::{Error, Result};
use std::collections::BTreeMap;

/// What a site is good at.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SiteKind {
    /// Large CPU machine (the ESM home).
    HpcCompute,
    /// Data-oriented / cloud site (fast storage and analytics stacks).
    CloudData,
    /// GPU partition (ML training/inference).
    GpuPartition,
}

/// One member site of the federation.
#[derive(Debug, Clone)]
pub struct Site {
    pub name: String,
    pub kind: SiteKind,
    pub cluster: Cluster,
}

/// Workload job classes, mirroring the case study's task families.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TaskClass {
    Simulation,
    Analytics,
    MlInference,
}

impl TaskClass {
    /// The site kind this class prefers under affinity placement.
    pub fn preferred(self) -> SiteKind {
        match self {
            TaskClass::Simulation => SiteKind::HpcCompute,
            TaskClass::Analytics => SiteKind::CloudData,
            TaskClass::MlInference => SiteKind::GpuPartition,
        }
    }

    /// Execution-time multiplier of this class on a site kind (1.0 = the
    /// nominal duration). Simulation only runs efficiently on HPC;
    /// analytics is ~2.5x faster on data-oriented sites; inference is
    /// ~6x faster on GPUs.
    pub fn speed_factor(self, kind: SiteKind) -> f64 {
        match (self, kind) {
            (TaskClass::Simulation, SiteKind::HpcCompute) => 1.0,
            (TaskClass::Simulation, _) => 2.0,
            (TaskClass::Analytics, SiteKind::CloudData) => 0.4,
            (TaskClass::Analytics, _) => 1.0,
            (TaskClass::MlInference, SiteKind::GpuPartition) => 1.0 / 6.0,
            (TaskClass::MlInference, _) => 1.0,
        }
    }
}

/// One job of the workload.
#[derive(Debug, Clone)]
pub struct WorkJob {
    pub name: String,
    pub class: TaskClass,
    /// Nominal duration on a neutral site, virtual ms.
    pub nominal_ms: u64,
    pub cores: u32,
    /// Which year's simulation output this job consumes (None = no
    /// cross-year input, e.g. the simulation itself).
    pub consumes_year: Option<usize>,
}

/// A case-study-shaped workload.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Per-year simulation duration, virtual ms.
    pub jobs: Vec<WorkJob>,
    /// Bytes of model output per year that analytics/ML must read.
    pub year_output_bytes: u64,
    pub years: usize,
}

impl Workload {
    /// Builds the case-study shape: per year one simulation job (chained
    /// implicitly by year order), `analytics_per_year` analytics jobs and
    /// one ML job, all consuming that year's output.
    pub fn case_study(
        years: usize,
        sim_ms: u64,
        analytics_ms: u64,
        analytics_per_year: usize,
        ml_ms: u64,
        year_output_bytes: u64,
    ) -> Workload {
        let mut jobs = Vec::new();
        for y in 0..years {
            jobs.push(WorkJob {
                name: format!("esm-{y}"),
                class: TaskClass::Simulation,
                nominal_ms: sim_ms,
                cores: 8,
                consumes_year: None,
            });
            for a in 0..analytics_per_year {
                jobs.push(WorkJob {
                    name: format!("analytics-{y}-{a}"),
                    class: TaskClass::Analytics,
                    nominal_ms: analytics_ms,
                    cores: 4,
                    consumes_year: Some(y),
                });
            }
            jobs.push(WorkJob {
                name: format!("ml-{y}"),
                class: TaskClass::MlInference,
                nominal_ms: ml_ms,
                cores: 2,
                consumes_year: Some(y),
            });
        }
        Workload { jobs, year_output_bytes, years }
    }
}

/// Placement policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// Everything on the (first) HPC site — the paper's current testbed.
    SingleSite,
    /// Each class on its preferred site kind — the future-work setup.
    ClassAffinity,
}

/// Result of evaluating a workload on a federation.
#[derive(Debug, Clone)]
pub struct FederationReport {
    pub makespan_ms: u64,
    /// Total bytes shipped between sites.
    pub bytes_moved: u64,
    /// Total virtual transfer time (sum over transfers).
    pub transfer_ms: u64,
    /// Jobs per site name.
    pub jobs_per_site: BTreeMap<String, usize>,
}

/// A federation of sites with a network between them.
pub struct Federation {
    pub sites: Vec<Site>,
    pub dls: DataLogistics,
}

impl Federation {
    /// A testbed-like default: one HPC site, one cloud-data site, one GPU
    /// partition, with asymmetric WAN links (HPC→cloud fast-ish, →GPU
    /// moderate).
    pub fn testbed() -> Federation {
        let mut dls = DataLogistics::new();
        dls.set_link("hpc", "cloud", Link { bandwidth_mbps: 500.0, latency_ms: 30 });
        dls.set_link("hpc", "gpu", Link { bandwidth_mbps: 300.0, latency_ms: 40 });
        dls.set_link("cloud", "gpu", Link { bandwidth_mbps: 800.0, latency_ms: 10 });
        Federation {
            sites: vec![
                Site {
                    name: "hpc".into(),
                    kind: SiteKind::HpcCompute,
                    cluster: Cluster::homogeneous(4, 8),
                },
                Site {
                    name: "cloud".into(),
                    kind: SiteKind::CloudData,
                    cluster: Cluster::homogeneous(4, 8),
                },
                Site {
                    name: "gpu".into(),
                    kind: SiteKind::GpuPartition,
                    cluster: Cluster::homogeneous(2, 8),
                },
            ],
            dls,
        }
    }

    fn site_index(&self, policy: Placement, class: TaskClass) -> usize {
        match policy {
            Placement::SingleSite => {
                self.sites.iter().position(|s| s.kind == SiteKind::HpcCompute).unwrap_or(0)
            }
            Placement::ClassAffinity => {
                let want = class.preferred();
                self.sites
                    .iter()
                    .position(|s| s.kind == want)
                    .or_else(|| self.sites.iter().position(|s| s.kind == SiteKind::HpcCompute))
                    .unwrap_or(0)
            }
        }
    }

    /// Evaluates the workload under a placement policy, in virtual time.
    ///
    /// Model: simulation jobs run on the HPC site in year order (the model
    /// state is sequential); each year's consumers become submittable when
    /// the year's simulation finishes plus — when they run on another site
    /// — the stage-out transfer of that year's output (one transfer per
    /// (year, destination site), amortized across consumers, as the DLS
    /// pipelines do).
    pub fn evaluate(&mut self, workload: &Workload, policy: Placement) -> Result<FederationReport> {
        let hpc = self
            .sites
            .iter()
            .position(|s| s.kind == SiteKind::HpcCompute)
            .ok_or_else(|| Error::NotFound("an HpcCompute site".into()))?;

        // Phase 1: simulation chain on the HPC site.
        let mut year_done_ms = vec![0u64; workload.years];
        let mut t = 0u64;
        for job in &workload.jobs {
            if job.class != TaskClass::Simulation {
                continue;
            }
            let y: usize = job
                .name
                .rsplit('-')
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| Error::NotFound(format!("year in job '{}'", job.name)))?;
            let dur = (job.nominal_ms as f64 * job.class.speed_factor(self.sites[hpc].kind)) as u64;
            t += dur;
            year_done_ms[y] = t;
        }

        // Phase 2: per-(year, site) stage-out transfers.
        let mut transfer_done: BTreeMap<(usize, usize), u64> = BTreeMap::new();
        let mut bytes_moved = 0u64;
        let mut transfer_ms_total = 0u64;
        for job in &workload.jobs {
            let Some(y) = job.consumes_year else { continue };
            let site = self.site_index(policy, job.class);
            if site == hpc {
                transfer_done.insert((y, site), year_done_ms[y]);
                continue;
            }
            if transfer_done.contains_key(&(y, site)) {
                continue;
            }
            let spec = PipelineSpec::new().stage(
                &format!("year-{y}-to-{}", self.sites[site].name),
                &self.sites[hpc].name,
                &self.sites[site].name,
                workload.year_output_bytes,
            );
            let report = self.dls.execute(&spec);
            bytes_moved += report.total_bytes;
            transfer_ms_total += report.total_ms;
            transfer_done.insert((y, site), year_done_ms[y] + report.total_ms);
        }

        // Phase 3: consumers on their sites, submit time = data-ready time.
        let mut site_clusters: Vec<Cluster> =
            self.sites.iter().map(|s| s.cluster.clone()).collect();
        let mut jobs_per_site: BTreeMap<String, usize> = BTreeMap::new();
        for job in &workload.jobs {
            let Some(y) = job.consumes_year else {
                *jobs_per_site.entry(self.sites[hpc].name.clone()).or_default() += 1;
                continue;
            };
            let site = self.site_index(policy, job.class);
            let ready = transfer_done[&(y, site)];
            let dur =
                (job.nominal_ms as f64 * job.class.speed_factor(self.sites[site].kind)) as u64;
            site_clusters[site].submit(JobSpec::new(&job.name, job.cores, dur.max(1)).at(ready))?;
            *jobs_per_site.entry(self.sites[site].name.clone()).or_default() += 1;
        }

        let mut makespan = *year_done_ms.last().unwrap_or(&0);
        for cluster in &mut site_clusters {
            if cluster.queued() > 0 {
                let schedule = cluster.schedule();
                makespan = makespan.max(schedule.makespan_ms);
            }
        }

        Ok(FederationReport {
            makespan_ms: makespan,
            bytes_moved,
            transfer_ms: transfer_ms_total,
            jobs_per_site,
        })
    }
}

impl Federation {
    /// Builds a federation from a TOSCA topology: every `hpc.Cluster`,
    /// `cloud.Site` and `gpu.Partition` template becomes a site (with
    /// `nodes` / `cores_per_node` properties sizing its cluster), and every
    /// `network.Link` template (properties `from`, `to`, `bandwidth_mbps`,
    /// `latency_ms`) becomes a DLS link.
    pub fn from_topology(topology: &crate::tosca::Topology) -> Result<Federation> {
        let mut sites = Vec::new();
        let mut dls = DataLogistics::new();
        for t in &topology.templates {
            let kind = match t.type_name.as_str() {
                "hpc.Cluster" => Some(SiteKind::HpcCompute),
                "cloud.Site" => Some(SiteKind::CloudData),
                "gpu.Partition" => Some(SiteKind::GpuPartition),
                _ => None,
            };
            if let Some(kind) = kind {
                let nodes = t.properties.get("nodes").and_then(|v| v.parse().ok()).unwrap_or(4);
                let cores =
                    t.properties.get("cores_per_node").and_then(|v| v.parse().ok()).unwrap_or(8);
                sites.push(Site {
                    name: t.name.clone(),
                    kind,
                    cluster: Cluster::homogeneous(nodes, cores),
                });
            } else if t.type_name == "network.Link" {
                let from = t
                    .properties
                    .get("from")
                    .ok_or_else(|| Error::NotFound(format!("'from' on link '{}'", t.name)))?;
                let to = t
                    .properties
                    .get("to")
                    .ok_or_else(|| Error::NotFound(format!("'to' on link '{}'", t.name)))?;
                let bw = t
                    .properties
                    .get("bandwidth_mbps")
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(100.0);
                let lat = t.properties.get("latency_ms").and_then(|v| v.parse().ok()).unwrap_or(50);
                dls.set_link(from, to, Link { bandwidth_mbps: bw, latency_ms: lat });
            }
        }
        if sites.is_empty() {
            return Err(Error::NotFound("any site template in topology".into()));
        }
        Ok(Federation { sites, dls })
    }
}

/// The distributed-deployment topology of the paper's future work: the ESM
/// home cluster, a data-oriented cloud site, a GPU partition, and the WAN
/// links the Data Logistics Service uses between them.
pub fn distributed_case_study() -> crate::tosca::Topology {
    crate::tosca::Topology::parse(DISTRIBUTED_TOPOLOGY).expect("built-in topology must parse")
}

/// Source of the built-in distributed topology.
pub const DISTRIBUTED_TOPOLOGY: &str = "\
topology: climate-extremes-distributed
inputs:
  years: 3
node_templates:
  zeus:
    type: hpc.Cluster
    properties:
      nodes: 4
      cores_per_node: 8
  cloud_site:
    type: cloud.Site
    properties:
      nodes: 4
      cores_per_node: 8
  gpu_partition:
    type: gpu.Partition
    properties:
      nodes: 2
      cores_per_node: 8
  wan_hpc_cloud:
    type: network.Link
    properties:
      from: zeus
      to: cloud_site
      bandwidth_mbps: 500
      latency_ms: 30
  wan_hpc_gpu:
    type: network.Link
    properties:
      from: zeus
      to: gpu_partition
      bandwidth_mbps: 300
      latency_ms: 40
";

#[cfg(test)]
mod tests {
    use super::*;

    fn workload(years: usize, bytes: u64) -> Workload {
        Workload::case_study(years, 10_000, 4_000, 6, 6_000, bytes)
    }

    #[test]
    fn class_preferences() {
        assert_eq!(TaskClass::Simulation.preferred(), SiteKind::HpcCompute);
        assert_eq!(TaskClass::Analytics.preferred(), SiteKind::CloudData);
        assert_eq!(TaskClass::MlInference.preferred(), SiteKind::GpuPartition);
        assert!(TaskClass::MlInference.speed_factor(SiteKind::GpuPartition) < 0.5);
        assert_eq!(TaskClass::Simulation.speed_factor(SiteKind::HpcCompute), 1.0);
    }

    #[test]
    fn single_site_moves_no_data() {
        let mut fed = Federation::testbed();
        let report = fed.evaluate(&workload(2, 1_000_000_000), Placement::SingleSite).unwrap();
        assert_eq!(report.bytes_moved, 0);
        assert_eq!(report.transfer_ms, 0);
        assert_eq!(report.jobs_per_site.len(), 1);
        assert!(report.jobs_per_site.contains_key("hpc"));
    }

    #[test]
    fn affinity_distributes_jobs_by_class() {
        let mut fed = Federation::testbed();
        let report = fed.evaluate(&workload(2, 1_000_000_000), Placement::ClassAffinity).unwrap();
        // 2 sim jobs on hpc, 12 analytics on cloud, 2 ml on gpu.
        assert_eq!(report.jobs_per_site["hpc"], 2);
        assert_eq!(report.jobs_per_site["cloud"], 12);
        assert_eq!(report.jobs_per_site["gpu"], 2);
        // One stage-out per (year, remote site): 2 years x 2 sites.
        assert_eq!(report.bytes_moved, 4_000_000_000);
    }

    #[test]
    fn affinity_wins_for_compute_heavy_small_data() {
        let mut a = Federation::testbed();
        let mut b = Federation::testbed();
        let w = workload(3, 50_000_000); // 50 MB/year: cheap to ship
        let single = a.evaluate(&w, Placement::SingleSite).unwrap();
        let affinity = b.evaluate(&w, Placement::ClassAffinity).unwrap();
        assert!(
            affinity.makespan_ms < single.makespan_ms,
            "affinity {} should beat single-site {}",
            affinity.makespan_ms,
            single.makespan_ms
        );
    }

    #[test]
    fn single_site_wins_for_data_heavy_cheap_compute() {
        let mut a = Federation::testbed();
        let mut b = Federation::testbed();
        // Tiny compute, 60 GB/year of data: shipping dominates.
        let w = Workload::case_study(2, 10_000, 200, 4, 200, 60_000_000_000);
        let single = a.evaluate(&w, Placement::SingleSite).unwrap();
        let affinity = b.evaluate(&w, Placement::ClassAffinity).unwrap();
        assert!(
            single.makespan_ms < affinity.makespan_ms,
            "single-site {} should beat affinity {} when data dominates",
            single.makespan_ms,
            affinity.makespan_ms
        );
    }

    #[test]
    fn simulation_years_are_sequential() {
        let mut fed = Federation::testbed();
        let w = Workload::case_study(3, 10_000, 100, 1, 100, 1_000);
        let report = fed.evaluate(&w, Placement::SingleSite).unwrap();
        // Three chained 10 s years bound the makespan from below.
        assert!(report.makespan_ms >= 30_000);
    }

    #[test]
    fn federation_from_tosca_topology() {
        let topo = distributed_case_study();
        let mut fed = Federation::from_topology(&topo).unwrap();
        assert_eq!(fed.sites.len(), 3);
        assert_eq!(fed.sites[0].name, "zeus");
        assert_eq!(fed.sites[0].kind, SiteKind::HpcCompute);
        assert_eq!(fed.sites[1].kind, SiteKind::CloudData);
        assert_eq!(fed.sites[2].kind, SiteKind::GpuPartition);
        // Evaluating against this federation works end to end, and the
        // TOSCA-declared links are in effect (hpc->cloud at 500 MB/s).
        let report = fed.evaluate(&workload(2, 1_000_000_000), Placement::ClassAffinity).unwrap();
        assert!(report.bytes_moved > 0);
        // 1 GB at 500 MB/s = 2000 ms + 30 latency (cloud) plus the gpu leg
        // (300 MB/s): 3334 + 40.
        assert_eq!(report.transfer_ms, 2 * ((2000 + 30) + (3334 + 40)));
    }

    #[test]
    fn from_topology_requires_sites_and_link_endpoints() {
        let empty = crate::tosca::Topology::parse("topology: t\n").unwrap();
        assert!(Federation::from_topology(&empty).is_err());
        let bad_link = crate::tosca::Topology::parse(
            "topology: t\nnode_templates:\n  a:\n    type: hpc.Cluster\n  l:\n    type: network.Link\n    properties:\n      from: a\n",
        )
        .unwrap();
        assert!(Federation::from_topology(&bad_link).is_err());
    }

    #[test]
    fn federation_without_hpc_site_errors() {
        let mut fed = Federation {
            sites: vec![Site {
                name: "cloud".into(),
                kind: SiteKind::CloudData,
                cluster: Cluster::homogeneous(1, 8),
            }],
            dls: DataLogistics::new(),
        };
        assert!(fed.evaluate(&workload(1, 1), Placement::SingleSite).is_err());
    }
}
