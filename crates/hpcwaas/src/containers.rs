//! The Container Image Creation service.
//!
//! Section 4.1: "the Container Image Creation service ... automates the
//! creation of the container images for workflows, including the code as
//! well as all the required software compiled for the target HPC
//! platform". The service resolves a build spec (base + ordered package
//! list + target architecture) into a layered image manifest. Layers are
//! content-addressed — identified by a hash of the layer recipe and
//! everything beneath it — so rebuilding a workflow image after a small
//! change, or building a sibling workflow sharing the software stack, only
//! pays for the layers that actually differ (bench C5).

use std::collections::HashMap;

/// Target platform of a build (images are arch-specific).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Arch {
    X86_64,
    Aarch64,
    Ppc64le,
}

/// A build request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ImageSpec {
    pub name: String,
    pub base: String,
    /// Ordered package layers (order matters: each layer's identity covers
    /// everything beneath it, like container build caching).
    pub packages: Vec<String>,
    pub arch: Arch,
}

impl ImageSpec {
    /// Builds a spec from a TOSCA `container.Image` template's properties
    /// (`base`, space-separated `packages`).
    pub fn from_properties(name: &str, props: &std::collections::BTreeMap<String, String>) -> Self {
        ImageSpec {
            name: name.to_string(),
            base: props.get("base").cloned().unwrap_or_else(|| "scratch".into()),
            packages: props
                .get("packages")
                .map(|p| p.split_whitespace().map(str::to_string).collect())
                .unwrap_or_default(),
            arch: Arch::X86_64,
        }
    }
}

/// Content-addressed layer identity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LayerId(pub u64);

/// A completed image build.
#[derive(Debug, Clone)]
pub struct ImageManifest {
    pub name: String,
    pub layers: Vec<LayerId>,
    /// Layers served from cache during this build.
    pub cache_hits: usize,
    /// Layers actually built during this build.
    pub built: usize,
    /// Simulated build cost (virtual ms): cache hits are free, base layers
    /// and package layers have fixed costs.
    pub cost_ms: u64,
}

/// FNV-1a, stable across runs (layer identity must be deterministic).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Virtual cost of building a base layer.
pub const BASE_LAYER_COST_MS: u64 = 800;
/// Virtual cost of compiling/installing one package layer.
pub const PACKAGE_LAYER_COST_MS: u64 = 300;

/// The build service with its layer cache.
#[derive(Default)]
pub struct BuildService {
    cache: HashMap<LayerId, String>,
    builds: u64,
}

impl BuildService {
    /// Creates a service with an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of cached layers.
    pub fn cached_layers(&self) -> usize {
        self.cache.len()
    }

    /// Total builds performed.
    pub fn builds(&self) -> u64 {
        self.builds
    }

    /// Resolves a spec into its layer chain: `hash_i` covers `(arch, base,
    /// packages[..=i])`, so a change to package `k` invalidates layers
    /// `k..` but not `..k`.
    pub fn layer_chain(spec: &ImageSpec) -> Vec<(LayerId, String)> {
        let mut chain = Vec::with_capacity(spec.packages.len() + 1);
        let mut recipe = format!("{:?}|{}", spec.arch, spec.base);
        chain.push((LayerId(fnv1a(recipe.as_bytes())), format!("base:{}", spec.base)));
        for p in &spec.packages {
            recipe.push('|');
            recipe.push_str(p);
            chain.push((LayerId(fnv1a(recipe.as_bytes())), format!("pkg:{p}")));
        }
        chain
    }

    /// Builds (or re-uses) an image, updating the cache.
    pub fn build(&mut self, spec: &ImageSpec) -> ImageManifest {
        self.builds += 1;
        let chain = Self::layer_chain(spec);
        let mut cache_hits = 0;
        let mut built = 0;
        let mut cost_ms = 0;
        let mut layers = Vec::with_capacity(chain.len());
        for (i, (id, desc)) in chain.into_iter().enumerate() {
            if let std::collections::hash_map::Entry::Vacant(e) = self.cache.entry(id) {
                built += 1;
                cost_ms += if i == 0 { BASE_LAYER_COST_MS } else { PACKAGE_LAYER_COST_MS };
                e.insert(desc);
            } else {
                cache_hits += 1;
            }
            layers.push(id);
        }
        let r = obs::registry();
        r.counter("hpcwaas_layers_built_total", &[]).add(built as u64);
        r.counter("hpcwaas_layer_cache_hits_total", &[]).add(cache_hits as u64);
        obs::global().emit_with(|| obs::EventKind::ImageBuilt {
            image: spec.name.as_str().into(),
            built,
            cache_hits,
            cost_ms,
        });
        ImageManifest { name: spec.name.clone(), layers, cache_hits, built, cost_ms }
    }
}

/// Per-task container execution overhead model.
///
/// The paper's future work includes "the use of software containers for
/// enabling fully portable workflows ... and the assessment of their
/// impact on the climate simulation and processing performance". The
/// measurable mechanism is start-up cost: the *first* task of an image on
/// a worker pays a cold start (image pull + container boot); subsequent
/// tasks reuse the warm container and pay only a small exec cost.
/// Bench A4 runs the workflow both bare-metal and containerized.
#[derive(Debug, Clone)]
pub struct ContainerRuntime {
    /// First-use cost of an image on a worker, virtual ms.
    pub cold_start_ms: u64,
    /// Per-task cost once the container is warm, virtual ms.
    pub warm_start_ms: u64,
    warm: std::collections::HashSet<(usize, LayerId)>,
}

impl ContainerRuntime {
    /// Creates a model with typical HPC-container costs (Singularity-like:
    /// ~1.5 s cold, ~30 ms warm).
    pub fn new(cold_start_ms: u64, warm_start_ms: u64) -> Self {
        ContainerRuntime { cold_start_ms, warm_start_ms, warm: Default::default() }
    }

    /// The overhead of launching one task of `image` (identified by its
    /// top layer) on `worker`, marking the container warm.
    pub fn task_overhead_ms(&mut self, worker: usize, image: LayerId) -> u64 {
        if self.warm.insert((worker, image)) {
            self.cold_start_ms
        } else {
            self.warm_start_ms
        }
    }

    /// Number of warm (worker, image) containers.
    pub fn warm_containers(&self) -> usize {
        self.warm.len()
    }

    /// Evicts all warm state (node reboot / image update).
    pub fn evict_all(&mut self) {
        self.warm.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(name: &str, packages: &[&str]) -> ImageSpec {
        ImageSpec {
            name: name.into(),
            base: "rockylinux9".into(),
            packages: packages.iter().map(|s| s.to_string()).collect(),
            arch: Arch::X86_64,
        }
    }

    #[test]
    fn cold_build_builds_every_layer() {
        let mut svc = BuildService::new();
        let m = svc.build(&spec("esm", &["mpi", "netcdf", "esm"]));
        assert_eq!(m.layers.len(), 4);
        assert_eq!(m.built, 4);
        assert_eq!(m.cache_hits, 0);
        assert_eq!(m.cost_ms, BASE_LAYER_COST_MS + 3 * PACKAGE_LAYER_COST_MS);
    }

    #[test]
    fn identical_rebuild_is_fully_cached() {
        let mut svc = BuildService::new();
        let s = spec("esm", &["mpi", "netcdf"]);
        svc.build(&s);
        let again = svc.build(&s);
        assert_eq!(again.built, 0);
        assert_eq!(again.cache_hits, 3);
        assert_eq!(again.cost_ms, 0);
    }

    #[test]
    fn shared_prefix_reuses_layers() {
        let mut svc = BuildService::new();
        svc.build(&spec("esm", &["mpi", "netcdf", "esm"]));
        // Sibling workflow sharing base + mpi + netcdf.
        let m = svc.build(&spec("analytics", &["mpi", "netcdf", "ophidia"]));
        assert_eq!(m.cache_hits, 3, "base + mpi + netcdf cached");
        assert_eq!(m.built, 1, "only ophidia layer built");
    }

    #[test]
    fn changed_middle_package_invalidates_suffix() {
        let mut svc = BuildService::new();
        svc.build(&spec("a", &["mpi", "netcdf", "app"]));
        let m = svc.build(&spec("a", &["openmpi", "netcdf", "app"]));
        // base cached; everything from the changed package on rebuilt.
        assert_eq!(m.cache_hits, 1);
        assert_eq!(m.built, 3);
    }

    #[test]
    fn different_arch_shares_nothing() {
        let mut svc = BuildService::new();
        svc.build(&spec("a", &["mpi"]));
        let mut other = spec("a", &["mpi"]);
        other.arch = Arch::Aarch64;
        let m = svc.build(&other);
        assert_eq!(m.cache_hits, 0, "cross-arch layers must not be shared");
        assert_eq!(m.built, 2);
    }

    #[test]
    fn layer_ids_are_deterministic() {
        let a = BuildService::layer_chain(&spec("x", &["p1", "p2"]));
        let b = BuildService::layer_chain(&spec("y", &["p1", "p2"]));
        // Identity depends on recipe, not image name.
        assert_eq!(
            a.iter().map(|(id, _)| *id).collect::<Vec<_>>(),
            b.iter().map(|(id, _)| *id).collect::<Vec<_>>()
        );
    }

    #[test]
    fn container_runtime_cold_then_warm() {
        let mut rt = ContainerRuntime::new(1500, 30);
        let img = LayerId(42);
        assert_eq!(rt.task_overhead_ms(0, img), 1500, "first use on worker 0 is cold");
        assert_eq!(rt.task_overhead_ms(0, img), 30, "second use is warm");
        assert_eq!(rt.task_overhead_ms(1, img), 1500, "other worker pays its own cold start");
        assert_eq!(rt.task_overhead_ms(0, LayerId(7)), 1500, "other image is cold");
        assert_eq!(rt.warm_containers(), 3);
        rt.evict_all();
        assert_eq!(rt.task_overhead_ms(0, img), 1500, "eviction resets warmth");
    }

    #[test]
    fn from_tosca_properties() {
        let mut props = std::collections::BTreeMap::new();
        props.insert("base".to_string(), "rockylinux9".to_string());
        props.insert("packages".to_string(), "esm-surrogate netcdf mpi".to_string());
        let s = ImageSpec::from_properties("esm_image", &props);
        assert_eq!(s.base, "rockylinux9");
        assert_eq!(s.packages, vec!["esm-surrogate", "netcdf", "mpi"]);
        let empty = ImageSpec::from_properties("bare", &Default::default());
        assert_eq!(empty.base, "scratch");
        assert!(empty.packages.is_empty());
    }
}
