//! # hpcwaas — the eFlows4HPC software-stack substrate
//!
//! Section 4 of the paper describes the stack that deploys and runs the
//! climate workflow: Alien4Cloud TOSCA topologies, the Yorc orchestrator,
//! the Container Image Creation service, the Data Logistics Service and
//! the HPCWaaS Execution API, all targeting an LSF-scheduled cluster
//! (Zeus). This crate implements working equivalents of each:
//!
//! * [`tosca`] — a topology document model (node types, templates,
//!   properties, `hosted_on`/`uses`/`depends_on` requirements) plus a
//!   parser for a small YAML-like syntax;
//! * [`orchestrator`] — plan derivation (topological sort over
//!   requirements) and lifecycle execution (create → configure → start,
//!   reverse on undeploy), the Yorc role;
//! * [`containers`] — the Container Image Creation service: build specs
//!   resolve to layered manifests with a content-addressed layer cache, so
//!   redeploying a workflow is cheap (bench C5);
//! * [`dls`] — declarative stage-in/stage-out pipelines over a
//!   bandwidth/latency transfer model (bench A2);
//! * [`cluster`] — a simulated HPC cluster with an LSF-like FCFS+backfill
//!   queue, which gives deployments and jobs something real to land on;
//! * [`api`] — the HPCWaaS Execution API: a workflow registry plus the
//!   deploy / submit / status / undeploy lifecycle the end user sees;
//! * [`serve`] — the multi-tenant serving layer underneath the API:
//!   per-tenant admission control (in-flight quotas, token-bucket rates),
//!   weighted fair-share dispatch onto a bounded executor pool, and
//!   typed rejections instead of unbounded thread spawns.

pub mod api;
pub mod cluster;
pub mod containers;
pub mod dls;
pub mod error;
pub mod federation;
pub mod orchestrator;
pub mod serve;
pub mod tosca;

pub use api::{DeploymentId, ExecutionApi, ExecutionHandle, ExecutionId, ExecutionStatus};
pub use cluster::{Cluster, JobSpec};
pub use containers::{BuildService, ImageSpec};
pub use dls::{DataLogistics, Endpoint, PipelineSpec};
pub use error::{Error, Result};
pub use federation::{Federation, Placement, SiteKind, TaskClass, Workload};
pub use orchestrator::{DeploymentPlan, Orchestrator};
pub use serve::{Rejection, ServeConfig, ServeStats, TenantQuota, DEFAULT_TENANT};
pub use tosca::Topology;
