//! The Data Logistics Service.
//!
//! Section 4.1: "the management of the required data is done by the Data
//! Logistics Service which executes the required data pipelines either at
//! deployment or execution time". A pipeline is a declarative list of
//! transfer stages between named endpoints (archive, HPC site, cloud
//! bucket...); execution runs the stages over a bandwidth/latency model
//! and reports per-stage and total costs, so deploy-time vs run-time
//! staging strategies can be compared quantitatively (bench A2).

use std::collections::HashMap;

/// A named data endpoint (site or storage system).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Endpoint(pub String);

impl Endpoint {
    /// Constructs an endpoint.
    pub fn new(name: &str) -> Self {
        Endpoint(name.to_string())
    }
}

/// One transfer stage.
#[derive(Debug, Clone, PartialEq)]
pub struct Stage {
    pub from: Endpoint,
    pub to: Endpoint,
    pub bytes: u64,
    pub label: String,
}

/// A declarative pipeline: ordered transfer stages.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PipelineSpec {
    pub stages: Vec<Stage>,
}

impl PipelineSpec {
    /// Empty pipeline.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a stage (builder style).
    pub fn stage(mut self, label: &str, from: &str, to: &str, bytes: u64) -> Self {
        self.stages.push(Stage {
            from: Endpoint::new(from),
            to: Endpoint::new(to),
            bytes,
            label: label.to_string(),
        });
        self
    }

    /// Total bytes moved by the pipeline.
    pub fn total_bytes(&self) -> u64 {
        self.stages.iter().map(|s| s.bytes).sum()
    }
}

/// Link parameters between a pair of endpoints.
///
/// Thin ms-granular facade over the workspace-wide
/// [`dataflow::cost::LinkCost`] model, so DLS staging and dataflow
/// scheduling price the same wire the same way.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Link {
    /// Sustained bandwidth in MB/s.
    pub bandwidth_mbps: f64,
    /// Per-transfer latency in virtual ms.
    pub latency_ms: u64,
}

impl Link {
    /// The µs-granular cost model this link delegates its arithmetic to.
    pub fn cost(&self) -> dataflow::cost::LinkCost {
        dataflow::cost::LinkCost::new(self.bandwidth_mbps, self.latency_ms * 1000)
    }
}

impl From<Link> for dataflow::cost::LinkCost {
    fn from(l: Link) -> Self {
        l.cost()
    }
}

/// Per-stage execution record.
#[derive(Debug, Clone)]
pub struct StageReport {
    pub label: String,
    pub bytes: u64,
    /// Virtual cost of ALL attempts of this stage (each dropped attempt
    /// pays the full transfer cost before the retry).
    pub virtual_ms: u64,
    /// Attempts used (1 = clean transfer).
    pub attempts: u32,
}

/// Whole-pipeline execution record.
#[derive(Debug, Clone)]
pub struct TransferReport {
    pub stages: Vec<StageReport>,
    pub total_ms: u64,
    pub total_bytes: u64,
    /// Extra attempts across all stages (0 = no drops).
    pub retries: u32,
    /// True when some stage exhausted its attempts and the pipeline
    /// finished without that data (degraded mode, not a hard failure).
    pub degraded: bool,
}

/// The Data Logistics Service with its network model.
pub struct DataLogistics {
    links: HashMap<(Endpoint, Endpoint), Link>,
    default_link: Link,
    executed: Vec<TransferReport>,
    /// Attempts per stage before giving up on it (≥ 1).
    max_attempts: u32,
}

impl DataLogistics {
    /// Creates a service with a default WAN-ish link (100 MB/s, 50 ms).
    pub fn new() -> Self {
        DataLogistics {
            links: HashMap::new(),
            default_link: Link { bandwidth_mbps: 100.0, latency_ms: 50 },
            executed: Vec::new(),
            max_attempts: 3,
        }
    }

    /// Sets the per-stage attempt cap (clamped to ≥ 1).
    pub fn set_max_attempts(&mut self, n: u32) {
        self.max_attempts = n.max(1);
    }

    /// Declares a (directed) link between endpoints.
    pub fn set_link(&mut self, from: &str, to: &str, link: Link) {
        self.links.insert((Endpoint::new(from), Endpoint::new(to)), link);
    }

    fn link(&self, from: &Endpoint, to: &Endpoint) -> Link {
        self.links.get(&(from.clone(), to.clone())).copied().unwrap_or(self.default_link)
    }

    /// Predicted virtual duration of one stage, priced through the shared
    /// [`dataflow::cost::LinkCost`] model (no contention: DLS pipelines
    /// run their stages sequentially).
    pub fn predict_stage_ms(&self, s: &Stage) -> u64 {
        self.link(&s.from, &s.to).cost().transfer_us(s.bytes, 1).div_ceil(1000)
    }

    /// Executes a pipeline, returning (and recording) the report.
    ///
    /// Each stage is attempted up to the configured cap; the chaos site
    /// `hpcwaas.dls.transfer` (consulted once per attempt) may drop an
    /// attempt, which still costs its full virtual duration before the
    /// retry. A stage that exhausts its attempts marks the report
    /// `degraded` and the pipeline carries on — transfer loss degrades a
    /// run, it does not kill it. The no-fault path is byte-for-byte the
    /// old behavior (one attempt per stage, identical costs).
    pub fn execute(&mut self, spec: &PipelineSpec) -> TransferReport {
        let mut stages = Vec::with_capacity(spec.stages.len());
        let mut total_ms = 0;
        let mut retries = 0u32;
        let mut degraded = false;
        let bus = obs::global();
        let r = obs::registry();
        let stage_ms = r.histogram("hpcwaas_stage_ms", &[]);
        let bytes_total = r.counter("hpcwaas_transfer_bytes_total", &[]);
        let retries_total = r.counter("hpcwaas_transfer_retries_total", &[]);
        for s in &spec.stages {
            let ms = self.predict_stage_ms(s);
            let mut attempts = 0u32;
            let mut stage_cost = 0u64;
            let delivered = loop {
                attempts += 1;
                stage_cost += ms;
                stage_ms.observe(ms);
                bus.emit_with(|| obs::EventKind::TransferStaged {
                    label: s.label.as_str().into(),
                    bytes: s.bytes,
                    virtual_ms: ms,
                });
                let dropped = matches!(
                    obs::chaos::fire("hpcwaas.dls.transfer"),
                    Some(obs::chaos::Fault::Drop)
                );
                if !dropped {
                    break true;
                }
                retries_total.inc();
                if attempts >= self.max_attempts {
                    break false;
                }
            };
            retries += attempts - 1;
            if delivered {
                bytes_total.add(s.bytes);
            } else {
                degraded = true;
            }
            total_ms += stage_cost;
            stages.push(StageReport {
                label: s.label.clone(),
                bytes: s.bytes,
                virtual_ms: stage_cost,
                attempts,
            });
        }
        let report =
            TransferReport { stages, total_ms, total_bytes: spec.total_bytes(), retries, degraded };
        self.executed.push(report.clone());
        report
    }

    /// All reports so far.
    pub fn history(&self) -> &[TransferReport] {
        &self.executed
    }
}

impl Default for DataLogistics {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_cost_is_latency_plus_transfer() {
        let mut dls = DataLogistics::new();
        dls.set_link("archive", "zeus", Link { bandwidth_mbps: 1000.0, latency_ms: 20 });
        let p = PipelineSpec::new().stage("baseline", "archive", "zeus", 2_000_000_000);
        let r = dls.execute(&p);
        // 2 GB at 1 GB/s = 2000 ms + 20 ms latency.
        assert_eq!(r.total_ms, 2020);
        assert_eq!(r.total_bytes, 2_000_000_000);
        assert_eq!(r.stages[0].attempts, 1, "clean path is single-attempt");
        assert_eq!(r.retries, 0);
        assert!(!r.degraded);
    }

    #[test]
    fn dropped_transfers_retry_then_deliver() {
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::sync::Arc;
        // Drop the first two attempts; the third delivers.
        let n = Arc::new(AtomicU64::new(0));
        let n2 = Arc::clone(&n);
        let _guard = obs::chaos::install(Arc::new(move |site: &str| {
            (site == "hpcwaas.dls.transfer" && n2.fetch_add(1, Ordering::SeqCst) < 2)
                .then_some((obs::chaos::Fault::Drop, 0))
        }));
        let mut dls = DataLogistics::new();
        let r = dls.execute(&PipelineSpec::new().stage("x", "a", "b", 100_000_000));
        assert_eq!(r.stages[0].attempts, 3);
        assert_eq!(r.retries, 2);
        assert!(!r.degraded);
        // Each dropped attempt paid the full stage cost (1050 ms).
        assert_eq!(r.total_ms, 3 * 1050);
    }

    #[test]
    fn exhausted_transfer_degrades_but_pipeline_continues() {
        use std::sync::Arc;
        let _guard = obs::chaos::install(Arc::new(|site: &str| {
            (site == "hpcwaas.dls.transfer").then_some((obs::chaos::Fault::Drop, 0))
        }));
        let mut dls = DataLogistics::new();
        dls.set_max_attempts(2);
        let p =
            PipelineSpec::new().stage("x", "a", "b", 100_000_000).stage("y", "b", "c", 100_000_000);
        let r = dls.execute(&p);
        assert!(r.degraded, "exhausted stage must flag degraded mode");
        assert_eq!(r.stages.len(), 2, "loss of one stage must not stop the pipeline");
        assert_eq!(r.stages[0].attempts, 2);
        assert_eq!(r.retries, 2, "one extra attempt per stage");
    }

    #[test]
    fn unknown_links_use_default() {
        let mut dls = DataLogistics::new();
        let p = PipelineSpec::new().stage("x", "a", "b", 100_000_000);
        let r = dls.execute(&p);
        // 100 MB at 100 MB/s = 1000 ms + 50 ms.
        assert_eq!(r.total_ms, 1050);
    }

    #[test]
    fn links_are_directional() {
        let mut dls = DataLogistics::new();
        dls.set_link("a", "b", Link { bandwidth_mbps: 1000.0, latency_ms: 0 });
        let fwd = dls.execute(&PipelineSpec::new().stage("f", "a", "b", 1_000_000_000));
        let bwd = dls.execute(&PipelineSpec::new().stage("b", "b", "a", 1_000_000_000));
        assert!(fwd.total_ms < bwd.total_ms, "reverse should use the slow default");
    }

    #[test]
    fn multi_stage_pipeline_sums() {
        let mut dls = DataLogistics::new();
        dls.set_link("archive", "cloud", Link { bandwidth_mbps: 200.0, latency_ms: 10 });
        dls.set_link("cloud", "zeus", Link { bandwidth_mbps: 500.0, latency_ms: 5 });
        let p = PipelineSpec::new().stage("in", "archive", "cloud", 100_000_000).stage(
            "out",
            "cloud",
            "zeus",
            100_000_000,
        );
        let r = dls.execute(&p);
        assert_eq!(r.stages.len(), 2);
        assert_eq!(r.total_ms, (10 + 500) + (5 + 200));
        assert_eq!(dls.history().len(), 1);
    }

    #[test]
    fn empty_pipeline_is_free() {
        let mut dls = DataLogistics::new();
        let r = dls.execute(&PipelineSpec::new());
        assert_eq!(r.total_ms, 0);
        assert_eq!(r.total_bytes, 0);
    }
}
