//! Simulated HPC cluster with an LSF-like batch queue.
//!
//! The testbed cluster of the paper (Zeus: 348 nodes, GPFS, IBM Spectrum
//! LSF) is simulated as a set of nodes with cores/memory/GPUs and a batch
//! scheduler running first-come-first-served with conservative
//! backfilling — enough fidelity for deployment placement and for
//! queue-behaviour experiments. The simulation is discrete-event over a
//! virtual millisecond clock.

use crate::error::{Error, Result};
use dataflow::cost::LinkCost;

/// Static description of one node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeSpec {
    pub cores: u32,
    pub memory_gb: u32,
    pub gpus: u32,
}

impl NodeSpec {
    /// A standard CPU node.
    pub fn cpu(cores: u32) -> Self {
        NodeSpec { cores, memory_gb: cores * 4, gpus: 0 }
    }

    /// A GPU node.
    pub fn gpu(cores: u32, gpus: u32) -> Self {
        NodeSpec { cores, memory_gb: cores * 8, gpus }
    }
}

/// A batch job request (single-node placement).
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    pub name: String,
    pub cores: u32,
    pub memory_gb: u32,
    pub gpus: u32,
    /// Virtual runtime in milliseconds.
    pub duration_ms: u64,
    /// Virtual submission time.
    pub submit_ms: u64,
    /// Input data the job must stage in before it can run; consulted by
    /// the placement step when the cluster has per-node staging links.
    pub input_bytes: u64,
}

impl JobSpec {
    /// Convenience constructor for CPU jobs submitted at time zero.
    pub fn new(name: &str, cores: u32, duration_ms: u64) -> Self {
        JobSpec {
            name: name.into(),
            cores,
            memory_gb: 1,
            gpus: 0,
            duration_ms,
            submit_ms: 0,
            input_bytes: 0,
        }
    }

    /// Builder: submission time.
    pub fn at(mut self, submit_ms: u64) -> Self {
        self.submit_ms = submit_ms;
        self
    }

    /// Builder: GPU requirement.
    pub fn with_gpus(mut self, gpus: u32) -> Self {
        self.gpus = gpus;
        self
    }

    /// Builder: input data that must be staged to the chosen node.
    pub fn with_input_bytes(mut self, bytes: u64) -> Self {
        self.input_bytes = bytes;
        self
    }
}

/// The placement/schedule of one job.
#[derive(Debug, Clone, PartialEq)]
pub struct Placement {
    pub job: JobSpec,
    pub node: usize,
    pub start_ms: u64,
    pub end_ms: u64,
    /// Placement attempts this job needed (1 = placed first try; more
    /// when the chaos site bounced it back to the queue).
    pub attempts: u32,
}

impl Placement {
    /// Queue wait time.
    pub fn wait_ms(&self) -> u64 {
        self.start_ms - self.job.submit_ms
    }
}

/// Result of scheduling a job batch.
#[derive(Debug, Clone)]
pub struct Schedule {
    pub placements: Vec<Placement>,
    pub makespan_ms: u64,
    /// Core-milliseconds used / core-milliseconds available over makespan.
    pub utilization: f64,
    /// Total requeue bounces across all jobs (0 without fault injection).
    pub requeued: u32,
}

/// Placement attempts per job before a requeue fault is ignored: a
/// flapping node can bounce a job back to the queue only so many times.
const MAX_JOB_ATTEMPTS: u32 = 3;

/// The simulated cluster.
#[derive(Debug, Clone)]
pub struct Cluster {
    pub nodes: Vec<NodeSpec>,
    queue: Vec<JobSpec>,
    /// Per-node staging link from shared storage (GPFS / archive). When
    /// set, placement breaks ties between fitting nodes by the predicted
    /// cost of staging the job's `input_bytes` over the node's link —
    /// the same [`LinkCost`] arithmetic the dataflow schedulers and the
    /// DLS use. `None` (the default) keeps pure first-fit.
    staging: Option<Vec<LinkCost>>,
}

impl Cluster {
    /// A cluster of identical CPU nodes.
    pub fn homogeneous(n_nodes: usize, cores_per_node: u32) -> Self {
        Cluster {
            nodes: vec![NodeSpec::cpu(cores_per_node); n_nodes],
            queue: Vec::new(),
            staging: None,
        }
    }

    /// A cluster with an explicit node list.
    pub fn new(nodes: Vec<NodeSpec>) -> Self {
        Cluster { nodes, queue: Vec::new(), staging: None }
    }

    /// Builder: declares one staging link per node (panics on a length
    /// mismatch — a cluster with half-described storage is a config bug).
    pub fn with_staging(mut self, links: Vec<LinkCost>) -> Self {
        assert_eq!(links.len(), self.nodes.len(), "one staging link per node");
        self.staging = Some(links);
        self
    }

    fn fits(node: &NodeSpec, job: &JobSpec) -> bool {
        node.cores >= job.cores && node.memory_gb >= job.memory_gb && node.gpus >= job.gpus
    }

    /// Predicted ms to stage the job's input onto `node` (0 without a
    /// staging model or for data-free jobs).
    fn staging_ms(&self, node: usize, job: &JobSpec) -> u64 {
        match &self.staging {
            Some(links) => links[node].transfer_us(job.input_bytes, 1).div_ceil(1000),
            None => 0,
        }
    }

    /// Cheapest fitting node by predicted staging cost; a *strict* min, so
    /// ties resolve to the lowest index — identical to first-fit whenever
    /// staging costs are uniform or absent.
    fn pick_node(&self, job: &JobSpec, free: impl Fn(usize) -> (u32, u32, u32)) -> Option<usize> {
        let mut best: Option<(u64, usize)> = None;
        for n in 0..self.nodes.len() {
            let (c, g, m) = free(n);
            if c >= job.cores && g >= job.gpus && m >= job.memory_gb {
                let cost = self.staging_ms(n, job);
                if best.is_none_or(|(bc, _)| cost < bc) {
                    best = Some((cost, n));
                }
            }
        }
        best.map(|(_, n)| n)
    }

    /// Enqueues a job; rejects requests no node can ever satisfy.
    pub fn submit(&mut self, job: JobSpec) -> Result<()> {
        if !self.nodes.iter().any(|n| Self::fits(n, &job)) {
            return Err(Error::UnsatisfiableJob(format!(
                "job '{}' needs {} cores / {} GB / {} GPUs",
                job.name, job.cores, job.memory_gb, job.gpus
            )));
        }
        self.queue.push(job);
        Ok(())
    }

    /// Number of queued jobs.
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// Runs FCFS + conservative backfill over the queued jobs and returns
    /// the schedule. The queue is consumed.
    pub fn schedule(&mut self) -> Schedule {
        struct Queued {
            job: JobSpec,
            attempts: u32,
        }
        let mut pending: Vec<Queued> = std::mem::take(&mut self.queue)
            .into_iter()
            .map(|job| Queued { job, attempts: 0 })
            .collect();
        pending.sort_by_key(|q| q.job.submit_ms);
        let mut requeued = 0u32;
        // Running jobs as (node, end_ms, cores, gpus, mem).
        let mut running: Vec<(usize, u64, u32, u32, u32)> = Vec::new();
        let mut placements: Vec<Placement> = Vec::new();
        let mut now: u64 = 0;

        let free_at =
            |running: &[(usize, u64, u32, u32, u32)], node: usize, t: u64, nodes: &[NodeSpec]| {
                let mut cores = nodes[node].cores;
                let mut gpus = nodes[node].gpus;
                let mut mem = nodes[node].memory_gb;
                for &(n, end, c, g, m) in running {
                    if n == node && end > t {
                        cores = cores.saturating_sub(c);
                        gpus = gpus.saturating_sub(g);
                        mem = mem.saturating_sub(m);
                    }
                }
                (cores, gpus, mem)
            };

        while !pending.is_empty() {
            // Drop finished jobs.
            running.retain(|&(_, end, ..)| end > now);

            // Find the FCFS head among jobs already submitted.
            let head_idx =
                pending.iter().position(|q| q.job.submit_ms <= now).unwrap_or(usize::MAX);

            if head_idx == usize::MAX {
                // Nothing submitted yet: jump to the next submission.
                now = pending.iter().map(|q| q.job.submit_ms).min().unwrap();
                continue;
            }

            // Try to start the head now.
            let head = pending[head_idx].job.clone();
            let node_for_head = self.pick_node(&head, |n| free_at(&running, n, now, &self.nodes));

            if let Some(node) = node_for_head {
                let attempts = pending[head_idx].attempts + 1;
                // Chaos site "hpcwaas.cluster.job": the node bounces the
                // job back to the queue (capped, with a deterministic
                // half-runtime resubmission delay).
                if attempts < MAX_JOB_ATTEMPTS
                    && matches!(
                        obs::chaos::fire("hpcwaas.cluster.job"),
                        Some(obs::chaos::Fault::Requeue)
                    )
                {
                    requeued += 1;
                    let q = &mut pending[head_idx];
                    q.attempts = attempts;
                    q.job.submit_ms = now + q.job.duration_ms / 2 + 1;
                    pending.sort_by_key(|q| q.job.submit_ms);
                    continue;
                }
                running.push((node, now + head.duration_ms, head.cores, head.gpus, head.memory_gb));
                placements.push(Placement {
                    node,
                    start_ms: now,
                    end_ms: now + head.duration_ms,
                    job: head,
                    attempts,
                });
                pending.remove(head_idx);
                continue;
            }

            // Head blocked: compute its shadow start (earliest time enough
            // resources free up on some node).
            let mut end_times: Vec<u64> = running.iter().map(|&(_, e, ..)| e).collect();
            end_times.sort_unstable();
            end_times.dedup();
            let shadow = end_times
                .iter()
                .copied()
                .find(|&t| {
                    (0..self.nodes.len()).any(|n| {
                        let (c, g, m) = free_at(&running, n, t, &self.nodes);
                        c >= head.cores && g >= head.gpus && m >= head.memory_gb
                    })
                })
                .unwrap_or(u64::MAX);

            // Conservative backfill: start any later job that fits now and
            // finishes before the shadow time.
            let mut backfilled = false;
            for i in 0..pending.len() {
                if i == head_idx {
                    continue;
                }
                let j = &pending[i].job;
                if j.submit_ms > now || now + j.duration_ms > shadow {
                    continue;
                }
                let node = self.pick_node(j, |n| free_at(&running, n, now, &self.nodes));
                if let Some(node) = node {
                    let q = pending.remove(i);
                    let j = q.job;
                    running.push((node, now + j.duration_ms, j.cores, j.gpus, j.memory_gb));
                    placements.push(Placement {
                        node,
                        start_ms: now,
                        end_ms: now + j.duration_ms,
                        job: j,
                        attempts: q.attempts + 1,
                    });
                    backfilled = true;
                    break;
                }
            }
            if backfilled {
                continue;
            }

            // Advance time to the next event.
            let next_end = running.iter().map(|&(_, e, ..)| e).min();
            let next_submit =
                pending.iter().filter(|q| q.job.submit_ms > now).map(|q| q.job.submit_ms).min();
            now = match (next_end, next_submit) {
                (Some(a), Some(b)) => a.min(b),
                (Some(a), None) => a,
                (None, Some(b)) => b,
                (None, None) => break, // cannot happen: head would have started
            };
        }

        let makespan_ms = placements.iter().map(|p| p.end_ms).max().unwrap_or(0);

        let bus = obs::global();
        let r = obs::registry();
        let wait_ms = r.histogram("hpcwaas_job_wait_ms", &[]);
        r.counter("hpcwaas_jobs_scheduled_total", &[]).add(placements.len() as u64);
        r.counter("hpcwaas_job_requeues_total", &[]).add(requeued as u64);
        for p in &placements {
            wait_ms.observe(p.wait_ms());
            bus.emit_with(|| obs::EventKind::JobScheduled {
                job: p.job.name.as_str().into(),
                node: p.node,
                wait_ms: p.wait_ms(),
                duration_ms: p.job.duration_ms,
            });
        }

        let used: u64 =
            placements.iter().map(|p| (p.end_ms - p.start_ms) * p.job.cores as u64).sum();
        let capacity: u64 = makespan_ms * self.nodes.iter().map(|n| n.cores as u64).sum::<u64>();
        Schedule {
            placements,
            makespan_ms,
            utilization: if capacity > 0 { used as f64 / capacity as f64 } else { 0.0 },
            requeued,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_job_starts_immediately() {
        let mut c = Cluster::homogeneous(1, 8);
        c.submit(JobSpec::new("a", 4, 100)).unwrap();
        let s = c.schedule();
        assert_eq!(s.placements.len(), 1);
        assert_eq!(s.placements[0].start_ms, 0);
        assert_eq!(s.makespan_ms, 100);
        assert_eq!(s.placements[0].attempts, 1, "clean path places first try");
        assert_eq!(s.requeued, 0);
    }

    #[test]
    fn requeue_fault_bounces_jobs_with_capped_attempts() {
        use std::sync::Arc;
        // Every placement attempt is bounced; the cap forces the third.
        let _guard = obs::chaos::install(Arc::new(|site: &str| {
            (site == "hpcwaas.cluster.job").then_some((obs::chaos::Fault::Requeue, 0))
        }));
        let mut c = Cluster::homogeneous(2, 8);
        c.submit(JobSpec::new("a", 4, 100)).unwrap();
        c.submit(JobSpec::new("b", 4, 100)).unwrap();
        let s = c.schedule();
        assert_eq!(s.placements.len(), 2, "requeued jobs still complete");
        for p in &s.placements {
            assert_eq!(p.attempts, MAX_JOB_ATTEMPTS, "cap forces placement");
            // Two bounces, each delaying resubmission by duration/2 + 1.
            assert!(p.start_ms >= 2 * (100 / 2 + 1), "bounce delays apply: {}", p.start_ms);
        }
        assert_eq!(s.requeued, 4);
    }

    #[test]
    fn requeue_schedule_is_deterministic() {
        use std::sync::Arc;
        let run = || {
            let _guard = obs::chaos::install(Arc::new(|site: &str| {
                (site == "hpcwaas.cluster.job").then_some((obs::chaos::Fault::Requeue, 0))
            }));
            let mut c = Cluster::homogeneous(2, 8);
            for i in 0..6 {
                c.submit(JobSpec::new(&format!("j{i}"), 2 + (i % 3), 50 + i as u64 * 10)).unwrap();
            }
            c.schedule()
        };
        let (a, b) = (run(), run());
        assert_eq!(a.placements, b.placements);
        assert_eq!(a.requeued, b.requeued);
        assert_eq!(a.makespan_ms, b.makespan_ms);
    }

    #[test]
    fn oversized_job_rejected() {
        let mut c = Cluster::homogeneous(2, 8);
        assert!(matches!(c.submit(JobSpec::new("huge", 64, 10)), Err(Error::UnsatisfiableJob(_))));
        assert!(c.submit(JobSpec::new("gpu", 1, 10).with_gpus(1)).is_err());
    }

    #[test]
    fn parallel_jobs_share_nodes() {
        let mut c = Cluster::homogeneous(2, 8);
        for i in 0..4 {
            c.submit(JobSpec::new(&format!("j{i}"), 4, 100)).unwrap();
        }
        let s = c.schedule();
        // 4 x 4 cores fit in 2 x 8 cores simultaneously.
        assert_eq!(s.makespan_ms, 100);
        assert!(s.placements.iter().all(|p| p.start_ms == 0));
    }

    #[test]
    fn fcfs_queues_when_full() {
        let mut c = Cluster::homogeneous(1, 8);
        c.submit(JobSpec::new("first", 8, 100)).unwrap();
        c.submit(JobSpec::new("second", 8, 50)).unwrap();
        let s = c.schedule();
        let second = s.placements.iter().find(|p| p.job.name == "second").unwrap();
        assert_eq!(second.start_ms, 100);
        assert_eq!(s.makespan_ms, 150);
        assert_eq!(second.wait_ms(), 100);
    }

    #[test]
    fn backfill_fills_holes_without_delaying_head() {
        let mut c = Cluster::homogeneous(1, 8);
        // Running wide job leaves 2 cores free; a big head job must wait;
        // a small short job can backfill.
        c.submit(JobSpec::new("wide", 6, 100)).unwrap();
        c.submit(JobSpec::new("head", 8, 100)).unwrap();
        c.submit(JobSpec::new("small", 2, 50)).unwrap();
        let s = c.schedule();
        let get = |n: &str| s.placements.iter().find(|p| p.job.name == n).unwrap().clone();
        assert_eq!(get("wide").start_ms, 0);
        assert_eq!(get("small").start_ms, 0, "small job should backfill");
        assert_eq!(get("head").start_ms, 100, "head must not be delayed by backfill");
    }

    #[test]
    fn backfill_must_not_delay_head() {
        let mut c = Cluster::homogeneous(1, 8);
        c.submit(JobSpec::new("wide", 6, 100)).unwrap();
        c.submit(JobSpec::new("head", 8, 100)).unwrap();
        // Long small job would push the head back: must NOT backfill.
        c.submit(JobSpec::new("long-small", 2, 500)).unwrap();
        let s = c.schedule();
        let get = |n: &str| s.placements.iter().find(|p| p.job.name == n).unwrap().clone();
        assert_eq!(get("head").start_ms, 100);
        assert!(get("long-small").start_ms >= 100);
    }

    #[test]
    fn staging_cost_steers_placement_to_the_fast_link() {
        // Two identical nodes; node 0 sits behind a slow WAN link, node 1
        // on the local fabric. A data-heavy job must land on node 1 even
        // though first-fit would take node 0; a data-free job keeps the
        // first-fit choice.
        let mut c = Cluster::homogeneous(2, 8)
            .with_staging(vec![LinkCost::new(10.0, 50_000), LinkCost::new(1000.0, 1_000)]);
        c.submit(JobSpec::new("heavy", 2, 100).with_input_bytes(1_000_000_000)).unwrap();
        c.submit(JobSpec::new("light", 2, 100)).unwrap();
        let s = c.schedule();
        let get = |n: &str| s.placements.iter().find(|p| p.job.name == n).unwrap().clone();
        assert_eq!(get("heavy").node, 1, "1 GB over 10 MB/s is 100x the local fabric");
        assert_eq!(get("light").node, 0, "no data, no preference: first fit");
    }

    #[test]
    fn uniform_staging_matches_first_fit() {
        let run = |staged: bool| {
            let mut c = Cluster::homogeneous(3, 8);
            if staged {
                c = c.with_staging(vec![LinkCost::new(100.0, 1_000); 3]);
            }
            for i in 0..9 {
                c.submit(
                    JobSpec::new(&format!("j{i}"), 2 + (i % 3), 40 + i as u64 * 7)
                        .with_input_bytes(i as u64 * 1_000_000),
                )
                .unwrap();
            }
            c.schedule()
        };
        let (plain, staged) = (run(false), run(true));
        assert_eq!(plain.placements, staged.placements, "uniform links must not change FCFS");
    }

    #[test]
    fn gpu_jobs_land_on_gpu_nodes() {
        let mut c = Cluster::new(vec![NodeSpec::cpu(8), NodeSpec::gpu(8, 2)]);
        c.submit(JobSpec::new("train", 2, 100).with_gpus(1)).unwrap();
        c.submit(JobSpec::new("cpu", 8, 100)).unwrap();
        let s = c.schedule();
        let train = s.placements.iter().find(|p| p.job.name == "train").unwrap();
        assert_eq!(train.node, 1);
    }

    #[test]
    fn later_submissions_wait_for_their_submit_time() {
        let mut c = Cluster::homogeneous(1, 8);
        c.submit(JobSpec::new("late", 2, 10).at(500)).unwrap();
        let s = c.schedule();
        assert_eq!(s.placements[0].start_ms, 500);
        assert_eq!(s.makespan_ms, 510);
    }

    #[test]
    fn utilization_accounting() {
        let mut c = Cluster::homogeneous(1, 8);
        c.submit(JobSpec::new("half", 4, 100)).unwrap();
        let s = c.schedule();
        assert!((s.utilization - 0.5).abs() < 1e-9);
    }

    #[test]
    fn many_jobs_all_complete() {
        let mut c = Cluster::homogeneous(3, 8);
        for i in 0..50 {
            c.submit(JobSpec::new(&format!("j{i}"), 1 + (i % 8) as u32, 10 + i as u64)).unwrap();
        }
        let s = c.schedule();
        assert_eq!(s.placements.len(), 50);
        // Instantaneous usage at every start event stays within capacity
        // (cores can only be over-subscribed at some job's start instant).
        for p in &s.placements {
            let t = p.start_ms;
            let mut used = 0u32;
            for q in &s.placements {
                if q.node == p.node && q.start_ms <= t && t < q.end_ms {
                    used += q.job.cores;
                }
            }
            assert!(
                used <= c.nodes[p.node].cores,
                "node {} over-subscribed at t={t}: {used} cores",
                p.node
            );
        }
    }
}
