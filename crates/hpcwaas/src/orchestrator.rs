//! The orchestrator (Yorc role): derive a deployment plan from a TOSCA
//! topology and execute component lifecycles against the stack services.
//!
//! Plan derivation is a deterministic topological sort over the
//! requirement edges (a template starts after everything it is hosted on,
//! uses or depends on). Execution walks the plan running
//! `create → configure → start` per component — building container images
//! through the [`BuildService`] and running deploy-time data pipelines
//! through the [`DataLogistics`] service — and the reverse order with
//! `stop → delete` on undeployment. Pipeline stages are priced by the
//! workspace-wide [`dataflow::cost::LinkCost`] model, so deploy-time
//! staging estimates agree with what the dataflow schedulers and the
//! cluster's data-aware placement would charge for the same bytes.

use crate::containers::{BuildService, ImageSpec};
use crate::dls::{DataLogistics, PipelineSpec};
use crate::error::{Error, Result};
use crate::tosca::Topology;
use std::collections::{BTreeMap, HashMap};

/// The ordered plan: template names in start order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeploymentPlan {
    pub order: Vec<String>,
}

impl DeploymentPlan {
    /// Derives the plan from a validated topology (Kahn's algorithm,
    /// stable with respect to document order).
    pub fn derive(topology: &Topology) -> Result<DeploymentPlan> {
        topology.validate()?;
        let names: Vec<&str> = topology.templates.iter().map(|t| t.name.as_str()).collect();
        let index: HashMap<&str, usize> = names.iter().enumerate().map(|(i, n)| (*n, i)).collect();
        let n = names.len();
        let mut indegree = vec![0usize; n];
        let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, t) in topology.templates.iter().enumerate() {
            for r in &t.requirements {
                let dep = index[r.target()];
                indegree[i] += 1;
                dependents[dep].push(i);
            }
        }
        let mut ready: Vec<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(&next) = ready.iter().min() {
            ready.retain(|&i| i != next);
            order.push(names[next].to_string());
            for &d in &dependents[next] {
                indegree[d] -= 1;
                if indegree[d] == 0 {
                    ready.push(d);
                }
            }
        }
        if order.len() != n {
            let stuck: Vec<&str> = (0..n).filter(|&i| indegree[i] > 0).map(|i| names[i]).collect();
            return Err(Error::CyclicTopology(format!("unresolved: {stuck:?}")));
        }
        Ok(DeploymentPlan { order })
    }
}

/// One executed lifecycle step.
#[derive(Debug, Clone, PartialEq)]
pub struct StepRecord {
    pub template: String,
    pub operation: &'static str,
    /// Virtual cost of the step, ms.
    pub cost_ms: u64,
}

/// A deployed topology instance.
#[derive(Debug, Clone)]
pub struct DeploymentRecord {
    pub topology_name: String,
    pub plan: DeploymentPlan,
    pub steps: Vec<StepRecord>,
    /// Total virtual deployment cost, ms.
    pub total_ms: u64,
    /// Inputs captured at deployment.
    pub inputs: BTreeMap<String, String>,
}

/// The orchestrator with its attached services.
pub struct Orchestrator {
    pub images: BuildService,
    pub dls: DataLogistics,
}

/// Virtual cost of generic create/configure/start steps, ms.
const GENERIC_STEP_MS: u64 = 40;

impl Orchestrator {
    /// Creates an orchestrator with fresh services.
    pub fn new() -> Self {
        Orchestrator { images: BuildService::new(), dls: DataLogistics::new() }
    }

    /// Deploys a topology: derives the plan and runs every component's
    /// lifecycle in order.
    pub fn deploy(&mut self, topology: &Topology) -> Result<DeploymentRecord> {
        let plan = DeploymentPlan::derive(topology)?;
        let mut steps = Vec::new();
        let mut total_ms = 0u64;
        for name in &plan.order {
            let template = topology.template(name).expect("plan names come from topology");
            // `create` is where type-specific work happens.
            let create_cost = match template.type_name.as_str() {
                "container.Image" => {
                    let spec = ImageSpec::from_properties(name, &template.properties);
                    self.images.build(&spec).cost_ms
                }
                "data.Pipeline" => {
                    let bytes: u64 =
                        template.properties.get("bytes").and_then(|b| b.parse().ok()).unwrap_or(0);
                    let from = template.properties.get("source").cloned().unwrap_or_default();
                    let to = template.properties.get("destination").cloned().unwrap_or_default();
                    let p = PipelineSpec::new().stage(name, &from, &to, bytes);
                    self.dls.execute(&p).total_ms
                }
                _ => GENERIC_STEP_MS,
            };
            for (op, cost) in [
                ("create", create_cost),
                ("configure", GENERIC_STEP_MS),
                ("start", GENERIC_STEP_MS),
            ] {
                total_ms += cost;
                steps.push(StepRecord { template: name.clone(), operation: op, cost_ms: cost });
            }
        }
        Ok(DeploymentRecord {
            topology_name: topology.name.clone(),
            plan,
            steps,
            total_ms,
            inputs: topology.inputs.clone(),
        })
    }

    /// Undeploys: stop + delete in reverse start order.
    pub fn undeploy(&mut self, record: &DeploymentRecord) -> Vec<StepRecord> {
        let mut steps = Vec::new();
        for name in record.plan.order.iter().rev() {
            for op in ["stop", "delete"] {
                steps.push(StepRecord {
                    template: name.clone(),
                    operation: op,
                    cost_ms: GENERIC_STEP_MS / 2,
                });
            }
        }
        steps
    }
}

impl Default for Orchestrator {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tosca::{climate_case_study, Topology};

    #[test]
    fn plan_respects_dependencies() {
        let topo = climate_case_study();
        let plan = DeploymentPlan::derive(&topo).unwrap();
        let pos = |n: &str| plan.order.iter().position(|x| x == n).unwrap();
        assert!(pos("zeus") < pos("pycompss"));
        assert!(pos("pycompss") < pos("workflow"));
        assert!(pos("esm_image") < pos("workflow"));
        assert!(pos("baseline_data") < pos("workflow"));
        assert_eq!(plan.order.len(), 7);
        assert_eq!(plan.order.last().unwrap(), "workflow");
    }

    #[test]
    fn plan_is_deterministic() {
        let topo = climate_case_study();
        let a = DeploymentPlan::derive(&topo).unwrap();
        let b = DeploymentPlan::derive(&topo).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn cycle_is_detected() {
        let src = "topology: t\nnode_templates:\n  a:\n    type: x\n    requirements:\n      - depends_on: b\n  b:\n    type: x\n    requirements:\n      - depends_on: a\n";
        let topo = Topology::parse(src).unwrap();
        assert!(matches!(DeploymentPlan::derive(&topo), Err(Error::CyclicTopology(_))));
    }

    #[test]
    fn deploy_runs_full_lifecycles() {
        let mut orch = Orchestrator::new();
        let record = orch.deploy(&climate_case_study()).unwrap();
        // 7 templates x 3 operations.
        assert_eq!(record.steps.len(), 21);
        assert!(record.total_ms > 0);
        // First steps belong to the cluster, last to the workflow app.
        assert_eq!(record.steps[0].template, "zeus");
        assert_eq!(record.steps.last().unwrap().template, "workflow");
        assert_eq!(record.inputs["years"], "1");
        // Image builds went through the build service.
        assert_eq!(orch.images.builds(), 3);
        assert!(orch.images.cached_layers() > 0);
        // The data pipeline went through the DLS.
        assert_eq!(orch.dls.history().len(), 1);
    }

    #[test]
    fn second_deploy_is_cheaper_thanks_to_layer_cache() {
        let mut orch = Orchestrator::new();
        let topo = climate_case_study();
        let first = orch.deploy(&topo).unwrap();
        let second = orch.deploy(&topo).unwrap();
        assert!(
            second.total_ms < first.total_ms,
            "cached redeploy {} ms should beat cold {} ms",
            second.total_ms,
            first.total_ms
        );
    }

    #[test]
    fn undeploy_reverses_order() {
        let mut orch = Orchestrator::new();
        let record = orch.deploy(&climate_case_study()).unwrap();
        let steps = orch.undeploy(&record);
        assert_eq!(steps.len(), 14);
        assert_eq!(steps[0].template, "workflow");
        assert_eq!(steps[0].operation, "stop");
        assert_eq!(steps.last().unwrap().template, "zeus");
        assert_eq!(steps.last().unwrap().operation, "delete");
    }
}
