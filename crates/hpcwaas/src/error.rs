//! Error type for the HPCWaaS stack.

use std::fmt;

/// Errors across the TOSCA parser, orchestrator, services and API.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// TOSCA document syntax error with line number.
    Parse { line: usize, message: String },
    /// A requirement references an undeclared node template.
    UnknownTarget { template: String, target: String },
    /// The requirement graph contains a cycle.
    CyclicTopology(String),
    /// Unknown workflow / deployment / execution id in the API.
    NotFound(String),
    /// Operation invalid in the current lifecycle state.
    BadState { entity: String, state: String, operation: String },
    /// Cluster cannot ever satisfy a job's resource request.
    UnsatisfiableJob(String),
    /// Workflow body failed during execution.
    ExecutionFailed(String),
    /// Admission control refused the submission (quota, rate limit, or
    /// queue bound); the typed reason says which gate and why.
    Rejected(crate::serve::Rejection),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Parse { line, message } => write!(f, "parse error at line {line}: {message}"),
            Error::UnknownTarget { template, target } => {
                write!(f, "template '{template}' requires unknown target '{target}'")
            }
            Error::CyclicTopology(m) => write!(f, "cyclic topology: {m}"),
            Error::NotFound(what) => write!(f, "not found: {what}"),
            Error::BadState { entity, state, operation } => {
                write!(f, "cannot {operation} {entity} in state {state}")
            }
            Error::UnsatisfiableJob(m) => write!(f, "unsatisfiable job: {m}"),
            Error::ExecutionFailed(m) => write!(f, "execution failed: {m}"),
            Error::Rejected(r) => write!(f, "admission rejected: {r}"),
        }
    }
}

impl std::error::Error for Error {}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_specific() {
        let e = Error::Parse { line: 12, message: "bad indent".into() };
        assert!(e.to_string().contains("12"));
        let e = Error::UnknownTarget { template: "wf".into(), target: "ghost".into() };
        assert!(e.to_string().contains("ghost"));
        let e = Error::BadState {
            entity: "deployment d1".into(),
            state: "Undeployed".into(),
            operation: "run".into(),
        };
        assert!(e.to_string().contains("Undeployed"));
    }
}
