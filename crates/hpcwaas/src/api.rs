//! The HPCWaaS Execution API.
//!
//! "Once the workflow is deployed, it is published to the HPCWaaS
//! Execution API which allows final users to run the deployed workflow as
//! a simple REST invocation" (Section 4.1). This module is that API as a
//! typed, in-process service: workflow developers register a topology and
//! an entrypoint; end users deploy, submit executions, watch or wait on
//! them through an [`ExecutionHandle`], and undeploy — never touching the
//! infrastructure underneath.
//!
//! Submission is a *served* operation, not a thread spawn: every
//! [`ExecutionApi::submit`] (or [`ExecutionApi::submit_as`] for an
//! explicit tenant) passes the admission gates of [`crate::serve`] —
//! per-tenant in-flight quota, token-bucket rate, global queue bound —
//! and, if admitted, waits in a weighted fair-share queue for one of a
//! bounded pool of executor threads. Rejections come back as
//! [`Error::Rejected`] with the typed reason. Identical concurrent
//! requests (same deployment, same merged inputs) are coalesced: one
//! execution runs and every submitter's handle resolves from it.
//!
//! [`DeploymentId`] and [`ExecutionId`] are opaque and unforgeable: each
//! carries a per-API token derived from a process nonce and (for
//! executions) the submitting tenant, so a tenant cannot poll another
//! tenant's execution — or another API instance's — by guessing a ledger
//! index.

use crate::error::{Error, Result};
use crate::orchestrator::{DeploymentRecord, Orchestrator};
use crate::serve::{FairQueue, Rejection, ServeConfig, ServeStats, TenantId, TenantQuota};
use crate::tosca::Topology;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Lifecycle of one execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecutionStatus {
    /// Admitted and waiting for an executor slot.
    Queued,
    Running,
    Completed {
        result: String,
    },
    Failed {
        message: String,
    },
}

impl ExecutionStatus {
    /// True once the execution reached `Completed` or `Failed`.
    pub fn is_terminal(&self) -> bool {
        matches!(self, ExecutionStatus::Completed { .. } | ExecutionStatus::Failed { .. })
    }
}

/// Entry point a workflow developer registers: receives the merged inputs,
/// returns a result summary or an error message. Shared so executions can
/// run it off-thread.
pub type Entrypoint =
    Arc<dyn Fn(&BTreeMap<String, String>) -> std::result::Result<String, String> + Send + Sync>;

struct RegisteredWorkflow {
    topology: Topology,
    entry: Entrypoint,
}

struct Deployment {
    workflow: String,
    record: DeploymentRecord,
    token: u64,
    active: bool,
}

/// Shared state of one execution: the status cell the executor pool
/// resolves, plus the execution's own event log. Coalesced submissions
/// share one cell under distinct ledger ids.
struct ExecCell {
    /// Primary ledger sequence (the one that actually executes).
    seq: u64,
    tenant: TenantId,
    workflow: Arc<str>,
    status: Mutex<ExecutionStatus>,
    cv: Condvar,
    events: Mutex<Vec<obs::Event>>,
}

impl ExecCell {
    fn record(&self, kind: obs::EventKind) {
        let bus = obs::global();
        self.events.lock().unwrap().push(bus.stamp(kind.clone()));
        bus.emit(kind);
    }
}

/// Identity of a request for coalescing: same deployment + same merged
/// inputs ⇒ same underlying execution while one is in flight.
type CoalesceKey = (usize, String);

fn coalesce_key(dep_index: usize, inputs: &BTreeMap<String, String>) -> CoalesceKey {
    let mut enc = String::new();
    for (k, v) in inputs {
        enc.push_str(k);
        enc.push('\u{1}');
        enc.push_str(v);
        enc.push('\u{2}');
    }
    (dep_index, enc)
}

/// A job admitted into the fair-share queue, waiting for an executor.
struct QueuedJob {
    cell: Arc<ExecCell>,
    entry: Entrypoint,
    inputs: BTreeMap<String, String>,
    key: CoalesceKey,
    enqueued: Instant,
    /// Submitter's span context: the execution's span is causally linked
    /// to whatever submitted it, across the pool handoff.
    trace_ctx: Option<obs::SpanContext>,
}

struct SchedState {
    queue: FairQueue<QueuedJob>,
    /// In-flight (queued or running) executions by request identity.
    inflight_keys: HashMap<CoalesceKey, Arc<ExecCell>>,
    stats: ServeStats,
    running: usize,
    shutdown: bool,
}

struct Scheduler {
    cfg: ServeConfig,
    state: Mutex<SchedState>,
    work_cv: Condvar,
}

/// Fairness tests read dispatch interleaving from `ServeStats`; the log
/// is capped so long-lived services do not grow it without bound.
const DISPATCH_ORDER_CAP: usize = 65_536;

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Per-API-instance nonce: id tokens from one `ExecutionApi` never
/// validate against another.
fn fresh_nonce() -> u64 {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let t = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    splitmix64(t ^ COUNTER.fetch_add(0x9e37_79b9, Ordering::Relaxed).rotate_left(32))
}

/// Opaque deployment handle. Carries an unforgeable token checked on
/// every use; `Display` names it without exposing the token.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DeploymentId {
    index: usize,
    token: u64,
}

impl std::fmt::Display for DeploymentId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "dep-{}", self.index)
    }
}

/// Opaque, tenant-scoped execution identifier.
///
/// The token is derived from the API nonce, the ledger sequence and the
/// submitting tenant, so neither another tenant nor another API instance
/// can mint a valid id by guessing sequence numbers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ExecutionId {
    seq: u64,
    token: u64,
}

impl std::fmt::Display for ExecutionId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "exec-{}", self.seq)
    }
}

/// One row of the execution ledger. Coalesced submissions get their own
/// row (own id, own tenant) pointing at the shared cell.
struct LedgerEntry {
    token: u64,
    cell: Arc<ExecCell>,
}

/// Live handle onto a submitted execution.
///
/// Cloneable and detachable: dropping the handle does not cancel the
/// execution, and [`ExecutionApi::status`] keeps answering for its
/// [`ExecutionId`] after every handle is gone.
#[derive(Clone)]
pub struct ExecutionHandle {
    id: ExecutionId,
    cell: Arc<ExecCell>,
}

impl ExecutionHandle {
    /// The ledger id, usable with [`ExecutionApi::status`].
    pub fn id(&self) -> ExecutionId {
        self.id
    }

    /// Name of the workflow this execution runs.
    pub fn workflow(&self) -> &str {
        &self.cell.workflow
    }

    /// Tenant the underlying execution is charged to.
    pub fn tenant(&self) -> &str {
        self.cell.tenant.as_str()
    }

    /// Non-blocking status poll.
    pub fn status(&self) -> ExecutionStatus {
        self.cell.status.lock().unwrap().clone()
    }

    /// Blocks until the execution reaches a terminal status and returns it.
    pub fn wait(&self) -> ExecutionStatus {
        let mut st = self.cell.status.lock().unwrap();
        while !st.is_terminal() {
            st = self.cell.cv.wait(st).unwrap();
        }
        st.clone()
    }

    /// Blocks up to `timeout`; returns `None` if not terminal by then.
    pub fn wait_timeout(&self, timeout: Duration) -> Option<ExecutionStatus> {
        let deadline = Instant::now() + timeout;
        let mut st = self.cell.status.lock().unwrap();
        while !st.is_terminal() {
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (next, res) = self.cell.cv.wait_timeout(st, deadline - now).unwrap();
            st = next;
            if res.timed_out() && !st.is_terminal() {
                return None;
            }
        }
        Some(st.clone())
    }

    /// The execution's observability record so far: `ExecutionQueued` on
    /// admission, `ExecutionStarted` at dispatch, `ExecutionFinished`
    /// once terminal, plus an `ExecutionCoalesced` per joined submitter.
    pub fn events(&self) -> Vec<obs::Event> {
        self.cell.events.lock().unwrap().clone()
    }
}

impl std::fmt::Debug for ExecutionHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExecutionHandle")
            .field("id", &self.id)
            .field("workflow", &self.workflow())
            .field("tenant", &self.tenant())
            .field("status", &self.status())
            .finish()
    }
}

/// The Execution API service.
pub struct ExecutionApi {
    orchestrator: Mutex<Orchestrator>,
    registry: Mutex<BTreeMap<String, RegisteredWorkflow>>,
    deployments: Mutex<Vec<Deployment>>,
    ledger: Mutex<BTreeMap<u64, LedgerEntry>>,
    next_seq: AtomicU64,
    nonce: u64,
    sched: Arc<Scheduler>,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl ExecutionApi {
    /// Creates the service with default serving limits.
    pub fn new() -> Self {
        Self::with_config(ServeConfig::default())
    }

    /// Creates the service with explicit serving limits.
    pub fn with_config(cfg: ServeConfig) -> Self {
        let queue = FairQueue::new(cfg.default_quota, cfg.queue_capacity);
        ExecutionApi {
            orchestrator: Mutex::new(Orchestrator::new()),
            registry: Mutex::new(BTreeMap::new()),
            deployments: Mutex::new(Vec::new()),
            ledger: Mutex::new(BTreeMap::new()),
            next_seq: AtomicU64::new(0),
            nonce: fresh_nonce(),
            sched: Arc::new(Scheduler {
                cfg,
                state: Mutex::new(SchedState {
                    queue,
                    inflight_keys: HashMap::new(),
                    stats: ServeStats::default(),
                    running: 0,
                    shutdown: false,
                }),
                work_cv: Condvar::new(),
            }),
            workers: Mutex::new(Vec::new()),
        }
    }

    /// Sets (or replaces) one tenant's admission policy.
    pub fn set_quota(&self, tenant: &str, quota: TenantQuota) {
        let mut st = self.sched.state.lock().unwrap();
        st.queue.set_quota(TenantId::new(tenant), quota, Instant::now());
    }

    /// Snapshot of the serving-layer counters.
    pub fn serve_stats(&self) -> ServeStats {
        let st = self.sched.state.lock().unwrap();
        let mut stats = st.stats.clone();
        stats.queue_depth = st.queue.len();
        stats.running = st.running;
        stats
    }

    /// Developer interface: registers (or replaces) a workflow by name.
    pub fn register<F>(&self, topology: Topology, entry: F)
    where
        F: Fn(&BTreeMap<String, String>) -> std::result::Result<String, String>
            + Send
            + Sync
            + 'static,
    {
        self.registry
            .lock()
            .unwrap()
            .insert(topology.name.clone(), RegisteredWorkflow { topology, entry: Arc::new(entry) });
    }

    /// Registered workflow names.
    pub fn workflows(&self) -> Vec<String> {
        self.registry.lock().unwrap().keys().cloned().collect()
    }

    /// End-user interface: deploys a registered workflow onto the (simulated)
    /// infrastructure. Returns the deployment handle.
    pub fn deploy(&self, workflow: &str) -> Result<DeploymentId> {
        let registry = self.registry.lock().unwrap();
        let wf = registry
            .get(workflow)
            .ok_or_else(|| Error::NotFound(format!("workflow '{workflow}'")))?;
        let record = self.orchestrator.lock().unwrap().deploy(&wf.topology)?;
        let mut deployments = self.deployments.lock().unwrap();
        let index = deployments.len();
        let token = splitmix64(self.nonce ^ index as u64);
        deployments.push(Deployment {
            workflow: workflow.to_string(),
            record,
            token,
            active: true,
        });
        Ok(DeploymentId { index, token })
    }

    fn with_deployment<T>(&self, id: DeploymentId, f: impl FnOnce(&Deployment) -> T) -> Result<T> {
        let deployments = self.deployments.lock().unwrap();
        deployments
            .get(id.index)
            .filter(|d| d.token == id.token)
            .map(f)
            .ok_or_else(|| Error::NotFound(format!("deployment {id}")))
    }

    /// Deployment cost report (virtual ms).
    pub fn deployment_cost_ms(&self, id: DeploymentId) -> Result<u64> {
        self.with_deployment(id, |d| d.record.total_ms)
    }

    fn mint_execution_id(&self, tenant: &TenantId) -> ExecutionId {
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        let token = splitmix64(seq ^ self.nonce ^ fnv1a(tenant.as_str()));
        ExecutionId { seq, token }
    }

    fn spawn_workers_if_needed(&self) {
        let mut workers = self.workers.lock().unwrap();
        if !workers.is_empty() {
            return;
        }
        for i in 0..self.sched.cfg.workers.max(1) {
            let sched = Arc::clone(&self.sched);
            let handle = std::thread::Builder::new()
                .name(format!("hpcwaas-exec-{i}"))
                .spawn(move || worker_loop(&sched))
                .expect("spawn executor thread");
            workers.push(handle);
        }
    }

    /// End-user interface: submits an execution of a deployed workflow as
    /// the default tenant. See [`ExecutionApi::submit_as`].
    pub fn submit(
        &self,
        id: DeploymentId,
        overrides: &BTreeMap<String, String>,
    ) -> Result<ExecutionHandle> {
        self.submit_as(crate::serve::DEFAULT_TENANT, id, overrides)
    }

    /// Submits an execution on behalf of `tenant`, overriding topology
    /// inputs with `overrides` ("Input arguments can be specified to
    /// configure the workflow").
    ///
    /// The submission passes admission control (per-tenant in-flight
    /// quota, token-bucket rate, global queue bound) and on success waits
    /// in the weighted fair-share queue for the executor pool; the
    /// returned handle polls, waits, or replays the execution's events.
    /// A refusal is [`Error::Rejected`] with the typed [`Rejection`].
    /// If an identical request (same deployment, same merged inputs) is
    /// already in flight, the submission coalesces onto it: no new
    /// execution runs, and the handle resolves when the shared one does.
    pub fn submit_as(
        &self,
        tenant: &str,
        id: DeploymentId,
        overrides: &BTreeMap<String, String>,
    ) -> Result<ExecutionHandle> {
        let (workflow, mut inputs) = self.with_deployment(id, |d| {
            if d.active {
                Ok((d.workflow.clone(), d.record.inputs.clone()))
            } else {
                Err(Error::BadState {
                    entity: format!("deployment {id}"),
                    state: "undeployed".into(),
                    operation: "submit".into(),
                })
            }
        })??;
        for (k, v) in overrides {
            inputs.insert(k.clone(), v.clone());
        }
        let entry = {
            let registry = self.registry.lock().unwrap();
            let wf = registry
                .get(&workflow)
                .ok_or_else(|| Error::NotFound(format!("workflow '{workflow}'")))?;
            Arc::clone(&wf.entry)
        };

        self.spawn_workers_if_needed();

        let tenant = TenantId::new(tenant);
        let workflow: Arc<str> = workflow.into();
        let key = coalesce_key(id.index, &inputs);

        let mut st = self.sched.state.lock().unwrap();
        if let Some(cell) = st.inflight_keys.get(&key) {
            if !cell.status.lock().unwrap().is_terminal() {
                let cell = Arc::clone(cell);
                st.stats.coalesced += 1;
                drop(st);
                let exec_id = self.mint_execution_id(&tenant);
                self.ledger.lock().unwrap().insert(
                    exec_id.seq,
                    LedgerEntry { token: exec_id.token, cell: Arc::clone(&cell) },
                );
                cell.record(obs::EventKind::ExecutionCoalesced {
                    execution: cell.seq,
                    workflow: Arc::clone(&cell.workflow),
                    tenant: tenant.arc(),
                });
                obs::registry().counter("serve_coalesced_total", &[]).inc();
                return Ok(ExecutionHandle { id: exec_id, cell });
            }
        }

        let exec_id = self.mint_execution_id(&tenant);
        let cell = Arc::new(ExecCell {
            seq: exec_id.seq,
            tenant: tenant.clone(),
            workflow: Arc::clone(&workflow),
            status: Mutex::new(ExecutionStatus::Queued),
            cv: Condvar::new(),
            events: Mutex::new(Vec::new()),
        });
        let job = QueuedJob {
            cell: Arc::clone(&cell),
            entry,
            inputs,
            key: key.clone(),
            enqueued: Instant::now(),
            trace_ctx: obs::trace::current(),
        };
        match st.queue.try_enqueue(&tenant, job, Instant::now()) {
            Ok(()) => {
                st.inflight_keys.insert(key, Arc::clone(&cell));
                st.stats.admitted += 1;
                let depth = st.queue.len();
                drop(st);
                self.sched.work_cv.notify_one();
                self.ledger.lock().unwrap().insert(
                    exec_id.seq,
                    LedgerEntry { token: exec_id.token, cell: Arc::clone(&cell) },
                );
                cell.record(obs::EventKind::ExecutionQueued {
                    execution: exec_id.seq,
                    workflow,
                    tenant: tenant.arc(),
                });
                let reg = obs::registry();
                reg.counter("serve_admitted_total", &[("tenant", tenant.as_str())]).inc();
                reg.gauge("serve_queue_depth", &[]).set(depth as i64);
                Ok(ExecutionHandle { id: exec_id, cell })
            }
            Err(rejection) => {
                match &rejection {
                    Rejection::QuotaExceeded { .. } => st.stats.rejected_quota += 1,
                    Rejection::RateLimited { .. } => st.stats.rejected_rate += 1,
                    Rejection::QueueFull { .. } => st.stats.rejected_queue_full += 1,
                }
                drop(st);
                obs::global().emit(obs::EventKind::ExecutionRejected {
                    workflow,
                    tenant: tenant.arc(),
                    reason: rejection.label(),
                });
                obs::registry()
                    .counter("serve_rejected_total", &[("reason", rejection.label())])
                    .inc();
                Err(Error::Rejected(rejection))
            }
        }
    }

    /// Polls an execution's status by ledger id (handle-free view; the
    /// REST-ish surface a remote client would get). The id's embedded
    /// token is verified, so only the holder of the original id — not a
    /// tenant guessing sequence numbers — can observe the execution.
    pub fn status(&self, id: ExecutionId) -> Result<ExecutionStatus> {
        self.ledger
            .lock()
            .unwrap()
            .get(&id.seq)
            .filter(|e| e.token == id.token)
            .map(|e| e.cell.status.lock().unwrap().clone())
            .ok_or_else(|| Error::NotFound(format!("execution {id}")))
    }

    /// Re-attaches a handle to an execution in the ledger (same token
    /// check as [`ExecutionApi::status`]).
    pub fn handle(&self, id: ExecutionId) -> Result<ExecutionHandle> {
        self.ledger
            .lock()
            .unwrap()
            .get(&id.seq)
            .filter(|e| e.token == id.token)
            .map(|e| ExecutionHandle { id, cell: Arc::clone(&e.cell) })
            .ok_or_else(|| Error::NotFound(format!("execution {id}")))
    }

    /// End-user interface: undeploys.
    pub fn undeploy(&self, id: DeploymentId) -> Result<()> {
        let mut deployments = self.deployments.lock().unwrap();
        let d = deployments
            .get_mut(id.index)
            .filter(|d| d.token == id.token)
            .ok_or_else(|| Error::NotFound(format!("deployment {id}")))?;
        if !d.active {
            return Err(Error::BadState {
                entity: format!("deployment {id}"),
                state: "undeployed".into(),
                operation: "undeploy".into(),
            });
        }
        let record = d.record.clone();
        d.active = false;
        drop(deployments);
        self.orchestrator.lock().unwrap().undeploy(&record);
        Ok(())
    }
}

/// Executor-pool worker: dispatch from the fair queue, run the
/// entrypoint, resolve the cell, release the tenant's in-flight slot.
fn worker_loop(sched: &Scheduler) {
    loop {
        let (tenant, job) = {
            let mut st = sched.state.lock().unwrap();
            loop {
                if st.shutdown {
                    // Graceful drain: fail whatever never got a worker so
                    // waiters wake instead of hanging.
                    while let Some((t, job)) = st.queue.pop() {
                        st.queue.complete(&t);
                        st.inflight_keys.remove(&job.key);
                        *job.cell.status.lock().unwrap() = ExecutionStatus::Failed {
                            message: "service shut down before execution".into(),
                        };
                        job.cell.cv.notify_all();
                    }
                    return;
                }
                if let Some((t, job)) = st.queue.pop() {
                    st.running += 1;
                    *st.stats.dispatched.entry(t.to_string()).or_insert(0) += 1;
                    if st.stats.dispatch_order.len() < DISPATCH_ORDER_CAP {
                        st.stats.dispatch_order.push(t.to_string());
                    }
                    break (t, job);
                }
                st = sched.work_cv.wait(st).unwrap();
            }
        };

        let cell = Arc::clone(&job.cell);
        obs::registry()
            .histogram("serve_queue_wait_us", &[])
            .observe(job.enqueued.elapsed().as_micros() as u64);
        *cell.status.lock().unwrap() = ExecutionStatus::Running;
        cell.record(obs::EventKind::ExecutionStarted {
            execution: cell.seq,
            workflow: Arc::clone(&cell.workflow),
        });

        let (status, ok, micros) = {
            let _ctx = job.trace_ctx.map(obs::SpanContext::attach);
            let _span = obs::global_active().then(|| obs::trace::span(Arc::clone(&cell.workflow)));
            let t0 = Instant::now();
            let outcome = (job.entry)(&job.inputs);
            let micros = t0.elapsed().as_micros() as u64;
            match outcome {
                Ok(result) => (ExecutionStatus::Completed { result }, true, micros),
                Err(message) => (ExecutionStatus::Failed { message }, false, micros),
            }
        };
        obs::registry()
            .counter(
                "hpcwaas_executions_total",
                &[("outcome", if ok { "completed" } else { "failed" })],
            )
            .inc();
        // Event before the status flip: anyone who observes a terminal
        // status (even via a spurious wakeup) sees the Finished record.
        cell.record(obs::EventKind::ExecutionFinished {
            execution: cell.seq,
            workflow: Arc::clone(&cell.workflow),
            ok,
            micros,
        });
        *cell.status.lock().unwrap() = status;
        cell.cv.notify_all();

        let mut st = sched.state.lock().unwrap();
        st.running -= 1;
        st.queue.complete(&tenant);
        if st.inflight_keys.get(&job.key).is_some_and(|c| Arc::ptr_eq(c, &cell)) {
            st.inflight_keys.remove(&job.key);
        }
    }
}

impl Drop for ExecutionApi {
    /// Graceful shutdown: running executions finish, queued ones fail
    /// with a shutdown message, and the pool joins.
    fn drop(&mut self) {
        {
            let mut st = self.sched.state.lock().unwrap();
            st.shutdown = true;
        }
        self.sched.work_cv.notify_all();
        for handle in self.workers.lock().unwrap().drain(..) {
            let _ = handle.join();
        }
    }
}

impl Default for ExecutionApi {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tosca::climate_case_study;

    fn api_with_echo() -> ExecutionApi {
        let api = ExecutionApi::new();
        api.register(climate_case_study(), |inputs| {
            if inputs.get("fail").map(|v| v == "yes").unwrap_or(false) {
                Err("requested failure".into())
            } else {
                Ok(format!("ran {} years on {} grid", inputs["years"], inputs["grid"]))
            }
        });
        api
    }

    #[test]
    fn full_lifecycle() {
        let api = api_with_echo();
        assert_eq!(api.workflows(), vec!["climate-extremes"]);
        let dep = api.deploy("climate-extremes").unwrap();
        assert!(api.deployment_cost_ms(dep).unwrap() > 0);
        let handle = api.submit(dep, &BTreeMap::new()).unwrap();
        match handle.wait() {
            ExecutionStatus::Completed { result } => {
                assert_eq!(result, "ran 1 years on test_small grid");
            }
            other => panic!("unexpected status {other:?}"),
        }
        // The ledger view agrees with the handle view.
        assert_eq!(api.status(handle.id()).unwrap(), handle.status());
        assert_eq!(handle.tenant(), crate::serve::DEFAULT_TENANT);
        api.undeploy(dep).unwrap();
    }

    #[test]
    fn input_overrides_reach_the_entrypoint() {
        let api = api_with_echo();
        let dep = api.deploy("climate-extremes").unwrap();
        let mut over = BTreeMap::new();
        over.insert("years".to_string(), "5".to_string());
        let handle = api.submit(dep, &over).unwrap();
        match handle.wait() {
            ExecutionStatus::Completed { result } => assert!(result.starts_with("ran 5 years")),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn failed_entrypoint_reports_failed_status() {
        let api = api_with_echo();
        let dep = api.deploy("climate-extremes").unwrap();
        let mut over = BTreeMap::new();
        over.insert("fail".to_string(), "yes".to_string());
        let handle = api.submit(dep, &over).unwrap();
        assert!(matches!(handle.wait(), ExecutionStatus::Failed { .. }));
        assert!(matches!(api.status(handle.id()).unwrap(), ExecutionStatus::Failed { .. }));
    }

    #[test]
    fn foreign_ids_rejected() {
        let api = api_with_echo();
        assert!(matches!(api.deploy("ghost"), Err(Error::NotFound(_))));
        // Ids minted by a *different* API instance carry the wrong token:
        // same ledger positions, still NotFound here.
        let other = api_with_echo();
        let other_dep = other.deploy("climate-extremes").unwrap();
        let other_exec = other.submit(other_dep, &BTreeMap::new()).unwrap();
        other_exec.wait();
        let own_dep = api.deploy("climate-extremes").unwrap();
        let own_exec = api.submit(own_dep, &BTreeMap::new()).unwrap();
        own_exec.wait();
        assert!(matches!(api.status(other_exec.id()), Err(Error::NotFound(_))));
        assert!(matches!(api.handle(other_exec.id()), Err(Error::NotFound(_))));
        assert!(matches!(api.undeploy(other_dep), Err(Error::NotFound(_))));
        assert!(matches!(api.deployment_cost_ms(other_dep), Err(Error::NotFound(_))));
        // The rightful owners still resolve.
        assert!(api.status(own_exec.id()).unwrap().is_terminal());
        api.undeploy(own_dep).unwrap();
    }

    #[test]
    fn ids_are_tenant_scoped() {
        let api = api_with_echo();
        let dep = api.deploy("climate-extremes").unwrap();
        let mut a_inputs = BTreeMap::new();
        a_inputs.insert("years".to_string(), "2".to_string());
        let a = api.submit_as("alice", dep, &a_inputs).unwrap();
        let mut b_inputs = BTreeMap::new();
        b_inputs.insert("years".to_string(), "3".to_string());
        let b = api.submit_as("bob", dep, &b_inputs).unwrap();
        a.wait();
        b.wait();
        assert_eq!(a.tenant(), "alice");
        assert_eq!(b.tenant(), "bob");
        assert_ne!(a.id(), b.id());
        // Each token only opens its own execution; a token recombined
        // with the other's sequence is rejected.
        let forged = ExecutionId { seq: b.id().seq, token: a.id().token };
        assert!(matches!(api.status(forged), Err(Error::NotFound(_))));
        assert!(api.status(a.id()).unwrap().is_terminal());
    }

    #[test]
    fn display_names_ids_without_tokens() {
        let api = api_with_echo();
        let dep = api.deploy("climate-extremes").unwrap();
        assert_eq!(dep.to_string(), "dep-0");
        let handle = api.submit(dep, &BTreeMap::new()).unwrap();
        assert!(handle.id().to_string().starts_with("exec-"));
        handle.wait();
    }

    #[test]
    fn run_after_undeploy_rejected() {
        let api = api_with_echo();
        let dep = api.deploy("climate-extremes").unwrap();
        api.undeploy(dep).unwrap();
        assert!(matches!(api.submit(dep, &BTreeMap::new()), Err(Error::BadState { .. })));
        assert!(matches!(api.undeploy(dep), Err(Error::BadState { .. })));
    }

    #[test]
    fn multiple_deployments_coexist() {
        let api = api_with_echo();
        let a = api.deploy("climate-extremes").unwrap();
        let b = api.deploy("climate-extremes").unwrap();
        assert_ne!(a, b);
        // Second deployment benefits from the shared image layer cache.
        assert!(api.deployment_cost_ms(b).unwrap() < api.deployment_cost_ms(a).unwrap());
        api.undeploy(a).unwrap();
        // b still runnable.
        assert!(api.submit(b, &BTreeMap::new()).unwrap().wait().is_terminal());
    }

    #[test]
    fn handle_records_execution_events() {
        let api = api_with_echo();
        let dep = api.deploy("climate-extremes").unwrap();
        let handle = api.submit(dep, &BTreeMap::new()).unwrap();
        handle.wait();
        let events = handle.events();
        assert_eq!(events.len(), 3, "queued, started, finished");
        assert!(matches!(
            &events[0].kind,
            obs::EventKind::ExecutionQueued { workflow, tenant, .. }
                if &**workflow == "climate-extremes" && &**tenant == "default"
        ));
        assert!(matches!(
            &events[1].kind,
            obs::EventKind::ExecutionStarted { workflow, .. }
                if &**workflow == "climate-extremes"
        ));
        assert!(matches!(&events[2].kind, obs::EventKind::ExecutionFinished { ok: true, .. }));
        // Re-attached handles see the same record.
        let again = api.handle(handle.id()).unwrap();
        assert_eq!(again.events().len(), 3);
        assert_eq!(again.workflow(), "climate-extremes");
    }

    #[test]
    fn wait_timeout_expires_while_running() {
        let api = ExecutionApi::new();
        api.register(climate_case_study(), |_| {
            std::thread::sleep(Duration::from_millis(200));
            Ok("slow".into())
        });
        let dep = api.deploy("climate-extremes").unwrap();
        let handle = api.submit(dep, &BTreeMap::new()).unwrap();
        assert!(handle.wait_timeout(Duration::from_millis(1)).is_none());
        assert_eq!(handle.wait(), ExecutionStatus::Completed { result: "slow".into() });
        assert!(handle.wait_timeout(Duration::from_millis(1)).is_some());
    }

    #[test]
    fn serve_stats_count_admissions() {
        let api = api_with_echo();
        let dep = api.deploy("climate-extremes").unwrap();
        let mut handles = Vec::new();
        for i in 0..4 {
            let mut over = BTreeMap::new();
            over.insert("years".to_string(), i.to_string());
            handles.push(api.submit(dep, &over).unwrap());
        }
        for h in &handles {
            assert!(h.wait().is_terminal());
        }
        let stats = api.serve_stats();
        assert_eq!(stats.admitted, 4);
        assert_eq!(stats.rejected(), 0);
        assert_eq!(stats.dispatched.get("default"), Some(&4));
        assert_eq!(stats.queue_depth, 0);
    }
}
