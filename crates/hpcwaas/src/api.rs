//! The HPCWaaS Execution API.
//!
//! "Once the workflow is deployed, it is published to the HPCWaaS
//! Execution API which allows final users to run the deployed workflow as
//! a simple REST invocation" (Section 4.1). This module is that API as a
//! typed, in-process service: workflow developers register a topology and
//! an entrypoint; end users deploy, run (with input overrides), poll
//! status, and undeploy — never touching the infrastructure underneath.

use crate::error::{Error, Result};
use crate::orchestrator::{DeploymentRecord, Orchestrator};
use crate::tosca::Topology;
use std::collections::BTreeMap;
use std::sync::Mutex;

/// Lifecycle of one execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecutionStatus {
    Running,
    Completed { result: String },
    Failed { message: String },
}

/// Entry point a workflow developer registers: receives the merged inputs,
/// returns a result summary or an error message.
pub type Entrypoint = Box<dyn Fn(&BTreeMap<String, String>) -> std::result::Result<String, String> + Send + Sync>;

struct RegisteredWorkflow {
    topology: Topology,
    entry: Entrypoint,
}

struct Deployment {
    workflow: String,
    record: DeploymentRecord,
    active: bool,
}

/// The Execution API service.
pub struct ExecutionApi {
    orchestrator: Mutex<Orchestrator>,
    registry: Mutex<BTreeMap<String, RegisteredWorkflow>>,
    deployments: Mutex<Vec<Deployment>>,
    executions: Mutex<Vec<ExecutionStatus>>,
}

/// Opaque deployment handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeploymentId(pub usize);

/// Opaque execution handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecutionId(pub usize);

impl ExecutionApi {
    /// Creates the service.
    pub fn new() -> Self {
        ExecutionApi {
            orchestrator: Mutex::new(Orchestrator::new()),
            registry: Mutex::new(BTreeMap::new()),
            deployments: Mutex::new(Vec::new()),
            executions: Mutex::new(Vec::new()),
        }
    }

    /// Developer interface: registers (or replaces) a workflow by name.
    pub fn register<F>(&self, topology: Topology, entry: F)
    where
        F: Fn(&BTreeMap<String, String>) -> std::result::Result<String, String> + Send + Sync + 'static,
    {
        self.registry.lock().unwrap().insert(
            topology.name.clone(),
            RegisteredWorkflow { topology, entry: Box::new(entry) },
        );
    }

    /// Registered workflow names.
    pub fn workflows(&self) -> Vec<String> {
        self.registry.lock().unwrap().keys().cloned().collect()
    }

    /// End-user interface: deploys a registered workflow onto the (simulated)
    /// infrastructure. Returns the deployment handle.
    pub fn deploy(&self, workflow: &str) -> Result<DeploymentId> {
        let registry = self.registry.lock().unwrap();
        let wf = registry
            .get(workflow)
            .ok_or_else(|| Error::NotFound(format!("workflow '{workflow}'")))?;
        let record = self.orchestrator.lock().unwrap().deploy(&wf.topology)?;
        let mut deployments = self.deployments.lock().unwrap();
        deployments.push(Deployment { workflow: workflow.to_string(), record, active: true });
        Ok(DeploymentId(deployments.len() - 1))
    }

    /// Deployment cost report (virtual ms).
    pub fn deployment_cost_ms(&self, id: DeploymentId) -> Result<u64> {
        let deployments = self.deployments.lock().unwrap();
        deployments
            .get(id.0)
            .map(|d| d.record.total_ms)
            .ok_or_else(|| Error::NotFound(format!("deployment {}", id.0)))
    }

    /// End-user interface: runs a deployed workflow, overriding topology
    /// inputs with `overrides` ("Input arguments can be specified to
    /// configure the workflow"). Synchronous: returns when the entrypoint
    /// finishes, with the execution handle recording the outcome.
    pub fn run(
        &self,
        id: DeploymentId,
        overrides: &BTreeMap<String, String>,
    ) -> Result<ExecutionId> {
        let (workflow, mut inputs) = {
            let deployments = self.deployments.lock().unwrap();
            let d = deployments
                .get(id.0)
                .ok_or_else(|| Error::NotFound(format!("deployment {}", id.0)))?;
            if !d.active {
                return Err(Error::BadState {
                    entity: format!("deployment {}", id.0),
                    state: "undeployed".into(),
                    operation: "run".into(),
                });
            }
            (d.workflow.clone(), d.record.inputs.clone())
        };
        for (k, v) in overrides {
            inputs.insert(k.clone(), v.clone());
        }
        let outcome = {
            let registry = self.registry.lock().unwrap();
            let wf = registry
                .get(&workflow)
                .ok_or_else(|| Error::NotFound(format!("workflow '{workflow}'")))?;
            (wf.entry)(&inputs)
        };
        let status = match outcome {
            Ok(result) => ExecutionStatus::Completed { result },
            Err(message) => ExecutionStatus::Failed { message },
        };
        let mut executions = self.executions.lock().unwrap();
        executions.push(status);
        Ok(ExecutionId(executions.len() - 1))
    }

    /// Polls an execution's status.
    pub fn status(&self, id: ExecutionId) -> Result<ExecutionStatus> {
        self.executions
            .lock()
            .unwrap()
            .get(id.0)
            .cloned()
            .ok_or_else(|| Error::NotFound(format!("execution {}", id.0)))
    }

    /// End-user interface: undeploys.
    pub fn undeploy(&self, id: DeploymentId) -> Result<()> {
        let mut deployments = self.deployments.lock().unwrap();
        let d = deployments
            .get_mut(id.0)
            .ok_or_else(|| Error::NotFound(format!("deployment {}", id.0)))?;
        if !d.active {
            return Err(Error::BadState {
                entity: format!("deployment {}", id.0),
                state: "undeployed".into(),
                operation: "undeploy".into(),
            });
        }
        let record = d.record.clone();
        d.active = false;
        drop(deployments);
        self.orchestrator.lock().unwrap().undeploy(&record);
        Ok(())
    }
}

impl Default for ExecutionApi {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tosca::climate_case_study;

    fn api_with_echo() -> ExecutionApi {
        let api = ExecutionApi::new();
        api.register(climate_case_study(), |inputs| {
            if inputs.get("fail").map(|v| v == "yes").unwrap_or(false) {
                Err("requested failure".into())
            } else {
                Ok(format!("ran {} years on {} grid", inputs["years"], inputs["grid"]))
            }
        });
        api
    }

    #[test]
    fn full_lifecycle() {
        let api = api_with_echo();
        assert_eq!(api.workflows(), vec!["climate-extremes"]);
        let dep = api.deploy("climate-extremes").unwrap();
        assert!(api.deployment_cost_ms(dep).unwrap() > 0);
        let exec = api.run(dep, &BTreeMap::new()).unwrap();
        match api.status(exec).unwrap() {
            ExecutionStatus::Completed { result } => {
                assert_eq!(result, "ran 1 years on test_small grid");
            }
            other => panic!("unexpected status {other:?}"),
        }
        api.undeploy(dep).unwrap();
    }

    #[test]
    fn input_overrides_reach_the_entrypoint() {
        let api = api_with_echo();
        let dep = api.deploy("climate-extremes").unwrap();
        let mut over = BTreeMap::new();
        over.insert("years".to_string(), "5".to_string());
        let exec = api.run(dep, &over).unwrap();
        match api.status(exec).unwrap() {
            ExecutionStatus::Completed { result } => assert!(result.starts_with("ran 5 years")),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn failed_entrypoint_reports_failed_status() {
        let api = api_with_echo();
        let dep = api.deploy("climate-extremes").unwrap();
        let mut over = BTreeMap::new();
        over.insert("fail".to_string(), "yes".to_string());
        let exec = api.run(dep, &over).unwrap();
        assert!(matches!(api.status(exec).unwrap(), ExecutionStatus::Failed { .. }));
    }

    #[test]
    fn unknown_ids_rejected() {
        let api = api_with_echo();
        assert!(matches!(api.deploy("ghost"), Err(Error::NotFound(_))));
        assert!(matches!(api.status(ExecutionId(9)), Err(Error::NotFound(_))));
        assert!(matches!(api.undeploy(DeploymentId(9)), Err(Error::NotFound(_))));
    }

    #[test]
    fn run_after_undeploy_rejected() {
        let api = api_with_echo();
        let dep = api.deploy("climate-extremes").unwrap();
        api.undeploy(dep).unwrap();
        assert!(matches!(api.run(dep, &BTreeMap::new()), Err(Error::BadState { .. })));
        assert!(matches!(api.undeploy(dep), Err(Error::BadState { .. })));
    }

    #[test]
    fn multiple_deployments_coexist() {
        let api = api_with_echo();
        let a = api.deploy("climate-extremes").unwrap();
        let b = api.deploy("climate-extremes").unwrap();
        assert_ne!(a, b);
        // Second deployment benefits from the shared image layer cache.
        assert!(api.deployment_cost_ms(b).unwrap() < api.deployment_cost_ms(a).unwrap());
        api.undeploy(a).unwrap();
        // b still runnable.
        assert!(api.run(b, &BTreeMap::new()).is_ok());
    }
}
