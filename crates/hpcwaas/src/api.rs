//! The HPCWaaS Execution API.
//!
//! "Once the workflow is deployed, it is published to the HPCWaaS
//! Execution API which allows final users to run the deployed workflow as
//! a simple REST invocation" (Section 4.1). This module is that API as a
//! typed, in-process service: workflow developers register a topology and
//! an entrypoint; end users deploy, submit executions, watch or wait on
//! them through an [`ExecutionHandle`], and undeploy — never touching the
//! infrastructure underneath.
//!
//! Executions run on their own thread: [`ExecutionApi::submit`] returns
//! immediately with a handle offering [`ExecutionHandle::status`] (poll),
//! [`ExecutionHandle::wait`] (block), and [`ExecutionHandle::events`]
//! (the execution's observability record). The old synchronous
//! [`ExecutionApi::run`] remains as a deprecated wrapper that submits and
//! waits.

use crate::error::{Error, Result};
use crate::orchestrator::{DeploymentRecord, Orchestrator};
use crate::tosca::Topology;
use std::collections::BTreeMap;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Lifecycle of one execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecutionStatus {
    Running,
    Completed { result: String },
    Failed { message: String },
}

impl ExecutionStatus {
    /// True once the execution reached `Completed` or `Failed`.
    pub fn is_terminal(&self) -> bool {
        !matches!(self, ExecutionStatus::Running)
    }
}

/// Entry point a workflow developer registers: receives the merged inputs,
/// returns a result summary or an error message. Shared so executions can
/// run it off-thread.
pub type Entrypoint =
    Arc<dyn Fn(&BTreeMap<String, String>) -> std::result::Result<String, String> + Send + Sync>;

struct RegisteredWorkflow {
    topology: Topology,
    entry: Entrypoint,
}

struct Deployment {
    workflow: String,
    record: DeploymentRecord,
    active: bool,
}

/// Shared state of one execution: the status cell the worker thread
/// resolves, plus the execution's own event log.
struct ExecCell {
    workflow: Arc<str>,
    status: Mutex<ExecutionStatus>,
    cv: Condvar,
    events: Mutex<Vec<obs::Event>>,
}

impl ExecCell {
    fn record(&self, kind: obs::EventKind) {
        let bus = obs::global();
        self.events.lock().unwrap().push(bus.stamp(kind.clone()));
        bus.emit(kind);
    }
}

/// The Execution API service.
pub struct ExecutionApi {
    orchestrator: Mutex<Orchestrator>,
    registry: Mutex<BTreeMap<String, RegisteredWorkflow>>,
    deployments: Mutex<Vec<Deployment>>,
    executions: Mutex<Vec<Arc<ExecCell>>>,
}

/// Opaque deployment handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeploymentId(pub usize);

/// Opaque execution identifier (index into the API's execution ledger).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecutionId(pub usize);

/// Live handle onto a submitted execution.
///
/// Cloneable and detachable: dropping the handle does not cancel the
/// execution, and [`ExecutionApi::status`] keeps answering for its
/// [`ExecutionId`] after every handle is gone.
#[derive(Clone)]
pub struct ExecutionHandle {
    id: ExecutionId,
    cell: Arc<ExecCell>,
}

impl ExecutionHandle {
    /// The ledger id, usable with [`ExecutionApi::status`].
    pub fn id(&self) -> ExecutionId {
        self.id
    }

    /// Name of the workflow this execution runs.
    pub fn workflow(&self) -> &str {
        &self.cell.workflow
    }

    /// Non-blocking status poll.
    pub fn status(&self) -> ExecutionStatus {
        self.cell.status.lock().unwrap().clone()
    }

    /// Blocks until the execution reaches a terminal status and returns it.
    pub fn wait(&self) -> ExecutionStatus {
        let mut st = self.cell.status.lock().unwrap();
        while !st.is_terminal() {
            st = self.cell.cv.wait(st).unwrap();
        }
        st.clone()
    }

    /// Blocks up to `timeout`; returns `None` if still running after that.
    pub fn wait_timeout(&self, timeout: Duration) -> Option<ExecutionStatus> {
        let deadline = Instant::now() + timeout;
        let mut st = self.cell.status.lock().unwrap();
        while !st.is_terminal() {
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (next, res) = self.cell.cv.wait_timeout(st, deadline - now).unwrap();
            st = next;
            if res.timed_out() && !st.is_terminal() {
                return None;
            }
        }
        Some(st.clone())
    }

    /// The execution's observability record so far: `ExecutionStarted`
    /// when submitted, `ExecutionFinished` once terminal.
    pub fn events(&self) -> Vec<obs::Event> {
        self.cell.events.lock().unwrap().clone()
    }
}

impl std::fmt::Debug for ExecutionHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExecutionHandle")
            .field("id", &self.id)
            .field("workflow", &self.workflow())
            .field("status", &self.status())
            .finish()
    }
}

impl ExecutionApi {
    /// Creates the service.
    pub fn new() -> Self {
        ExecutionApi {
            orchestrator: Mutex::new(Orchestrator::new()),
            registry: Mutex::new(BTreeMap::new()),
            deployments: Mutex::new(Vec::new()),
            executions: Mutex::new(Vec::new()),
        }
    }

    /// Developer interface: registers (or replaces) a workflow by name.
    pub fn register<F>(&self, topology: Topology, entry: F)
    where
        F: Fn(&BTreeMap<String, String>) -> std::result::Result<String, String>
            + Send
            + Sync
            + 'static,
    {
        self.registry
            .lock()
            .unwrap()
            .insert(topology.name.clone(), RegisteredWorkflow { topology, entry: Arc::new(entry) });
    }

    /// Registered workflow names.
    pub fn workflows(&self) -> Vec<String> {
        self.registry.lock().unwrap().keys().cloned().collect()
    }

    /// End-user interface: deploys a registered workflow onto the (simulated)
    /// infrastructure. Returns the deployment handle.
    pub fn deploy(&self, workflow: &str) -> Result<DeploymentId> {
        let registry = self.registry.lock().unwrap();
        let wf = registry
            .get(workflow)
            .ok_or_else(|| Error::NotFound(format!("workflow '{workflow}'")))?;
        let record = self.orchestrator.lock().unwrap().deploy(&wf.topology)?;
        let mut deployments = self.deployments.lock().unwrap();
        deployments.push(Deployment { workflow: workflow.to_string(), record, active: true });
        Ok(DeploymentId(deployments.len() - 1))
    }

    /// Deployment cost report (virtual ms).
    pub fn deployment_cost_ms(&self, id: DeploymentId) -> Result<u64> {
        let deployments = self.deployments.lock().unwrap();
        deployments
            .get(id.0)
            .map(|d| d.record.total_ms)
            .ok_or_else(|| Error::NotFound(format!("deployment {}", id.0)))
    }

    /// End-user interface: submits an execution of a deployed workflow,
    /// overriding topology inputs with `overrides` ("Input arguments can
    /// be specified to configure the workflow"). The entrypoint runs on
    /// its own thread; the returned handle polls, waits, or replays the
    /// execution's events.
    pub fn submit(
        &self,
        id: DeploymentId,
        overrides: &BTreeMap<String, String>,
    ) -> Result<ExecutionHandle> {
        let (workflow, mut inputs) = {
            let deployments = self.deployments.lock().unwrap();
            let d = deployments
                .get(id.0)
                .ok_or_else(|| Error::NotFound(format!("deployment {}", id.0)))?;
            if !d.active {
                return Err(Error::BadState {
                    entity: format!("deployment {}", id.0),
                    state: "undeployed".into(),
                    operation: "run".into(),
                });
            }
            (d.workflow.clone(), d.record.inputs.clone())
        };
        for (k, v) in overrides {
            inputs.insert(k.clone(), v.clone());
        }
        let entry = {
            let registry = self.registry.lock().unwrap();
            let wf = registry
                .get(&workflow)
                .ok_or_else(|| Error::NotFound(format!("workflow '{workflow}'")))?;
            Arc::clone(&wf.entry)
        };

        let workflow: Arc<str> = workflow.into();
        let cell = Arc::new(ExecCell {
            workflow: Arc::clone(&workflow),
            status: Mutex::new(ExecutionStatus::Running),
            cv: Condvar::new(),
            events: Mutex::new(Vec::new()),
        });
        let exec_id = {
            let mut executions = self.executions.lock().unwrap();
            executions.push(Arc::clone(&cell));
            ExecutionId(executions.len() - 1)
        };
        cell.record(obs::EventKind::ExecutionStarted {
            execution: exec_id.0 as u64,
            workflow: Arc::clone(&workflow),
        });

        let worker_cell = Arc::clone(&cell);
        // Capture the submitter's span context so the execution thread's
        // span is causally linked to whatever submitted the job.
        let trace_ctx = obs::trace::current();
        let span_workflow = Arc::clone(&workflow);
        std::thread::spawn(move || {
            let _ctx = trace_ctx.map(obs::SpanContext::attach);
            let _span =
                if obs::global_active() { Some(obs::trace::span(span_workflow)) } else { None };
            let t0 = Instant::now();
            let outcome = entry(&inputs);
            let micros = t0.elapsed().as_micros() as u64;
            let (status, ok) = match outcome {
                Ok(result) => (ExecutionStatus::Completed { result }, true),
                Err(message) => (ExecutionStatus::Failed { message }, false),
            };
            let outcome_label = if ok { "completed" } else { "failed" };
            obs::registry()
                .counter("hpcwaas_executions_total", &[("outcome", outcome_label)])
                .inc();
            *worker_cell.status.lock().unwrap() = status;
            worker_cell.record(obs::EventKind::ExecutionFinished {
                execution: exec_id.0 as u64,
                workflow,
                ok,
                micros,
            });
            worker_cell.cv.notify_all();
        });

        Ok(ExecutionHandle { id: exec_id, cell })
    }

    /// Synchronous run: submits and waits for the terminal status.
    #[deprecated(
        since = "0.1.0",
        note = "use `submit` and the returned `ExecutionHandle` (status/wait/events)"
    )]
    pub fn run(
        &self,
        id: DeploymentId,
        overrides: &BTreeMap<String, String>,
    ) -> Result<ExecutionId> {
        let handle = self.submit(id, overrides)?;
        handle.wait();
        Ok(handle.id())
    }

    /// Polls an execution's status by ledger id (handle-free view; the
    /// REST-ish surface a remote client would get).
    pub fn status(&self, id: ExecutionId) -> Result<ExecutionStatus> {
        self.executions
            .lock()
            .unwrap()
            .get(id.0)
            .map(|cell| cell.status.lock().unwrap().clone())
            .ok_or_else(|| Error::NotFound(format!("execution {}", id.0)))
    }

    /// Re-attaches a handle to an execution in the ledger.
    pub fn handle(&self, id: ExecutionId) -> Result<ExecutionHandle> {
        self.executions
            .lock()
            .unwrap()
            .get(id.0)
            .map(|cell| ExecutionHandle { id, cell: Arc::clone(cell) })
            .ok_or_else(|| Error::NotFound(format!("execution {}", id.0)))
    }

    /// End-user interface: undeploys.
    pub fn undeploy(&self, id: DeploymentId) -> Result<()> {
        let mut deployments = self.deployments.lock().unwrap();
        let d = deployments
            .get_mut(id.0)
            .ok_or_else(|| Error::NotFound(format!("deployment {}", id.0)))?;
        if !d.active {
            return Err(Error::BadState {
                entity: format!("deployment {}", id.0),
                state: "undeployed".into(),
                operation: "undeploy".into(),
            });
        }
        let record = d.record.clone();
        d.active = false;
        drop(deployments);
        self.orchestrator.lock().unwrap().undeploy(&record);
        Ok(())
    }
}

impl Default for ExecutionApi {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tosca::climate_case_study;

    fn api_with_echo() -> ExecutionApi {
        let api = ExecutionApi::new();
        api.register(climate_case_study(), |inputs| {
            if inputs.get("fail").map(|v| v == "yes").unwrap_or(false) {
                Err("requested failure".into())
            } else {
                Ok(format!("ran {} years on {} grid", inputs["years"], inputs["grid"]))
            }
        });
        api
    }

    #[test]
    fn full_lifecycle() {
        let api = api_with_echo();
        assert_eq!(api.workflows(), vec!["climate-extremes"]);
        let dep = api.deploy("climate-extremes").unwrap();
        assert!(api.deployment_cost_ms(dep).unwrap() > 0);
        let handle = api.submit(dep, &BTreeMap::new()).unwrap();
        match handle.wait() {
            ExecutionStatus::Completed { result } => {
                assert_eq!(result, "ran 1 years on test_small grid");
            }
            other => panic!("unexpected status {other:?}"),
        }
        // The ledger view agrees with the handle view.
        assert_eq!(api.status(handle.id()).unwrap(), handle.status());
        api.undeploy(dep).unwrap();
    }

    #[test]
    fn input_overrides_reach_the_entrypoint() {
        let api = api_with_echo();
        let dep = api.deploy("climate-extremes").unwrap();
        let mut over = BTreeMap::new();
        over.insert("years".to_string(), "5".to_string());
        let handle = api.submit(dep, &over).unwrap();
        match handle.wait() {
            ExecutionStatus::Completed { result } => assert!(result.starts_with("ran 5 years")),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn failed_entrypoint_reports_failed_status() {
        let api = api_with_echo();
        let dep = api.deploy("climate-extremes").unwrap();
        let mut over = BTreeMap::new();
        over.insert("fail".to_string(), "yes".to_string());
        let handle = api.submit(dep, &over).unwrap();
        assert!(matches!(handle.wait(), ExecutionStatus::Failed { .. }));
        assert!(matches!(api.status(handle.id()).unwrap(), ExecutionStatus::Failed { .. }));
    }

    #[test]
    fn unknown_ids_rejected() {
        let api = api_with_echo();
        assert!(matches!(api.deploy("ghost"), Err(Error::NotFound(_))));
        assert!(matches!(api.status(ExecutionId(9)), Err(Error::NotFound(_))));
        assert!(matches!(api.handle(ExecutionId(9)), Err(Error::NotFound(_))));
        assert!(matches!(api.undeploy(DeploymentId(9)), Err(Error::NotFound(_))));
    }

    #[test]
    fn run_after_undeploy_rejected() {
        let api = api_with_echo();
        let dep = api.deploy("climate-extremes").unwrap();
        api.undeploy(dep).unwrap();
        assert!(matches!(api.submit(dep, &BTreeMap::new()), Err(Error::BadState { .. })));
        assert!(matches!(api.undeploy(dep), Err(Error::BadState { .. })));
    }

    #[test]
    fn multiple_deployments_coexist() {
        let api = api_with_echo();
        let a = api.deploy("climate-extremes").unwrap();
        let b = api.deploy("climate-extremes").unwrap();
        assert_ne!(a, b);
        // Second deployment benefits from the shared image layer cache.
        assert!(api.deployment_cost_ms(b).unwrap() < api.deployment_cost_ms(a).unwrap());
        api.undeploy(a).unwrap();
        // b still runnable.
        assert!(api.submit(b, &BTreeMap::new()).unwrap().wait().is_terminal());
    }

    #[test]
    fn handle_records_execution_events() {
        let api = api_with_echo();
        let dep = api.deploy("climate-extremes").unwrap();
        let handle = api.submit(dep, &BTreeMap::new()).unwrap();
        handle.wait();
        let events = handle.events();
        assert_eq!(events.len(), 2);
        assert!(matches!(
            &events[0].kind,
            obs::EventKind::ExecutionStarted { execution, workflow }
                if *execution == handle.id().0 as u64 && &**workflow == "climate-extremes"
        ));
        assert!(matches!(&events[1].kind, obs::EventKind::ExecutionFinished { ok: true, .. }));
        // Re-attached handles see the same record.
        let again = api.handle(handle.id()).unwrap();
        assert_eq!(again.events().len(), 2);
        assert_eq!(again.workflow(), "climate-extremes");
    }

    #[test]
    fn wait_timeout_expires_while_running() {
        let api = ExecutionApi::new();
        api.register(climate_case_study(), |_| {
            std::thread::sleep(Duration::from_millis(200));
            Ok("slow".into())
        });
        let dep = api.deploy("climate-extremes").unwrap();
        let handle = api.submit(dep, &BTreeMap::new()).unwrap();
        assert!(handle.wait_timeout(Duration::from_millis(1)).is_none());
        assert_eq!(handle.wait(), ExecutionStatus::Completed { result: "slow".into() });
        assert!(handle.wait_timeout(Duration::from_millis(1)).is_some());
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_run_still_blocks_to_completion() {
        let api = api_with_echo();
        let dep = api.deploy("climate-extremes").unwrap();
        let exec = api.run(dep, &BTreeMap::new()).unwrap();
        assert!(api.status(exec).unwrap().is_terminal());
    }
}
