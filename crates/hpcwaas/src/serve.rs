//! Admission control and weighted fair-share scheduling for the
//! Execution API.
//!
//! The paper's Execution API fronts a *shared* service: many final users
//! hitting one deployment of the workflow. Serving them all from an
//! unbounded thread-per-submit would let any one tenant monopolise the
//! machine, so submission goes through three gates before any work runs:
//!
//! 1. **Per-tenant quota** — a ceiling on queued + running executions
//!    ([`TenantQuota::max_in_flight`]).
//! 2. **Token-bucket rate limit** — a burst allowance refilled at a
//!    steady rate ([`TenantQuota::submit_burst`] /
//!    [`TenantQuota::submit_rate_per_sec`]).
//! 3. **Bounded global queue** — backpressure once the service as a
//!    whole is saturated ([`ServeConfig::queue_capacity`]).
//!
//! Admitted work waits in a per-tenant lane; a stride scheduler picks the
//! lane with the smallest virtual time, advancing it by `1/weight` per
//! dispatch, so a tenant with weight 3 drains three times faster than a
//! tenant with weight 1 and no lane ever starves. The lanes feed a
//! bounded executor pool owned by [`crate::ExecutionApi`].

use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::sync::Arc;
use std::time::Instant;

/// Tenant submissions without an explicit tenant land under this name.
pub const DEFAULT_TENANT: &str = "default";

/// Interned tenant name: cheap to clone, hashable, ordered.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TenantId(Arc<str>);

impl TenantId {
    pub fn new(name: &str) -> Self {
        TenantId(Arc::from(name))
    }

    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// The interned name, shareable with event payloads.
    pub fn arc(&self) -> Arc<str> {
        Arc::clone(&self.0)
    }
}

impl fmt::Display for TenantId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Per-tenant admission policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TenantQuota {
    /// Ceiling on executions queued or running at once.
    pub max_in_flight: usize,
    /// Token-bucket depth for submission bursts; `0` disables rate
    /// limiting entirely.
    pub submit_burst: u32,
    /// Steady-state refill rate for the bucket. With `submit_burst > 0`
    /// and a zero rate the tenant has a hard budget of `submit_burst`
    /// submissions (useful for deterministic tests).
    pub submit_rate_per_sec: f64,
    /// Fair-share weight: relative fraction of executor dispatches this
    /// tenant receives under contention. Clamped to at least 1.
    pub weight: u32,
}

impl Default for TenantQuota {
    fn default() -> Self {
        TenantQuota { max_in_flight: 1024, submit_burst: 0, submit_rate_per_sec: 0.0, weight: 1 }
    }
}

/// Serving-layer configuration for an [`crate::ExecutionApi`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Executor pool size (threads actually running entrypoints).
    pub workers: usize,
    /// Bound on executions waiting for a worker, across all tenants.
    pub queue_capacity: usize,
    /// Quota applied to tenants without an explicit
    /// [`crate::ExecutionApi::set_quota`].
    pub default_quota: TenantQuota,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig { workers: 4, queue_capacity: 256, default_quota: TenantQuota::default() }
    }
}

/// Typed admission refusal, carried by [`crate::Error::Rejected`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Rejection {
    /// The tenant is at its in-flight ceiling.
    QuotaExceeded { tenant: String, in_flight: usize, max_in_flight: usize },
    /// The tenant's token bucket is empty.
    RateLimited { tenant: String },
    /// The global admission queue is full.
    QueueFull { depth: usize, capacity: usize },
}

impl Rejection {
    /// Stable label for metrics and events (`quota` / `rate` /
    /// `queue_full`).
    pub fn label(&self) -> &'static str {
        match self {
            Rejection::QuotaExceeded { .. } => "quota",
            Rejection::RateLimited { .. } => "rate",
            Rejection::QueueFull { .. } => "queue_full",
        }
    }
}

impl fmt::Display for Rejection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Rejection::QuotaExceeded { tenant, in_flight, max_in_flight } => {
                write!(f, "tenant '{tenant}' at quota ({in_flight}/{max_in_flight} in flight)")
            }
            Rejection::RateLimited { tenant } => {
                write!(f, "tenant '{tenant}' exceeded its submission rate")
            }
            Rejection::QueueFull { depth, capacity } => {
                write!(f, "admission queue full ({depth}/{capacity})")
            }
        }
    }
}

/// Counters a serving API exposes through
/// [`crate::ExecutionApi::serve_stats`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ServeStats {
    /// Submissions that passed admission and entered the queue.
    pub admitted: u64,
    /// Rejections at the in-flight quota gate.
    pub rejected_quota: u64,
    /// Rejections at the token-bucket gate.
    pub rejected_rate: u64,
    /// Rejections at the global queue bound.
    pub rejected_queue_full: u64,
    /// Submissions answered by attaching to an identical in-flight
    /// execution instead of running again.
    pub coalesced: u64,
    /// Dispatches per tenant since the API was created.
    pub dispatched: BTreeMap<String, u64>,
    /// Tenant name of each dispatch, in order (capped; fairness tests
    /// read interleaving from this).
    pub dispatch_order: Vec<String>,
    /// Executions currently waiting for a worker.
    pub queue_depth: usize,
    /// Executions currently running on the pool.
    pub running: usize,
}

impl ServeStats {
    /// Total submissions refused by admission control.
    pub fn rejected(&self) -> u64 {
        self.rejected_quota + self.rejected_rate + self.rejected_queue_full
    }
}

/// Classic token bucket over wall-clock time.
#[derive(Debug)]
pub struct TokenBucket {
    capacity: f64,
    tokens: f64,
    refill_per_sec: f64,
    last: Instant,
}

impl TokenBucket {
    pub fn new(capacity: u32, refill_per_sec: f64, now: Instant) -> Self {
        let cap = f64::from(capacity.max(1));
        TokenBucket {
            capacity: cap,
            tokens: cap,
            refill_per_sec: refill_per_sec.max(0.0),
            last: now,
        }
    }

    /// Takes one token if available, refilling for the elapsed time first.
    pub fn try_take(&mut self, now: Instant) -> bool {
        let dt = now.saturating_duration_since(self.last).as_secs_f64();
        self.last = now;
        self.tokens = (self.tokens + dt * self.refill_per_sec).min(self.capacity);
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }
}

/// One tenant's lane in the fair queue.
struct Lane<T> {
    queue: VecDeque<T>,
    quota: TenantQuota,
    bucket: Option<TokenBucket>,
    /// Stride-scheduler virtual time; the lane with the minimum value is
    /// dispatched next and pays `1/weight` per dispatch.
    vtime: f64,
    /// Queued + running executions charged to this tenant.
    in_flight: usize,
}

impl<T> Lane<T> {
    fn new(quota: TenantQuota, now: Instant) -> Self {
        let bucket = (quota.submit_burst > 0)
            .then(|| TokenBucket::new(quota.submit_burst, quota.submit_rate_per_sec, now));
        Lane { queue: VecDeque::new(), quota, bucket, vtime: 0.0, in_flight: 0 }
    }
}

/// Admission gate + weighted fair-share queue over per-tenant lanes.
///
/// Generic over the queued item so scheduling policy is testable without
/// constructing real executions.
pub(crate) struct FairQueue<T> {
    lanes: BTreeMap<TenantId, Lane<T>>,
    default_quota: TenantQuota,
    capacity: usize,
    len: usize,
    /// Virtual time of the most recent dispatch; newly-active lanes start
    /// here so an idle tenant cannot bank credit and then burst.
    global_vtime: f64,
}

impl<T> FairQueue<T> {
    pub(crate) fn new(default_quota: TenantQuota, capacity: usize) -> Self {
        FairQueue { lanes: BTreeMap::new(), default_quota, capacity, len: 0, global_vtime: 0.0 }
    }

    pub(crate) fn set_quota(&mut self, tenant: TenantId, quota: TenantQuota, now: Instant) {
        let default = self.default_quota;
        let lane = self.lanes.entry(tenant).or_insert_with(|| Lane::new(default, now));
        lane.quota = quota;
        lane.bucket = (quota.submit_burst > 0)
            .then(|| TokenBucket::new(quota.submit_burst, quota.submit_rate_per_sec, now));
    }

    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// Runs all three admission gates and enqueues on success; a rejected
    /// submission consumes no token and changes no state.
    pub(crate) fn try_enqueue(
        &mut self,
        tenant: &TenantId,
        item: T,
        now: Instant,
    ) -> Result<(), Rejection> {
        let default = self.default_quota;
        let global_vtime = self.global_vtime;
        let (len, capacity) = (self.len, self.capacity);
        let lane = self.lanes.entry(tenant.clone()).or_insert_with(|| Lane::new(default, now));
        if lane.in_flight >= lane.quota.max_in_flight {
            return Err(Rejection::QuotaExceeded {
                tenant: tenant.to_string(),
                in_flight: lane.in_flight,
                max_in_flight: lane.quota.max_in_flight,
            });
        }
        if len >= capacity {
            return Err(Rejection::QueueFull { depth: len, capacity });
        }
        if let Some(bucket) = &mut lane.bucket {
            if !bucket.try_take(now) {
                return Err(Rejection::RateLimited { tenant: tenant.to_string() });
            }
        }
        if lane.queue.is_empty() {
            lane.vtime = lane.vtime.max(global_vtime);
        }
        lane.queue.push_back(item);
        lane.in_flight += 1;
        self.len += 1;
        Ok(())
    }

    /// Dispatches from the non-empty lane with the smallest virtual time.
    pub(crate) fn pop(&mut self) -> Option<(TenantId, T)> {
        let tenant = self
            .lanes
            .iter()
            .filter(|(_, lane)| !lane.queue.is_empty())
            .min_by(|a, b| a.1.vtime.total_cmp(&b.1.vtime))
            .map(|(t, _)| t.clone())?;
        let lane = self.lanes.get_mut(&tenant).expect("lane exists");
        let item = lane.queue.pop_front().expect("lane non-empty");
        lane.vtime += 1.0 / f64::from(lane.quota.weight.max(1));
        self.global_vtime = lane.vtime;
        self.len -= 1;
        Some((tenant, item))
    }

    /// Releases the in-flight slot a terminal execution held.
    pub(crate) fn complete(&mut self, tenant: &TenantId) {
        if let Some(lane) = self.lanes.get_mut(tenant) {
            lane.in_flight = lane.in_flight.saturating_sub(1);
        }
    }

    #[cfg(test)]
    fn in_flight(&self, tenant: &TenantId) -> usize {
        self.lanes.get(tenant).map_or(0, |l| l.in_flight)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn q(max_in_flight: usize, burst: u32, rate: f64, weight: u32) -> TenantQuota {
        TenantQuota { max_in_flight, submit_burst: burst, submit_rate_per_sec: rate, weight }
    }

    #[test]
    fn token_bucket_burst_then_refill() {
        let t0 = Instant::now();
        let mut b = TokenBucket::new(2, 10.0, t0);
        assert!(b.try_take(t0));
        assert!(b.try_take(t0));
        assert!(!b.try_take(t0), "burst exhausted");
        // 100ms at 10/s refills exactly one token.
        assert!(b.try_take(t0 + Duration::from_millis(100)));
        assert!(!b.try_take(t0 + Duration::from_millis(100)));
    }

    #[test]
    fn token_bucket_zero_rate_is_a_hard_budget() {
        let t0 = Instant::now();
        let mut b = TokenBucket::new(3, 0.0, t0);
        for _ in 0..3 {
            assert!(b.try_take(t0));
        }
        assert!(!b.try_take(t0 + Duration::from_secs(3600)));
    }

    #[test]
    fn quota_gate_counts_queued_and_running() {
        let now = Instant::now();
        let mut fq: FairQueue<u32> = FairQueue::new(q(2, 0, 0.0, 1), 64);
        let t = TenantId::new("a");
        fq.try_enqueue(&t, 1, now).unwrap();
        fq.try_enqueue(&t, 2, now).unwrap();
        assert!(matches!(
            fq.try_enqueue(&t, 3, now),
            Err(Rejection::QuotaExceeded { in_flight: 2, max_in_flight: 2, .. })
        ));
        // Dispatching does not release the slot; completion does.
        fq.pop().unwrap();
        assert!(matches!(fq.try_enqueue(&t, 3, now), Err(Rejection::QuotaExceeded { .. })));
        fq.complete(&t);
        fq.try_enqueue(&t, 3, now).unwrap();
        assert_eq!(fq.in_flight(&t), 2);
    }

    #[test]
    fn queue_capacity_is_global() {
        let now = Instant::now();
        let mut fq: FairQueue<u32> = FairQueue::new(TenantQuota::default(), 2);
        fq.try_enqueue(&TenantId::new("a"), 1, now).unwrap();
        fq.try_enqueue(&TenantId::new("b"), 2, now).unwrap();
        assert!(matches!(
            fq.try_enqueue(&TenantId::new("c"), 3, now),
            Err(Rejection::QueueFull { depth: 2, capacity: 2 })
        ));
    }

    #[test]
    fn weighted_interleaving_matches_strides() {
        let now = Instant::now();
        let mut fq: FairQueue<u32> = FairQueue::new(TenantQuota::default(), 64);
        let (heavy, light) = (TenantId::new("heavy"), TenantId::new("light"));
        fq.set_quota(heavy.clone(), q(1024, 0, 0.0, 3), now);
        fq.set_quota(light.clone(), q(1024, 0, 0.0, 1), now);
        for i in 0..12 {
            fq.try_enqueue(&heavy, i, now).unwrap();
            fq.try_enqueue(&light, i, now).unwrap();
        }
        let order: Vec<String> =
            std::iter::from_fn(|| fq.pop()).map(|(t, _)| t.to_string()).collect();
        // 3:1 stride ratio in any aligned window of 4.
        let heavy_in_first_8 = order[..8].iter().filter(|t| *t == "heavy").count();
        assert_eq!(heavy_in_first_8, 6, "order {order:?}");
        // Light is never starved: it appears in every window of 4.
        for w in order.chunks(4).take(3) {
            assert!(w.contains(&"light".to_string()), "order {order:?}");
        }
    }

    #[test]
    fn idle_tenant_cannot_bank_credit() {
        let now = Instant::now();
        let mut fq: FairQueue<u32> = FairQueue::new(TenantQuota::default(), 64);
        let (busy, idle) = (TenantId::new("busy"), TenantId::new("idle"));
        // busy alone dispatches many times, advancing global vtime.
        for i in 0..10 {
            fq.try_enqueue(&busy, i, now).unwrap();
        }
        for _ in 0..10 {
            fq.pop().unwrap();
        }
        // idle arrives late: it starts at the current vtime, so it
        // alternates with busy rather than draining its backlog first.
        for i in 0..4 {
            fq.try_enqueue(&idle, i, now).unwrap();
            fq.try_enqueue(&busy, 100 + i, now).unwrap();
        }
        let order: Vec<String> =
            std::iter::from_fn(|| fq.pop()).map(|(t, _)| t.to_string()).collect();
        let idle_in_first_4 = order[..4].iter().filter(|t| *t == "idle").count();
        assert!(idle_in_first_4 <= 3, "late tenant must not monopolise: {order:?}");
        assert!(idle_in_first_4 >= 1, "late tenant must not starve: {order:?}");
    }

    #[test]
    fn rejection_messages_are_specific() {
        let r = Rejection::QuotaExceeded { tenant: "acme".into(), in_flight: 8, max_in_flight: 8 };
        assert!(r.to_string().contains("acme"));
        assert_eq!(r.label(), "quota");
        let r = Rejection::QueueFull { depth: 256, capacity: 256 };
        assert!(r.to_string().contains("256"));
        assert_eq!(Rejection::RateLimited { tenant: "t".into() }.label(), "rate");
    }
}
