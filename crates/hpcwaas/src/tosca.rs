//! TOSCA-like topology documents.
//!
//! Alien4Cloud describes "the topology of components involved in the
//! workflow deployment and execution in an extended TOSCA format"
//! (Section 4.1). This module provides the document model — node templates
//! with typed properties and `hosted_on` / `uses` / `depends_on`
//! requirements — plus a hand-rolled parser for a small, indentation-based
//! YAML-like syntax:
//!
//! ```text
//! topology: climate-extremes
//! inputs:
//!   years: 3
//! node_templates:
//!   cluster:
//!     type: hpc.Cluster
//!     properties:
//!       scheduler: lsf
//!   pycompss:
//!     type: middleware.PyCOMPSs
//!     requirements:
//!       - hosted_on: cluster
//! ```

use crate::error::{Error, Result};
use std::collections::BTreeMap;

/// A requirement edge from one template to another.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Requirement {
    /// Lifecycle dependency and co-location: host must be started first.
    HostedOn(String),
    /// Uses a capability of the target (started after the target).
    Uses(String),
    /// Plain ordering dependency.
    DependsOn(String),
}

impl Requirement {
    /// The target template name.
    pub fn target(&self) -> &str {
        match self {
            Requirement::HostedOn(t) | Requirement::Uses(t) | Requirement::DependsOn(t) => t,
        }
    }
}

/// One node template.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeTemplate {
    pub name: String,
    pub type_name: String,
    pub properties: BTreeMap<String, String>,
    pub requirements: Vec<Requirement>,
}

/// A parsed topology.
#[derive(Debug, Clone, PartialEq)]
pub struct Topology {
    pub name: String,
    pub inputs: BTreeMap<String, String>,
    /// Templates in document order.
    pub templates: Vec<NodeTemplate>,
}

impl Topology {
    /// Looks up a template by name.
    pub fn template(&self, name: &str) -> Option<&NodeTemplate> {
        self.templates.iter().find(|t| t.name == name)
    }

    /// Validates referential integrity: every requirement target exists.
    pub fn validate(&self) -> Result<()> {
        for t in &self.templates {
            for r in &t.requirements {
                if self.template(r.target()).is_none() {
                    return Err(Error::UnknownTarget {
                        template: t.name.clone(),
                        target: r.target().to_string(),
                    });
                }
            }
        }
        Ok(())
    }

    /// Serializes the topology back to its document form (the inverse of
    /// [`Topology::parse`]; round-trips exactly). This is what the
    /// workflow registry stores and what Alien4Cloud-style editors emit.
    pub fn to_source(&self) -> String {
        let mut s = format!("topology: {}\n", self.name);
        if !self.inputs.is_empty() {
            s.push_str("inputs:\n");
            for (k, v) in &self.inputs {
                s.push_str(&format!("  {k}: {v}\n"));
            }
        }
        if !self.templates.is_empty() {
            s.push_str("node_templates:\n");
            for t in &self.templates {
                s.push_str(&format!("  {}:\n", t.name));
                s.push_str(&format!("    type: {}\n", t.type_name));
                if !t.properties.is_empty() {
                    s.push_str("    properties:\n");
                    for (k, v) in &t.properties {
                        s.push_str(&format!("      {k}: {v}\n"));
                    }
                }
                if !t.requirements.is_empty() {
                    s.push_str("    requirements:\n");
                    for r in &t.requirements {
                        let (rel, target) = match r {
                            Requirement::HostedOn(x) => ("hosted_on", x),
                            Requirement::Uses(x) => ("uses", x),
                            Requirement::DependsOn(x) => ("depends_on", x),
                        };
                        s.push_str(&format!("      - {rel}: {target}\n"));
                    }
                }
            }
        }
        s
    }

    /// Parses a topology document.
    pub fn parse(src: &str) -> Result<Topology> {
        #[derive(PartialEq)]
        enum Section {
            None,
            Inputs,
            Templates,
        }
        let mut name = String::new();
        let mut inputs = BTreeMap::new();
        let mut templates: Vec<NodeTemplate> = Vec::new();
        let mut section = Section::None;
        // Sub-state inside a template.
        let mut in_properties = false;
        let mut in_requirements = false;

        for (ln, raw) in src.lines().enumerate() {
            let line_no = ln + 1;
            let line = raw.trim_end();
            if line.trim().is_empty() || line.trim_start().starts_with('#') {
                continue;
            }
            let indent = line.len() - line.trim_start().len();
            let content = line.trim_start();

            let err = |message: &str| Error::Parse { line: line_no, message: message.into() };

            match indent {
                0 => {
                    in_properties = false;
                    in_requirements = false;
                    if let Some(v) = content.strip_prefix("topology:") {
                        name = v.trim().to_string();
                        section = Section::None;
                    } else if content == "inputs:" {
                        section = Section::Inputs;
                    } else if content == "node_templates:" {
                        section = Section::Templates;
                    } else {
                        return Err(err(&format!("unknown top-level entry '{content}'")));
                    }
                }
                2 => {
                    in_properties = false;
                    in_requirements = false;
                    match section {
                        Section::Inputs => {
                            let (k, v) = content
                                .split_once(':')
                                .ok_or_else(|| err("expected 'key: value'"))?;
                            inputs.insert(k.trim().to_string(), v.trim().to_string());
                        }
                        Section::Templates => {
                            let tname =
                                content.strip_suffix(':').ok_or_else(|| err("expected 'name:'"))?;
                            if templates.iter().any(|t: &NodeTemplate| t.name == tname) {
                                return Err(err(&format!("duplicate template '{tname}'")));
                            }
                            templates.push(NodeTemplate {
                                name: tname.trim().to_string(),
                                type_name: String::new(),
                                properties: BTreeMap::new(),
                                requirements: Vec::new(),
                            });
                        }
                        Section::None => return Err(err("entry outside any section")),
                    }
                }
                4 => {
                    let t = templates
                        .last_mut()
                        .ok_or_else(|| err("template body before any template"))?;
                    if let Some(v) = content.strip_prefix("type:") {
                        t.type_name = v.trim().to_string();
                        in_properties = false;
                        in_requirements = false;
                    } else if content == "properties:" {
                        in_properties = true;
                        in_requirements = false;
                    } else if content == "requirements:" {
                        in_requirements = true;
                        in_properties = false;
                    } else {
                        return Err(err(&format!("unknown template entry '{content}'")));
                    }
                }
                6 => {
                    let t = templates
                        .last_mut()
                        .ok_or_else(|| err("template body before any template"))?;
                    if in_properties {
                        let (k, v) =
                            content.split_once(':').ok_or_else(|| err("expected 'key: value'"))?;
                        t.properties.insert(k.trim().to_string(), v.trim().to_string());
                    } else if in_requirements {
                        let item = content
                            .strip_prefix("- ")
                            .ok_or_else(|| err("expected '- relation: target'"))?;
                        let (rel, target) = item
                            .split_once(':')
                            .ok_or_else(|| err("expected 'relation: target'"))?;
                        let target = target.trim().to_string();
                        let req = match rel.trim() {
                            "hosted_on" => Requirement::HostedOn(target),
                            "uses" => Requirement::Uses(target),
                            "depends_on" => Requirement::DependsOn(target),
                            other => {
                                return Err(err(&format!("unknown relation '{other}'")));
                            }
                        };
                        t.requirements.push(req);
                    } else {
                        return Err(err("nested entry outside properties/requirements"));
                    }
                }
                other => {
                    return Err(err(&format!("unsupported indentation {other}")));
                }
            }
        }

        if name.is_empty() {
            return Err(Error::Parse { line: 0, message: "missing 'topology:' header".into() });
        }
        let topo = Topology { name, inputs, templates };
        topo.validate()?;
        Ok(topo)
    }
}

/// The topology of the paper's climate-extremes case study (Figure 2):
/// cluster → PyCOMPSs runtime, container images for ESM/analytics/ML,
/// the data logistics stage-in, and the workflow application on top.
pub fn climate_case_study() -> Topology {
    Topology::parse(CLIMATE_TOPOLOGY).expect("built-in topology must parse")
}

/// Source of the built-in case-study topology.
pub const CLIMATE_TOPOLOGY: &str = "\
topology: climate-extremes
inputs:
  years: 1
  grid: test_small
  scenario: ssp245
node_templates:
  zeus:
    type: hpc.Cluster
    properties:
      scheduler: lsf
      nodes: 4
      cores_per_node: 8
  pycompss:
    type: middleware.PyCOMPSs
    requirements:
      - hosted_on: zeus
  esm_image:
    type: container.Image
    properties:
      base: rockylinux9
      packages: esm-surrogate netcdf mpi
    requirements:
      - hosted_on: zeus
  analytics_image:
    type: container.Image
    properties:
      base: rockylinux9
      packages: ophidia-engine netcdf
    requirements:
      - hosted_on: zeus
  ml_image:
    type: container.Image
    properties:
      base: rockylinux9
      packages: tinyml tc-cnn-weights
    requirements:
      - hosted_on: zeus
  baseline_data:
    type: data.Pipeline
    properties:
      source: archive
      destination: zeus
      bytes: 4000000
    requirements:
      - hosted_on: zeus
  workflow:
    type: app.ClimateExtremes
    requirements:
      - hosted_on: pycompss
      - uses: esm_image
      - uses: analytics_image
      - uses: ml_image
      - uses: baseline_data
";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_topology_parses_and_validates() {
        let t = climate_case_study();
        assert_eq!(t.name, "climate-extremes");
        assert_eq!(t.inputs["years"], "1");
        assert_eq!(t.templates.len(), 7);
        let wf = t.template("workflow").unwrap();
        assert_eq!(wf.type_name, "app.ClimateExtremes");
        assert_eq!(wf.requirements.len(), 5);
        assert_eq!(wf.requirements[0], Requirement::HostedOn("pycompss".into()));
        let esm = t.template("esm_image").unwrap();
        assert_eq!(esm.properties["base"], "rockylinux9");
    }

    #[test]
    fn minimal_document() {
        let t = Topology::parse("topology: t\nnode_templates:\n  a:\n    type: x.Y\n").unwrap();
        assert_eq!(t.templates.len(), 1);
        assert!(t.inputs.is_empty());
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let src = "# header\ntopology: t\n\ninputs:\n  # comment\n  n: 1\n";
        let t = Topology::parse(src).unwrap();
        assert_eq!(t.inputs["n"], "1");
    }

    #[test]
    fn missing_header_rejected() {
        assert!(matches!(Topology::parse("inputs:\n  a: 1\n"), Err(Error::Parse { .. })));
    }

    #[test]
    fn unknown_relation_rejected() {
        let src = "topology: t\nnode_templates:\n  a:\n    type: x\n  b:\n    type: x\n    requirements:\n      - attached_to: a\n";
        let err = Topology::parse(src).unwrap_err();
        assert!(matches!(err, Error::Parse { line: 8, .. }), "{err}");
    }

    #[test]
    fn unknown_target_rejected() {
        let src = "topology: t\nnode_templates:\n  a:\n    type: x\n    requirements:\n      - hosted_on: ghost\n";
        assert!(matches!(Topology::parse(src), Err(Error::UnknownTarget { .. })));
    }

    #[test]
    fn duplicate_template_rejected() {
        let src = "topology: t\nnode_templates:\n  a:\n    type: x\n  a:\n    type: y\n";
        assert!(matches!(Topology::parse(src), Err(Error::Parse { line: 5, .. })));
    }

    #[test]
    fn bad_indentation_rejected() {
        let src = "topology: t\nnode_templates:\n   a:\n";
        assert!(matches!(Topology::parse(src), Err(Error::Parse { .. })));
    }

    #[test]
    fn properties_parse_with_spaces() {
        let src = "topology: t\nnode_templates:\n  img:\n    type: container.Image\n    properties:\n      packages: a b c\n";
        let t = Topology::parse(src).unwrap();
        assert_eq!(t.template("img").unwrap().properties["packages"], "a b c");
    }
}
