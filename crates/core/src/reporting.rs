//! Run reports: what the workflow returns to the scientist.

use dataflow::runtime::Metrics;
use extremes::tc::metrics::Scores;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Duration;

/// Per-year products and verification.
#[derive(Debug, Clone)]
pub struct YearReport {
    pub year: i32,
    /// True when this year's analysis subtree failed (e.g. corrupt input);
    /// all science fields below are zero/empty in that case.
    pub failed: bool,
    /// Daily files consumed.
    pub files: usize,
    /// Whether the validation task passed.
    pub validated: bool,
    /// Cells with at least one heat wave.
    pub heatwave_cells: usize,
    /// Cells with at least one cold spell.
    pub coldspell_cells: usize,
    /// CNN detections over the year (timestep-level).
    pub cnn_detections: usize,
    /// Deterministic track points over the year.
    pub deterministic_track_points: usize,
    /// Ground truth: injected cyclone count.
    pub truth_tcs: usize,
    /// Ground truth: injected thermal event count.
    pub truth_thermal_events: usize,
    pub export_paths: Vec<PathBuf>,
    pub map_paths: Vec<PathBuf>,
    /// CNN verification vs truth (None when truth is unavailable).
    pub cnn_scores: Option<Scores>,
    /// Deterministic-tracker verification vs truth.
    pub deterministic_scores: Option<Scores>,
}

/// What the streaming data plane did during a run: how years reached
/// analytics, what backpressure cost, and how the batched CNN service
/// packed its inference requests.
#[derive(Debug, Clone, Default)]
pub struct StreamSummary {
    /// Years handed to analytics through the in-memory channel.
    pub years_streamed: usize,
    /// Years picked up from daily files instead (checkpoint restores,
    /// missed sends — the durable fallback path).
    pub fallback_years: usize,
    /// Total time the simulation spent blocked on a full year channel.
    pub stall_us: u64,
    /// Years folded into the record-to-date incremental indices.
    pub record_years: usize,
    /// Inference batches flushed by the CNN service.
    pub cnn_batches: u64,
    /// Inference requests served by the CNN service.
    pub cnn_items: u64,
    /// Mean requests per flushed batch.
    pub cnn_mean_batch: f64,
    /// Record-to-date index exports (cross-year products).
    pub record_paths: Vec<PathBuf>,
}

/// Whole-run report.
#[derive(Debug, Clone)]
pub struct RunReport {
    pub wall_time: Duration,
    pub years: Vec<YearReport>,
    /// Task-graph statistics (the Figure-3 reproduction).
    pub tasks: usize,
    pub edges: usize,
    pub critical_path: usize,
    pub function_counts: BTreeMap<String, usize>,
    /// Where the DOT rendering was written.
    pub dot_path: PathBuf,
    /// Where the PROV-style provenance document was written.
    pub prov_path: PathBuf,
    /// Runtime execution metrics.
    pub metrics: Metrics,
    /// Timed critical-path analysis over measured task durations
    /// (None when no task completed).
    pub timed: Option<dataflow::timing::TimedPath>,
    /// Scheduling policy that drove the run.
    pub policy: &'static str,
    /// Every placement decision the scheduler made (estimated cost at
    /// pick time, measured duration at completion).
    pub placements: Vec<dataflow::PlacementDecision>,
    /// Streaming data-plane summary (None for staged, file-based runs).
    pub stream: Option<StreamSummary>,
}

/// `1234567` µs → `"1.23s"`, `4321` µs → `"4.3ms"`.
fn fmt_us(us: u64) -> String {
    if us >= 1_000_000 {
        format!("{:.2}s", us as f64 / 1e6)
    } else if us >= 1_000 {
        format!("{:.1}ms", us as f64 / 1e3)
    } else {
        format!("{us}\u{b5}s")
    }
}

impl RunReport {
    /// Human-readable summary.
    pub fn render(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "== Climate-extremes workflow report ==");
        let _ = writeln!(s, "wall time: {:.2?}", self.wall_time);
        let _ = writeln!(
            s,
            "task graph: {} tasks, {} edges, critical path {} (dot: {})",
            self.tasks,
            self.edges,
            self.critical_path,
            self.dot_path.display()
        );
        let _ = writeln!(s, "task functions:");
        for (name, count) in &self.function_counts {
            let _ = writeln!(s, "  {name:<24} x{count}");
        }
        for y in &self.years {
            if y.failed {
                let _ = writeln!(
                    s,
                    "year {}: ANALYSIS FAILED (subtree cancelled; simulation continued)",
                    y.year
                );
                continue;
            }
            let _ = writeln!(
                s,
                "year {}: {} files, validated={}, HW cells {}, CW cells {}, \
                 truth events: {} thermal / {} TCs",
                y.year,
                y.files,
                y.validated,
                y.heatwave_cells,
                y.coldspell_cells,
                y.truth_thermal_events,
                y.truth_tcs
            );
            if let Some(sc) = &y.deterministic_scores {
                let _ = writeln!(
                    s,
                    "  deterministic tracker: POD {:.2}, FAR {:.2}, err {:.0} km ({} hits)",
                    sc.pod, sc.far, sc.mean_error_km, sc.hits
                );
            }
            if let Some(sc) = &y.cnn_scores {
                let _ = writeln!(
                    s,
                    "  CNN localization:      POD {:.2}, FAR {:.2}, err {:.0} km ({} hits)",
                    sc.pod, sc.far, sc.mean_error_km, sc.hits
                );
            }
        }
        let _ = writeln!(
            s,
            "runtime: {} completed, {} failed, {} cancelled, {} retries",
            self.metrics.completed,
            self.metrics.failed,
            self.metrics.cancelled,
            self.metrics.retries
        );
        if let Some(st) = &self.stream {
            let _ = writeln!(
                s,
                "streaming: {} year(s) in-memory, {} via file fallback, \
                 backpressure stall {}, record years {}",
                st.years_streamed,
                st.fallback_years,
                fmt_us(st.stall_us),
                st.record_years
            );
            if st.cnn_batches > 0 {
                let _ = writeln!(
                    s,
                    "  CNN service: {} request(s) in {} batch(es), mean occupancy {:.2}",
                    st.cnn_items, st.cnn_batches, st.cnn_mean_batch
                );
            }
        }
        if let Some(t) = &self.timed {
            s.push_str(&self.render_timed(t));
        }
        s.push_str(&self.render_scheduling());
        s
    }

    /// The placement-quality section: which policy ran, how work spread
    /// over the workers, and how far its cost estimates were from the
    /// measured durations.
    fn render_scheduling(&self) -> String {
        let mut s = String::new();
        let _ =
            writeln!(s, "scheduling: policy {}, {} placements", self.policy, self.placements.len());
        let completed: Vec<_> =
            self.placements.iter().filter_map(|d| d.actual_us.map(|a| (d.est_us, a))).collect();
        if !completed.is_empty() {
            let mean_err =
                completed.iter().map(|&(e, a)| e.abs_diff(a)).sum::<u64>() / completed.len() as u64;
            let _ = writeln!(
                s,
                "  estimate error: mean |est-actual| {} over {} completed placements",
                fmt_us(mean_err),
                completed.len()
            );
        }
        s
    }

    /// The timed critical-path section: the measured path with per-step
    /// durations, what-if speedups, slack summary and a self-time top list.
    fn render_timed(&self, t: &dataflow::timing::TimedPath) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "timed critical path: {} over {} tasks ({:.0}% of {} wall)",
            fmt_us(t.path_us),
            t.path.len(),
            t.path_fraction() * 100.0,
            fmt_us(t.wall_us)
        );
        for step in &t.path {
            let _ = writeln!(
                s,
                "  {:<28} {:>9}  (start +{})",
                step.name,
                fmt_us(step.duration_us),
                fmt_us(step.start_us)
            );
        }
        for w in t.what_if.iter().take(3) {
            let _ = writeln!(
                s,
                "  what-if {} were free: path {} ({:.2}x whole-run ceiling)",
                w.name,
                fmt_us(w.path_us),
                w.speedup
            );
        }
        let off_path: Vec<&(dataflow::TaskId, u64)> =
            t.slack_us.iter().filter(|(_, sl)| *sl > 0).collect();
        if !off_path.is_empty() {
            let max = off_path.iter().map(|(_, sl)| *sl).max().unwrap_or(0);
            let _ = writeln!(
                s,
                "slack: {} off-path task(s), max slack {}",
                off_path.len(),
                fmt_us(max)
            );
        }
        let _ = writeln!(s, "self-time by task function:");
        for (name, us, count) in t.self_time.iter().take(8) {
            let _ = writeln!(s, "  {name:<28} {:>9}  x{count}", fmt_us(*us));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunReport {
        RunReport {
            wall_time: Duration::from_millis(1234),
            years: vec![YearReport {
                year: 2030,
                failed: false,
                files: 30,
                validated: true,
                heatwave_cells: 12,
                coldspell_cells: 4,
                cnn_detections: 20,
                deterministic_track_points: 35,
                truth_tcs: 2,
                truth_thermal_events: 3,
                export_paths: vec![PathBuf::from("/p/hwn-2030.ncx")],
                map_paths: vec![PathBuf::from("/p/hwn-map-2030.ppm")],
                cnn_scores: None,
                deterministic_scores: None,
            }],
            tasks: 18,
            edges: 25,
            critical_path: 6,
            function_counts: BTreeMap::from([("esm_simulation".to_string(), 1)]),
            dot_path: PathBuf::from("/p/taskgraph.dot"),
            prov_path: PathBuf::from("/p/provenance.prov.txt"),
            metrics: Metrics::default(),
            timed: None,
            policy: "fifo",
            placements: Vec::new(),
            stream: None,
        }
    }

    #[test]
    fn render_contains_key_facts() {
        let r = sample().render();
        assert!(r.contains("2030"));
        assert!(r.contains("18 tasks"));
        assert!(r.contains("esm_simulation"));
        assert!(r.contains("HW cells 12"));
        assert!(r.contains("validated=true"));
    }

    #[test]
    fn render_includes_timed_path_section() {
        use dataflow::timing::{analyze, TaskSpan};
        use dataflow::TaskId;
        use std::sync::Arc;
        let spans = [
            TaskSpan { task: TaskId(1), name: Arc::from("sim"), start_us: 0, end_us: 2_000_000 },
            TaskSpan { task: TaskId(2), name: Arc::from("analyze"), start_us: 0, end_us: 500 },
        ];
        let mut report = sample();
        report.timed = analyze(&[], &spans);
        let r = report.render();
        assert!(r.contains("timed critical path: 2.00s"), "got:\n{r}");
        assert!(r.contains("self-time by task function"));
        assert!(r.contains("sim"));
    }

    #[test]
    fn render_summarizes_placement_quality() {
        use dataflow::{PlacementDecision, TaskId};
        use std::sync::Arc;
        let mut report = sample();
        report.policy = "heft";
        report.placements = vec![
            PlacementDecision {
                policy: "heft",
                task: TaskId(1),
                name: Arc::from("sim"),
                worker: 0,
                est_us: 1_000,
                rank_us: 5_000,
                actual_us: Some(3_000),
            },
            PlacementDecision {
                policy: "heft",
                task: TaskId(2),
                name: Arc::from("analyze"),
                worker: 1,
                est_us: 2_000,
                rank_us: 2_000,
                actual_us: Some(2_000),
            },
        ];
        let r = report.render();
        assert!(r.contains("scheduling: policy heft, 2 placements"), "got:\n{r}");
        assert!(r.contains("mean |est-actual| 1.0ms over 2 completed placements"), "got:\n{r}");
    }

    #[test]
    fn render_includes_streaming_section() {
        let mut report = sample();
        report.stream = Some(StreamSummary {
            years_streamed: 2,
            fallback_years: 1,
            stall_us: 4_321,
            record_years: 3,
            cnn_batches: 5,
            cnn_items: 40,
            cnn_mean_batch: 8.0,
            record_paths: vec![PathBuf::from("/p/record-hwn.ncx")],
        });
        let r = report.render();
        assert!(r.contains("streaming: 2 year(s) in-memory, 1 via file fallback"), "got:\n{r}");
        assert!(r.contains("backpressure stall 4.3ms"), "got:\n{r}");
        assert!(r.contains("40 request(s) in 5 batch(es), mean occupancy 8.00"), "got:\n{r}");
        assert!(!sample().render().contains("streaming:"), "staged runs have no section");
    }

    #[test]
    fn fmt_us_picks_sane_units() {
        assert_eq!(fmt_us(750), "750\u{b5}s");
        assert_eq!(fmt_us(4_321), "4.3ms");
        assert_eq!(fmt_us(1_234_567), "1.23s");
    }
}
