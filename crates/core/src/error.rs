//! Typed workflow-outcome errors.
//!
//! Every public driver (`run_pipelined`, `run_sequential`, `CaseStudy`)
//! reports failures as a [`WorkflowError`] that names the [`WorkflowStage`]
//! in which the run died and wraps the underlying substrate error —
//! `dataflow` runtime failures, `datacube` engine errors, filesystem
//! problems and HPCWaaS serving-layer rejections — instead of a flattened
//! `String`. Callers that only want text (the CLI, the HPCWaaS entrypoint)
//! get it via `Display`/`From<WorkflowError> for String`.

use std::fmt;
use std::path::PathBuf;

/// Where in the end-to-end workflow a failure occurred. The stages mirror
/// the drivers' structure: setup, the three root tasks, the streaming
/// master loop, the per-year analysis chains, the final barrier and the
/// report collection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkflowStage {
    /// Output directories, CNN weights, ESM construction.
    Setup,
    /// Task #2, the day-of-year baseline climatology.
    Baseline,
    /// Task #3, publishing the pre-trained CNN.
    ModelLoad,
    /// Task #1 chain, the iterative ESM years.
    Simulation,
    /// The master streaming loop watching for complete years.
    Streaming,
    /// The per-year analysis chains (tasks #4–#18).
    Analysis,
    /// The final runtime barrier.
    Barrier,
    /// Report collection: fetching outputs, provenance, graph export.
    Report,
}

impl WorkflowStage {
    /// Stable lowercase stage name (used in logs and error text).
    pub fn name(self) -> &'static str {
        match self {
            WorkflowStage::Setup => "setup",
            WorkflowStage::Baseline => "baseline",
            WorkflowStage::ModelLoad => "model-load",
            WorkflowStage::Simulation => "simulation",
            WorkflowStage::Streaming => "streaming",
            WorkflowStage::Analysis => "analysis",
            WorkflowStage::Barrier => "barrier",
            WorkflowStage::Report => "report",
        }
    }
}

impl fmt::Display for WorkflowStage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A workflow-level failure: the stage that died plus the wrapped cause.
#[derive(Debug)]
pub enum WorkflowError {
    /// Filesystem failure (directory creation, watcher polling, report
    /// artifact writes).
    Io { stage: WorkflowStage, path: PathBuf, source: std::io::Error },
    /// CNN weights could not be loaded, trained or saved.
    Model { message: String },
    /// The ESM surrogate failed to initialize.
    Simulation { message: String },
    /// A dataflow-runtime failure: task submission, barrier, fetch.
    Dataflow { stage: WorkflowStage, source: dataflow::Error },
    /// A datacube-engine failure while assembling the report.
    Cube { stage: WorkflowStage, source: datacube::Error },
    /// An HPCWaaS serving-layer failure (admission rejection, bad ids).
    Serve(hpcwaas::Error),
    /// The streaming loop gave up waiting for simulation output.
    Timeout { stage: WorkflowStage, waited_secs: u64 },
    /// The runtime aborted fail-fast; the run is dead.
    Aborted { source: dataflow::Error },
    /// An intermediate datum had the wrong shape (bad year key, a task
    /// output that should have been a cube reference but was not).
    Malformed { stage: WorkflowStage, message: String },
}

impl WorkflowError {
    /// The stage in which the failure occurred.
    pub fn stage(&self) -> WorkflowStage {
        match self {
            WorkflowError::Io { stage, .. }
            | WorkflowError::Dataflow { stage, .. }
            | WorkflowError::Cube { stage, .. }
            | WorkflowError::Timeout { stage, .. }
            | WorkflowError::Malformed { stage, .. } => *stage,
            WorkflowError::Model { .. } | WorkflowError::Simulation { .. } => WorkflowStage::Setup,
            WorkflowError::Serve(_) => WorkflowStage::Setup,
            WorkflowError::Aborted { .. } => WorkflowStage::Streaming,
        }
    }

    /// Curried constructor for `map_err` on dataflow results.
    pub(crate) fn dataflow(stage: WorkflowStage) -> impl Fn(dataflow::Error) -> WorkflowError {
        move |source| WorkflowError::Dataflow { stage, source }
    }

    /// Curried constructor for `map_err` on datacube results.
    pub(crate) fn cube(stage: WorkflowStage) -> impl Fn(datacube::Error) -> WorkflowError {
        move |source| WorkflowError::Cube { stage, source }
    }

    /// Curried constructor for `map_err` on filesystem results.
    pub(crate) fn io(
        stage: WorkflowStage,
        path: &std::path::Path,
    ) -> impl Fn(std::io::Error) -> WorkflowError + '_ {
        move |source| WorkflowError::Io { stage, path: path.to_path_buf(), source }
    }
}

impl fmt::Display for WorkflowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkflowError::Io { stage, path, source } => {
                write!(f, "{stage}: io error on {}: {source}", path.display())
            }
            WorkflowError::Model { message } => write!(f, "setup: model: {message}"),
            WorkflowError::Simulation { message } => write!(f, "setup: simulation: {message}"),
            WorkflowError::Dataflow { stage, source } => write!(f, "{stage}: {source}"),
            WorkflowError::Cube { stage, source } => write!(f, "{stage}: {source}"),
            WorkflowError::Serve(e) => write!(f, "serving: {e}"),
            WorkflowError::Timeout { stage, waited_secs } => {
                write!(f, "{stage}: timed out after {waited_secs}s waiting for simulation output")
            }
            WorkflowError::Aborted { source } => write!(f, "streaming: {source}"),
            WorkflowError::Malformed { stage, message } => write!(f, "{stage}: {message}"),
        }
    }
}

impl std::error::Error for WorkflowError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WorkflowError::Io { source, .. } => Some(source),
            WorkflowError::Dataflow { source, .. } | WorkflowError::Aborted { source } => {
                Some(source)
            }
            WorkflowError::Cube { source, .. } => Some(source),
            WorkflowError::Serve(e) => Some(e),
            _ => None,
        }
    }
}

impl From<hpcwaas::Error> for WorkflowError {
    fn from(e: hpcwaas::Error) -> Self {
        WorkflowError::Serve(e)
    }
}

/// Boundary compatibility: the CLI and the HPCWaaS entrypoint closure
/// carry `String` errors; `?` flattens a typed error into its rendering.
impl From<WorkflowError> for String {
    fn from(e: WorkflowError) -> Self {
        e.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_failing_stage() {
        let e = WorkflowError::Dataflow {
            stage: WorkflowStage::Analysis,
            source: dataflow::Error::DataUnavailable { name: "hwn-2030".into() },
        };
        let s = e.to_string();
        assert!(s.starts_with("analysis:"), "{s}");
        assert!(s.contains("hwn-2030"), "{s}");
        assert_eq!(e.stage(), WorkflowStage::Analysis);
    }

    #[test]
    fn io_errors_carry_the_path() {
        let e = WorkflowError::Io {
            stage: WorkflowStage::Setup,
            path: PathBuf::from("/nope/esm-out"),
            source: std::io::Error::new(std::io::ErrorKind::NotFound, "gone"),
        };
        assert!(e.to_string().contains("/nope/esm-out"));
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn aborted_preserves_the_runtime_message() {
        let e = WorkflowError::Aborted {
            source: dataflow::Error::Aborted { message: "chaos: injected".into() },
        };
        assert!(e.to_string().contains("chaos"));
    }

    #[test]
    fn flattens_into_string_at_the_boundary() {
        let e = WorkflowError::Timeout { stage: WorkflowStage::Streaming, waited_secs: 3600 };
        let s: String = e.into();
        assert!(s.contains("streaming") && s.contains("3600"));
    }

    #[test]
    fn serve_errors_wrap_hpcwaas() {
        let rej = hpcwaas::Error::Rejected(hpcwaas::Rejection::QueueFull { depth: 4, capacity: 4 });
        let e: WorkflowError = rej.into();
        assert!(matches!(e, WorkflowError::Serve(_)));
        assert!(e.to_string().contains("queue"));
    }
}
