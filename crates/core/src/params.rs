//! Workflow parameters.
//!
//! One struct drives the whole case study; it can be built directly or
//! parsed from the string inputs an HPCWaaS invocation carries ("Input
//! arguments can be specified to configure the workflow", Section 6).

use esm::{EsmConfig, Scenario};
use gridded::Grid;
use std::collections::BTreeMap;
use std::path::PathBuf;

/// Parameters of one case-study run.
#[derive(Debug, Clone)]
pub struct WorkflowParams {
    /// Simulated years to run and analyse.
    pub years: usize,
    /// Days per simulated year (365 in production, small in tests).
    pub days_per_year: usize,
    /// Model grid.
    pub grid: Grid,
    /// Forcing scenario.
    pub scenario: Scenario,
    /// Master seed.
    pub seed: u64,
    /// Dataflow worker threads.
    pub workers: usize,
    /// Simulated Ophidia I/O servers.
    pub io_servers: usize,
    /// Fragments per imported cube.
    pub nfrag: usize,
    /// CNN patch size (cells; divisible by 4).
    pub patch: usize,
    /// Output directory (model output, indices, maps, reports).
    pub out_dir: PathBuf,
    /// Optional pre-trained CNN weights; trained on the fly when absent.
    pub model_path: Option<PathBuf>,
    /// CNN training effort when training on the fly.
    pub train_samples: usize,
    pub train_epochs: usize,
    /// Reference-run fine-tuning: days of labelled historical-surrogate
    /// output to train on (0 disables fine-tuning).
    pub finetune_days: usize,
    pub finetune_epochs: usize,
    /// Fault-injection hook for resilience testing: corrupt the daily file
    /// of `(year index, 0-based day)` right after that year is simulated.
    pub corrupt_file: Option<(usize, usize)>,
    /// Checkpoint log path; a re-run with the same path resumes from the
    /// last completed frontier instead of starting over.
    pub checkpoint: Option<PathBuf>,
    /// Retries per failed task (0 = fail fast, the historical behavior).
    pub task_retries: u32,
    /// Base delay of the exponential retry backoff.
    pub retry_base_ms: u64,
    /// Dataflow scheduling policy (fifo | locality | heft | lookahead).
    pub sched_policy: dataflow::Policy,
    /// Streaming data plane: hand completed years to analytics through an
    /// in-memory channel (files still written as the durable fallback).
    pub streaming: bool,
    /// Capacity of the simulation→analytics year channel; a full channel
    /// blocks the simulation (backpressure) until analytics catches up.
    pub stream_depth: usize,
    /// Max requests per CNN inference batch in the streaming TC service.
    pub cnn_batch: usize,
}

impl WorkflowParams {
    /// Fluent, validating builder seeded with the test-scale defaults.
    /// Finish with [`ParamsBuilder::build`], which runs [`Self::validate`].
    pub fn builder(out_dir: impl Into<PathBuf>) -> ParamsBuilder {
        ParamsBuilder { p: Self::test_scale(out_dir.into()) }
    }

    /// Checks cross-field invariants the individual setters cannot see.
    pub fn validate(&self) -> Result<(), String> {
        fn positive(name: &str, v: usize) -> Result<(), String> {
            if v == 0 {
                Err(format!("{name} must be at least 1"))
            } else {
                Ok(())
            }
        }
        positive("years", self.years)?;
        positive("days_per_year", self.days_per_year)?;
        positive("workers", self.workers)?;
        positive("io_servers", self.io_servers)?;
        positive("nfrag", self.nfrag)?;
        if self.patch == 0 || !self.patch.is_multiple_of(4) {
            return Err(format!("patch must be a positive multiple of 4, got {}", self.patch));
        }
        if self.patch > self.grid.nlat || self.patch > self.grid.nlon {
            return Err(format!(
                "patch {} does not fit the {}x{} grid",
                self.patch, self.grid.nlat, self.grid.nlon
            ));
        }
        if self.model_path.is_none() {
            positive("train_samples", self.train_samples)?;
            positive("train_epochs", self.train_epochs)?;
        }
        if self.finetune_days > 0 {
            positive("finetune_epochs", self.finetune_epochs)?;
        }
        positive("stream_depth", self.stream_depth)?;
        positive("cnn_batch", self.cnn_batch)?;
        if let Some((year, day)) = self.corrupt_file {
            if year >= self.years || day >= self.days_per_year {
                return Err(format!(
                    "corrupt_file ({year}, {day}) outside the {}x{} run",
                    self.years, self.days_per_year
                ));
            }
        }
        Ok(())
    }

    /// Small test-scale defaults (48 × 72 grid, 30-day years).
    pub fn test_scale(out_dir: PathBuf) -> Self {
        WorkflowParams {
            years: 1,
            days_per_year: 30,
            grid: Grid::test_small(),
            scenario: Scenario::Ssp245,
            seed: 42,
            workers: 4,
            io_servers: 2,
            nfrag: 8,
            patch: 16,
            out_dir,
            model_path: None,
            train_samples: 240,
            train_epochs: 12,
            finetune_days: 25,
            finetune_epochs: 10,
            corrupt_file: None,
            checkpoint: None,
            task_retries: 0,
            retry_base_ms: 20,
            sched_policy: dataflow::Policy::Fifo,
            streaming: false,
            stream_depth: 2,
            cnn_batch: 8,
        }
    }

    /// Production-shaped defaults (still far below the paper's 0.25°, but
    /// a full 365-day year on a 96 × 144 grid).
    pub fn demo_scale(out_dir: PathBuf) -> Self {
        WorkflowParams {
            years: 2,
            days_per_year: 365,
            grid: Grid::global(96, 144),
            scenario: Scenario::Ssp585,
            seed: 2030,
            workers: 4,
            io_servers: 4,
            nfrag: 16,
            patch: 16,
            out_dir,
            model_path: None,
            train_samples: 400,
            train_epochs: 16,
            finetune_days: 60,
            finetune_epochs: 14,
            corrupt_file: None,
            checkpoint: None,
            task_retries: 0,
            retry_base_ms: 20,
            sched_policy: dataflow::Policy::Fifo,
            streaming: false,
            stream_depth: 2,
            cnn_batch: 8,
        }
    }

    /// Applies HPCWaaS string inputs on top of the current values.
    /// Recognized keys: `years`, `days_per_year`, `grid`
    /// (`test_small` | `demo` | `NLATxNLON`), `scenario`
    /// (`historical` | `ssp245` | `ssp585`), `seed`, `workers`,
    /// `io_servers`, `nfrag`, `checkpoint`, `task_retries`,
    /// `retry_base_ms`, `policy` (`fifo` | `locality` | `heft` |
    /// `lookahead`), `streaming` (`true` | `false`), `stream_depth`,
    /// `cnn_batch`.
    pub fn apply_inputs(mut self, inputs: &BTreeMap<String, String>) -> Result<Self, String> {
        for (k, v) in inputs {
            match k.as_str() {
                "years" => self.years = v.parse().map_err(|_| format!("bad years '{v}'"))?,
                "days_per_year" => {
                    self.days_per_year =
                        v.parse().map_err(|_| format!("bad days_per_year '{v}'"))?
                }
                "grid" => {
                    self.grid = match v.as_str() {
                        "test_small" => Grid::test_small(),
                        "demo" => Grid::global(96, 144),
                        "cmcc_cm3" => Grid::cmcc_cm3(),
                        other => {
                            let (a, b) = other
                                .split_once('x')
                                .ok_or_else(|| format!("bad grid '{other}'"))?;
                            Grid::global(
                                a.parse().map_err(|_| format!("bad grid '{other}'"))?,
                                b.parse().map_err(|_| format!("bad grid '{other}'"))?,
                            )
                        }
                    }
                }
                "scenario" => {
                    self.scenario = match v.as_str() {
                        "historical" => Scenario::Historical,
                        "ssp245" => Scenario::Ssp245,
                        "ssp585" => Scenario::Ssp585,
                        other => return Err(format!("unknown scenario '{other}'")),
                    }
                }
                "seed" => self.seed = v.parse().map_err(|_| format!("bad seed '{v}'"))?,
                "workers" => self.workers = v.parse().map_err(|_| format!("bad workers '{v}'"))?,
                "io_servers" => {
                    self.io_servers = v.parse().map_err(|_| format!("bad io_servers '{v}'"))?
                }
                "nfrag" => self.nfrag = v.parse().map_err(|_| format!("bad nfrag '{v}'"))?,
                "checkpoint" => self.checkpoint = Some(PathBuf::from(v)),
                "task_retries" => {
                    self.task_retries = v.parse().map_err(|_| format!("bad task_retries '{v}'"))?
                }
                "retry_base_ms" => {
                    self.retry_base_ms =
                        v.parse().map_err(|_| format!("bad retry_base_ms '{v}'"))?
                }
                "policy" => self.sched_policy = v.parse()?,
                "streaming" => {
                    self.streaming = v.parse().map_err(|_| format!("bad streaming '{v}'"))?
                }
                "stream_depth" => {
                    self.stream_depth = v.parse().map_err(|_| format!("bad stream_depth '{v}'"))?
                }
                "cnn_batch" => {
                    self.cnn_batch = v.parse().map_err(|_| format!("bad cnn_batch '{v}'"))?
                }
                // Unrecognized inputs are deployment-level concerns
                // (image names etc.); ignore them.
                _ => {}
            }
        }
        self.validate()?;
        Ok(self)
    }

    /// The ESM configuration implied by these parameters.
    pub fn esm_config(&self) -> EsmConfig {
        EsmConfig::test_small()
            .with_grid(self.grid.clone())
            .with_days_per_year(self.days_per_year)
            .with_seed(self.seed)
            .with_scenario(self.scenario)
    }

    /// Directory for the ESM's daily files.
    pub fn esm_dir(&self) -> PathBuf {
        self.out_dir.join("esm-out")
    }

    /// Directory for exported indices, tracks and maps.
    pub fn products_dir(&self) -> PathBuf {
        self.out_dir.join("products")
    }
}

/// Fluent builder for [`WorkflowParams`] (see [`WorkflowParams::builder`]).
///
/// Setters only record values; [`ParamsBuilder::build`] validates the whole
/// configuration at once, so invariants spanning several fields (patch vs.
/// grid, corruption target vs. run length) are checked no matter the order
/// the setters ran in.
#[derive(Debug, Clone)]
pub struct ParamsBuilder {
    p: WorkflowParams,
}

impl ParamsBuilder {
    /// Switches the baseline from test-scale to the demo-scale defaults,
    /// keeping the output directory.
    pub fn demo_scale(mut self) -> Self {
        let out_dir = std::mem::take(&mut self.p.out_dir);
        self.p = WorkflowParams::demo_scale(out_dir);
        self
    }

    /// Simulated years to run and analyse.
    pub fn years(mut self, years: usize) -> Self {
        self.p.years = years;
        self
    }

    /// Days per simulated year.
    pub fn days_per_year(mut self, days: usize) -> Self {
        self.p.days_per_year = days;
        self
    }

    /// Model grid.
    pub fn grid(mut self, grid: Grid) -> Self {
        self.p.grid = grid;
        self
    }

    /// Forcing scenario.
    pub fn scenario(mut self, scenario: Scenario) -> Self {
        self.p.scenario = scenario;
        self
    }

    /// Master seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.p.seed = seed;
        self
    }

    /// Dataflow worker threads.
    pub fn workers(mut self, workers: usize) -> Self {
        self.p.workers = workers;
        self
    }

    /// Simulated Ophidia I/O servers.
    pub fn io_servers(mut self, io_servers: usize) -> Self {
        self.p.io_servers = io_servers;
        self
    }

    /// Fragments per imported cube.
    pub fn nfrag(mut self, nfrag: usize) -> Self {
        self.p.nfrag = nfrag;
        self
    }

    /// CNN patch size (cells; must be a multiple of 4 that fits the grid).
    pub fn patch(mut self, patch: usize) -> Self {
        self.p.patch = patch;
        self
    }

    /// Uses pre-trained CNN weights instead of training on the fly.
    pub fn model_path(mut self, path: impl Into<PathBuf>) -> Self {
        self.p.model_path = Some(path.into());
        self
    }

    /// CNN training effort when training on the fly.
    pub fn training(mut self, samples: usize, epochs: usize) -> Self {
        self.p.train_samples = samples;
        self.p.train_epochs = epochs;
        self
    }

    /// Reference-run fine-tuning effort (`days = 0` disables it).
    pub fn finetuning(mut self, days: usize, epochs: usize) -> Self {
        self.p.finetune_days = days;
        self.p.finetune_epochs = epochs;
        self
    }

    /// Fault-injection hook: corrupt the daily file of
    /// `(year index, 0-based day)` right after that year is simulated.
    pub fn corrupt_file(mut self, year: usize, day: usize) -> Self {
        self.p.corrupt_file = Some((year, day));
        self
    }

    /// Enables checkpointing to `path`; re-running with the same path
    /// resumes from the last completed frontier.
    pub fn checkpoint(mut self, path: impl Into<PathBuf>) -> Self {
        self.p.checkpoint = Some(path.into());
        self
    }

    /// Per-task retry budget with exponential backoff (`retries = 0`
    /// restores the historical fail-fast behavior).
    pub fn retries(mut self, retries: u32, base_ms: u64) -> Self {
        self.p.task_retries = retries;
        self.p.retry_base_ms = base_ms;
        self
    }

    /// Dataflow scheduling policy for the run.
    pub fn sched_policy(mut self, policy: dataflow::Policy) -> Self {
        self.p.sched_policy = policy;
        self
    }

    /// Enables the streaming data plane (in-memory year handoff).
    pub fn streaming(mut self, on: bool) -> Self {
        self.p.streaming = on;
        self
    }

    /// Simulation→analytics channel capacity (years in flight).
    pub fn stream_depth(mut self, depth: usize) -> Self {
        self.p.stream_depth = depth;
        self
    }

    /// Max requests per CNN inference batch in the streaming service.
    pub fn cnn_batch(mut self, batch: usize) -> Self {
        self.p.cnn_batch = batch;
        self
    }

    /// Applies HPCWaaS string inputs (same keys as
    /// [`WorkflowParams::apply_inputs`]) on top of the builder state.
    pub fn inputs(mut self, inputs: &BTreeMap<String, String>) -> Result<Self, String> {
        self.p = self.p.apply_inputs(inputs)?;
        Ok(self)
    }

    /// Validates and returns the finished parameters.
    pub fn build(self) -> Result<WorkflowParams, String> {
        self.p.validate()?;
        Ok(self.p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> WorkflowParams {
        WorkflowParams::test_scale(std::env::temp_dir().join("wfp"))
    }

    #[test]
    fn inputs_override_fields() {
        let mut inputs = BTreeMap::new();
        inputs.insert("years".to_string(), "3".to_string());
        inputs.insert("grid".to_string(), "24x36".to_string());
        inputs.insert("scenario".to_string(), "ssp585".to_string());
        inputs.insert("seed".to_string(), "7".to_string());
        inputs.insert("whatever".to_string(), "ignored".to_string());
        let p = base().apply_inputs(&inputs).unwrap();
        assert_eq!(p.years, 3);
        assert_eq!((p.grid.nlat, p.grid.nlon), (24, 36));
        assert_eq!(p.scenario, Scenario::Ssp585);
        assert_eq!(p.seed, 7);
    }

    #[test]
    fn recovery_inputs_parse() {
        let mut inputs = BTreeMap::new();
        inputs.insert("checkpoint".to_string(), "/tmp/wf.ckpt".to_string());
        inputs.insert("task_retries".to_string(), "2".to_string());
        inputs.insert("retry_base_ms".to_string(), "5".to_string());
        let p = base().apply_inputs(&inputs).unwrap();
        assert_eq!(p.checkpoint, Some(PathBuf::from("/tmp/wf.ckpt")));
        assert_eq!(p.task_retries, 2);
        assert_eq!(p.retry_base_ms, 5);

        let mut inputs = BTreeMap::new();
        inputs.insert("task_retries".to_string(), "lots".to_string());
        assert!(base().apply_inputs(&inputs).is_err());

        let p = WorkflowParams::builder(std::env::temp_dir().join("wfp-rec"))
            .checkpoint("/tmp/b.ckpt")
            .retries(3, 10)
            .build()
            .unwrap();
        assert_eq!(p.task_retries, 3);
        assert_eq!(p.retry_base_ms, 10);
        assert!(p.checkpoint.is_some());
    }

    #[test]
    fn policy_input_selects_scheduler() {
        let mut inputs = BTreeMap::new();
        inputs.insert("policy".to_string(), "lookahead".to_string());
        let p = base().apply_inputs(&inputs).unwrap();
        assert_eq!(p.sched_policy, dataflow::Policy::Lookahead);

        let mut inputs = BTreeMap::new();
        inputs.insert("policy".to_string(), "sjf".to_string());
        assert!(base().apply_inputs(&inputs).is_err());

        let p = WorkflowParams::builder(std::env::temp_dir().join("wfp-pol"))
            .sched_policy(dataflow::Policy::Heft)
            .build()
            .unwrap();
        assert_eq!(p.sched_policy, dataflow::Policy::Heft);
    }

    #[test]
    fn streaming_inputs_parse() {
        let mut inputs = BTreeMap::new();
        inputs.insert("streaming".to_string(), "true".to_string());
        inputs.insert("stream_depth".to_string(), "3".to_string());
        inputs.insert("cnn_batch".to_string(), "16".to_string());
        let p = base().apply_inputs(&inputs).unwrap();
        assert!(p.streaming);
        assert_eq!(p.stream_depth, 3);
        assert_eq!(p.cnn_batch, 16);

        let mut inputs = BTreeMap::new();
        inputs.insert("streaming".to_string(), "maybe".to_string());
        assert!(base().apply_inputs(&inputs).is_err());
        let mut inputs = BTreeMap::new();
        inputs.insert("stream_depth".to_string(), "0".to_string());
        assert!(base().apply_inputs(&inputs).is_err(), "zero-depth channel rejected");

        let p = WorkflowParams::builder(std::env::temp_dir().join("wfp-stream"))
            .streaming(true)
            .stream_depth(4)
            .cnn_batch(2)
            .build()
            .unwrap();
        assert!(p.streaming);
        assert_eq!((p.stream_depth, p.cnn_batch), (4, 2));
        assert!(!base().streaming, "streaming is opt-in");
    }

    #[test]
    fn named_grids() {
        let mut inputs = BTreeMap::new();
        inputs.insert("grid".to_string(), "demo".to_string());
        let p = base().apply_inputs(&inputs).unwrap();
        assert_eq!((p.grid.nlat, p.grid.nlon), (96, 144));
        let mut inputs = BTreeMap::new();
        inputs.insert("grid".to_string(), "cmcc_cm3".to_string());
        let p = base().apply_inputs(&inputs).unwrap();
        assert_eq!((p.grid.nlat, p.grid.nlon), (768, 1152));
    }

    #[test]
    fn bad_inputs_reported() {
        let mut inputs = BTreeMap::new();
        inputs.insert("years".to_string(), "many".to_string());
        assert!(base().apply_inputs(&inputs).is_err());
        let mut inputs = BTreeMap::new();
        inputs.insert("scenario".to_string(), "rcp85".to_string());
        assert!(base().apply_inputs(&inputs).is_err());
        let mut inputs = BTreeMap::new();
        inputs.insert("grid".to_string(), "weird".to_string());
        assert!(base().apply_inputs(&inputs).is_err());
    }

    #[test]
    fn esm_config_reflects_params() {
        let p = base();
        let cfg = p.esm_config();
        assert_eq!(cfg.days_per_year, 30);
        assert_eq!(cfg.grid, p.grid);
        assert_eq!(cfg.seed, 42);
    }

    #[test]
    fn directories_are_distinct() {
        let p = base();
        assert_ne!(p.esm_dir(), p.products_dir());
        assert!(p.esm_dir().starts_with(&p.out_dir));
    }

    #[test]
    fn builder_sets_fields_and_validates() {
        let p = WorkflowParams::builder(std::env::temp_dir().join("wfp-b"))
            .years(2)
            .days_per_year(15)
            .grid(Grid::global(24, 36))
            .scenario(Scenario::Ssp585)
            .seed(7)
            .workers(2)
            .io_servers(3)
            .nfrag(4)
            .training(60, 3)
            .finetuning(0, 0)
            .corrupt_file(1, 14)
            .build()
            .unwrap();
        assert_eq!(p.years, 2);
        assert_eq!((p.grid.nlat, p.grid.nlon), (24, 36));
        assert_eq!(p.io_servers, 3);
        assert_eq!(p.corrupt_file, Some((1, 14)));
    }

    #[test]
    fn builder_rejects_invalid_combinations() {
        let b = || WorkflowParams::builder(std::env::temp_dir().join("wfp-bad"));
        assert!(b().years(0).build().is_err());
        assert!(b().patch(10).build().is_err(), "patch not a multiple of 4");
        assert!(b().grid(Grid::global(8, 8)).build().is_err(), "patch larger than grid");
        assert!(b().training(0, 0).build().is_err(), "no model and no training");
        assert!(b().corrupt_file(5, 0).build().is_err(), "corruption outside run");
        // A model path excuses zero training effort.
        assert!(b().training(0, 0).model_path("/tmp/model.bin").build().is_ok());
    }

    #[test]
    fn builder_demo_scale_keeps_out_dir() {
        let dir = std::env::temp_dir().join("wfp-demo");
        let p = WorkflowParams::builder(&dir).demo_scale().years(1).build().unwrap();
        assert_eq!(p.out_dir, dir);
        assert_eq!(p.days_per_year, 365);
    }

    #[test]
    fn apply_inputs_validates_the_result() {
        let mut inputs = BTreeMap::new();
        inputs.insert("years".to_string(), "0".to_string());
        assert!(base().apply_inputs(&inputs).is_err());
        let mut inputs = BTreeMap::new();
        inputs.insert("grid".to_string(), "8x8".to_string());
        assert!(base().apply_inputs(&inputs).is_err(), "patch no longer fits");
    }
}
