//! Multi-tenant serving benchmark: seeded open-loop arrival sweeps.
//!
//! Drives the HPCWaaS serving layer (admission control, weighted
//! fair-share dispatch, request coalescing) with a synthetic traffic
//! generator: per sweep point, tenants submit a lightweight "probe"
//! workflow at a target aggregate arrival rate with exponential
//! inter-arrival gaps drawn from a seeded generator, so a given
//! `(seed, config)` always offers the same request schedule. The probe
//! loads one of a small pool of datacubes through a shared
//! [`CubeCache`], which is what makes the cross-tenant cache and the
//! coalescing path observable: overlapping tenants hit the same cubes.
//!
//! Each [`RatePoint`] records offered load, admissions, coalesced joins,
//! typed rejections, completion counts, queue-to-finish latency
//! percentiles (from the execution event log), goodput, rejection rate
//! and the shared-cache hit rate. [`ServeBenchReport::to_json`] renders
//! the whole sweep for `BENCH_*.json`; the `[serve] stage=...` summary
//! lines feed `scripts/bench_record.sh`.

use crate::error::WorkflowError;
use datacube::model::{Cube, Dimension};
use datacube::CubeCache;
use hpcwaas::tosca::{NodeTemplate, Topology};
use hpcwaas::{ExecutionApi, ExecutionStatus, ServeConfig, TenantQuota};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Configuration of one serving sweep.
#[derive(Debug, Clone)]
pub struct ServeBenchConfig {
    /// Number of tenants generating traffic (weights alternate 1/2).
    pub tenants: usize,
    /// Aggregate arrival rates to sweep (requests/second, all tenants).
    pub rates_hz: Vec<f64>,
    /// Open-loop generation window per rate point.
    pub duration_ms: u64,
    /// Seed of the arrival/tenant/cube draws.
    pub seed: u64,
    /// Executor pool size.
    pub workers: usize,
    /// Global admission queue bound.
    pub queue_capacity: usize,
    /// Per-tenant in-flight cap (queued + running).
    pub max_in_flight: usize,
    /// Size of the shared cube pool the probes draw from.
    pub distinct_cubes: usize,
    /// Shared cube-cache budget.
    pub cache_budget_mb: usize,
    /// Busy-work per request after the cube is resident.
    pub work_spin_us: u64,
    /// Extra cost of a cache miss (the simulated cube build).
    pub load_spin_us: u64,
}

impl Default for ServeBenchConfig {
    fn default() -> Self {
        ServeBenchConfig {
            tenants: 4,
            rates_hz: vec![200.0, 800.0],
            duration_ms: 300,
            seed: 42,
            workers: 4,
            queue_capacity: 128,
            max_in_flight: 16,
            distinct_cubes: 3,
            cache_budget_mb: 64,
            work_spin_us: 200,
            load_spin_us: 2_000,
        }
    }
}

/// Measurements of one arrival-rate point.
#[derive(Debug, Clone)]
pub struct RatePoint {
    pub rate_hz: f64,
    /// Submissions attempted by the generator.
    pub offered: u64,
    /// Submissions past admission control (each runs once).
    pub admitted: u64,
    /// Submissions that joined an identical in-flight execution.
    pub coalesced: u64,
    /// Typed admission refusals (quota + rate + queue-full).
    pub rejected: u64,
    /// Handles that resolved `Completed`.
    pub completed: u64,
    /// Handles that resolved `Failed` or timed out.
    pub failed: u64,
    /// Queue-to-finish latency percentiles, microseconds.
    pub p50_us: u64,
    pub p99_us: u64,
    /// Completed requests per second over the whole point (generation
    /// plus drain).
    pub goodput_hz: f64,
    /// rejected / offered.
    pub rejection_rate: f64,
    /// Shared cube-cache hit rate across all tenants of the point.
    pub cache_hit_rate: f64,
}

/// The full sweep: one [`RatePoint`] per configured rate.
#[derive(Debug, Clone)]
pub struct ServeBenchReport {
    pub tenants: usize,
    pub workers: usize,
    pub queue_capacity: usize,
    pub distinct_cubes: usize,
    pub seed: u64,
    pub duration_ms: u64,
    pub points: Vec<RatePoint>,
}

impl ServeBenchReport {
    /// Renders the sweep as a JSON object for `BENCH_*.json`.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        s.push_str(&format!("  \"tenants\": {},\n", self.tenants));
        s.push_str(&format!("  \"workers\": {},\n", self.workers));
        s.push_str(&format!("  \"queue_capacity\": {},\n", self.queue_capacity));
        s.push_str(&format!("  \"distinct_cubes\": {},\n", self.distinct_cubes));
        s.push_str(&format!("  \"seed\": {},\n", self.seed));
        s.push_str(&format!("  \"duration_ms\": {},\n", self.duration_ms));
        s.push_str("  \"points\": [\n");
        for (i, p) in self.points.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"rate_hz\": {:.1}, \"offered\": {}, \"admitted\": {}, \
                 \"coalesced\": {}, \"rejected\": {}, \"completed\": {}, \"failed\": {}, \
                 \"p50_us\": {}, \"p99_us\": {}, \"goodput_hz\": {:.2}, \
                 \"rejection_rate\": {:.4}, \"cache_hit_rate\": {:.4}}}{}\n",
                p.rate_hz,
                p.offered,
                p.admitted,
                p.coalesced,
                p.rejected,
                p.completed,
                p.failed,
                p.p50_us,
                p.p99_us,
                p.goodput_hz,
                p.rejection_rate,
                p.cache_hit_rate,
                if i + 1 < self.points.len() { "," } else { "" }
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// One `[serve] stage=sweep ...` line per point (parsed by
    /// `scripts/bench_record.sh`).
    pub fn summary_lines(&self) -> Vec<String> {
        self.points
            .iter()
            .map(|p| {
                format!(
                    "[serve] stage=sweep rate_hz={:.1} offered={} admitted={} coalesced={} \
                     rejected={} completed={} failed={} p50_us={} p99_us={} goodput_hz={:.2} \
                     rejection_rate={:.4} cache_hit_rate={:.4}",
                    p.rate_hz,
                    p.offered,
                    p.admitted,
                    p.coalesced,
                    p.rejected,
                    p.completed,
                    p.failed,
                    p.p50_us,
                    p.p99_us,
                    p.goodput_hz,
                    p.rejection_rate,
                    p.cache_hit_rate
                )
            })
            .collect()
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Seeded generator for the arrival schedule and tenant/cube draws.
struct Rng(u64);

impl Rng {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        splitmix64(self.0)
    }

    /// Uniform in [0, 1).
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n.max(1) as u64) as usize
    }
}

/// Deterministic busy-wait standing in for compute.
fn spin_for(us: u64) {
    let end = Instant::now() + Duration::from_micros(us);
    while Instant::now() < end {
        std::hint::spin_loop();
    }
}

/// Builds the probe's synthetic datacube (48 x 48 cells, 16-day series;
/// the values depend on the pool key so distinct cubes are distinct).
fn probe_cube(key: &str, load_spin_us: u64) -> datacube::Result<Cube> {
    const NLAT: usize = 48;
    const NLON: usize = 48;
    const NDAY: usize = 16;
    spin_for(load_spin_us);
    let tag = key.bytes().fold(0u32, |a, b| a.wrapping_mul(31).wrapping_add(b as u32));
    let phase = (tag % 997) as f32 * 0.01;
    let data: Vec<f32> =
        (0..NLAT * NLON * NDAY).map(|i| (i as f32 * 0.001 + phase).sin()).collect();
    let dims = vec![
        Dimension::explicit("lat", (0..NLAT).map(|i| i as f64).collect::<Vec<_>>()),
        Dimension::explicit("lon", (0..NLON).map(|i| i as f64).collect::<Vec<_>>()),
        Dimension::implicit("day", (0..NDAY).map(|i| i as f64).collect::<Vec<_>>()),
    ];
    Cube::from_dense("serve_probe", dims, data, 8, 2)
}

/// The trivially-deployable topology behind the probe workflow.
fn probe_topology() -> Topology {
    Topology {
        name: "serve-probe".into(),
        inputs: BTreeMap::new(),
        templates: vec![NodeTemplate {
            name: "probe".into(),
            type_name: "bench.ServeProbe".into(),
            properties: BTreeMap::new(),
            requirements: Vec::new(),
        }],
    }
}

/// Builds an [`ExecutionApi`] serving the probe workflow against `cache`.
fn probe_api(cfg: &ServeBenchConfig, cache: Arc<CubeCache>) -> ExecutionApi {
    let api = ExecutionApi::with_config(ServeConfig {
        workers: cfg.workers,
        queue_capacity: cfg.queue_capacity,
        default_quota: TenantQuota {
            max_in_flight: cfg.max_in_flight,
            weight: 1,
            ..TenantQuota::default()
        },
    });
    let work_spin_us = cfg.work_spin_us;
    let load_spin_us = cfg.load_spin_us;
    api.register(probe_topology(), move |inputs| {
        let key = inputs.get("cube").cloned().unwrap_or_else(|| "cube-0".to_string());
        let cube = cache
            .get_or_load(&key, || probe_cube(&key, load_spin_us))
            .map_err(|e| e.to_string())?;
        spin_for(work_spin_us);
        let sum: f64 = cube.to_dense().iter().map(|v| *v as f64).sum();
        Ok(format!("{key} sum={sum:.3}"))
    });
    api
}

/// Runs one rate point: a fresh serving stack (API, executor pool, shared
/// cache), the seeded open-loop generator, then a full drain.
fn run_point(cfg: &ServeBenchConfig, rate_hz: f64) -> Result<RatePoint, WorkflowError> {
    let cache = Arc::new(CubeCache::new(cfg.cache_budget_mb * 1024 * 1024));
    let api = probe_api(cfg, Arc::clone(&cache));
    let dep = api.deploy("serve-probe")?;
    for t in 0..cfg.tenants {
        // A heavy/light tenant mix: even tenants get twice the share.
        api.set_quota(
            &format!("tenant-{t}"),
            TenantQuota {
                max_in_flight: cfg.max_in_flight,
                weight: if t % 2 == 0 { 2 } else { 1 },
                ..TenantQuota::default()
            },
        );
    }

    let mut rng = Rng(cfg.seed ^ (rate_hz as u64).wrapping_mul(0x9E37_79B9));
    let start = Instant::now();
    let window = Duration::from_millis(cfg.duration_ms);
    let mut next_arrival = Duration::ZERO;
    let mut offered = 0u64;
    let mut rejected_local = 0u64;
    let mut handles = Vec::new();
    // Open loop: arrivals follow the schedule regardless of completions;
    // if the generator falls behind it bursts to catch up.
    loop {
        if next_arrival >= window {
            break;
        }
        let now = start.elapsed();
        if now < next_arrival {
            std::thread::sleep(next_arrival - now);
        }
        let tenant = format!("tenant-{}", rng.below(cfg.tenants));
        let cube = format!("cube-{}", rng.below(cfg.distinct_cubes));
        let mut inputs = BTreeMap::new();
        inputs.insert("cube".to_string(), cube);
        // A quarter of the requests carry no per-request tag, so identical
        // concurrent submissions exist for the coalescing path; the rest
        // are unique and must each run.
        if rng.next_f64() >= 0.25 {
            inputs.insert("req".to_string(), offered.to_string());
        }
        offered += 1;
        match api.submit_as(&tenant, dep, &inputs) {
            Ok(h) => handles.push(h),
            Err(hpcwaas::Error::Rejected(_)) => rejected_local += 1,
            Err(e) => return Err(WorkflowError::Serve(e)),
        }
        // Exponential inter-arrival gap at the target aggregate rate.
        let gap = -(1.0 - rng.next_f64()).ln() / rate_hz;
        next_arrival += Duration::from_secs_f64(gap);
    }

    // Drain: every admitted or coalesced handle must resolve.
    let mut completed = 0u64;
    let mut failed = 0u64;
    let mut latencies_us = Vec::with_capacity(handles.len());
    for h in &handles {
        match h.wait_timeout(Duration::from_secs(120)) {
            Some(ExecutionStatus::Completed { .. }) => {
                completed += 1;
                let events = h.events();
                let queued = events.iter().find_map(|e| {
                    matches!(e.kind, obs::EventKind::ExecutionQueued { .. }).then_some(e.ts_micros)
                });
                let finished = events.iter().find_map(|e| {
                    matches!(e.kind, obs::EventKind::ExecutionFinished { .. })
                        .then_some(e.ts_micros)
                });
                if let (Some(q), Some(f)) = (queued, finished) {
                    latencies_us.push(f.saturating_sub(q));
                }
            }
            _ => failed += 1,
        }
    }
    let elapsed = start.elapsed().as_secs_f64();

    latencies_us.sort_unstable();
    let pct = |p: f64| -> u64 {
        if latencies_us.is_empty() {
            return 0;
        }
        let idx = ((latencies_us.len() - 1) as f64 * p).round() as usize;
        latencies_us[idx]
    };
    let stats = api.serve_stats();
    let cache_stats = cache.stats();
    debug_assert_eq!(stats.rejected(), rejected_local);
    Ok(RatePoint {
        rate_hz,
        offered,
        admitted: stats.admitted,
        coalesced: stats.coalesced,
        rejected: stats.rejected(),
        completed,
        failed,
        p50_us: pct(0.50),
        p99_us: pct(0.99),
        goodput_hz: if elapsed > 0.0 { completed as f64 / elapsed } else { 0.0 },
        rejection_rate: if offered > 0 { stats.rejected() as f64 / offered as f64 } else { 0.0 },
        cache_hit_rate: cache_stats.hit_rate(),
    })
}

/// Runs the configured sweep, one fresh serving stack per rate point.
pub fn run(cfg: &ServeBenchConfig) -> Result<ServeBenchReport, WorkflowError> {
    let mut points = Vec::with_capacity(cfg.rates_hz.len());
    for &rate in &cfg.rates_hz {
        points.push(run_point(cfg, rate)?);
    }
    Ok(ServeBenchReport {
        tenants: cfg.tenants,
        workers: cfg.workers,
        queue_capacity: cfg.queue_capacity,
        distinct_cubes: cfg.distinct_cubes,
        seed: cfg.seed,
        duration_ms: cfg.duration_ms,
        points,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> ServeBenchConfig {
        ServeBenchConfig {
            tenants: 4,
            rates_hz: vec![400.0],
            duration_ms: 250,
            workers: 2,
            distinct_cubes: 3,
            work_spin_us: 100,
            load_spin_us: 1_500,
            ..ServeBenchConfig::default()
        }
    }

    /// Acceptance: with >= 4 tenants submitting overlapping workflows,
    /// the shared cache serves the overlap (> 50% hit rate) and the
    /// sweep produces nonzero goodput.
    #[test]
    fn four_tenant_sweep_shares_the_cache() {
        let report = run(&quick()).unwrap();
        assert_eq!(report.points.len(), 1);
        let p = &report.points[0];
        assert!(p.offered >= 20, "offered only {}", p.offered);
        assert!(p.completed > 0, "{p:?}");
        assert_eq!(p.failed, 0, "{p:?}");
        assert!(p.goodput_hz > 0.0, "{p:?}");
        assert!(p.cache_hit_rate > 0.5, "hit rate {} too low: {p:?}", p.cache_hit_rate);
        assert!(p.p99_us >= p.p50_us, "{p:?}");
        assert!(p.p50_us > 0, "{p:?}");
        // Conservation: every offered request was admitted, coalesced
        // onto an admitted one, or typed-rejected.
        assert_eq!(p.offered, p.admitted + p.coalesced + p.rejected, "{p:?}");
    }

    #[test]
    fn report_renders_json_and_summary_lines() {
        let report = ServeBenchReport {
            tenants: 4,
            workers: 2,
            queue_capacity: 8,
            distinct_cubes: 3,
            seed: 7,
            duration_ms: 100,
            points: vec![RatePoint {
                rate_hz: 250.0,
                offered: 25,
                admitted: 20,
                coalesced: 3,
                rejected: 2,
                completed: 23,
                failed: 0,
                p50_us: 900,
                p99_us: 4_200,
                goodput_hz: 88.5,
                rejection_rate: 0.08,
                cache_hit_rate: 0.91,
            }],
        };
        let json = report.to_json();
        for key in [
            "\"rate_hz\"",
            "\"p50_us\"",
            "\"p99_us\"",
            "\"goodput_hz\"",
            "\"rejection_rate\"",
            "\"cache_hit_rate\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        let lines = report.summary_lines();
        assert_eq!(lines.len(), 1);
        assert!(lines[0].starts_with("[serve] stage=sweep rate_hz=250.0"));
        assert!(lines[0].contains("cache_hit_rate=0.9100"));
    }

    /// The seeded generator offers the same schedule for the same seed.
    #[test]
    fn same_seed_offers_identical_load() {
        let cfg = ServeBenchConfig { duration_ms: 120, rates_hz: vec![300.0], ..quick() };
        let a = run(&cfg).unwrap();
        let b = run(&cfg).unwrap();
        assert_eq!(a.points[0].offered, b.points[0].offered);
    }
}
