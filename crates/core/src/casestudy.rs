//! The case-study task definitions and the pipelined driver.
//!
//! Mirrors Section 5 of the paper. Each stage is a distinct task function
//! submitted to the dataflow runtime (one color each in the Figure-3
//! graph):
//!
//! | # | task | role |
//! |---|------|------|
//! | 1 | `esm_simulation`       | one simulated year of CMCC-CM3-surrogate output (chained INOUT state, runs iteratively) |
//! | 2 | `load_baseline`        | day-of-year baseline climatology cubes (loaded once, reused all run — Sec. 5.3) |
//! | 3 | `load_model`           | the pre-trained TC-localization CNN |
//! | 4 | `stage_year`           | streaming detection of a complete year of daily files (Sec. 5.2) |
//! | 5 | `import_tmax`          | daily-maximum temperature year cube via datacube operators |
//! | 6 | `import_tmin`          | daily-minimum temperature year cube |
//! | 7–9 | `hw_duration_max` / `hw_number` / `hw_frequency` | heat-wave indices (Sec. 5.3) |
//! | 10–12 | `cw_duration_max` / `cw_number` / `cw_frequency` | cold-spell indices |
//! | 13 | `validate_indices`    | result validation (workflow step 5) |
//! | 14 | `export_indices`      | NCX export of the six index maps |
//! | 15 | `tc_preprocess`       | per-year TC input bundle (regrid-ready fields; Sec. 5.4 step i) |
//! | 16 | `tc_cnn_localize`     | CNN inference + geo-referencing (steps ii–iii) |
//! | 17 | `tc_track_deterministic` | criteria detector + trajectory stitcher |
//! | 18 | `render_maps`         | yearly map products (workflow step 6, Figure 4) |
//!
//! Tasks exchange lightweight references ([`WfData`]): file paths for
//! everything that crosses the simulation/analytics boundary, and cube ids
//! into the shared datacube store for in-memory analytics handoff (the
//! paper's "data could be kept in memory ... as the workflow progresses").

use crate::error::{WorkflowError, WorkflowStage};
use crate::params::WorkflowParams;
use crate::reporting::{RunReport, StreamSummary, YearReport};
use datacube::ops::ReduceOp;
use datacube::{Client, CubeCache, CubeHandle, CubeId};
use dataflow::prelude::*;
use dataflow::stream::{bounded, DirWatcher, RecvTimeout, StreamSender, YearlyRule};
use dataflow::Error;
use esm::output::DayBlock;
use esm::{Simulation, YearEvents};
use extremes::heatwave::{self, WaveParams};
use extremes::incremental::{EtccdiState, WaveState};
use extremes::tc::cnn::TcCnn;
use extremes::tc::detect::{detect_timestep, DetectorParams};
use extremes::tc::serve::{BatchPolicy, CnnService};
use extremes::tc::track::{stitch_tracks, TrackParams};
use extremes::validate::validate_indices;
use gridded::Field2;
use ncformat::Reader;
use parking_lot::Mutex;

use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Payload exchanged between workflow tasks.
#[derive(Debug, Clone, PartialEq)]
pub enum WfData {
    /// Pure control token.
    Unit,
    /// Small textual result (reports, CSV blobs).
    Text(String),
    /// One file path.
    Path(PathBuf),
    /// Several file paths (a year of daily files, export bundles).
    Paths(Vec<PathBuf>),
    /// A number (year, count...).
    Num(f64),
    /// Reference to a cube in the shared datacube store.
    CubeRef(u64),
}

impl WfData {
    /// The cube id, when this is a [`WfData::CubeRef`].
    pub fn cube_id(&self) -> Option<CubeId> {
        match self {
            WfData::CubeRef(id) => Some(CubeId(*id)),
            _ => None,
        }
    }

    /// The paths, when this is a [`WfData::Paths`].
    pub fn paths(&self) -> Option<&[PathBuf]> {
        match self {
            WfData::Paths(p) => Some(p),
            _ => None,
        }
    }

    /// The text, when this is a [`WfData::Text`].
    pub fn text(&self) -> Option<&str> {
        match self {
            WfData::Text(t) => Some(t),
            _ => None,
        }
    }
}

impl Payload for WfData {
    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            WfData::Unit => out.push(0),
            WfData::Text(s) => {
                out.push(1);
                out.extend_from_slice(s.as_bytes());
            }
            WfData::Path(p) => {
                out.push(2);
                out.extend_from_slice(p.to_string_lossy().as_bytes());
            }
            WfData::Paths(ps) => {
                out.push(3);
                let joined: Vec<String> =
                    ps.iter().map(|p| p.to_string_lossy().into_owned()).collect();
                out.extend_from_slice(joined.join("\n").as_bytes());
            }
            WfData::Num(v) => {
                out.push(4);
                out.extend_from_slice(&v.to_le_bytes());
            }
            WfData::CubeRef(id) => {
                out.push(5);
                out.extend_from_slice(&id.to_le_bytes());
            }
        }
        out
    }

    fn decode(bytes: &[u8]) -> Option<Self> {
        let (&tag, rest) = bytes.split_first()?;
        Some(match tag {
            0 => WfData::Unit,
            1 => WfData::Text(String::from_utf8(rest.to_vec()).ok()?),
            2 => WfData::Path(PathBuf::from(String::from_utf8(rest.to_vec()).ok()?)),
            3 => {
                let s = String::from_utf8(rest.to_vec()).ok()?;
                WfData::Paths(if s.is_empty() {
                    Vec::new()
                } else {
                    s.lines().map(PathBuf::from).collect()
                })
            }
            4 => WfData::Num(f64::from_le_bytes(rest.try_into().ok()?)),
            5 => WfData::CubeRef(u64::from_le_bytes(rest.try_into().ok()?)),
            _ => return None,
        })
    }

    fn approx_size(&self) -> u64 {
        self.encode().len() as u64
    }
}

/// One simulated year as the streaming plane hands it to analytics: the
/// daily fields as shared in-memory blocks plus the daily files the same
/// year was durably written to (the fallback path).
pub struct StreamedYear {
    pub year: i32,
    /// Watcher-compatible group key (the year as a string).
    pub key: String,
    pub files: Vec<PathBuf>,
    pub days: Vec<DayBlock>,
}

/// Keyed shelf of in-flight streamed years. Analysis tasks look their
/// year up at execution time; a miss means the year must be read back
/// from its daily files (staged runs, checkpoint-restored years) — the
/// two paths produce bitwise-identical science, so falling back is
/// always safe.
pub struct YearStore {
    years: Mutex<BTreeMap<String, Arc<StreamedYear>>>,
}

impl YearStore {
    fn new() -> Self {
        YearStore { years: Mutex::new(BTreeMap::new()) }
    }

    fn insert(&self, year: Arc<StreamedYear>) {
        self.years.lock().insert(year.key.clone(), year);
    }

    fn get(&self, key: &str) -> Option<Arc<StreamedYear>> {
        self.years.lock().get(key).cloned()
    }
}

/// Record-to-date incremental index accumulators (streaming runs): the
/// heat/cold run-length machines and ETCCDI counters carried across year
/// boundaries by the chained `stream_record` tasks.
struct RecordState {
    heat: Option<WaveState>,
    cold: Option<WaveState>,
    etccdi: Option<EtccdiState>,
    /// Years folded in, ascending.
    years: Vec<i32>,
}

impl RecordState {
    fn empty() -> Self {
        RecordState { heat: None, cold: None, etccdi: None, years: Vec::new() }
    }

    fn init_if_needed(
        &mut self,
        base_tmax: &datacube::model::Cube,
        base_tmin: &datacube::model::Cube,
        nfrag: usize,
        io_servers: usize,
    ) {
        if self.heat.is_none() {
            self.heat =
                Some(WaveState::new(base_tmax, WaveParams::default(), false, nfrag, io_servers));
            self.cold =
                Some(WaveState::new(base_tmin, WaveParams::default(), true, nfrag, io_servers));
            self.etccdi = Some(EtccdiState::new(base_tmax.rows()));
        }
    }

    fn fold(
        &mut self,
        year: i32,
        tmax: &datacube::model::Cube,
        tmin: &datacube::model::Cube,
    ) -> datacube::Result<()> {
        self.heat.as_mut().expect("initialized").update(tmax)?;
        self.cold.as_mut().expect("initialized").update(tmin)?;
        self.etccdi.as_mut().expect("initialized").update(tmax, tmin)?;
        self.years.push(year);
        Ok(())
    }

    /// The next year the record expects (folding must stay ascending so
    /// spells crossing year boundaries concatenate in calendar order).
    fn next_year(&self, start_year: i32) -> i32 {
        self.years.last().map_or(start_year, |y| y + 1)
    }
}

/// Folds `years` (ascending) into the record from their daily files —
/// the catch-up path for years whose `stream_record` task was restored
/// from a checkpoint and therefore never executed in this process.
fn fold_years_from_files(
    st: &mut RecordState,
    years: std::ops::Range<i32>,
    params: &WorkflowParams,
    client: &Client,
) -> Result<(), String> {
    for year in years {
        let files: Vec<PathBuf> = (0..params.days_per_year)
            .map(|d| params.esm_dir().join(esm::output::file_name(year, d)))
            .collect();
        let tmax = import_daily_extreme(&files, ReduceOp::Max, "tasmax", params, client)
            .and_then(|h| h.cube())
            .map_err(|e| e.to_string())?;
        let tmin = import_daily_extreme(&files, ReduceOp::Min, "tasmin", params, client)
            .and_then(|h| h.cube())
            .map_err(|e| e.to_string())?;
        st.fold(year, &tmax, &tmin).map_err(|e| e.to_string())?;
    }
    Ok(())
}

/// Handles to the shared (non-task) resources of the workflow — the same
/// role the `client` object plays in the paper's Listing 1.
pub struct CaseStudy {
    pub params: WorkflowParams,
    pub rt: Runtime<WfData>,
    pub client: Client,
    pub cnn: Arc<Mutex<TcCnn>>,
    sim: Arc<Mutex<Simulation>>,
    truth: Arc<Mutex<Vec<YearEvents>>>,
    /// In-memory years handed over by the streaming plane.
    store: Arc<YearStore>,
    /// Shared batched CNN inference service (streaming runs only).
    cnn_service: Option<Arc<CnnService>>,
    /// Record-to-date incremental index state (streaming runs only).
    record: Arc<Mutex<RecordState>>,
}

impl CaseStudy {
    /// Prepares the workflow: output directories, datacube client, the
    /// pre-trained CNN (loaded from `model_path` or trained on synthetic
    /// patches and cached), the ESM simulation and the dataflow runtime.
    pub fn new(params: WorkflowParams) -> Result<Self, WorkflowError> {
        let esm_dir = params.esm_dir();
        let products_dir = params.products_dir();
        std::fs::create_dir_all(&esm_dir)
            .map_err(WorkflowError::io(WorkflowStage::Setup, &esm_dir))?;
        std::fs::create_dir_all(&products_dir)
            .map_err(WorkflowError::io(WorkflowStage::Setup, &products_dir))?;

        let model_file =
            params.model_path.clone().unwrap_or_else(|| params.out_dir.join("tc_cnn.tml"));
        let cnn = if model_file.exists() {
            TcCnn::load(params.patch, &model_file)
                .map_err(|e| WorkflowError::Model { message: e.to_string() })?
        } else {
            let m = pretrain_cnn(&params);
            m.save(&model_file).map_err(|e| WorkflowError::Model { message: e.to_string() })?;
            m
        };

        let sim = Simulation::new(params.esm_config(), &params.esm_dir())
            .map_err(|e| WorkflowError::Simulation { message: e.to_string() })?;

        let mut config = RuntimeConfig::with_cpu_workers(params.workers.max(2))
            .with_seed(params.seed)
            .with_policy(params.sched_policy);
        if let Some(ckpt) = &params.checkpoint {
            config = config.with_checkpoint(ckpt);
        }
        let rt = Runtime::new(config);
        // The batched inference service only exists on the streaming
        // plane; staged runs keep the per-chunk model instances.
        let cnn_service = params.streaming.then(|| {
            Arc::new(CnnService::new(
                params.patch,
                model_file.clone(),
                BatchPolicy { max_batch: params.cnn_batch, ..BatchPolicy::default() },
            ))
        });
        Ok(CaseStudy {
            client: Client::connect(params.io_servers),
            cnn: Arc::new(Mutex::new(cnn)),
            sim: Arc::new(Mutex::new(sim)),
            truth: Arc::new(Mutex::new(Vec::new())),
            store: Arc::new(YearStore::new()),
            cnn_service,
            record: Arc::new(Mutex::new(RecordState::empty())),
            rt,
            params,
        })
    }

    /// Ground truth collected so far (one entry per completed year).
    pub fn truth(&self) -> Vec<YearEvents> {
        self.truth.lock().clone()
    }

    /// Failure policy of ordinary tasks: fail-fast historically, retry
    /// with seeded-jitter exponential backoff when a retry budget is set.
    fn recovery_policy(&self) -> FailurePolicy {
        if self.params.task_retries > 0 {
            FailurePolicy::RetryBackoff {
                max_retries: self.params.task_retries,
                base_ms: self.params.retry_base_ms,
                cap_ms: self.params.retry_base_ms.saturating_mul(64).max(1000),
            }
        } else {
            FailurePolicy::FailFast
        }
    }

    /// Submits task #1 for one simulated year, chained on the previous
    /// year's state token (the ESM "runs iteratively"). With `stream`,
    /// the completed year is also handed to analytics in memory: the
    /// send blocks while the channel is full (backpressure on the
    /// simulation), and a failed send is simply ignored — the daily
    /// files are already on disk for the watcher fallback.
    pub(crate) fn submit_esm_year(
        &self,
        year_index: usize,
        prev: Option<&DataRef>,
        stream: Option<StreamSender<Arc<StreamedYear>>>,
    ) -> Result<TaskHandle, Error> {
        let sim = Arc::clone(&self.sim);
        let truth = Arc::clone(&self.truth);
        let corrupt = self.params.corrupt_file;
        let esm_dir = self.params.esm_dir();
        let builder = self
            .rt
            .task("esm_simulation")
            .constraint(Constraint::cores(4))
            .key(&format!("esm-year-{year_index}"))
            .on_failure(self.recovery_policy());
        let builder = match prev {
            Some(p) => builder.updates(std::slice::from_ref(p)),
            None => builder.writes(&["esm_state"]),
        };
        builder.run(move |_| {
            let mut sim = sim.lock();
            // Checkpoint resume: earlier years restored from the log never
            // executed in this process, so fast-forward the model through
            // them (their daily files already exist from the previous run)
            // to keep this and all later years bit-identical.
            while sim.years_completed() < year_index {
                let skipped = sim.skip_years(1);
                truth.lock().extend(skipped);
            }
            let summary = match &stream {
                Some(tx) => sim
                    .run_years_streamed(1, |year, blocks, files| {
                        let days = blocks.len();
                        let bytes: u64 = blocks.iter().map(DayBlock::payload_bytes).sum();
                        let sy = Arc::new(StreamedYear {
                            key: year.to_string(),
                            year,
                            files,
                            days: blocks,
                        });
                        if tx.send(sy).is_ok() {
                            obs::emit_with(|| obs::EventKind::YearStreamed { year, days, bytes });
                        }
                    })
                    .map_err(|e| e.to_string())?,
                None => sim.run_years(1, |_, _, _| {}).map_err(|e| e.to_string())?,
            };
            truth.lock().extend(summary.truth);
            let year = summary.years[0];
            // Fault-injection hook (resilience tests): trash one daily file.
            if let Some((y, day)) = corrupt {
                if y == year_index {
                    let victim = esm_dir.join(esm::output::file_name(year, day));
                    let _ = std::fs::write(victim, b"corrupted by fault injection");
                }
            }
            Ok(vec![WfData::Num(year as f64)])
        })
    }

    /// Submits task #2: the day-of-year baseline climatology (tmax and
    /// tmin cubes, kept in memory for the whole run).
    pub(crate) fn submit_load_baseline(&self) -> Result<TaskHandle, Error> {
        let client = self.client.clone();
        let params = self.params.clone();
        self.rt.task("load_baseline").writes(&["baseline_tmax", "baseline_tmin"]).run(move |_| {
            let cfg = params.esm_config();
            // Reference warming: the historical end-of-record level, so
            // projection years carry their climate-change signal in the
            // anomalies (as the paper's future-vs-historical setup does).
            let ref_warming = esm::Scenario::Historical.warming_k(2014);
            // The climatology is a pure function of the grid, year length
            // and fragmentation (`expected_daily_extremes` has no RNG and
            // the reference warming is pinned), so concurrent tenants with
            // overlapping configurations share one copy — and one build —
            // through the process-wide cube cache.
            let key_of = |measure: &str| {
                format!(
                    "baseline:{measure}:{}x{}:{}d:f{}:s{}",
                    params.grid.nlat,
                    params.grid.nlon,
                    params.days_per_year,
                    params.nfrag,
                    params.io_servers
                )
            };
            let build = |pick_max: bool, name: &str| {
                let mut days = Vec::with_capacity(cfg.days_per_year);
                for day in 0..cfg.days_per_year {
                    let (tmax, tmin) = esm::model::expected_daily_extremes(&cfg, day, ref_warming);
                    days.push(if pick_max { tmax } else { tmin });
                }
                fields_to_year_cube(&days, name, &params)
            };
            let cache = CubeCache::global();
            let tmax = cache
                .get_or_load(&key_of("tasmax"), || build(true, "tasmax_baseline"))
                .map_err(|e| e.to_string())?;
            let tmin = cache
                .get_or_load(&key_of("tasmin"), || build(false, "tasmin_baseline"))
                .map_err(|e| e.to_string())?;
            // Shallow clones: fragments share their payload buffers, so
            // adopting into this run's store copies no data.
            let h1 = client.adopt((*tmax).clone());
            let h2 = client.adopt((*tmin).clone());
            Ok(vec![WfData::CubeRef(h1.id().0), WfData::CubeRef(h2.id().0)])
        })
    }

    /// Submits task #3: publish the pre-trained CNN (a readiness token —
    /// the weights already live in shared memory, as PyCOMPSs workers share
    /// the mounted model file).
    pub(crate) fn submit_load_model(&self) -> Result<TaskHandle, Error> {
        let cnn = Arc::clone(&self.cnn);
        self.rt.task("load_model").writes(&["tc_model"]).run(move |_| {
            let n = cnn.lock().param_count();
            Ok(vec![WfData::Num(n as f64)])
        })
    }

    /// Submits the full per-year analysis chain (tasks #4–#18, plus #19
    /// `stream_record` on the streaming plane) for one complete year.
    /// Task bodies look the year up in the in-memory [`YearStore`] at
    /// execution time and fall back to the daily files on a miss, so the
    /// same graph serves streamed, staged and checkpoint-restored years.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn submit_year_analysis(
        &self,
        year_key: &str,
        files: Vec<PathBuf>,
        baseline_tmax: &DataRef,
        baseline_tmin: &DataRef,
        model_token: &DataRef,
        record_prev: Option<&DataRef>,
    ) -> Result<YearTaskRefs, Error> {
        let params = self.params.clone();
        let client = self.client.clone();

        // #4 stage_year — the streaming hand-off node.
        let n_files = files.len();
        let stage = self
            .rt
            .task("stage_year")
            .key(&format!("stage-{year_key}"))
            .on_failure(self.recovery_policy())
            .writes(&[format!("year-{year_key}").as_str()])
            .run(move |_| Ok(vec![WfData::Paths(files.clone())]))?;

        // #5/#6 import daily extreme cubes — straight from the in-memory
        // day blocks when the year streamed in, else from its files.
        let import = |task: &str, reduce: ReduceOp, measure: &'static str| {
            let client = client.clone();
            let params = params.clone();
            let store = Arc::clone(&self.store);
            let key = year_key.to_string();
            self.rt
                .task(task)
                .reads(&[stage.outputs[0].clone()])
                .on_failure(FailurePolicy::IgnoreCancelSuccessors)
                .writes(&[format!("{task}-{year_key}").as_str()])
                .run(move |inp: &[Arc<WfData>]| {
                    let cube = match store.get(&key) {
                        Some(sy) => {
                            import_daily_extreme_mem(&sy.days, reduce, measure, &params, &client)
                        }
                        None => {
                            let files = inp[0].paths().ok_or("expected file list")?;
                            import_daily_extreme(files, reduce, measure, &params, &client)
                        }
                    }
                    .map_err(|e| e.to_string())?;
                    Ok(vec![WfData::CubeRef(cube.id().0)])
                })
        };
        let tmax = import("import_tmax", ReduceOp::Max, "tasmax")?;
        let tmin = import("import_tmin", ReduceOp::Min, "tasmin")?;

        // #7..#12 the six index tasks (each independent, like the paper's
        // separate colored tasks).
        let index_task =
            |name: &'static str,
             daily: &TaskHandle,
             base: &DataRef,
             cold: bool,
             pick: fn(heatwave::HeatwaveIndices) -> datacube::model::Cube| {
                let client = client.clone();
                let params = params.clone();
                self.rt
                    .task(name)
                    .reads(&[daily.outputs[0].clone(), base.clone()])
                    .on_failure(self.recovery_policy())
                    .writes(&[format!("{name}-{year_key}").as_str()])
                    .run(move |inp: &[Arc<WfData>]| {
                        let daily = client
                            .open(inp[0].cube_id().ok_or("expected cube ref")?)
                            .map_err(|e| e.to_string())?;
                        let base = client
                            .open(inp[1].cube_id().ok_or("expected cube ref")?)
                            .map_err(|e| e.to_string())?;
                        let idx = heatwave::compute_indices(
                            daily.cube().map_err(|e| e.to_string())?.as_ref(),
                            base.cube().map_err(|e| e.to_string())?.as_ref(),
                            WaveParams::default(),
                            cold,
                            datacube::ExecConfig::with_servers(params.io_servers),
                        )
                        .map_err(|e| e.to_string())?;
                        let out = client.adopt(pick(idx));
                        Ok(vec![WfData::CubeRef(out.id().0)])
                    })
            };
        let hwd = index_task("hw_duration_max", &tmax, baseline_tmax, false, |i| i.duration_max)?;
        let hwn = index_task("hw_number", &tmax, baseline_tmax, false, |i| i.number)?;
        let hwf = index_task("hw_frequency", &tmax, baseline_tmax, false, |i| i.frequency)?;
        let cwd = index_task("cw_duration_max", &tmin, baseline_tmin, true, |i| i.duration_max)?;
        let cwn = index_task("cw_number", &tmin, baseline_tmin, true, |i| i.number)?;
        let cwf = index_task("cw_frequency", &tmin, baseline_tmin, true, |i| i.frequency)?;

        // #13 validation over the heat and cold index triples.
        let validation = {
            let client = client.clone();
            let days = self.params.days_per_year;
            self.rt
                .task("validate_indices")
                .on_failure(FailurePolicy::IgnoreCancelSuccessors)
                .key(&format!("validate-{year_key}"))
                .reads(&[
                    hwd.outputs[0].clone(),
                    hwn.outputs[0].clone(),
                    hwf.outputs[0].clone(),
                    cwd.outputs[0].clone(),
                    cwn.outputs[0].clone(),
                    cwf.outputs[0].clone(),
                ])
                .writes(&[format!("validation-{year_key}").as_str()])
                .run(move |inp: &[Arc<WfData>]| {
                    let cube = |d: &Arc<WfData>| -> Result<_, String> {
                        client
                            .open(d.cube_id().ok_or("expected cube ref")?)
                            .and_then(|h| h.cube())
                            .map_err(|e| e.to_string())
                    };
                    let heat = heatwave::HeatwaveIndices {
                        duration_max: (*cube(&inp[0])?).clone(),
                        number: (*cube(&inp[1])?).clone(),
                        frequency: (*cube(&inp[2])?).clone(),
                    };
                    let cold = heatwave::HeatwaveIndices {
                        duration_max: (*cube(&inp[3])?).clone(),
                        number: (*cube(&inp[4])?).clone(),
                        frequency: (*cube(&inp[5])?).clone(),
                    };
                    let rh = validate_indices(&heat, WaveParams::default(), days);
                    let rc = validate_indices(&cold, WaveParams::default(), days);
                    if rh.passed() && rc.passed() {
                        Ok(vec![WfData::Text("ok".into())])
                    } else {
                        Err(format!(
                            "validation failed: heat {:?} cold {:?}",
                            rh.findings, rc.findings
                        ))
                    }
                })?
        };

        // #14 export the six index maps as NCX files (gated on validation).
        let export = {
            let client = client.clone();
            let dir = self.params.products_dir();
            let year_key_owned = year_key.to_string();
            self.rt
                .task("export_indices")
                .key(&format!("export-{year_key}"))
                .on_failure(self.recovery_policy())
                .reads(&[
                    hwd.outputs[0].clone(),
                    hwn.outputs[0].clone(),
                    hwf.outputs[0].clone(),
                    cwd.outputs[0].clone(),
                    cwn.outputs[0].clone(),
                    cwf.outputs[0].clone(),
                    validation.outputs[0].clone(),
                ])
                .writes(&[format!("exports-{year_key}").as_str()])
                .run(move |inp: &[Arc<WfData>]| {
                    let names = ["hwd", "hwn", "hwf", "cwd", "cwn", "cwf"];
                    let mut paths = Vec::new();
                    for (d, name) in inp.iter().zip(names) {
                        let h = client
                            .open(d.cube_id().ok_or("expected cube ref")?)
                            .map_err(|e| e.to_string())?;
                        let path = dir.join(format!("{name}-{year_key_owned}.ncx"));
                        h.exportnc(&path).map_err(|e| e.to_string())?;
                        paths.push(path);
                    }
                    Ok(vec![WfData::Paths(paths)])
                })?
        };

        // #15 TC preprocessing: bundle the four needed fields per timestep
        // into one analysis-ready file.
        let tc_input = {
            let dir = self.params.products_dir();
            let year_key_owned = year_key.to_string();
            let store = Arc::clone(&self.store);
            self.rt
                .task("tc_preprocess")
                .on_failure(FailurePolicy::IgnoreCancelSuccessors)
                .key(&format!("tcpre-{year_key}"))
                .reads(&[stage.outputs[0].clone()])
                .writes(&[format!("tcinput-{year_key}").as_str()])
                .run(move |inp: &[Arc<WfData>]| {
                    let out = dir.join(format!("tcinput-{year_key_owned}.ncx"));
                    match store.get(&year_key_owned) {
                        Some(sy) => {
                            build_tc_input_mem(&sy.days, &out).map_err(|e| e.to_string())?
                        }
                        None => {
                            let files = inp[0].paths().ok_or("expected file list")?;
                            build_tc_input(files, &out).map_err(|e| e.to_string())?;
                        }
                    }
                    Ok(vec![WfData::Path(out)])
                })?
        };

        // #16 CNN localization (+ geo-referencing) over every timestep,
        // run as a gang-scheduled data-parallel task (the PyCOMPSs `@mpi`
        // integration): replica r processes timesteps r, r+size, ..., each
        // with its own model instance; rank 0 assembles the year's CSV.
        let cnn_out = {
            let replicas = if self.params.workers >= 4 { 2u32 } else { 1 };
            let dir = self.params.products_dir();
            let year_key_owned = year_key.to_string();
            let patch = self.params.patch;
            let model_file = self
                .params
                .model_path
                .clone()
                .unwrap_or_else(|| self.params.out_dir.join("tc_cnn.tml"));
            let parts: Arc<Mutex<std::collections::BTreeMap<u32, String>>> =
                Arc::new(Mutex::new(std::collections::BTreeMap::new()));
            let service = self.cnn_service.clone();
            let store = Arc::clone(&self.store);
            self.rt
                .task("tc_cnn_localize")
                .key(&format!("tccnn-{year_key}"))
                .reads(&[tc_input.outputs[0].clone(), model_token.clone()])
                .constraint(Constraint::any())
                .replicated(replicas)
                .writes(&[format!("tc-cnn-{year_key}").as_str()])
                .run_replicated(move |inp: &[Arc<WfData>], replica| {
                    // Streamed years route every timestep through the
                    // shared batched inference service; otherwise each
                    // replica fans its share of timesteps out over the
                    // shared pool with per-chunk model instances.
                    let part = match (&service, store.get(&year_key_owned)) {
                        (Some(svc), Some(sy)) => cnn_localize_steps_streamed(
                            &sy.days,
                            svc,
                            patch,
                            replica.rank,
                            replica.size,
                        )?,
                        _ => {
                            let path = match &*inp[0] {
                                WfData::Path(p) => p.clone(),
                                _ => return Err("expected tc input path".into()),
                            };
                            cnn_localize_steps(
                                &path,
                                patch,
                                &model_file,
                                replica.rank,
                                replica.size,
                            )?
                        }
                    };
                    parts.lock().insert(replica.rank, part);
                    if replica.rank != 0 {
                        return Ok(vec![]);
                    }
                    // Rank 0 gathers every replica's rows.
                    let deadline = Instant::now() + Duration::from_secs(600);
                    while parts.lock().len() < replica.size as usize {
                        if Instant::now() > deadline {
                            return Err("timed out gathering CNN replicas".into());
                        }
                        std::thread::sleep(Duration::from_millis(2));
                    }
                    let mut rows: Vec<String> = std::mem::take(&mut *parts.lock())
                        .into_values()
                        .flat_map(|part| part.lines().map(str::to_string).collect::<Vec<_>>())
                        .collect();
                    rows.sort_by_key(|l| {
                        let mut it = l.split(',');
                        let day: usize = it.next().and_then(|v| v.parse().ok()).unwrap_or(0);
                        let step: usize = it.next().and_then(|v| v.parse().ok()).unwrap_or(0);
                        (day, step)
                    });
                    let mut csv = String::from("day,step,lat,lon,confidence\n");
                    for r in rows {
                        csv.push_str(&r);
                        csv.push('\n');
                    }
                    let out = dir.join(format!("tc-cnn-{year_key_owned}.csv"));
                    std::fs::write(&out, &csv).map_err(|e| e.to_string())?;
                    Ok(vec![WfData::Text(csv)])
                })?
        };

        // #17 deterministic detection + tracking.
        let tracks_out = {
            let dir = self.params.products_dir();
            let year_key_owned = year_key.to_string();
            self.rt
                .task("tc_track_deterministic")
                .key(&format!("tctracks-{year_key}"))
                .on_failure(self.recovery_policy())
                .reads(&[tc_input.outputs[0].clone()])
                .writes(&[format!("tc-tracks-{year_key}").as_str()])
                .run(move |inp: &[Arc<WfData>]| {
                    let path = match &*inp[0] {
                        WfData::Path(p) => p.clone(),
                        _ => return Err("expected tc input path".into()),
                    };
                    let csv = track_year(&path).map_err(|e| e.to_string())?;
                    let out = dir.join(format!("tc-tracks-{year_key_owned}.csv"));
                    std::fs::write(&out, &csv).map_err(|e| e.to_string())?;
                    Ok(vec![WfData::Text(csv)])
                })?
        };

        // #18 map products (Figure 4: the Heat Wave Number map, plus the
        // cold equivalent).
        let maps = {
            let client = client.clone();
            let dir = self.params.products_dir();
            let year_key_owned = year_key.to_string();
            self.rt
                .task("render_maps")
                .key(&format!("maps-{year_key}"))
                .on_failure(self.recovery_policy())
                .reads(&[
                    hwn.outputs[0].clone(),
                    cwn.outputs[0].clone(),
                    validation.outputs[0].clone(),
                ])
                .writes(&[format!("maps-{year_key}").as_str()])
                .run(move |inp: &[Arc<WfData>]| {
                    let mut paths = Vec::new();
                    for (d, name) in inp.iter().take(2).zip(["hwn", "cwn"]) {
                        let h = client
                            .open(d.cube_id().ok_or("expected cube ref")?)
                            .map_err(|e| e.to_string())?;
                        let cube = h.cube().map_err(|e| e.to_string())?;
                        let ppm = dir.join(format!("{name}-map-{year_key_owned}.ppm"));
                        extremes::maps::write_ppm(&cube, &ppm).map_err(|e| e.to_string())?;
                        let txt = dir.join(format!("{name}-map-{year_key_owned}.txt"));
                        let art =
                            extremes::maps::ascii_map(&cube, 24, 72).map_err(|e| e.to_string())?;
                        std::fs::write(&txt, art).map_err(|e| e.to_string())?;
                        paths.push(ppm);
                        paths.push(txt);
                    }
                    Ok(vec![WfData::Paths(paths)])
                })?
        };

        // #19 (streaming plane only) stream_record: fold this year into
        // the record-to-date incremental indices. Chained through the
        // previous year's record token so years fold in calendar order —
        // the run-length machines carry open spells across the boundary.
        let record = if self.params.streaming {
            let client = client.clone();
            let params = params.clone();
            let state = Arc::clone(&self.record);
            let year_key_owned = year_key.to_string();
            let mut reads = vec![
                tmax.outputs[0].clone(),
                tmin.outputs[0].clone(),
                baseline_tmax.clone(),
                baseline_tmin.clone(),
            ];
            if let Some(p) = record_prev {
                reads.push(p.clone());
            }
            let h = self
                .rt
                .task("stream_record")
                .key(&format!("record-{year_key}"))
                .on_failure(FailurePolicy::IgnoreCancelSuccessors)
                .reads(&reads)
                .writes(&[format!("record-{year_key}").as_str()])
                .run(move |inp: &[Arc<WfData>]| {
                    let cube = |d: &Arc<WfData>| {
                        client
                            .open(d.cube_id().ok_or("expected cube ref")?)
                            .and_then(|h| h.cube())
                            .map_err(|e| e.to_string())
                    };
                    let tmax = cube(&inp[0])?;
                    let tmin = cube(&inp[1])?;
                    let base_tmax = cube(&inp[2])?;
                    let base_tmin = cube(&inp[3])?;
                    let year: i32 =
                        year_key_owned.parse().map_err(|_| "bad year key".to_string())?;
                    let mut st = state.lock();
                    st.init_if_needed(&base_tmax, &base_tmin, params.nfrag, params.io_servers);
                    // Checkpoint-restored years never ran their record
                    // task in this process; fold them from their daily
                    // files first so the record stays calendar-ordered.
                    let next = st.next_year(params.esm_config().start_year);
                    if next < year {
                        fold_years_from_files(&mut st, next..year, &params, &client)?;
                    }
                    if !st.years.contains(&year) {
                        st.fold(year, &tmax, &tmin).map_err(|e| e.to_string())?;
                    }
                    Ok(vec![WfData::Num(st.years.len() as f64)])
                })?;
            Some(h.outputs[0].clone())
        } else {
            None
        };

        Ok(YearTaskRefs {
            year_key: year_key.to_string(),
            n_files,
            hwn: hwn.outputs[0].clone(),
            cwn: cwn.outputs[0].clone(),
            validation: validation.outputs[0].clone(),
            exports: export.outputs[0].clone(),
            cnn_csv: cnn_out.outputs[0].clone(),
            tracks_csv: tracks_out.outputs[0].clone(),
            maps: maps.outputs[0].clone(),
            record,
        })
    }

    /// Runs the full pipelined workflow: simulation years chained, per-year
    /// analysis submitted as years stream in, everything concurrent. With
    /// `params.streaming`, years hand over in memory through a bounded
    /// channel; otherwise analysis keys off the daily files.
    pub fn run(&self) -> Result<RunReport, WorkflowError> {
        if self.params.streaming {
            self.run_streaming()
        } else {
            self.run_staged()
        }
    }

    /// The file-keyed pipelined driver: per-year analysis starts when the
    /// directory watcher sees a complete year of daily files.
    fn run_staged(&self) -> Result<RunReport, WorkflowError> {
        let start = Instant::now();
        let baseline = self
            .submit_load_baseline()
            .map_err(WorkflowError::dataflow(WorkflowStage::Baseline))?;
        let model =
            self.submit_load_model().map_err(WorkflowError::dataflow(WorkflowStage::ModelLoad))?;

        // Chain the simulation years (#1 runs iteratively).
        let mut prev: Option<DataRef> = None;
        for y in 0..self.params.years {
            let h = self
                .submit_esm_year(y, prev.as_ref(), None)
                .map_err(WorkflowError::dataflow(WorkflowStage::Simulation))?;
            prev = Some(h.outputs[0].clone());
        }

        // Master streaming loop: submit per-year analysis as years complete.
        let esm_dir = self.params.esm_dir();
        let mut watcher = DirWatcher::new(
            esm_dir.clone(),
            YearlyRule { prefix: "esm".into(), days_per_year: self.params.days_per_year },
        );
        let mut year_refs = Vec::new();
        const WAIT_SECS: u64 = 3600;
        let deadline = Instant::now() + Duration::from_secs(WAIT_SECS);
        while year_refs.len() < self.params.years {
            if Instant::now() > deadline {
                return Err(WorkflowError::Timeout {
                    stage: WorkflowStage::Streaming,
                    waited_secs: WAIT_SECS,
                });
            }
            // A fail-fast abort (e.g. an injected fault exhausting its
            // retries) means the files this loop is waiting for will never
            // land; surface the abort instead of spinning to the deadline.
            if let Some(err) = self.rt.aborted() {
                return Err(WorkflowError::Aborted { source: err });
            }
            for group in
                watcher.poll().map_err(WorkflowError::io(WorkflowStage::Streaming, &esm_dir))?
            {
                let refs = self
                    .submit_year_analysis(
                        &group.key,
                        group.files,
                        &baseline.outputs[0],
                        &baseline.outputs[1],
                        &model.outputs[0],
                        None,
                    )
                    .map_err(WorkflowError::dataflow(WorkflowStage::Analysis))?;
                year_refs.push(refs);
            }
            std::thread::sleep(Duration::from_millis(5));
        }

        self.rt.barrier().map_err(WorkflowError::dataflow(WorkflowStage::Barrier))?;
        self.collect_report(start.elapsed(), &year_refs)
    }

    /// The streaming driver: completed years arrive through a bounded
    /// in-memory channel (the simulation blocks when analytics lags —
    /// backpressure), with the directory watcher as the durable fallback
    /// for years that never streamed (checkpoint restores, lost sends).
    fn run_streaming(&self) -> Result<RunReport, WorkflowError> {
        let start = Instant::now();
        let baseline = self
            .submit_load_baseline()
            .map_err(WorkflowError::dataflow(WorkflowStage::Baseline))?;
        let model =
            self.submit_load_model().map_err(WorkflowError::dataflow(WorkflowStage::ModelLoad))?;

        let (tx, rx) = bounded::<Arc<StreamedYear>>("esm-years", self.params.stream_depth);
        let mut prev: Option<DataRef> = None;
        for y in 0..self.params.years {
            let h = self
                .submit_esm_year(y, prev.as_ref(), Some(tx.clone()))
                .map_err(WorkflowError::dataflow(WorkflowStage::Simulation))?;
            prev = Some(h.outputs[0].clone());
        }
        drop(tx);

        let esm_dir = self.params.esm_dir();
        let mut watcher = DirWatcher::new(
            esm_dir.clone(),
            YearlyRule { prefix: "esm".into(), days_per_year: self.params.days_per_year },
        );
        let mut year_refs: Vec<YearTaskRefs> = Vec::new();
        let mut submitted: BTreeSet<String> = BTreeSet::new();
        let mut record_prev: Option<DataRef> = None;
        let (mut streamed, mut fallback) = (0usize, 0usize);
        const WAIT_SECS: u64 = 3600;
        let deadline = Instant::now() + Duration::from_secs(WAIT_SECS);
        while year_refs.len() < self.params.years {
            if Instant::now() > deadline {
                return Err(WorkflowError::Timeout {
                    stage: WorkflowStage::Streaming,
                    waited_secs: WAIT_SECS,
                });
            }
            if let Some(err) = self.rt.aborted() {
                return Err(WorkflowError::Aborted { source: err });
            }
            // In-memory arrivals first; the recv doubles as the loop's
            // pacing, so no sleep is needed.
            let mut pending: BTreeMap<String, (Vec<PathBuf>, bool)> = BTreeMap::new();
            match rx.recv_timeout(Duration::from_millis(20)) {
                RecvTimeout::Item(sy) => {
                    self.store.insert(Arc::clone(&sy));
                    pending.insert(sy.key.clone(), (sy.files.clone(), true));
                }
                RecvTimeout::TimedOut | RecvTimeout::Disconnected => {}
            }
            for group in
                watcher.poll().map_err(WorkflowError::io(WorkflowStage::Streaming, &esm_dir))?
            {
                pending.entry(group.key).or_insert((group.files, false));
            }
            // BTreeMap order keeps record-task chaining calendar-ascending
            // even when a restored year surfaces via its files while a
            // later year streams in.
            for (key, (files, via_stream)) in pending {
                if !submitted.insert(key.clone()) {
                    continue;
                }
                let refs = self
                    .submit_year_analysis(
                        &key,
                        files,
                        &baseline.outputs[0],
                        &baseline.outputs[1],
                        &model.outputs[0],
                        record_prev.as_ref(),
                    )
                    .map_err(WorkflowError::dataflow(WorkflowStage::Analysis))?;
                record_prev = refs.record.clone();
                if via_stream {
                    streamed += 1;
                } else {
                    fallback += 1;
                }
                year_refs.push(refs);
            }
        }

        self.rt.barrier().map_err(WorkflowError::dataflow(WorkflowStage::Barrier))?;
        let record_paths = self.export_record_products(&baseline)?;
        let mut report = self.collect_report(start.elapsed(), &year_refs)?;
        let stats = self.cnn_service.as_ref().map(|s| s.stats()).unwrap_or_default();
        report.stream = Some(StreamSummary {
            years_streamed: streamed,
            fallback_years: fallback,
            stall_us: rx.stall_micros(),
            record_years: self.record.lock().years.len(),
            cnn_batches: stats.batches,
            cnn_items: stats.items,
            cnn_mean_batch: stats.mean_occupancy(),
            record_paths,
        });
        Ok(report)
    }

    /// Exports the record-to-date (cross-year) index products accumulated
    /// by the `stream_record` chain: the six heat/cold maps as NCX plus
    /// one NCX of the ETCCDI counters. A resume run whose record tasks
    /// were all restored from the checkpoint folds the missing years from
    /// their daily files first.
    fn export_record_products(&self, baseline: &TaskHandle) -> Result<Vec<PathBuf>, WorkflowError> {
        let malformed =
            |message: String| WorkflowError::Malformed { stage: WorkflowStage::Report, message };
        let fetch_cube = |r: &DataRef| {
            let d = self.rt.fetch(r).map_err(WorkflowError::dataflow(WorkflowStage::Report))?;
            self.client
                .open(d.cube_id().ok_or_else(|| malformed("baseline is not a cube".into()))?)
                .and_then(|h| h.cube())
                .map_err(WorkflowError::cube(WorkflowStage::Report))
        };
        let base_tmax = fetch_cube(&baseline.outputs[0])?;
        let base_tmin = fetch_cube(&baseline.outputs[1])?;
        let mut st = self.record.lock();
        st.init_if_needed(&base_tmax, &base_tmin, self.params.nfrag, self.params.io_servers);
        let start_year = self.params.esm_config().start_year;
        let end_year = start_year + self.params.years as i32;
        let next = st.next_year(start_year);
        if next < end_year {
            fold_years_from_files(&mut st, next..end_year, &self.params, &self.client)
                .map_err(malformed)?;
        }

        let dir = self.params.products_dir();
        let heat = st
            .heat
            .as_ref()
            .expect("initialized")
            .indices()
            .map_err(WorkflowError::cube(WorkflowStage::Report))?;
        let cold = st
            .cold
            .as_ref()
            .expect("initialized")
            .indices()
            .map_err(WorkflowError::cube(WorkflowStage::Report))?;
        let mut paths = Vec::new();
        for (cube, name) in [
            (heat.duration_max, "record-hwd"),
            (heat.number, "record-hwn"),
            (heat.frequency, "record-hwf"),
            (cold.duration_max, "record-cwd"),
            (cold.number, "record-cwn"),
            (cold.frequency, "record-cwf"),
        ] {
            let path = dir.join(format!("{name}.ncx"));
            self.client
                .adopt(cube)
                .exportnc(&path)
                .map_err(WorkflowError::cube(WorkflowStage::Report))?;
            paths.push(path);
        }

        let et = st.etccdi.as_ref().expect("initialized");
        let (frost, summer, txx, tnn) = et.values();
        let grid = &self.params.grid;
        let path = dir.join("record-etccdi.ncx");
        let write = || -> ncformat::Result<()> {
            let mut w = ncformat::Writer::create(&path)?;
            w.set_attribute("days", ncformat::Value::from(et.days() as i64));
            w.add_dimension("lat", grid.nlat)?;
            w.add_dimension("lon", grid.nlon)?;
            w.add_variable_f64("lat", &["lat"], &grid.lats(), vec![])?;
            w.add_variable_f64("lon", &["lon"], &grid.lons(), vec![])?;
            for (name, data) in
                [("frost_days", frost), ("summer_days", summer), ("txx", txx), ("tnn", tnn)]
            {
                w.add_variable_f32(name, &["lat", "lon"], data, vec![])?;
            }
            w.finish()
        };
        write().map_err(|e| malformed(e.to_string()))?;
        paths.push(path);
        Ok(paths)
    }

    /// Assembles the run report by fetching task outputs and comparing the
    /// TC products against the ground truth.
    pub(crate) fn collect_report(
        &self,
        wall: Duration,
        year_refs: &[YearTaskRefs],
    ) -> Result<RunReport, WorkflowError> {
        let truth = self.truth();
        let mut years = Vec::new();
        for refs in year_refs {
            let year: i32 = refs.year_key.parse().map_err(|_| WorkflowError::Malformed {
                stage: WorkflowStage::Report,
                message: format!("bad year key '{}'", refs.year_key),
            })?;
            // A failed/cancelled analysis subtree (per-task failure
            // management, Section 4.2.1) leaves the year marked failed in
            // the report while the rest of the campaign stands.
            if self.rt.fetch(&refs.validation).is_err() {
                years.push(YearReport {
                    year,
                    failed: true,
                    files: refs.n_files,
                    validated: false,
                    heatwave_cells: 0,
                    coldspell_cells: 0,
                    cnn_detections: 0,
                    deterministic_track_points: 0,
                    truth_tcs: 0,
                    truth_thermal_events: 0,
                    export_paths: Vec::new(),
                    map_paths: Vec::new(),
                    cnn_scores: None,
                    deterministic_scores: None,
                });
                continue;
            }
            let fetch = |r: &DataRef| {
                self.rt.fetch(r).map_err(WorkflowError::dataflow(WorkflowStage::Report))
            };
            let not_a_cube = |what: &str| WorkflowError::Malformed {
                stage: WorkflowStage::Report,
                message: format!("{what} output is not a cube reference"),
            };
            let hwn_cube = self
                .client
                .open(fetch(&refs.hwn)?.cube_id().ok_or_else(|| not_a_cube("hwn"))?)
                .and_then(|h| h.cube())
                .map_err(WorkflowError::cube(WorkflowStage::Report))?;
            let cwn_cube = self
                .client
                .open(fetch(&refs.cwn)?.cube_id().ok_or_else(|| not_a_cube("cwn"))?)
                .and_then(|h| h.cube())
                .map_err(WorkflowError::cube(WorkflowStage::Report))?;
            let hw_cells = hwn_cube.to_dense().iter().filter(|v| **v > 0.0).count();
            let cw_cells = cwn_cube.to_dense().iter().filter(|v| **v > 0.0).count();

            let cnn_csv = fetch(&refs.cnn_csv)?.text().unwrap_or_default().to_string();
            let tracks_csv = fetch(&refs.tracks_csv)?.text().unwrap_or_default().to_string();
            let exports = fetch(&refs.exports)?.paths().unwrap_or_default().to_vec();
            let maps = fetch(&refs.maps)?.paths().unwrap_or_default().to_vec();
            let validated = fetch(&refs.validation)?.text() == Some("ok");
            let year_truth = truth.iter().find(|t| t.year == year);
            let (cnn_scores, det_scores) = match year_truth {
                Some(t) => {
                    let truth_centers = truth_centers(t, self.params.days_per_year);
                    (
                        Some(extremes::tc::metrics::verify(
                            &truth_centers,
                            &parse_centers_cnn(&cnn_csv),
                            1200.0,
                        )),
                        Some(extremes::tc::metrics::verify(
                            &truth_centers,
                            &parse_centers_tracks(&tracks_csv),
                            1200.0,
                        )),
                    )
                }
                None => (None, None),
            };

            years.push(YearReport {
                year,
                failed: false,
                files: refs.n_files,
                validated,
                heatwave_cells: hw_cells,
                coldspell_cells: cw_cells,
                cnn_detections: cnn_csv.lines().count().saturating_sub(1),
                deterministic_track_points: tracks_csv.lines().count().saturating_sub(1),
                truth_tcs: year_truth.map(|t| t.tcs.len()).unwrap_or(0),
                truth_thermal_events: year_truth.map(|t| t.thermal.len()).unwrap_or(0),
                export_paths: exports,
                map_paths: maps,
                cnn_scores,
                deterministic_scores: det_scores,
            });
        }

        let (tasks, edges, critical_path) = self.rt.graph_stats();
        let dot = self.rt.graph_dot();
        let dot_path = self.params.out_dir.join("taskgraph.dot");
        std::fs::write(&dot_path, &dot)
            .map_err(WorkflowError::io(WorkflowStage::Report, &dot_path))?;

        // Provenance export (Section 2's provenance capability): the full
        // used/wasGeneratedBy record of the run, in PROV-style text.
        let prov_path = self.params.out_dir.join("provenance.prov.txt");
        std::fs::write(&prov_path, self.rt.provenance().to_prov_text())
            .map_err(WorkflowError::io(WorkflowStage::Report, &prov_path))?;

        Ok(RunReport {
            wall_time: wall,
            years,
            tasks,
            edges,
            critical_path,
            function_counts: self.rt.function_counts(),
            dot_path,
            prov_path,
            metrics: self.rt.metrics(),
            timed: self.rt.timing_report(),
            policy: self.rt.policy_name(),
            placements: self.rt.scheduler_decisions(),
            stream: None,
        })
    }
}

/// Per-year output references used by the report collector.
pub(crate) struct YearTaskRefs {
    year_key: String,
    n_files: usize,
    hwn: DataRef,
    cwn: DataRef,
    validation: DataRef,
    exports: DataRef,
    cnn_csv: DataRef,
    tracks_csv: DataRef,
    maps: DataRef,
    /// Record token of the `stream_record` task (streaming plane only);
    /// the next year's record task chains on it.
    pub(crate) record: Option<DataRef>,
}

/// Pre-trains the TC-localization CNN the way the workflow's `load_model`
/// task expects it: a synthetic-vortex warm-up followed by fine-tuning on
/// labelled output of a historical reference run of the same model — the
/// reproduction's stand-in for "a CNN previously trained on historical
/// data" (Section 5.4).
pub fn pretrain_cnn(params: &WorkflowParams) -> TcCnn {
    let mut m = TcCnn::new(params.patch, params.seed);
    m.train_synthetic(params.train_samples, params.train_epochs, params.seed ^ 0xC0_FFEE);
    if params.finetune_days > 0 {
        let steps = reference_training_steps(params);
        let mut data = extremes::tc::cnn::extract_labeled_patches(
            &steps,
            params.patch,
            3,
            params.seed ^ 0xF17E,
        );
        // The boosted reference season yields thousands of patches; cap the
        // set (deterministic stride subsample) so pre-training stays a
        // seconds-scale step, matching `train_samples`'s budget intent.
        let cap = (params.train_samples * 3).max(300);
        if data.len() > cap {
            let stride = data.len().div_ceil(cap);
            data = data.into_iter().step_by(stride).collect();
        }
        // Rehearsal: mix synthetic patches back in so fine-tuning cannot
        // collapse onto the (imbalanced, correlated) reference batch.
        let rehearsal = tinyml::data::generate_patches(
            &tinyml::data::PatchGenConfig { size: params.patch, ..Default::default() },
            data.len().max(32) / 2,
            params.seed ^ 0xBEEF,
        );
        data.extend(rehearsal);
        m.train_on(data, params.finetune_epochs, 0.02);
    }
    m
}

/// Generates the CNN fine-tuning dataset: a historical reference run of
/// the same model (distinct seed, boosted cyclone activity so positives
/// are plentiful) stepped day by day, with per-timestep truth centers.
fn reference_training_steps(
    params: &WorkflowParams,
) -> Vec<(extremes::tc::cnn::FieldSet, Vec<(f64, f64)>)> {
    use extremes::tc::cnn::FieldSet;
    let mut cfg = params.esm_config();
    cfg.scenario = esm::Scenario::Historical;
    cfg.start_year = 1995;
    cfg.seed ^= 0x05EE_D0FF;
    cfg.tc_per_year *= 4.0;
    cfg.days_per_year = cfg.days_per_year.max(params.finetune_days);
    let mut model = esm::CoupledModel::new(cfg.clone());
    let events = model.year_events().clone();
    let analysis =
        extremes::tc::cnn::analysis_grid(esm::atmos::tc_radius_deg(&cfg.grid), params.patch);
    let mut steps = Vec::new();
    for _ in 0..params.finetune_days.min(cfg.days_per_year) {
        let fields = model.step_day();
        for s in 0..cfg.timesteps_per_day {
            let level = |name: &str| fields.get(name).expect("model output variable").level(s);
            let centers: Vec<(f64, f64)> = events
                .tcs
                .iter()
                .filter_map(|t| t.at(fields.day, s))
                .map(|p| (p.lat, p.lon))
                .collect();
            let native = FieldSet {
                psl: level("psl"),
                wind: level("sfcWind"),
                tas: level("tas"),
                vort: level("vort"),
            };
            steps.push((native.regrid(&analysis), centers));
        }
    }
    steps
}

/// Stacks per-day fields into a `(lat, lon | day)` cube.
fn fields_to_year_cube(
    days: &[Field2],
    measure: &str,
    params: &WorkflowParams,
) -> datacube::Result<datacube::model::Cube> {
    use datacube::model::{Cube, Dimension, SharedData};
    let grid = &days[0].grid;
    let nlat = grid.nlat;
    let nlon = grid.nlon;
    let nday = days.len();
    // (lat, lon | day): per cell, the day series. Built straight into the
    // shared payload the fragments will window into — no staging vector.
    let data = SharedData::from_fn(nlat * nlon * nday, |data| {
        for (d, f) in days.iter().enumerate() {
            for (idx, &v) in f.data.iter().enumerate() {
                data[idx * nday + d] = v;
            }
        }
    });
    let dims = vec![
        Dimension::explicit("lat", grid.lats()),
        Dimension::explicit("lon", grid.lons()),
        Dimension::implicit("day", (0..nday).map(|d| d as f64).collect::<Vec<_>>()),
    ];
    Cube::from_shared(measure, dims, data, params.nfrag, params.io_servers)
}

/// Task #5/#6 body: build the daily-extreme year cube from the daily files
/// using datacube operators (import → reduce over sub-daily steps → stack).
fn import_daily_extreme(
    files: &[PathBuf],
    op: ReduceOp,
    measure: &str,
    params: &WorkflowParams,
    client: &Client,
) -> datacube::Result<CubeHandle> {
    let cfg = datacube::ExecConfig::with_servers(params.io_servers);
    let mut day_cubes = Vec::with_capacity(files.len());
    for (d, f) in files.iter().enumerate() {
        let rd = Reader::open(f)?;
        let cube =
            datacube::ops::import_transposed(&rd, "tas", "time", "lat", "lon", params.nfrag, cfg)?;
        let daily = datacube::ops::reduce(&cube, op, "time", cfg)?;
        day_cubes.push(datacube::ops::add_singleton_implicit(&daily, "day", d as f64)?);
    }
    let refs: Vec<&datacube::model::Cube> = day_cubes.iter().collect();
    let mut year = datacube::ops::concat_implicit(&refs, "day")?;
    year.measure = measure.to_string();
    Ok(client.adopt(year))
}

/// Task #5/#6 body on the streaming hot path: the same daily-extreme year
/// cube as [`import_daily_extreme`], built straight from the in-memory
/// [`DayBlock`]s — no reader, no intermediate per-day cubes. The reduction
/// mirrors [`ReduceOp`]'s fold (same begin value, same `max`/`min` chain)
/// so the result is bitwise-identical to the file route.
fn import_daily_extreme_mem(
    days: &[DayBlock],
    op: ReduceOp,
    measure: &str,
    params: &WorkflowParams,
    client: &Client,
) -> datacube::Result<CubeHandle> {
    use datacube::model::{Cube, Dimension, SharedData};
    let first = days.first().ok_or_else(|| datacube::Error::SchemaMismatch("empty year".into()))?;
    let grid = &first.grid;
    let n = grid.nlat * grid.nlon;
    let spd = first.steps_per_day;
    let nday = days.len();
    let pick_max = matches!(op, ReduceOp::Max);
    for block in days {
        if block.var("tas").is_none() {
            return Err(datacube::Error::SchemaMismatch("day block missing tas".into()));
        }
    }
    let data = SharedData::from_fn(n * nday, |data| {
        for (d, block) in days.iter().enumerate() {
            let stack = block.var("tas").expect("checked above");
            for idx in 0..n {
                let mut acc = if pick_max { f32::NEG_INFINITY } else { f32::INFINITY };
                for t in 0..spd {
                    let v = stack[t * n + idx];
                    acc = if pick_max { acc.max(v) } else { acc.min(v) };
                }
                data[idx * nday + d] = acc;
            }
        }
    });
    let dims = vec![
        Dimension::explicit("lat", grid.lats()),
        Dimension::explicit("lon", grid.lons()),
        Dimension::implicit("day", (0..nday).map(|d| d as f64).collect::<Vec<_>>()),
    ];
    Cube::from_shared(measure, dims, data, params.nfrag, params.io_servers).map(|c| client.adopt(c))
}

/// Task #15 body: bundle `(psl, sfcWind, tas, vort)` for every timestep of
/// the year into one analysis-ready NCX file with a `step` axis.
fn build_tc_input(files: &[PathBuf], out: &Path) -> ncformat::Result<()> {
    let first = Reader::open(&files[0])?;
    let nlat = first.dimension("lat")?.size;
    let nlon = first.dimension("lon")?.size;
    let spd = first.dimension("time")?.size;
    let steps = files.len() * spd;

    let mut w = ncformat::Writer::create(out)?;
    w.add_dimension("step", steps)?;
    w.add_dimension("lat", nlat)?;
    w.add_dimension("lon", nlon)?;
    w.add_variable_f64("lat", &["lat"], &first.read_all_f64("lat")?, vec![])?;
    w.add_variable_f64("lon", &["lon"], &first.read_all_f64("lon")?, vec![])?;
    for var in ["psl", "sfcWind", "tas", "vort"] {
        let mut stack = Vec::with_capacity(steps * nlat * nlon);
        for f in files {
            let rd = Reader::open(f)?;
            stack.extend(rd.read_all_f32(var)?);
        }
        w.add_variable_f32(var, &["step", "lat", "lon"], &stack, vec![])?;
    }
    w.set_attribute("steps_per_day", ncformat::Value::from(spd as i64));
    w.finish()
}

/// Task #15 body on the streaming hot path: the same analysis-ready NCX
/// file as [`build_tc_input`], assembled from the in-memory [`DayBlock`]s.
/// Coordinates come from the grid (the daily files wrote the same values)
/// and variable stacks concatenate in day order, so the output file is
/// byte-identical to the file route.
fn build_tc_input_mem(days: &[DayBlock], out: &Path) -> ncformat::Result<()> {
    let first =
        days.first().ok_or_else(|| std::io::Error::other("empty year in streaming handoff"))?;
    let grid = &first.grid;
    let spd = first.steps_per_day;
    let steps = days.len() * spd;

    let mut w = ncformat::Writer::create(out)?;
    w.add_dimension("step", steps)?;
    w.add_dimension("lat", grid.nlat)?;
    w.add_dimension("lon", grid.nlon)?;
    w.add_variable_f64("lat", &["lat"], &grid.lats(), vec![])?;
    w.add_variable_f64("lon", &["lon"], &grid.lons(), vec![])?;
    for var in ["psl", "sfcWind", "tas", "vort"] {
        let mut stack = Vec::with_capacity(steps * grid.nlat * grid.nlon);
        for block in days {
            let part = block
                .var(var)
                .ok_or_else(|| std::io::Error::other(format!("missing {var} in day block")))?;
            stack.extend_from_slice(part);
        }
        w.add_variable_f32(var, &["step", "lat", "lon"], &stack, vec![])?;
    }
    w.set_attribute("steps_per_day", ncformat::Value::from(spd as i64));
    w.finish()
}

/// Task #16 body (one replica's share): CNN localization over timesteps
/// `rank, rank+size, ...`; returns header-less CSV rows
/// `day,step,lat,lon,confidence`.
///
/// Inside the replica, its timesteps are split into at most
/// pool-width contiguous chunks that run concurrently on the shared
/// [`par`] pool; every chunk task opens its own reader and loads its
/// own model instance (inference mutates layer caches), and chunk
/// outputs concatenate in chunk order so rows stay step-ascending.
fn cnn_localize_steps(
    input: &Path,
    patch: usize,
    model_file: &Path,
    rank: u32,
    size: u32,
) -> Result<String, String> {
    let rd = Reader::open(input).map_err(|e| e.to_string())?;
    let dim = |name: &str| rd.dimension(name).map(|d| d.size).map_err(|e| e.to_string());
    let (nlat, nlon) = (dim("lat")?, dim("lon")?);
    let steps = dim("step")?;
    let spd = rd.attribute("steps_per_day").and_then(|v| v.as_f64()).unwrap_or(4.0) as usize;
    drop(rd);
    let grid = gridded::Grid::global(nlat, nlon);
    let my_steps: Vec<usize> = (rank as usize..steps).step_by((size as usize).max(1)).collect();
    if my_steps.is_empty() {
        return Ok(String::new());
    }
    let width = par::global().threads().min(my_steps.len());
    let chunks: Vec<&[usize]> = my_steps.chunks(my_steps.len().div_ceil(width)).collect();
    let parts: Vec<Result<String, String>> = par::par_map(&chunks, |chunk| {
        let rd = Reader::open(input).map_err(|e| e.to_string())?;
        let mut model = TcCnn::load(patch, model_file).map_err(|e| e.to_string())?;
        let analysis =
            extremes::tc::cnn::analysis_grid(esm::atmos::tc_radius_deg(&grid), model.patch);
        let mut csv = String::new();
        for &s in chunk.iter() {
            let read = |var: &str| -> Result<Field2, String> {
                let data = rd
                    .read_slab_f32(var, &[s, 0, 0], &[1, nlat, nlon])
                    .map_err(|e| e.to_string())?;
                Ok(Field2::from_vec(grid.clone(), data))
            };
            let native = extremes::tc::cnn::FieldSet {
                psl: read("psl")?,
                wind: read("sfcWind")?,
                tas: read("tas")?,
                vort: read("vort")?,
            };
            let set = native.regrid(&analysis);
            for det in model.localize_set(&set) {
                csv.push_str(&format!(
                    "{},{},{:.3},{:.3},{:.3}\n",
                    s / spd,
                    s % spd,
                    det.lat,
                    det.lon,
                    det.confidence
                ));
            }
        }
        Ok(csv)
    });
    let mut csv = String::new();
    for p in parts {
        csv.push_str(&p?);
    }
    Ok(csv)
}

/// Task #16 body on the streaming hot path: the replica's timesteps go to
/// the shared [`CnnService`] instead of per-chunk model instances. All
/// requests are submitted up front (so the service can batch them), then
/// awaited in step order — rows stay step-ascending and byte-identical to
/// [`cnn_localize_steps`] because localization of one step is independent
/// of the batch it rode in.
fn cnn_localize_steps_streamed(
    days: &[DayBlock],
    service: &CnnService,
    patch: usize,
    rank: u32,
    size: u32,
) -> Result<String, String> {
    let Some(first) = days.first() else {
        return Ok(String::new());
    };
    let grid = first.grid.clone();
    let n = grid.nlat * grid.nlon;
    let spd = first.steps_per_day;
    let steps = days.len() * spd;
    let analysis = extremes::tc::cnn::analysis_grid(esm::atmos::tc_radius_deg(&grid), patch);
    let plane = |var: &str, s: usize| -> Result<Field2, String> {
        let block = &days[s / spd];
        let t = s % spd;
        let stack = block.var(var).ok_or_else(|| format!("missing {var} in day block"))?;
        Ok(Field2::from_vec(grid.clone(), stack[t * n..(t + 1) * n].to_vec()))
    };
    let mut tickets = Vec::new();
    for s in (rank as usize..steps).step_by((size as usize).max(1)) {
        let native = extremes::tc::cnn::FieldSet {
            psl: plane("psl", s)?,
            wind: plane("sfcWind", s)?,
            tas: plane("tas", s)?,
            vort: plane("vort", s)?,
        };
        tickets.push((s, service.submit(native, analysis.clone())));
    }
    let mut csv = String::new();
    for (s, ticket) in tickets {
        for det in ticket.wait()? {
            csv.push_str(&format!(
                "{},{},{:.3},{:.3},{:.3}\n",
                s / spd,
                s % spd,
                det.lat,
                det.lon,
                det.confidence
            ));
        }
    }
    Ok(csv)
}

/// Task #17 body: deterministic detection per timestep + trajectory
/// stitching; CSV output `track,day,step,lat,lon,psl_pa,wind_ms`.
fn track_year(input: &Path) -> ncformat::Result<String> {
    let rd = Reader::open(input)?;
    let (nlat, nlon) = (rd.dimension("lat")?.size, rd.dimension("lon")?.size);
    let steps = rd.dimension("step")?.size;
    let spd = rd.attribute("steps_per_day").and_then(|v| v.as_f64()).unwrap_or(4.0) as usize;
    let grid = gridded::Grid::global(nlat, nlon);
    let params = DetectorParams::default();
    let mut per_step = Vec::with_capacity(steps);
    for s in 0..steps {
        let read = |var: &str| -> ncformat::Result<Field2> {
            let data = rd.read_slab_f32(var, &[s, 0, 0], &[1, nlat, nlon])?;
            Ok(Field2::from_vec(grid.clone(), data))
        };
        let psl = read("psl")?;
        let wind = read("sfcWind")?;
        let tas = read("tas")?;
        let vort = read("vort")?;
        per_step.push(detect_timestep(&psl, &wind, &tas, &vort, &params));
    }
    let tracks = stitch_tracks(&per_step, &TrackParams::default());
    let mut csv = String::from("track,day,step,lat,lon,psl_pa,wind_ms\n");
    for (ti, tr) in tracks.iter().enumerate() {
        for (s, d) in &tr.points {
            csv.push_str(&format!(
                "{ti},{},{},{:.3},{:.3},{:.1},{:.1}\n",
                s / spd,
                s % spd,
                d.lat,
                d.lon,
                d.min_psl_pa,
                d.max_wind_ms
            ));
        }
    }
    Ok(csv)
}

/// Ground-truth TC centers as `(global timestep, lat, lon)` tuples.
fn truth_centers(events: &YearEvents, _days_per_year: usize) -> Vec<(usize, f64, f64)> {
    let mut out = Vec::new();
    for tc in &events.tcs {
        for p in &tc.points {
            // Global step index within the year (4 steps per day).
            out.push((p.day * 4 + p.step, p.lat, p.lon));
        }
    }
    out
}

/// Parses the CNN CSV back into `(timestep, lat, lon)` centers.
fn parse_centers_cnn(csv: &str) -> Vec<(usize, f64, f64)> {
    csv.lines()
        .skip(1)
        .filter_map(|l| {
            let mut it = l.split(',');
            let day: usize = it.next()?.parse().ok()?;
            let step: usize = it.next()?.parse().ok()?;
            let lat: f64 = it.next()?.parse().ok()?;
            let lon: f64 = it.next()?.parse().ok()?;
            Some((day * 4 + step, lat, lon))
        })
        .collect()
}

/// Parses the deterministic-track CSV back into `(timestep, lat, lon)`.
fn parse_centers_tracks(csv: &str) -> Vec<(usize, f64, f64)> {
    csv.lines()
        .skip(1)
        .filter_map(|l| {
            let mut it = l.split(',');
            let _track: usize = it.next()?.parse().ok()?;
            let day: usize = it.next()?.parse().ok()?;
            let step: usize = it.next()?.parse().ok()?;
            let lat: f64 = it.next()?.parse().ok()?;
            let lon: f64 = it.next()?.parse().ok()?;
            Some((day * 4 + step, lat, lon))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wfdata_roundtrips() {
        for v in [
            WfData::Unit,
            WfData::Text("hello".into()),
            WfData::Path(PathBuf::from("/a/b.ncx")),
            WfData::Paths(vec![PathBuf::from("/a"), PathBuf::from("/b")]),
            WfData::Paths(vec![]),
            WfData::Num(3.5),
            WfData::CubeRef(42),
        ] {
            let enc = v.encode();
            assert_eq!(WfData::decode(&enc), Some(v));
        }
        assert_eq!(WfData::decode(&[]), None);
        assert_eq!(WfData::decode(&[99]), None);
    }

    #[test]
    fn accessor_helpers() {
        assert_eq!(WfData::CubeRef(7).cube_id(), Some(CubeId(7)));
        assert_eq!(WfData::Unit.cube_id(), None);
        assert_eq!(WfData::Text("x".into()).text(), Some("x"));
        assert!(WfData::Paths(vec![]).paths().unwrap().is_empty());
    }

    #[test]
    fn csv_parsers_roundtrip() {
        let csv = "day,step,lat,lon,confidence\n3,2,15.500,140.250,0.93\n";
        let centers = parse_centers_cnn(csv);
        assert_eq!(centers, vec![(14, 15.5, 140.25)]);

        let csv = "track,day,step,lat,lon,psl_pa,wind_ms\n0,3,2,15.5,140.25,98000.0,33.0\n";
        let centers = parse_centers_tracks(csv);
        assert_eq!(centers, vec![(14, 15.5, 140.25)]);

        assert!(parse_centers_cnn("header only\n").is_empty());
        assert!(parse_centers_tracks("h\ngarbage,line\n").is_empty());
    }

    #[test]
    fn fields_to_year_cube_layout() {
        let params = WorkflowParams::test_scale(std::env::temp_dir().join("cs-layout"));
        let g = gridded::Grid::global(4, 6);
        let days: Vec<Field2> = (0..3).map(|d| Field2::constant(g.clone(), d as f32)).collect();
        let cube = fields_to_year_cube(&days, "t", &params).unwrap();
        assert_eq!(cube.rows(), 24);
        assert_eq!(cube.implicit_len(), 3);
        assert_eq!(cube.row_series(5).unwrap(), &[0.0, 1.0, 2.0]);
    }
}
