//! Whole-workflow drivers and the HPCWaaS registration.
//!
//! Two ways to execute the same science, which experiment C1 compares:
//!
//! * [`run_sequential`] — the pre-integration practice the paper's
//!   introduction describes: run the full multi-year simulation to
//!   completion, *then* post-process everything "in a second stage";
//! * [`run_pipelined`] — the paper's contribution: simulation and
//!   analytics in one task graph, per-year analysis starting as soon as a
//!   year of files exists, all overlapped by the runtime.
//!
//! [`register_with_hpcwaas`] publishes the workflow behind the HPCWaaS
//! Execution API so an end user can deploy/run/undeploy it without
//! touching any of the infrastructure (Section 6).

use crate::casestudy::CaseStudy;
use crate::error::{WorkflowError, WorkflowStage};
use crate::params::WorkflowParams;
use crate::reporting::RunReport;
use hpcwaas::tosca::climate_case_study;
use hpcwaas::ExecutionApi;
use std::time::Instant;

/// Runs the pipelined (paper) configuration.
pub fn run_pipelined(params: WorkflowParams) -> Result<RunReport, WorkflowError> {
    let cs = CaseStudy::new(params)?;
    let report = cs.run();
    cs.rt.shutdown();
    report
}

/// Runs the sequential baseline: the ESM completes all years first, then
/// the per-year analyses are submitted. Same tasks, no overlap with the
/// simulation.
pub fn run_sequential(params: WorkflowParams) -> Result<RunReport, WorkflowError> {
    let cs = CaseStudy::new(params)?;
    let report = cs.run_sequential();
    cs.rt.shutdown();
    report
}

impl CaseStudy {
    /// Sequential driver used by [`run_sequential`] and bench C1.
    pub fn run_sequential(&self) -> Result<RunReport, WorkflowError> {
        use dataflow::stream::{DirWatcher, YearlyRule};
        let start = Instant::now();
        let baseline = self
            .submit_load_baseline()
            .map_err(WorkflowError::dataflow(WorkflowStage::Baseline))?;
        let model =
            self.submit_load_model().map_err(WorkflowError::dataflow(WorkflowStage::ModelLoad))?;

        // Phase 1: the whole simulation, to completion.
        let mut prev = None;
        for y in 0..self.params.years {
            let h = self
                .submit_esm_year(y, prev.as_ref(), None)
                .map_err(WorkflowError::dataflow(WorkflowStage::Simulation))?;
            prev = Some(h.outputs[0].clone());
        }
        self.rt.barrier().map_err(WorkflowError::dataflow(WorkflowStage::Barrier))?;

        // Phase 2: all analyses (the "second stage").
        let esm_dir = self.params.esm_dir();
        let mut watcher = DirWatcher::new(
            esm_dir.clone(),
            YearlyRule { prefix: "esm".into(), days_per_year: self.params.days_per_year },
        );
        let mut year_refs = Vec::new();
        let mut record_prev = None;
        for group in
            watcher.poll().map_err(WorkflowError::io(WorkflowStage::Streaming, &esm_dir))?
        {
            let refs = self
                .submit_year_analysis(
                    &group.key,
                    group.files,
                    &baseline.outputs[0],
                    &baseline.outputs[1],
                    &model.outputs[0],
                    record_prev.as_ref(),
                )
                .map_err(WorkflowError::dataflow(WorkflowStage::Analysis))?;
            record_prev = refs.record.clone();
            year_refs.push(refs);
        }
        self.rt.barrier().map_err(WorkflowError::dataflow(WorkflowStage::Barrier))?;
        self.collect_report(start.elapsed(), &year_refs)
    }
}

/// Registers the case study with an HPCWaaS Execution API instance under
/// its TOSCA topology name (`climate-extremes`). The entrypoint parses
/// invocation inputs into [`WorkflowParams`], runs the pipelined workflow
/// in a scratch directory beneath `work_root`, and returns the rendered
/// report.
pub fn register_with_hpcwaas(api: &ExecutionApi, work_root: std::path::PathBuf) {
    let counter = std::sync::atomic::AtomicU64::new(0);
    api.register(climate_case_study(), move |inputs| {
        let n = counter.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
        let out_dir = work_root.join(format!("run-{n}"));
        let params = WorkflowParams::test_scale(out_dir).apply_inputs(inputs)?;
        let report = run_pipelined(params)?;
        Ok(report.render())
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("e2e-tests").join(name);
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    /// The full end-to-end pipelined workflow on a tiny configuration.
    #[test]
    fn pipelined_end_to_end_produces_products() {
        let mut params = WorkflowParams::test_scale(tmp("pipelined"));
        params.years = 1;
        params.days_per_year = 20;
        params.train_samples = 160;
        params.train_epochs = 8;
        let report = run_pipelined(params).unwrap();

        assert_eq!(report.years.len(), 1);
        let y = &report.years[0];
        assert_eq!(y.year, 2030);
        assert_eq!(y.files, 20);
        assert!(y.validated, "index validation must pass");
        assert_eq!(y.export_paths.len(), 6, "six index exports");
        for p in &y.export_paths {
            assert!(p.exists(), "missing export {p:?}");
        }
        assert_eq!(y.map_paths.len(), 4, "ppm+txt for hwn and cwn");
        for p in &y.map_paths {
            assert!(p.exists(), "missing map {p:?}");
        }
        // Figure-3 structure: all 18 task functions present.
        assert_eq!(report.function_counts.len(), 18, "{:?}", report.function_counts);
        assert!(report.dot_path.exists());
        let dot = std::fs::read_to_string(&report.dot_path).unwrap();
        assert!(dot.contains("digraph workflow"));
        // No failures or cancellations.
        assert_eq!(report.metrics.failed, 0);
        assert_eq!(report.metrics.cancelled, 0);
    }

    #[test]
    fn sequential_and_pipelined_agree_on_science() {
        let mk = |name: &str| {
            let mut p = WorkflowParams::test_scale(tmp(name));
            p.years = 1;
            p.days_per_year = 15;
            p.train_samples = 120;
            p.train_epochs = 6;
            p
        };
        let a = run_pipelined(mk("agree-pipe")).unwrap();
        let b = run_sequential(mk("agree-seq")).unwrap();
        // Same seeds, same model physics: identical index statistics.
        assert_eq!(a.years[0].heatwave_cells, b.years[0].heatwave_cells);
        assert_eq!(a.years[0].coldspell_cells, b.years[0].coldspell_cells);
        assert_eq!(a.years[0].truth_tcs, b.years[0].truth_tcs);
    }

    /// Streaming smoke: the in-memory data plane produces the same product
    /// set, populates the streaming report section, and adds the
    /// record-to-date task + exports on top of the 18 staged functions.
    #[test]
    fn streaming_end_to_end_produces_products() {
        let mut params = WorkflowParams::test_scale(tmp("streaming"));
        params.years = 2;
        params.days_per_year = 12;
        params.train_samples = 120;
        params.train_epochs = 6;
        params.streaming = true;
        let report = run_pipelined(params).unwrap();

        assert_eq!(report.years.len(), 2);
        for y in &report.years {
            assert!(y.validated, "index validation must pass");
            assert_eq!(y.export_paths.len(), 6);
            for p in &y.export_paths {
                assert!(p.exists(), "missing export {p:?}");
            }
        }
        let st = report.stream.as_ref().expect("streaming section");
        assert_eq!(st.years_streamed + st.fallback_years, 2);
        assert!(st.years_streamed >= 1, "at least one year should stream in-memory");
        assert_eq!(st.record_years, 2, "record state folded both years");
        assert!(st.cnn_items > 0, "CNN service saw requests");
        assert!(st.cnn_batches > 0);
        assert_eq!(st.record_paths.len(), 7, "6 wave maps + etccdi");
        for p in &st.record_paths {
            assert!(p.exists(), "missing record product {p:?}");
        }
        // The 18 staged functions plus the stream_record fold.
        assert_eq!(report.function_counts.len(), 19, "{:?}", report.function_counts);
        assert_eq!(report.metrics.failed, 0);
        assert_eq!(report.metrics.cancelled, 0);
    }

    #[test]
    fn hpcwaas_roundtrip_runs_the_workflow() {
        let api = ExecutionApi::new();
        register_with_hpcwaas(&api, tmp("hpcwaas"));
        let dep = api.deploy("climate-extremes").unwrap();
        let mut overrides = std::collections::BTreeMap::new();
        overrides.insert("years".to_string(), "1".to_string());
        overrides.insert("days_per_year".to_string(), "12".to_string());
        let handle = api.submit(dep, &overrides).unwrap();
        match handle.wait() {
            hpcwaas::ExecutionStatus::Completed { result } => {
                assert!(result.contains("Climate-extremes workflow report"));
                assert!(result.contains("year 2030"));
            }
            other => panic!("unexpected status: {other:?}"),
        }
        api.undeploy(dep).unwrap();
    }
}
