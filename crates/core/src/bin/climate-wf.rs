//! `climate-wf` — command-line front end for the end-to-end workflow.
//!
//! ```text
//! climate-wf run [--years N] [--days N] [--grid test_small|demo|LATxLON]
//!                [--scenario historical|ssp245|ssp585] [--seed N]
//!                [--policy fifo|locality|heft|lookahead]
//!                [--out DIR] [--sequential]
//!                [--streaming] [--stream-depth N] [--cnn-batch N]
//!                [--trace out.json] [--metrics out.prom]
//! climate-wf report [run options]      run with profiling: timed critical
//!                                      path, pool utilization, latency
//!                                      percentiles, crash flight recorder
//! climate-wf chaos [--seed N] [--faults N] [--out DIR]
//!                                      seeded fault-injection smoke run with
//!                                      checkpoint-resume recovery
//! climate-wf serve-bench [--tenants N] [--rates HZ,HZ,...] [--duration-ms N]
//!                [--seed N] [--workers N] [--out FILE.json]
//!                                      multi-tenant serving sweep: admission,
//!                                      fair share, shared cube cache
//! climate-wf graph [--years N]         print the Figure-3 DOT graph
//! climate-wf topology                  print the case study's TOSCA document
//! climate-wf ncdump FILE.ncx           inspect an NCX file header
//! climate-wf info                      paper-scale data arithmetic (Sec. 5.2)
//! ```

use climate_workflows::{run_pipelined, run_sequential, ServeBenchConfig, WorkflowParams};
use std::collections::BTreeMap;

fn usage() -> ! {
    eprintln!(
        "usage: climate-wf <run|report|chaos|serve-bench|graph|topology|ncdump|info> [options]\n\
         \n\
         run      [--years N] [--days N] [--grid test_small|demo|LATxLON]\n\
         \x20        [--scenario historical|ssp245|ssp585] [--seed N] [--out DIR] [--sequential]\n\
         \x20        [--policy fifo|locality|heft|lookahead] [--trace out.json] [--metrics out.prom]\n\
         \x20        [--streaming] [--stream-depth N] [--cnn-batch N] in-memory year handoff\n\
         \x20        with incremental record indices and batched CNN inference\n\
         report   [run options] run with profiling: timed critical path with slack,\n\
         \x20        what-if speedups, pool utilization, latency percentiles;\n\
         \x20        arms the crash flight recorder (dumps JSONL on failure)\n\
         chaos    [--seed N] [--faults N] [--out DIR] run a tiny checkpointed\n\
         \x20        workflow under a seeded fault plan; on failure, resume from\n\
         \x20        the checkpoint (always dumps the flight recorder as JSONL)\n\
         serve-bench [--tenants N] [--rates HZ,HZ,...] [--duration-ms N] [--seed N]\n\
         \x20        [--workers N] [--out FILE.json] open-loop multi-tenant serving\n\
         \x20        sweep: admission control, fair-share dispatch, shared cube cache\n\
         graph    [--years N]   print the task graph in Graphviz DOT\n\
         topology               print the TOSCA topology document\n\
         ncdump FILE            inspect an NCX file\n\
         info                   paper-scale data characteristics"
    );
    std::process::exit(2)
}

/// Parses `--key value` pairs and bare flags from an argument list.
/// Returns `(flags, positional)`.
fn parse_args(args: &[String]) -> (BTreeMap<String, String>, Vec<String>) {
    let mut flags = BTreeMap::new();
    let mut positional = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if let Some(key) = args[i].strip_prefix("--") {
            let takes_value = !matches!(key, "sequential" | "streaming");
            if takes_value && i + 1 < args.len() {
                flags.insert(key.to_string(), args[i + 1].clone());
                i += 2;
            } else {
                flags.insert(key.to_string(), "true".to_string());
                i += 1;
            }
        } else {
            positional.push(args[i].clone());
            i += 1;
        }
    }
    (flags, positional)
}

/// Builds workflow parameters from parsed flags (reusing the HPCWaaS input
/// mapping so the CLI and the Execution API accept the same keys).
fn params_from_flags(flags: &BTreeMap<String, String>) -> Result<WorkflowParams, String> {
    let out_dir = flags
        .get("out")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::env::temp_dir().join("climate-wf-run"));
    let mut inputs = BTreeMap::new();
    for (k, v) in flags {
        let key = match k.as_str() {
            "years" => "years",
            "days" => "days_per_year",
            "grid" => "grid",
            "scenario" => "scenario",
            "seed" => "seed",
            "workers" => "workers",
            "policy" => "policy",
            "streaming" => "streaming",
            "stream-depth" => "stream_depth",
            "cnn-batch" => "cnn_batch",
            _ => continue,
        };
        inputs.insert(key.to_string(), v.clone());
    }
    WorkflowParams::test_scale(out_dir).apply_inputs(&inputs)
}

fn cmd_run(flags: &BTreeMap<String, String>) -> Result<(), String> {
    let params = params_from_flags(flags)?;
    std::fs::remove_dir_all(&params.out_dir).ok();
    let sequential = flags.contains_key("sequential");
    println!(
        "running the climate-extremes workflow ({}): {} year(s) x {} days on {}x{}",
        if sequential {
            "sequential"
        } else if params.streaming {
            "streaming"
        } else {
            "pipelined"
        },
        params.years,
        params.days_per_year,
        params.grid.nlat,
        params.grid.nlon
    );

    // Observability taps. Subscribing before the run activates the global
    // bus; without --trace the workflow never pays more than an atomic
    // load per would-be event.
    let tracer = flags.get("trace").map(|_| obs::global().subscribe_with_capacity(1 << 21));

    let report = if sequential { run_sequential(params) } else { run_pipelined(params) }?;
    print!("{}", report.render());
    println!("provenance: {}", report.prov_path.display());

    if let (Some(path), Some(rx)) = (flags.get("trace"), tracer) {
        let events = rx.drain();
        std::fs::write(path, obs::chrome_trace(&events)).map_err(|e| e.to_string())?;
        println!(
            "trace: {path} ({} events{})",
            events.len(),
            if rx.dropped() > 0 { format!(", {} dropped", rx.dropped()) } else { String::new() }
        );
    }
    if let Some(path) = flags.get("metrics") {
        std::fs::write(path, obs::registry().render_prometheus()).map_err(|e| e.to_string())?;
        println!("metrics: {path}");
    }
    Ok(())
}

/// `climate-wf report`: run the workflow with full profiling enabled and
/// print the performance report — measured critical path with slack and
/// what-if speedups, per-function self-time, compute-pool utilization and
/// a latency percentile table. The crash flight recorder is armed for the
/// whole run; a task failure or panic dumps the most recent events as
/// JSONL next to the workflow outputs.
fn cmd_report(flags: &BTreeMap<String, String>) -> Result<(), String> {
    let params = params_from_flags(flags)?;
    std::fs::remove_dir_all(&params.out_dir).ok();
    std::fs::create_dir_all(&params.out_dir).map_err(|e| e.to_string())?;

    let flight_path = params.out_dir.join("flight.jsonl");
    obs::flight::set_dump_path(&flight_path);
    obs::flight::install_panic_hook();
    obs::flight::enable();

    let tracer = flags.get("trace").map(|_| obs::global().subscribe_with_capacity(1 << 21));

    let sequential = flags.contains_key("sequential");
    let report = if sequential { run_sequential(params) } else { run_pipelined(params) }?;
    print!("{}", report.render());

    println!("pool utilization:");
    for w in par::global().worker_stats() {
        println!(
            "  worker {:>2}: {:>5.1}% busy ({} tasks, {} stolen, {}ms busy / {}ms idle)",
            w.worker,
            w.utilization() * 100.0,
            w.tasks,
            w.steals,
            w.busy_us / 1000,
            w.idle_us / 1000
        );
    }

    println!("latency percentiles (\u{b5}s):");
    println!("  {:<40} {:>8} {:>8} {:>8} {:>8}", "histogram", "count", "p50", "p95", "p99");
    for (name, h) in obs::registry().histograms() {
        if !name.contains("_us") || h.count() == 0 {
            continue;
        }
        println!(
            "  {:<40} {:>8} {:>8.0} {:>8.0} {:>8.0}",
            name,
            h.count(),
            h.percentile(0.50),
            h.percentile(0.95),
            h.percentile(0.99)
        );
    }

    if let (Some(path), Some(rx)) = (flags.get("trace"), tracer) {
        let events = rx.drain();
        std::fs::write(path, obs::chrome_trace(&events)).map_err(|e| e.to_string())?;
        println!("trace: {path} ({} events)", events.len());
    }
    if report.metrics.failed > 0 {
        println!("flight recorder: {} (dumped on task failure)", flight_path.display());
    }
    Ok(())
}

/// `climate-wf chaos`: run a tiny checkpointed workflow under a seeded
/// fault plan. The plan is printed up front (same seed → same plan →
/// same faults), tasks retry with deterministic backoff, and if the
/// armed run still dies the command disarms chaos and resumes from the
/// checkpoint log — demonstrating the full fault-injection / recovery
/// loop. The flight recorder is armed throughout and always dumped as
/// JSONL so post-mortem tooling can be validated against it.
fn cmd_chaos(flags: &BTreeMap<String, String>) -> Result<(), String> {
    let get_u64 = |key: &str, default: u64| -> Result<u64, String> {
        flags.get(key).map_or(Ok(default), |v| v.parse().map_err(|_| format!("bad {key} '{v}'")))
    };
    let seed = get_u64("seed", 7)?;
    let faults = get_u64("faults", 3)? as usize;
    let out_dir = flags
        .get("out")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::env::temp_dir().join("climate-wf-chaos"));
    std::fs::remove_dir_all(&out_dir).ok();
    std::fs::create_dir_all(&out_dir).map_err(|e| e.to_string())?;

    let flight_path = out_dir.join("chaos-flight.jsonl");
    obs::flight::set_dump_path(&flight_path);
    obs::flight::install_panic_hook();
    obs::flight::enable();

    let plan = dataflow::inject::FaultPlan::from_seed(seed, faults);
    println!("{plan}");

    let params = || {
        WorkflowParams::builder(&out_dir)
            .years(1)
            .days_per_year(6)
            .seed(seed)
            .workers(2)
            .training(40, 2)
            .finetuning(0, 0)
            .checkpoint(out_dir.join("chaos.ckpt"))
            .retries(2, 5)
            .build()
    };

    let (first, fired) = {
        let armed = plan.arm();

        // Exercise the HPCWaaS degradation paths while the plan is live:
        // staging transfers may drop (bounded retries, degraded mode) and
        // cluster jobs may bounce back to the queue (capped attempts).
        let mut dls = hpcwaas::dls::DataLogistics::new();
        let staging = hpcwaas::dls::PipelineSpec::new()
            .stage("forcing-in", "archive", "hpc", 50_000_000)
            .stage("products-out", "hpc", "cloud", 20_000_000);
        let transfer = dls.execute(&staging);
        println!(
            "staging: {} stages, {} retries{}",
            transfer.stages.len(),
            transfer.retries,
            if transfer.degraded { ", DEGRADED" } else { "" }
        );
        let mut cluster = hpcwaas::cluster::Cluster::homogeneous(2, 8);
        for i in 0..4 {
            cluster
                .submit(hpcwaas::cluster::JobSpec::new(&format!("member-{i}"), 4, 100))
                .map_err(|e| e.to_string())?;
        }
        let schedule = cluster.schedule();
        println!(
            "cluster: {} placements, {} requeues",
            schedule.placements.len(),
            schedule.requeued
        );

        let first = run_pipelined(params()?);
        (first, armed.fired())
    };
    println!("faults fired: {}", fired.len());
    for f in &fired {
        println!("  {f}");
    }

    let report = match first {
        Ok(r) => r,
        Err(e) => {
            println!("armed run failed ({e}); disarmed, resuming from checkpoint");
            run_pipelined(params()?)?
        }
    };
    println!(
        "recovered: {} tasks completed ({} restored from checkpoint, {} retries, {} timed out)",
        report.metrics.completed,
        report.metrics.restored,
        report.metrics.retries,
        report.metrics.timed_out
    );

    match obs::flight::dump("chaos: run complete") {
        Some(p) => println!("flight recorder: {}", p.display()),
        None => return Err("flight recorder produced no dump".into()),
    }
    Ok(())
}

/// `climate-wf serve-bench`: sweep the multi-tenant serving layer with a
/// seeded open-loop traffic generator and print one summary line per
/// arrival-rate point (plus the full JSON with `--out`).
fn cmd_serve_bench(flags: &BTreeMap<String, String>) -> Result<(), String> {
    let mut cfg = ServeBenchConfig::default();
    let parse = |key: &str, v: &str| -> Result<u64, String> {
        v.parse().map_err(|_| format!("bad {key} '{v}'"))
    };
    if let Some(v) = flags.get("tenants") {
        cfg.tenants = parse("tenants", v)? as usize;
    }
    if let Some(v) = flags.get("duration-ms") {
        cfg.duration_ms = parse("duration-ms", v)?;
    }
    if let Some(v) = flags.get("seed") {
        cfg.seed = parse("seed", v)?;
    }
    if let Some(v) = flags.get("workers") {
        cfg.workers = parse("workers", v)? as usize;
    }
    if let Some(v) = flags.get("rates") {
        cfg.rates_hz = v
            .split(',')
            .map(|r| r.trim().parse::<f64>().map_err(|_| format!("bad rate '{r}'")))
            .collect::<Result<Vec<_>, _>>()?;
        if cfg.rates_hz.is_empty() {
            return Err("--rates needs at least one rate".into());
        }
    }
    println!(
        "serving sweep: {} tenant(s), {} worker(s), queue {}, {} shared cube(s), seed {}",
        cfg.tenants, cfg.workers, cfg.queue_capacity, cfg.distinct_cubes, cfg.seed
    );
    let report = climate_workflows::servebench::run(&cfg)?;
    for line in report.summary_lines() {
        println!("{line}");
    }
    if let Some(path) = flags.get("out") {
        std::fs::write(path, report.to_json()).map_err(|e| e.to_string())?;
        println!("report: {path}");
    }
    Ok(())
}

fn cmd_graph(flags: &BTreeMap<String, String>) -> Result<(), String> {
    let mut params = params_from_flags(flags)?;
    params.days_per_year = params.days_per_year.min(8);
    params.train_samples = 60;
    params.train_epochs = 3;
    params.finetune_days = 0;
    params.out_dir = std::env::temp_dir().join("climate-wf-graph");
    std::fs::remove_dir_all(&params.out_dir).ok();
    let report = run_pipelined(params)?;
    let dot = std::fs::read_to_string(&report.dot_path).map_err(|e| e.to_string())?;
    print!("{dot}");
    Ok(())
}

fn cmd_ncdump(path: &str) -> Result<(), String> {
    let rd = ncformat::Reader::open(path).map_err(|e| e.to_string())?;
    println!("ncx {path} {{");
    println!("dimensions:");
    for d in rd.dimensions() {
        println!("    {} = {} ;", d.name, d.size);
    }
    println!("variables:");
    for v in rd.variables() {
        let dims: Vec<String> = v.dims.iter().map(|&i| rd.dimensions()[i].name.clone()).collect();
        println!("    {} {}({}) ;", v.dtype.name(), v.name, dims.join(", "));
        for a in &v.attributes {
            println!("        {}:{} = {:?} ;", v.name, a.name, a.value);
        }
    }
    println!("}}");
    Ok(())
}

fn cmd_info() {
    println!("Section 5.2 data characteristics at paper resolution (768x1152, 4 steps, 20 vars):");
    println!("  daily file:        {:>8.1} MB   (paper: 271 MB)", esm::output::paper_daily_mb());
    println!("  one year:          {:>8.1} GB   (paper: ~100 GB)", esm::output::paper_yearly_gb());
    println!("  33-year projection:{:>8.2} TB", esm::output::paper_yearly_gb() * 33.0 / 1024.0);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else { usage() };
    let (flags, positional) = parse_args(&args[1..]);
    let result = match cmd.as_str() {
        "run" => cmd_run(&flags),
        "report" => cmd_report(&flags),
        "chaos" => cmd_chaos(&flags),
        "serve-bench" => cmd_serve_bench(&flags),
        "graph" => cmd_graph(&flags),
        "topology" => {
            print!("{}", hpcwaas::tosca::climate_case_study().to_source());
            Ok(())
        }
        "ncdump" => match positional.first() {
            Some(p) => cmd_ncdump(p),
            None => usage(),
        },
        "info" => {
            cmd_info();
            Ok(())
        }
        _ => usage(),
    };
    if let Err(e) = result {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_flags_and_positionals() {
        let args: Vec<String> = ["--years", "3", "file.ncx", "--sequential", "--grid", "demo"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let (flags, pos) = parse_args(&args);
        assert_eq!(flags["years"], "3");
        assert_eq!(flags["grid"], "demo");
        assert_eq!(flags["sequential"], "true");
        assert_eq!(pos, vec!["file.ncx"]);
    }

    #[test]
    fn params_from_flags_maps_keys() {
        let mut flags = BTreeMap::new();
        flags.insert("years".to_string(), "2".to_string());
        flags.insert("days".to_string(), "15".to_string());
        flags.insert("grid".to_string(), "24x36".to_string());
        flags.insert("out".to_string(), "/tmp/x".to_string());
        flags.insert("sequential".to_string(), "true".to_string());
        flags.insert("policy".to_string(), "heft".to_string());
        let p = params_from_flags(&flags).unwrap();
        assert_eq!(p.years, 2);
        assert_eq!(p.days_per_year, 15);
        assert_eq!((p.grid.nlat, p.grid.nlon), (24, 36));
        assert_eq!(p.out_dir, std::path::PathBuf::from("/tmp/x"));
        assert_eq!(p.sched_policy, dataflow::Policy::Heft);
    }

    #[test]
    fn bad_policy_rejected() {
        let mut flags = BTreeMap::new();
        flags.insert("policy".to_string(), "random".to_string());
        let err = params_from_flags(&flags).unwrap_err();
        assert!(err.contains("unknown scheduling policy"), "got: {err}");
    }

    #[test]
    fn bad_flag_values_error() {
        let mut flags = BTreeMap::new();
        flags.insert("years".to_string(), "three".to_string());
        assert!(params_from_flags(&flags).is_err());
    }
}
