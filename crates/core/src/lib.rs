//! # climate-workflows — the end-to-end climate-extremes case study
//!
//! This crate is the paper's primary contribution, reassembled on the Rust
//! substrates of this workspace: a single end-to-end workflow that
//! integrates
//!
//! 1. the **ESM simulation** (`esm`: the CMCC-CM3 surrogate writing one
//!    file per simulated day),
//! 2. **Big-Data analytics** (`datacube`: the Ophidia-style engine
//!    computing heat/cold-wave indices per year), and
//! 3. **Machine Learning** (`tinyml` + `extremes::tc`: a pre-trained CNN
//!    localizing tropical cyclones, next to a deterministic tracker),
//!
//! orchestrated by the task-based runtime (`dataflow`, the PyCOMPSs role):
//! the simulation task streams daily files; as soon as a full year is
//! available (the streaming interface) the per-year analytics and ML tasks
//! are submitted and run **concurrently with the continuing simulation**;
//! results are validated, exported as NCX files, and rendered as maps.
//! Deployment and invocation go through `hpcwaas` (Section 4's stack).
//!
//! Modules:
//!
//! * [`params`] — workflow parameters (also parseable from HPCWaaS inputs);
//! * [`casestudy`] — the task definitions (17 distinct task functions,
//!   matching the paper's Figure 3 coloring) and the pipelined driver;
//! * [`endtoend`] — sequential vs pipelined whole-workflow drivers
//!   (experiment C1) and the HPCWaaS-registered entrypoint;
//! * [`reporting`] — run reports (what the scientist gets back);
//! * [`error`] — typed workflow-outcome errors naming the failing stage;
//! * [`servebench`] — the multi-tenant serving benchmark (open-loop
//!   arrival sweeps against the HPCWaaS admission/fair-share scheduler).

pub mod casestudy;
pub mod endtoend;
pub mod error;
pub mod params;
pub mod reporting;
pub mod servebench;

pub use casestudy::{pretrain_cnn, CaseStudy, WfData};
pub use endtoend::{register_with_hpcwaas, run_pipelined, run_sequential};
pub use error::{WorkflowError, WorkflowStage};
pub use params::{ParamsBuilder, WorkflowParams};
pub use reporting::{RunReport, YearReport};
pub use servebench::{ServeBenchConfig, ServeBenchReport};
