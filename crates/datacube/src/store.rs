//! The in-memory cube store.
//!
//! Ophidia "can store the datasets in memory between different operators'
//! execution", which is what lets the paper's pipeline load the long-term
//! baseline climatology **once** and reuse it for every simulated year
//! (Section 5.3). `CubeStore` is that container: cubes live here between
//! operator calls, addressed by id, with memory accounting and an explicit
//! delete (Listing 1 calls `Mask.delete()` mid-pipeline).

use crate::error::{Error, Result};
use crate::model::Cube;
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Identifier of a stored cube.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CubeId(pub u64);

/// Thread-safe in-memory cube container.
#[derive(Default)]
pub struct CubeStore {
    inner: RwLock<Inner>,
}

#[derive(Default)]
struct Inner {
    cubes: BTreeMap<CubeId, Arc<Cube>>,
    next: u64,
    /// Running totals for introspection/benches.
    total_inserted: u64,
    peak_bytes: usize,
    /// Incrementally maintained sum of `bytes()` over resident cubes,
    /// updated on put/delete so neither insertion nor `resident_bytes`
    /// walks the whole store (that walk made `put` O(n) per insert).
    resident: usize,
}

impl CubeStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a cube, returning its id.
    pub fn put(&self, cube: Cube) -> CubeId {
        let mut inner = self.inner.write();
        inner.next += 1;
        let id = CubeId(inner.next);
        inner.resident += cube.bytes();
        inner.cubes.insert(id, Arc::new(cube));
        inner.total_inserted += 1;
        inner.peak_bytes = inner.peak_bytes.max(inner.resident);
        debug_assert_eq!(
            inner.resident,
            inner.cubes.values().map(|c| c.bytes()).sum::<usize>(),
            "incremental resident counter drifted from the full sum"
        );
        id
    }

    /// Fetches a cube by id (cheap: cubes are shared via `Arc`).
    pub fn get(&self, id: CubeId) -> Result<Arc<Cube>> {
        self.inner.read().cubes.get(&id).cloned().ok_or(Error::NoSuchCube(id.0))
    }

    /// Deletes a cube, freeing its memory once all handles drop.
    pub fn delete(&self, id: CubeId) -> Result<()> {
        let mut inner = self.inner.write();
        let cube = inner.cubes.remove(&id).ok_or(Error::NoSuchCube(id.0))?;
        inner.resident -= cube.bytes();
        Ok(())
    }

    /// Ids currently stored, ascending.
    pub fn list(&self) -> Vec<CubeId> {
        self.inner.read().cubes.keys().copied().collect()
    }

    /// Number of cubes currently stored.
    pub fn len(&self) -> usize {
        self.inner.read().cubes.len()
    }

    /// True when the store is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current resident bytes across all cubes (O(1): maintained
    /// incrementally on put/delete).
    pub fn resident_bytes(&self) -> usize {
        self.inner.read().resident
    }

    /// Recomputes resident bytes by walking every cube. Test/debug
    /// oracle for the incremental counter.
    pub fn resident_bytes_full_scan(&self) -> usize {
        self.inner.read().cubes.values().map(|c| c.bytes()).sum()
    }

    /// High-water mark of resident bytes.
    pub fn peak_bytes(&self) -> usize {
        self.inner.read().peak_bytes
    }

    /// Total cubes ever inserted (insert counter, not current population).
    pub fn total_inserted(&self) -> u64 {
        self.inner.read().total_inserted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Dimension;

    fn small_cube(v: f32) -> Cube {
        Cube::from_dense("m", vec![Dimension::explicit("x", vec![0.0, 1.0])], vec![v, v], 1, 1)
            .unwrap()
    }

    #[test]
    fn put_get_delete() {
        let s = CubeStore::new();
        let id = s.put(small_cube(1.0));
        assert_eq!(s.get(id).unwrap().to_dense(), vec![1.0, 1.0]);
        s.delete(id).unwrap();
        assert!(matches!(s.get(id), Err(Error::NoSuchCube(_))));
        assert!(matches!(s.delete(id), Err(Error::NoSuchCube(_))));
    }

    #[test]
    fn ids_are_unique_and_ordered() {
        let s = CubeStore::new();
        let a = s.put(small_cube(1.0));
        let b = s.put(small_cube(2.0));
        assert!(b > a);
        assert_eq!(s.list(), vec![a, b]);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn memory_accounting() {
        let s = CubeStore::new();
        assert_eq!(s.resident_bytes(), 0);
        let a = s.put(small_cube(1.0));
        let with_one = s.resident_bytes();
        assert_eq!(with_one, 8);
        let _b = s.put(small_cube(2.0));
        assert_eq!(s.resident_bytes(), 16);
        assert_eq!(s.resident_bytes(), s.resident_bytes_full_scan());
        s.delete(a).unwrap();
        assert_eq!(s.resident_bytes(), 8);
        assert_eq!(
            s.resident_bytes(),
            s.resident_bytes_full_scan(),
            "incremental counter must match the full walk after deletes"
        );
        assert_eq!(s.peak_bytes(), 16, "peak survives deletion");
        assert_eq!(s.total_inserted(), 2);
    }

    #[test]
    fn handles_survive_deletion() {
        // An Arc handed out before delete stays valid (memory is freed when
        // the last reader drops) — matching in-memory pipeline semantics.
        let s = CubeStore::new();
        let id = s.put(small_cube(7.0));
        let handle = s.get(id).unwrap();
        s.delete(id).unwrap();
        assert_eq!(handle.to_dense(), vec![7.0, 7.0]);
    }

    #[test]
    fn concurrent_access() {
        let s = Arc::new(CubeStore::new());
        let mut joins = Vec::new();
        for t in 0..8 {
            let s = Arc::clone(&s);
            joins.push(std::thread::spawn(move || {
                for i in 0..50 {
                    let id = s.put(small_cube((t * 100 + i) as f32));
                    let c = s.get(id).unwrap();
                    assert_eq!(c.to_dense()[0], (t * 100 + i) as f32);
                    if i % 2 == 0 {
                        s.delete(id).unwrap();
                    }
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        assert_eq!(s.len(), 8 * 25);
        assert_eq!(s.total_inserted(), 400);
    }
}
