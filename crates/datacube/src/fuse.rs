//! Fused operator-chain execution: one pass per fragment.
//!
//! The scalar operator set in [`crate::ops`] runs each operator as its own
//! sweep over every fragment — a chain of subset → apply → intercube →
//! reduce touches each byte once *per operator*. Climate analytics
//! throughput is bound by how few times each byte is touched, so this
//! module compiles such a chain into a single fused per-fragment kernel:
//! the fragment's [`SharedData`] window is traversed exactly once, with
//! the element-wise stages evaluated on [`LANES`]-wide blocks (hand
//! unrolled; the optimizer turns the per-lane loops into SIMD — no
//! nightly features) and `apply` expressions pre-compiled to a flat
//! [`Tape`] instead of re-walking the AST per element.
//!
//! # Fusion legality rules
//!
//! * Element-wise stages (`apply`, `intercube`) and implicit-dimension
//!   subsets commute with evaluating only the *surviving* element
//!   positions, so the compiler canonicalizes the chain into a gather map
//!   (final position → source index) plus a stage list evaluated at final
//!   positions only. Work dropped by a later subset is never computed.
//! * At most one **terminal** (a `reduce` or a `map_series`) is allowed,
//!   and it must be last: a reduction changes the index space, after
//!   which element positions no longer line up with any source gather.
//! * A [`Pipeline::tap`] (materialize the intermediate cube at that point
//!   in the same traversal) must not be followed by a `subset`: the tap
//!   must share the final index space or it would need positions the
//!   fused kernel never evaluates.
//!
//! # Bitwise conformance & the summation-order contract
//!
//! The scalar operator-by-operator path stays in-tree as the **oracle**:
//! [`Pipeline::run_scalar`] executes the same chain through [`crate::ops`]
//! and the differential suite (`tests/fused_conformance.rs`) asserts
//! `to_bits` equality against [`Pipeline::run`] under random chains,
//! fragmentations, lane remainders, and NaN/inf payloads. This works
//! because every fused stage performs the identical f32/f64 operation
//! sequence per element, and reductions follow the [`ReduceOp`] ordering
//! contract: accumulation is strictly sequential in series order — never
//! re-associated into per-lane partials — so fused == unfused bitwise
//! regardless of lane width or thread count.

use crate::error::{Error, Result};
use crate::exec::{par_map_fragments_named, par_map_fragments_tapped, ExecConfig};
use crate::expr::{ConstSelect, Expr, Tape, TapeEval, LANES};
use crate::model::{Cube, DimKind, Dimension, Fragment, SharedData};
use crate::ops::{self, InterOp, ReduceOp};
use std::sync::Arc;

/// Per-row series kernel of a `map_series` terminal: reads the (virtual)
/// row and writes exactly `out_len` values.
pub type SeriesFn = dyn Fn(&[f32], &mut [f32]) + Send + Sync;

enum Step {
    Subset { dim: String, lo: usize, hi: usize },
    Apply(Expr),
    Inter { b: Cube, op: InterOp },
}

enum Terminal {
    Reduce { op: ReduceOp, dim: String },
    Series { out_dim: String, out_len: usize, f: Arc<SeriesFn> },
}

/// Result of a fused run: the pipeline output plus the tapped
/// intermediate cube, when [`Pipeline::tap`] was requested.
pub struct FusedOutput {
    pub cube: Cube,
    pub tapped: Option<Cube>,
}

/// A fusible operator chain, built once and runnable against any
/// compatible source cube. See the module docs for legality rules.
///
/// ```
/// # use datacube::{fuse::Pipeline, ops::{InterOp, ReduceOp}, Expr, ExecConfig};
/// # use datacube::model::{Cube, Dimension};
/// # let dims = vec![Dimension::explicit("x", vec![0.0]),
/// #                 Dimension::implicit("t", vec![0.0, 1.0, 2.0, 3.0])];
/// # let cube = Cube::from_dense("v", dims, vec![1.0, -2.0, 3.0, -4.0], 1, 1).unwrap();
/// let p = Pipeline::new()
///     .apply(Expr::parse("abs(x)").unwrap())
///     .reduce(ReduceOp::Max, "t");
/// let out = p.run(&cube, ExecConfig::serial()).unwrap();
/// assert_eq!(out.cube.to_dense(), vec![4.0]);
/// ```
pub struct Pipeline {
    steps: Vec<Step>,
    terminal: Option<Terminal>,
    /// Step index the tap sits *before* (i.e. after `steps[..tap_at]`).
    tap_at: Option<usize>,
    err: Option<String>,
}

impl Default for Pipeline {
    fn default() -> Self {
        Self::new()
    }
}

impl Pipeline {
    pub fn new() -> Self {
        Pipeline { steps: Vec::new(), terminal: None, tap_at: None, err: None }
    }

    fn push(mut self, step: Step) -> Self {
        if self.terminal.is_some() && self.err.is_none() {
            self.err = Some("steps after a terminal are not fusible".into());
        }
        if matches!(step, Step::Subset { .. }) && self.tap_at.is_some() && self.err.is_none() {
            self.err = Some("subset after tap is not fusible".into());
        }
        self.steps.push(step);
        self
    }

    /// Subsets an implicit dimension to `lo..hi` (as
    /// [`ops::subset_implicit`]).
    pub fn subset_implicit(self, dim: &str, lo: usize, hi: usize) -> Self {
        self.push(Step::Subset { dim: dim.into(), lo, hi })
    }

    /// Applies an element-wise expression (as [`ops::apply`]).
    pub fn apply(self, expr: Expr) -> Self {
        self.push(Step::Apply(expr))
    }

    /// Element-wise arithmetic against cube `b` (as [`ops::intercube`]:
    /// same row space; `b`'s implicit length must match the chain's
    /// current implicit length or be 1, broadcasting per row). `b` is
    /// captured by O(1) clone — payload buffers are shared.
    pub fn intercube(self, b: &Cube, op: InterOp) -> Self {
        self.push(Step::Inter { b: b.clone(), op })
    }

    /// Materializes the intermediate cube at this point of the chain in
    /// the same fused traversal ([`FusedOutput::tapped`]). No `subset` may
    /// follow.
    pub fn tap(mut self) -> Self {
        if self.tap_at.is_some() && self.err.is_none() {
            self.err = Some("a pipeline supports a single tap".into());
        }
        self.tap_at = Some(self.steps.len());
        self
    }

    /// Terminal reduction over implicit dimension `dim` (as
    /// [`ops::reduce`]). Must be the last stage.
    pub fn reduce(mut self, op: ReduceOp, dim: &str) -> Self {
        if self.terminal.is_some() && self.err.is_none() {
            self.err = Some("a pipeline supports a single terminal".into());
        }
        self.terminal = Some(Terminal::Reduce { op, dim: dim.into() });
        self
    }

    /// Terminal per-row series transform (as [`ops::map_series`], with the
    /// kernel writing into a preallocated `out_len` slice instead of
    /// returning a `Vec`). Must be the last stage.
    pub fn map_series(
        mut self,
        out_dim: &str,
        out_len: usize,
        f: impl Fn(&[f32], &mut [f32]) + Send + Sync + 'static,
    ) -> Self {
        if self.terminal.is_some() && self.err.is_none() {
            self.err = Some("a pipeline supports a single terminal".into());
        }
        self.terminal = Some(Terminal::Series { out_dim: out_dim.into(), out_len, f: Arc::new(f) });
        self
    }

    /// Runs the chain as ONE fused kernel per fragment of `src`.
    pub fn run(&self, src: &Cube, cfg: ExecConfig) -> Result<FusedOutput> {
        let c = self.compile(src)?;
        let has_tap = c.tap_stage.is_some();
        let run_frag = |f: &Fragment| -> (SharedData, SharedData) {
            let mut states: Vec<RunState> = c
                .stages
                .iter()
                .map(|s| match s {
                    CStage::Apply(t) => RunState::Apply(t.evaluator()),
                    CStage::ApplySelect(_) => RunState::Stateless,
                    CStage::Inter { border, .. } => RunState::Inter {
                        bi: border.partition_point(|bf| bf.row_start + bf.row_count <= f.row_start),
                        row_off: 0,
                    },
                })
                .collect();
            let mut scratch = vec![0.0f32; if c.terminal.is_some() { c.v_ilen } else { 0 }];
            let out_total = f.row_count * c.out_row_len;
            let tap_total = f.row_count * c.v_ilen;
            let mut tap_data = SharedData::empty();
            let out = if out_total == 0 {
                // `from_fn(0, _)` never invokes its fill closure, so drive
                // the traversal from the tap buffer when only it has data
                // (e.g. a `map_series` terminal with out_len 0 plus a tap).
                if has_tap && tap_total > 0 {
                    tap_data = SharedData::from_fn(tap_total, |tapdst| {
                        c.run_fragment(f, &mut states, &mut scratch, &mut [], Some(tapdst));
                    });
                }
                SharedData::empty()
            } else {
                SharedData::from_fn(out_total, |dst| {
                    if has_tap {
                        tap_data = SharedData::from_fn(tap_total, |tapdst| {
                            c.run_fragment(f, &mut states, &mut scratch, dst, Some(tapdst));
                        });
                    } else {
                        c.run_fragment(f, &mut states, &mut scratch, dst, None);
                    }
                })
            };
            (out, tap_data)
        };
        let (frags, tap_frags) = if has_tap {
            par_map_fragments_tapped(cfg, "fuse", &src.frags, run_frag)
        } else {
            (par_map_fragments_named(cfg, "fuse", &src.frags, |f| run_frag(f).0), Vec::new())
        };
        let cube = Cube {
            measure: src.measure.clone(),
            dims: c.out_dims,
            frags,
            description: format!("fused({} stages)", self.steps.len()),
        };
        cube.validate()?;
        let tapped = match c.tap_dims {
            Some(dims) => {
                let t = Cube {
                    measure: src.measure.clone(),
                    dims,
                    frags: tap_frags,
                    description: "fused tap".into(),
                };
                t.validate()?;
                Some(t)
            }
            None => None,
        };
        Ok(FusedOutput { cube, tapped })
    }

    /// Runs the same chain operator-by-operator through [`crate::ops`] —
    /// the scalar oracle the conformance suite compares against bitwise.
    pub fn run_scalar(&self, src: &Cube, cfg: ExecConfig) -> Result<FusedOutput> {
        if let Some(msg) = &self.err {
            return Err(Error::SchemaMismatch(msg.clone()));
        }
        let mut cur = src.clone();
        let mut tapped = None;
        for (i, step) in self.steps.iter().enumerate() {
            if self.tap_at == Some(i) {
                tapped = Some(cur.clone());
            }
            cur = match step {
                Step::Subset { dim, lo, hi } => ops::subset_implicit(&cur, dim, *lo, *hi, cfg)?,
                Step::Apply(e) => ops::apply(&cur, e, cfg),
                Step::Inter { b, op } => ops::intercube(&cur, b, *op, cfg)?,
            };
        }
        if self.tap_at == Some(self.steps.len()) {
            tapped = Some(cur.clone());
        }
        let cube = match &self.terminal {
            None => cur,
            Some(Terminal::Reduce { op, dim }) => ops::reduce(&cur, *op, dim, cfg)?,
            Some(Terminal::Series { out_dim, out_len, f }) => {
                let f = Arc::clone(f);
                let n = *out_len;
                ops::map_series(&cur, out_dim, n, cfg, move |row| {
                    let mut out = vec![0.0f32; n];
                    f(row, &mut out);
                    out
                })?
            }
        };
        Ok(FusedOutput { cube, tapped })
    }

    /// Validates the chain against `src`'s schema and lowers it to the
    /// kernel program: gather map, stage list with b-index maps, terminal
    /// geometry, output dims.
    fn compile<'p>(&'p self, src: &Cube) -> Result<Compiled<'p>> {
        if let Some(msg) = &self.err {
            return Err(Error::SchemaMismatch(msg.clone()));
        }
        let ilen_of = |dims: &[Dimension]| -> usize {
            dims.iter().filter(|d| d.kind == DimKind::Implicit).map(|d| d.len()).product()
        };
        let mut dims = src.dims.clone();
        let mut stages: Vec<CStage<'p>> = Vec::new();
        // Compile-time event trail for the reverse index walk: subsets and
        // runtime-stage markers in chain order.
        enum Ev {
            Subset(SubsetGeom),
            Stage(usize),
        }
        let mut events: Vec<Ev> = Vec::new();
        let mut tap_stage = None;
        for (i, step) in self.steps.iter().enumerate() {
            if self.tap_at == Some(i) {
                tap_stage = Some(stages.len());
            }
            match step {
                Step::Subset { dim, lo, hi } => {
                    let d = dims
                        .iter()
                        .find(|x| x.name == *dim)
                        .ok_or_else(|| Error::UnknownDimension(dim.clone()))?;
                    if d.kind != DimKind::Implicit {
                        return Err(Error::WrongDimensionKind {
                            dim: dim.clone(),
                            need: "implicit",
                        });
                    }
                    if *lo >= *hi || *hi > d.len() {
                        return Err(Error::BadRange {
                            dim: dim.clone(),
                            lo: *lo,
                            hi: *hi,
                            size: d.len(),
                        });
                    }
                    let idims: Vec<&Dimension> =
                        dims.iter().filter(|x| x.kind == DimKind::Implicit).collect();
                    let pos = idims.iter().position(|x| x.name == *dim).expect("dim checked");
                    let after: usize = idims[pos + 1..].iter().map(|x| x.len()).product();
                    let target = idims[pos].len();
                    events.push(Ev::Subset(SubsetGeom { target, after, lo: *lo, keep: hi - lo }));
                    for x in dims.iter_mut() {
                        if x.name == *dim {
                            x.coords = Arc::from(&x.coords[*lo..*hi]);
                        }
                    }
                }
                Step::Apply(e) => {
                    events.push(Ev::Stage(stages.len()));
                    let tape = e.tape();
                    stages.push(match tape.const_select() {
                        Some(cs) => CStage::ApplySelect(cs),
                        None => CStage::Apply(tape),
                    });
                }
                Step::Inter { b, op } => {
                    if src.rows() != b.rows() {
                        return Err(Error::SchemaMismatch(format!(
                            "row spaces differ: {} vs {}",
                            src.rows(),
                            b.rows()
                        )));
                    }
                    let ilen_now = ilen_of(&dims);
                    let ilen_b = b.implicit_len();
                    if ilen_b != ilen_now && ilen_b != 1 {
                        return Err(Error::SchemaMismatch(format!(
                            "implicit lengths incompatible: {ilen_now} vs {ilen_b}"
                        )));
                    }
                    events.push(Ev::Stage(stages.len()));
                    stages.push(CStage::Inter {
                        op: *op,
                        ilen_b,
                        border: b.frags_in_row_order(),
                        bmap: None,
                    });
                }
            }
        }
        if self.tap_at == Some(self.steps.len()) {
            tap_stage = Some(stages.len());
        }
        let v_ilen = ilen_of(&dims);
        let tap_dims = tap_stage.map(|_| dims.clone());

        // Reverse walk: compose subset output→input index maps so `cur`
        // always maps final element positions to the index space at the
        // walk's current point; snapshot it at each intercube stage.
        let mut cur: Vec<usize> = (0..v_ilen).collect();
        let mut identity = true;
        for ev in events.iter().rev() {
            match ev {
                Ev::Stage(k) => {
                    if !identity {
                        if let CStage::Inter { bmap, ilen_b, .. } = &mut stages[*k] {
                            if *ilen_b != 1 {
                                *bmap = Some(cur.clone());
                            }
                        }
                    }
                }
                Ev::Subset(g) => {
                    let sel = g.keep * g.after;
                    for o in cur.iter_mut() {
                        let b = *o / sel;
                        let rem = *o % sel;
                        *o = b * g.target * g.after
                            + (g.lo + rem / g.after) * g.after
                            + rem % g.after;
                    }
                    identity = false;
                }
            }
        }
        let gather = if identity { None } else { Some(cur) };

        // Terminal geometry + output dims.
        let (terminal, out_row_len) = match &self.terminal {
            None => (None, v_ilen),
            Some(Terminal::Reduce { op, dim }) => {
                let d = dims
                    .iter()
                    .find(|x| x.name == *dim)
                    .ok_or_else(|| Error::UnknownDimension(dim.clone()))?;
                if d.kind != DimKind::Implicit {
                    return Err(Error::WrongDimensionKind { dim: dim.clone(), need: "implicit" });
                }
                let idims: Vec<&Dimension> =
                    dims.iter().filter(|x| x.kind == DimKind::Implicit).collect();
                let pos = idims.iter().position(|x| x.name == *dim).expect("dim checked");
                let after: usize = idims[pos + 1..].iter().map(|x| x.len()).product();
                let target = idims[pos].len();
                let before: usize = idims[..pos].iter().map(|x| x.len()).product();
                dims.retain(|x| x.name != *dim);
                (Some(CTerm::Reduce { op: *op, before, target, after }), before * after)
            }
            Some(Terminal::Series { out_dim, out_len, f }) => {
                dims.retain(|x| x.kind == DimKind::Explicit);
                if *out_len > 0 {
                    dims.push(Dimension::implicit(
                        out_dim,
                        (0..*out_len).map(|i| i as f64).collect::<Vec<_>>(),
                    ));
                }
                (Some(CTerm::Series { out_len: *out_len, f: f.as_ref() }), *out_len)
            }
        };
        Ok(Compiled {
            stages,
            gather,
            src_ilen: src.implicit_len(),
            v_ilen,
            tap_stage,
            terminal,
            out_dims: dims,
            tap_dims,
            out_row_len,
        })
    }
}

/// Geometry of one implicit subset inside the in-row layout.
struct SubsetGeom {
    target: usize,
    after: usize,
    lo: usize,
    keep: usize,
}

enum CStage<'p> {
    Apply(Tape),
    /// `predicate(x ⋈ c, a, b)` collapsed to a branchless constant select
    /// (see [`Tape::const_select`]); bitwise equal to the tape path.
    ApplySelect(ConstSelect),
    Inter {
        op: InterOp,
        ilen_b: usize,
        /// `b`'s fragments sorted by `row_start`.
        border: Vec<&'p Fragment>,
        /// Final position → b-row index at this stage; `None` = identity
        /// (no subsets after this stage) or per-row broadcast.
        bmap: Option<Vec<usize>>,
    },
}

enum CTerm<'p> {
    Reduce { op: ReduceOp, before: usize, target: usize, after: usize },
    Series { out_len: usize, f: &'p SeriesFn },
}

/// Per-fragment mutable state, one slot per runtime stage.
enum RunState<'t> {
    Apply(TapeEval<'t>),
    /// Constant-select stages carry no state.
    Stateless,
    Inter {
        bi: usize,
        row_off: usize,
    },
}

struct Compiled<'p> {
    stages: Vec<CStage<'p>>,
    /// Final element position → source in-row index (`None` = identity).
    gather: Option<Vec<usize>>,
    src_ilen: usize,
    /// Virtual row length after all element-wise stages.
    v_ilen: usize,
    /// Runtime-stage boundary the tap sits at (elements captured after
    /// `stages[..tap_stage]`).
    tap_stage: Option<usize>,
    terminal: Option<CTerm<'p>>,
    out_dims: Vec<Dimension>,
    tap_dims: Option<Vec<Dimension>>,
    out_row_len: usize,
}

impl Compiled<'_> {
    /// The fused kernel body: every row of `f` is evaluated in
    /// [`LANES`]-wide blocks through the stage list, then fed to the
    /// terminal. Partial tail blocks pad with the block's first valid
    /// lane — all operations are pure per-element, so the padded lanes
    /// compute garbage that is simply not stored.
    fn run_fragment(
        &self,
        f: &Fragment,
        states: &mut [RunState],
        scratch: &mut [f32],
        dst: &mut [f32],
        mut tap: Option<&mut [f32]>,
    ) {
        let ilen = self.src_ilen;
        let v = self.v_ilen;
        let orl = self.out_row_len;
        for local_row in 0..f.row_count {
            let row = &f.data.as_slice()[local_row * ilen..(local_row + 1) * ilen];
            let grow = f.row_start + local_row;
            // Advance each intercube stage's fragment cursor to this row.
            for (stage, state) in self.stages.iter().zip(states.iter_mut()) {
                if let (CStage::Inter { border, ilen_b, .. }, RunState::Inter { bi, row_off }) =
                    (stage, state)
                {
                    while border[*bi].row_start + border[*bi].row_count <= grow {
                        *bi += 1;
                    }
                    *row_off = (grow - border[*bi].row_start) * ilen_b;
                }
            }
            let mut tap_row =
                tap.as_deref_mut().map(|t| &mut t[local_row * v..(local_row + 1) * v]);
            {
                // Element-wise phase: straight into the output row when
                // there is no terminal, else into the scratch row.
                let ew: &mut [f32] = if self.terminal.is_some() {
                    &mut scratch[..]
                } else {
                    &mut dst[local_row * orl..(local_row + 1) * orl]
                };
                let mut j = 0usize;
                while j < v {
                    let n = (v - j).min(LANES);
                    let mut va = [0.0f32; LANES];
                    match &self.gather {
                        Some(g) => {
                            for l in 0..n {
                                va[l] = row[g[j + l]];
                            }
                        }
                        None => va[..n].copy_from_slice(&row[j..j + n]),
                    }
                    for l in n..LANES {
                        va[l] = va[0];
                    }
                    if self.tap_stage == Some(0) {
                        if let Some(tr) = tap_row.as_deref_mut() {
                            tr[j..j + n].copy_from_slice(&va[..n]);
                        }
                    }
                    for (si, (stage, state)) in
                        self.stages.iter().zip(states.iter_mut()).enumerate()
                    {
                        match (stage, state) {
                            (CStage::Apply(_), RunState::Apply(ev)) => {
                                let mut x = [0.0f64; LANES];
                                for l in 0..LANES {
                                    x[l] = va[l] as f64;
                                }
                                let mut y = [0.0f64; LANES];
                                ev.eval_block(&x, &mut y);
                                for l in 0..LANES {
                                    va[l] = y[l] as f32;
                                }
                            }
                            (CStage::ApplySelect(cs), RunState::Stateless) => {
                                for v in va.iter_mut() {
                                    *v = cs.eval(*v as f64) as f32;
                                }
                            }
                            (
                                CStage::Inter { op, ilen_b, border, bmap },
                                RunState::Inter { bi, row_off },
                            ) => {
                                let brow =
                                    &border[*bi].data.as_slice()[*row_off..*row_off + ilen_b];
                                let mut vb = [0.0f32; LANES];
                                if *ilen_b == 1 {
                                    vb = [brow[0]; LANES];
                                } else if let Some(m) = bmap {
                                    for l in 0..n {
                                        vb[l] = brow[m[j + l]];
                                    }
                                    for l in n..LANES {
                                        vb[l] = vb[0];
                                    }
                                } else {
                                    vb[..n].copy_from_slice(&brow[j..j + n]);
                                    for l in n..LANES {
                                        vb[l] = vb[0];
                                    }
                                }
                                for l in 0..LANES {
                                    va[l] = op.apply(va[l], vb[l]);
                                }
                            }
                            _ => unreachable!("state kind mismatches stage"),
                        }
                        if self.tap_stage == Some(si + 1) {
                            if let Some(tr) = tap_row.as_deref_mut() {
                                tr[j..j + n].copy_from_slice(&va[..n]);
                            }
                        }
                    }
                    ew[j..j + n].copy_from_slice(&va[..n]);
                    j += n;
                }
            }
            match &self.terminal {
                None => {}
                Some(CTerm::Reduce { op, before, target, after }) => {
                    let out_chunk = &mut dst[local_row * orl..(local_row + 1) * orl];
                    if *before == 1 && *after == 1 {
                        out_chunk[0] = op.apply(scratch);
                    } else {
                        // Same (b, a) output order and strictly sequential
                        // per-output t-order accumulation as the scalar
                        // general path (the ReduceOp ordering contract).
                        let mut w = 0usize;
                        for b in 0..*before {
                            for a in 0..*after {
                                let mut acc = op.begin();
                                for t in 0..*target {
                                    op.step(&mut acc, scratch[b * target * after + t * after + a]);
                                }
                                out_chunk[w] = op.finish(acc, *target);
                                w += 1;
                            }
                        }
                    }
                }
                Some(CTerm::Series { out_len, f }) => {
                    f(&scratch[..], &mut dst[local_row * out_len..(local_row + 1) * out_len]);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Dimension;

    fn cfg() -> ExecConfig {
        ExecConfig::with_servers(2)
    }

    /// 2x2 grid, 6 timesteps: row r, step t holds r*100 + t*t - 3.
    fn sample(nfrag: usize) -> Cube {
        let dims = vec![
            Dimension::explicit("lat", vec![-45.0, 45.0]),
            Dimension::explicit("lon", vec![0.0, 180.0]),
            Dimension::implicit("time", (0..6).map(|t| t as f64).collect::<Vec<_>>()),
        ];
        let mut data = Vec::new();
        for r in 0..4 {
            for t in 0..6 {
                data.push((r * 100 + t * t) as f32 - 3.0);
            }
        }
        Cube::from_dense("v", dims, data, nfrag, 2).unwrap()
    }

    fn bits(c: &Cube) -> Vec<u32> {
        c.to_dense().iter().map(|v| v.to_bits()).collect()
    }

    fn assert_conforms(p: &Pipeline, src: &Cube) {
        let fused = p.run(src, cfg()).unwrap();
        let scalar = p.run_scalar(src, cfg()).unwrap();
        assert_eq!(bits(&fused.cube), bits(&scalar.cube));
        assert_eq!(fused.cube.dims, scalar.cube.dims);
        match (&fused.tapped, &scalar.tapped) {
            (None, None) => {}
            (Some(a), Some(b)) => {
                assert_eq!(bits(a), bits(b));
                assert_eq!(a.dims, b.dims);
            }
            _ => panic!("tap presence differs between fused and scalar paths"),
        }
    }

    #[test]
    fn empty_chain_is_identity() {
        let src = sample(3);
        let out = Pipeline::new().run(&src, cfg()).unwrap();
        assert_eq!(out.cube.to_dense(), src.to_dense());
        assert!(out.tapped.is_none());
    }

    #[test]
    fn single_stage_chains_match_scalar() {
        let src = sample(3);
        assert_conforms(&Pipeline::new().apply(Expr::parse("2*x + 1").unwrap()), &src);
        assert_conforms(&Pipeline::new().subset_implicit("time", 1, 5), &src);
        assert_conforms(&Pipeline::new().intercube(&src, InterOp::Mul), &src);
        assert_conforms(&Pipeline::new().reduce(ReduceOp::Sum, "time"), &src);
        for op in [ReduceOp::Max, ReduceOp::Min, ReduceOp::Avg, ReduceOp::CountPositive] {
            assert_conforms(&Pipeline::new().reduce(op, "time"), &src);
        }
    }

    #[test]
    fn full_chain_with_broadcast_and_terminal() {
        let src = sample(4);
        let base = Pipeline::new().reduce(ReduceOp::Avg, "time").run(&src, cfg()).unwrap().cube;
        let p = Pipeline::new()
            .subset_implicit("time", 1, 6)
            .intercube(&base, InterOp::Sub)
            .apply(Expr::from_oph_predicate("x", ">0", "1", "0").unwrap())
            .reduce(ReduceOp::CountPositive, "time");
        assert_conforms(&p, &src);
    }

    #[test]
    fn subset_then_intercube_uses_stage_index_space() {
        // b has the FULL implicit length; the subset comes after, so b's
        // rows must be indexed through the composed map.
        let src = sample(3);
        let b = sample(2);
        let p = Pipeline::new()
            .intercube(&b, InterOp::Add)
            .subset_implicit("time", 2, 5)
            .apply(Expr::parse("x/3").unwrap());
        assert_conforms(&p, &src);
        // And the reverse order: subset first, so b must have the narrow
        // length.
        let narrow = Pipeline::new().subset_implicit("time", 2, 5).run(&b, cfg()).unwrap().cube;
        let p = Pipeline::new().subset_implicit("time", 2, 5).intercube(&narrow, InterOp::Sub);
        assert_conforms(&p, &src);
    }

    #[test]
    fn tap_materializes_intermediate_in_one_pass() {
        let src = sample(3);
        let base = Pipeline::new().reduce(ReduceOp::Min, "time").run(&src, cfg()).unwrap().cube;
        let p = Pipeline::new()
            .intercube(&base, InterOp::Sub)
            .tap()
            .apply(Expr::from_oph_predicate("x", ">2", "1", "0").unwrap())
            .map_series("n", 1, |row, out| {
                out[0] = row.iter().filter(|v| **v > 0.5).count() as f32;
            });
        assert_conforms(&p, &src);
        let fused = p.run(&src, cfg()).unwrap();
        let tapped = fused.tapped.unwrap();
        assert_eq!(tapped.implicit_len(), 6, "tap holds the anomaly, pre-mask");
        assert_eq!(fused.cube.implicit_len(), 1);
    }

    #[test]
    fn map_series_terminal_matches_scalar() {
        let src = sample(5);
        let p = Pipeline::new().map_series("cs", 6, |row, out| {
            let mut acc = 0.0f32;
            for (i, &x) in row.iter().enumerate() {
                acc += x;
                out[i] = acc;
            }
        });
        assert_conforms(&p, &src);
    }

    #[test]
    fn schema_errors_mirror_the_scalar_operators() {
        let src = sample(2);
        let r = Pipeline::new().subset_implicit("lat", 0, 1).run(&src, cfg());
        assert!(matches!(r, Err(Error::WrongDimensionKind { .. })));
        let r = Pipeline::new().subset_implicit("time", 4, 2).run(&src, cfg());
        assert!(matches!(r, Err(Error::BadRange { .. })));
        let r = Pipeline::new().subset_implicit("ghost", 0, 1).run(&src, cfg());
        assert!(matches!(r, Err(Error::UnknownDimension(_))));
        let other =
            Cube::from_dense("w", vec![Dimension::explicit("x", vec![0.0])], vec![1.0], 1, 1)
                .unwrap();
        let r = Pipeline::new().intercube(&other, InterOp::Add).run(&src, cfg());
        assert!(matches!(r, Err(Error::SchemaMismatch(_))));
        let r = Pipeline::new().reduce(ReduceOp::Max, "lat").run(&src, cfg());
        assert!(matches!(r, Err(Error::WrongDimensionKind { .. })));
    }

    #[test]
    fn illegal_shapes_are_rejected() {
        let src = sample(2);
        // Steps after a terminal.
        let p = Pipeline::new().reduce(ReduceOp::Max, "time").apply(Expr::parse("x").unwrap());
        assert!(p.run(&src, cfg()).is_err());
        assert!(p.run_scalar(&src, cfg()).is_err());
        // Subset after tap.
        let p = Pipeline::new().tap().subset_implicit("time", 0, 2);
        assert!(p.run(&src, cfg()).is_err());
        // Double terminal.
        let p = Pipeline::new().reduce(ReduceOp::Max, "time").reduce(ReduceOp::Min, "time");
        assert!(p.run(&src, cfg()).is_err());
        // Double tap.
        let p = Pipeline::new().tap().apply(Expr::parse("x").unwrap()).tap();
        assert!(p.run(&src, cfg()).is_err());
    }

    #[test]
    fn nan_and_inf_payloads_stay_bitwise() {
        let dims = vec![
            Dimension::explicit("x", vec![0.0, 1.0]),
            Dimension::implicit("t", (0..5).map(|t| t as f64).collect::<Vec<_>>()),
        ];
        let data = vec![
            f32::NAN,
            f32::INFINITY,
            f32::NEG_INFINITY,
            -0.0,
            1.0,
            f32::from_bits(0x7fc0_1234), // NaN with payload
            2.0,
            f32::NAN,
            -3.0,
            0.0,
        ];
        let src = Cube::from_dense("v", dims, data, 2, 1).unwrap();
        let p = Pipeline::new()
            .apply(Expr::parse("predicate(x > 0, x, -x)").unwrap())
            .intercube(&src, InterOp::Div)
            .reduce(ReduceOp::Sum, "t");
        assert_conforms(&p, &src);
        let p = Pipeline::new().reduce(ReduceOp::Avg, "t");
        assert_conforms(&p, &src);
    }

    #[test]
    fn fused_emits_one_operator_event() {
        let rx = obs::global().subscribe();
        let src = sample(3);
        Pipeline::new()
            .apply(Expr::parse("x+1").unwrap())
            .reduce(ReduceOp::Max, "time")
            .run(&src, cfg())
            .unwrap();
        let events = rx.drain();
        let fuse_ops = events
            .iter()
            .filter(|e| matches!(e.kind, obs::EventKind::OperatorDone { op: "fuse", .. }))
            .count();
        assert_eq!(fuse_ops, 1, "the whole chain runs as one operator");
    }
}
