//! The operator set.
//!
//! Each operator is a pure function `(&Cube, …) -> Cube`, executed in
//! parallel over fragments through [`crate::exec`]. The set covers what the
//! paper's heat/cold-wave and TC pipelines use: NetCDF import/export,
//! subsetting, time reduction, element-wise `apply` with the expression
//! language, cube–cube arithmetic (with per-row broadcasting for baseline
//! climatologies), implicit-dimension concatenation (stacking days into a
//! year), and a generic per-row series transform for run-length analytics.
//!
//! No operator materializes a dense array: kernels read fragment windows in
//! place and build each output payload exactly once ([`SharedData::from_fn`]
//! or an O(1) view of the input buffer). `to_dense()` survives only at
//! explicit export boundaries ([`exportnc`], [`to_grid_values`]).

use crate::error::{Error, Result};
use crate::exec::{par_map_fragments_named, ExecConfig};
use crate::expr::Expr;
use crate::model::{Cube, DimKind, Dimension, Fragment, SharedData};
use ncformat::{Reader, Value, Writer};
use std::path::Path;
use std::sync::Arc;

/// Reduction kernels over an implicit dimension.
///
/// # Ordering contract
///
/// Every reduction in this crate — the scalar [`reduce`] operator (both
/// its fast and general paths) and the fused kernels in [`crate::fuse`] —
/// accumulates **strictly sequentially in ascending series-index order**,
/// one element at a time, through [`ReduceOp::begin`] / [`ReduceOp::step`]
/// / [`ReduceOp::finish`]. f32 addition is not associative, so this order
/// *is* the result: no implementation may re-associate the accumulation
/// into per-lane partial sums (or any other tree), regardless of lane
/// width or thread count. This is what makes fused == unfused bitwise and
/// keeps results independent of `PAR_THREADS` / `io_servers`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceOp {
    Max,
    Min,
    Sum,
    Avg,
    /// Count of elements strictly greater than zero (Ophidia pipelines
    /// build masks with `oph_predicate` then count them; see Listing 1).
    CountPositive,
}

/// In-flight state of one sequential reduction (see the ordering contract
/// on [`ReduceOp`]). `Count` reductions count in `u64` and convert to f32
/// exactly once at [`ReduceOp::finish`], so the count itself never loses
/// precision mid-stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ReduceAcc {
    /// Running extremum (Max/Min) or running sum (Sum/Avg).
    Value(f32),
    /// Running element count (CountPositive).
    Count(u64),
}

impl ReduceOp {
    /// The accumulator's identity state.
    pub fn begin(self) -> ReduceAcc {
        match self {
            ReduceOp::Max => ReduceAcc::Value(f32::NEG_INFINITY),
            ReduceOp::Min => ReduceAcc::Value(f32::INFINITY),
            ReduceOp::Sum | ReduceOp::Avg => ReduceAcc::Value(0.0),
            ReduceOp::CountPositive => ReduceAcc::Count(0),
        }
    }

    /// Folds the next series element into the accumulator. Callers must
    /// feed elements in ascending series-index order.
    #[inline]
    pub fn step(self, acc: &mut ReduceAcc, v: f32) {
        match (self, acc) {
            (ReduceOp::Max, ReduceAcc::Value(a)) => *a = a.max(v),
            (ReduceOp::Min, ReduceAcc::Value(a)) => *a = a.min(v),
            (ReduceOp::Sum | ReduceOp::Avg, ReduceAcc::Value(a)) => *a += v,
            (ReduceOp::CountPositive, ReduceAcc::Count(n)) => *n += u64::from(v > 0.0),
            _ => unreachable!("accumulator kind mismatches op"),
        }
    }

    /// Finalizes the reduction over a series of `n` elements. `Avg` of an
    /// empty series is the canonical quiet [`f32::NAN`] (never computed as
    /// `0.0 / 0.0`, whose bit pattern is platform-dependent).
    pub fn finish(self, acc: ReduceAcc, n: usize) -> f32 {
        match (self, acc) {
            (ReduceOp::Avg, ReduceAcc::Value(a)) => {
                if n == 0 {
                    f32::NAN
                } else {
                    a / n as f32
                }
            }
            (_, ReduceAcc::Value(a)) => a,
            (_, ReduceAcc::Count(c)) => c as f32,
        }
    }

    /// Reduces a whole series (the scalar oracle path): begin/step/finish
    /// in index order.
    pub fn apply(self, series: &[f32]) -> f32 {
        let mut acc = self.begin();
        for &v in series {
            self.step(&mut acc, v);
        }
        self.finish(acc, series.len())
    }
}

/// Binary element-wise operators between cubes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InterOp {
    Add,
    Sub,
    Mul,
    Div,
}

impl InterOp {
    /// Applies the operator to one element pair (shared by the scalar
    /// [`intercube`] kernel and the fused kernels in [`crate::fuse`]).
    #[inline]
    pub fn apply(self, a: f32, b: f32) -> f32 {
        match self {
            InterOp::Add => a + b,
            InterOp::Sub => a - b,
            InterOp::Mul => a * b,
            InterOp::Div => a / b,
        }
    }
}

/// Gathers `count` output rows (`ilen` values each) whose source rows are
/// given by `src_row(i)`, out of `src` (fragments sorted by `row_start`).
/// When the selection is one contiguous run inside a single source fragment
/// the result is an O(1) window sharing the source buffer; otherwise runs
/// of consecutive source rows are block-copied into a buffer allocated
/// exactly once.
fn gather_rows(
    src: &[&Fragment],
    ilen: usize,
    count: usize,
    src_row: impl Fn(usize) -> usize,
) -> SharedData {
    if count == 0 || ilen == 0 {
        return SharedData::empty();
    }
    let first = src_row(0);
    if (1..count).all(|i| src_row(i) == first + i) {
        if let Some(f) =
            src.iter().find(|f| first >= f.row_start && first + count <= f.row_start + f.row_count)
        {
            return f.row_view(first - f.row_start, first - f.row_start + count, ilen);
        }
    }
    SharedData::from_fn(count * ilen, |out| {
        let mut w = 0usize;
        let mut i = 0usize;
        while i < count {
            // Extend the run while source rows stay consecutive, then copy
            // it with a fragment cursor (runs may span fragments).
            let start = src_row(i);
            let mut run = 1usize;
            while i + run < count && src_row(i + run) == start + run {
                run += 1;
            }
            let mut fi = src.partition_point(|f| f.row_start + f.row_count <= start);
            let mut need = start;
            let end = start + run;
            while need < end {
                while src[fi].row_start + src[fi].row_count <= need {
                    fi += 1;
                }
                let f = src[fi];
                let lo = need - f.row_start;
                let hi = (end - f.row_start).min(f.row_count);
                let n = (hi - lo) * ilen;
                out[w..w + n].copy_from_slice(&f.data.as_slice()[lo * ilen..hi * ilen]);
                w += n;
                need = f.row_start + hi;
            }
            i += run;
        }
    })
}

/// Imports a variable from an NCX file into a cube.
///
/// `explicit` and `implicit` name the variable's dimensions in storage
/// order (explicit axes must come first in the variable layout, which is
/// how the ESM writes `(time, lat, lon)` files — callers importing such a
/// file as `(lat, lon | time)` should use [`import_transposed`]).
/// Coordinate variables matching dimension names are read when present.
/// The payload is read into one shared buffer that the fragments window
/// into — ingest costs a single allocation.
pub fn importnc(
    reader: &Reader,
    var: &str,
    explicit: &[&str],
    implicit: &[&str],
    nfrag: usize,
    cfg: ExecConfig,
) -> Result<Cube> {
    let shape = reader.shape(var)?;
    let want: Vec<&str> = explicit.iter().chain(implicit.iter()).copied().collect();
    let vmeta = reader.variable(var)?;
    let actual: Vec<String> =
        vmeta.dims.iter().map(|&i| reader.dimensions()[i].name.clone()).collect();
    if actual != want {
        return Err(Error::BadImport(format!(
            "variable '{var}' has dims {actual:?}, requested {want:?}"
        )));
    }
    let data = reader.read_shared_f32(var)?;
    let mut dims = Vec::new();
    for (i, name) in want.iter().enumerate() {
        let coords = coord_values(reader, name, shape[i]);
        let kind = if i < explicit.len() { DimKind::Explicit } else { DimKind::Implicit };
        dims.push(Dimension { name: name.to_string(), kind, coords: coords.into() });
    }
    let mut cube = Cube::from_shared(var, dims, SharedData::from(data), nfrag, cfg.io_servers)?;
    cube.description = format!("importnc({var})");
    Ok(cube)
}

/// Imports a `(time, lat, lon)` variable as a `(lat, lon | time)` cube —
/// the transposition the heat-wave pipeline needs so that each grid cell's
/// daily series is one in-row array.
///
/// Streams the source one time-plane at a time through a single reused
/// buffer, scattering directly into the destination — the untransposed
/// variable is never resident in full.
pub fn import_transposed(
    reader: &Reader,
    var: &str,
    time_dim: &str,
    lat_dim: &str,
    lon_dim: &str,
    nfrag: usize,
    cfg: ExecConfig,
) -> Result<Cube> {
    let vmeta = reader.variable(var)?;
    let actual: Vec<String> =
        vmeta.dims.iter().map(|&i| reader.dimensions()[i].name.clone()).collect();
    if actual != [time_dim, lat_dim, lon_dim] {
        return Err(Error::BadImport(format!(
            "variable '{var}' has dims {actual:?}, expected [{time_dim}, {lat_dim}, {lon_dim}]"
        )));
    }
    let shape = reader.shape(var)?;
    let (nt, nlat, nlon) = (shape[0], shape[1], shape[2]);
    let plane = nlat * nlon;
    let view = reader.var(var)?;
    // Transpose (t, y, x) -> (y, x, t) with a cache-blocked scatter: time
    // planes are read in chunks of `T_CHUNK`, and each chunk is
    // transposed tile by tile (`ROW_BLOCK` rows × chunk of times) in
    // parallel over row blocks — the working set of a tile fits in L1,
    // where the old one-plane-at-a-time scatter missed on every write.
    const T_CHUNK: usize = 64;
    const ROW_BLOCK: usize = 64;
    let mut read_err: Option<ncformat::Error> = None;
    let mut buf = vec![0.0f32; T_CHUNK.min(nt.max(1)) * plane];
    let data = SharedData::from_fn(nt * plane, |dst| {
        let mut t0 = 0usize;
        while t0 < nt {
            let tc = T_CHUNK.min(nt - t0);
            if let Err(e) = view.read_f32_into(t0 * plane, &mut buf[..tc * plane]) {
                read_err = Some(e);
                return;
            }
            let chunk_src = &buf[..tc * plane];
            par::par_chunks_mut(dst, ROW_BLOCK * nt, |b, chunk| {
                let row0 = b * ROW_BLOCK;
                let rows = chunk.len() / nt;
                for dt in 0..tc {
                    let src = &chunk_src[dt * plane + row0..dt * plane + row0 + rows];
                    for (lr, &v) in src.iter().enumerate() {
                        chunk[lr * nt + t0 + dt] = v;
                    }
                }
            });
            t0 += tc;
        }
    });
    if let Some(e) = read_err {
        return Err(e.into());
    }
    let dims = vec![
        Dimension::explicit(lat_dim, coord_values(reader, lat_dim, nlat)),
        Dimension::explicit(lon_dim, coord_values(reader, lon_dim, nlon)),
        Dimension::implicit(time_dim, coord_values(reader, time_dim, nt)),
    ];
    let mut cube = Cube::from_shared(var, dims, data, nfrag, cfg.io_servers)?;
    cube.description = format!("import_transposed({var})");
    Ok(cube)
}

fn coord_values(reader: &Reader, name: &str, size: usize) -> Vec<f64> {
    reader
        .read_all_f64(name)
        .ok()
        .filter(|v| v.len() == size)
        .unwrap_or_else(|| (0..size).map(|i| i as f64).collect())
}

/// Reduces one implicit dimension away. With a single implicit dimension
/// the whole in-row array collapses to one value per row.
///
/// Both paths honor the [`ReduceOp`] ordering contract: each output value
/// accumulates its source elements strictly in ascending `dim`-index
/// order, so results are bitwise independent of fragmentation, server
/// count, and the fused kernels' lane width.
pub fn reduce(cube: &Cube, op: ReduceOp, dim: &str, cfg: ExecConfig) -> Result<Cube> {
    let d = cube.dim(dim)?;
    if d.kind != DimKind::Implicit {
        return Err(Error::WrongDimensionKind { dim: dim.into(), need: "implicit" });
    }
    let idims = cube.implicit_dims();
    // Strides of implicit dims within a row (row-major).
    let pos = idims.iter().position(|x| x.name == dim).expect("dim checked");
    let after: usize = idims[pos + 1..].iter().map(|x| x.len()).product();
    let target = idims[pos].len();
    let ilen = cube.implicit_len();
    let out_ilen = ilen / target.max(1);

    let frags = par_map_fragments_named(cfg, "reduce", &cube.frags, |f| {
        if after == 1 && target == ilen {
            // Fast path (the common case: one implicit dimension, fully
            // reduced): the row *is* the series — no gather, no scratch.
            SharedData::from_iter_len(f.row_count, f.data.chunks(ilen).map(|row| op.apply(row)))
        } else {
            let before = ilen / (target * after).max(1);
            SharedData::from_fn(f.row_count * out_ilen, |out| {
                let mut series = vec![0.0f32; target];
                let mut w = 0usize;
                for row in f.data.chunks(ilen) {
                    // Iterate over the reduced layout: (before, after) pairs.
                    for b in 0..before {
                        for a in 0..after {
                            for (t, s) in series.iter_mut().enumerate() {
                                *s = row[b * target * after + t * after + a];
                            }
                            out[w] = op.apply(&series);
                            w += 1;
                        }
                    }
                }
            })
        }
    });

    let dims: Vec<Dimension> = cube.dims.iter().filter(|d| d.name != dim).cloned().collect();
    let out = Cube {
        measure: cube.measure.clone(),
        dims,
        frags,
        description: format!("reduce({op:?}, {dim})"),
    };
    out.validate()?;
    Ok(out)
}

/// Applies an element-wise expression to every value.
pub fn apply(cube: &Cube, expr: &Expr, cfg: ExecConfig) -> Cube {
    let frags = par_map_fragments_named(cfg, "apply", &cube.frags, |f| {
        SharedData::from_iter_len(f.data.len(), f.data.iter().map(|&v| expr.eval(v as f64) as f32))
    });
    Cube {
        measure: cube.measure.clone(),
        dims: cube.dims.clone(),
        frags,
        description: "apply(expr)".into(),
    }
}

/// Element-wise arithmetic between two cubes with the same explicit space.
/// `b` must have either the same implicit length as `a` or implicit length
/// 1, in which case its per-row scalar broadcasts over `a`'s series — the
/// baseline-climatology pattern of the heat-wave pipeline. `b`'s fragments
/// are looked up in place with a row cursor; neither side is densified.
pub fn intercube(a: &Cube, b: &Cube, op: InterOp, cfg: ExecConfig) -> Result<Cube> {
    if a.rows() != b.rows() {
        return Err(Error::SchemaMismatch(format!(
            "row spaces differ: {} vs {}",
            a.rows(),
            b.rows()
        )));
    }
    let ilen_a = a.implicit_len();
    let ilen_b = b.implicit_len();
    if ilen_b != ilen_a && ilen_b != 1 {
        return Err(Error::SchemaMismatch(format!(
            "implicit lengths incompatible: {ilen_a} vs {ilen_b}"
        )));
    }
    let b_frags = b.frags_in_row_order();

    let frags = par_map_fragments_named(cfg, "intercube", &a.frags, |f| {
        SharedData::from_fn(f.data.len(), |out| {
            let mut w = 0usize;
            let mut bi = b_frags.partition_point(|bf| bf.row_start + bf.row_count <= f.row_start);
            for (local_row, row) in f.data.chunks(ilen_a).enumerate() {
                let grow = f.row_start + local_row;
                while b_frags[bi].row_start + b_frags[bi].row_count <= grow {
                    bi += 1;
                }
                let bf = b_frags[bi];
                let blo = (grow - bf.row_start) * ilen_b;
                let brow = &bf.data.as_slice()[blo..blo + ilen_b];
                for (k, &va) in row.iter().enumerate() {
                    let vb = if ilen_b == 1 { brow[0] } else { brow[k] };
                    out[w] = op.apply(va, vb);
                    w += 1;
                }
            }
        })
    });
    let out = Cube {
        measure: a.measure.clone(),
        dims: a.dims.clone(),
        frags,
        description: format!("intercube({op:?})"),
    };
    out.validate()?;
    Ok(out)
}

/// Subsets an implicit dimension to the index range `lo..hi`.
pub fn subset_implicit(
    cube: &Cube,
    dim: &str,
    lo: usize,
    hi: usize,
    cfg: ExecConfig,
) -> Result<Cube> {
    let d = cube.dim(dim)?;
    if d.kind != DimKind::Implicit {
        return Err(Error::WrongDimensionKind { dim: dim.into(), need: "implicit" });
    }
    if lo >= hi || hi > d.len() {
        return Err(Error::BadRange { dim: dim.into(), lo, hi, size: d.len() });
    }
    let idims = cube.implicit_dims();
    let pos = idims.iter().position(|x| x.name == dim).expect("dim checked");
    let after: usize = idims[pos + 1..].iter().map(|x| x.len()).product();
    let target = idims[pos].len();
    let ilen = cube.implicit_len();
    let keep = hi - lo;

    let frags = if keep == target {
        // Full range: the payloads are unchanged — share them.
        cube.frags.clone()
    } else {
        par_map_fragments_named(cfg, "subset", &cube.frags, |f| {
            let before = ilen / (target * after).max(1);
            SharedData::from_fn(f.row_count * before * keep * after, |out| {
                let mut w = 0usize;
                for row in f.data.chunks(ilen) {
                    for b in 0..before {
                        for t in lo..hi {
                            let base = b * target * after + t * after;
                            out[w..w + after].copy_from_slice(&row[base..base + after]);
                            w += after;
                        }
                    }
                }
            })
        })
    };

    let dims: Vec<Dimension> = cube
        .dims
        .iter()
        .map(|x| {
            if x.name == dim {
                Dimension {
                    name: x.name.clone(),
                    kind: x.kind,
                    coords: Arc::from(&x.coords[lo..hi]),
                }
            } else {
                x.clone()
            }
        })
        .collect();
    let out = Cube {
        measure: cube.measure.clone(),
        dims,
        frags,
        description: format!("subset({dim}, {lo}..{hi})"),
    };
    out.validate()?;
    Ok(out)
}

/// Subsets an explicit dimension to the index range `lo..hi` (spatial
/// subsetting: a lat or lon window). The row space shrinks; data is
/// re-fragmented to preserve the original fragment count. Selected rows are
/// gathered straight from the source fragments; when a target fragment's
/// rows form one contiguous run inside a source fragment it becomes an
/// O(1) window.
pub fn subset_explicit(cube: &Cube, dim: &str, lo: usize, hi: usize) -> Result<Cube> {
    let d = cube.dim(dim)?;
    if d.kind != DimKind::Explicit {
        return Err(Error::WrongDimensionKind { dim: dim.into(), need: "explicit" });
    }
    if lo >= hi || hi > d.len() {
        return Err(Error::BadRange { dim: dim.into(), lo, hi, size: d.len() });
    }
    let edims = cube.explicit_dims();
    let pos = edims.iter().position(|x| x.name == dim).expect("dim checked");
    let after: usize = edims[pos + 1..].iter().map(|x| x.len()).product();
    let target = edims[pos].len();
    let before: usize = edims[..pos].iter().map(|x| x.len()).product();
    let ilen = cube.implicit_len();

    let keep = hi - lo;
    let newrows = before * keep * after;
    let src_order = cube.frags_in_row_order();
    // Output-row -> source-row map for the kept index window.
    let src_row = |out_row: usize| {
        let sel = keep * after;
        let b = out_row / sel;
        let rem = out_row % sel;
        (b * target + lo + rem / after) * after + rem % after
    };

    // Same partitioning (and single-server placement) as the previous
    // dense re-split, so fragment layouts are unchanged.
    let nfrag = cube.frags.len().clamp(1, newrows.max(1));
    let base = newrows / nfrag;
    let extra = newrows % nfrag;
    let mut frags = Vec::with_capacity(nfrag);
    let mut row = 0usize;
    for f in 0..nfrag {
        let count = base + usize::from(f < extra);
        let data = gather_rows(&src_order, ilen, count, |i| src_row(row + i));
        frags.push(Fragment { row_start: row, row_count: count, server: 0, data });
        row += count;
    }

    let dims: Vec<Dimension> = cube
        .dims
        .iter()
        .map(|x| {
            if x.name == dim {
                Dimension {
                    name: x.name.clone(),
                    kind: x.kind,
                    coords: Arc::from(&x.coords[lo..hi]),
                }
            } else {
                x.clone()
            }
        })
        .collect();
    let out = Cube {
        measure: cube.measure.clone(),
        dims,
        frags,
        description: format!("subset_explicit({dim}, {lo}..{hi})"),
    };
    out.validate()?;
    Ok(out)
}

/// Subsets an explicit dimension by coordinate values: keeps indices whose
/// coordinate lies in `[lo, hi]` (inclusive). The paper-style spatial
/// window ("for a given area").
pub fn subset_by_coord(cube: &Cube, dim: &str, lo: f64, hi: f64) -> Result<Cube> {
    let d = cube.dim(dim)?;
    let first = d.coords.iter().position(|&c| c >= lo && c <= hi);
    let last = d.coords.iter().rposition(|&c| c >= lo && c <= hi);
    match (first, last) {
        (Some(a), Some(b)) if a <= b => subset_explicit(cube, dim, a, b + 1),
        _ => Err(Error::BadRange { dim: dim.into(), lo: 0, hi: 0, size: d.len() }),
    }
}

/// Concatenates cubes along an implicit dimension (stacking days into a
/// year series). All cubes must share explicit dimensions, measure and
/// fragmentation layout; each must have exactly one implicit dimension
/// named `dim`. Mismatched fragmentations are handled with per-row
/// fragment lookups — no cube is densified.
pub fn concat_implicit(cubes: &[&Cube], dim: &str) -> Result<Cube> {
    let first = cubes.first().ok_or_else(|| Error::SchemaMismatch("no cubes to concat".into()))?;
    let e0: Vec<_> = first.explicit_dims().into_iter().cloned().collect();
    for c in cubes {
        let d = c.dim(dim)?;
        if d.kind != DimKind::Implicit {
            return Err(Error::WrongDimensionKind { dim: dim.into(), need: "implicit" });
        }
        if c.implicit_dims().len() != 1 {
            return Err(Error::SchemaMismatch(
                "concat_implicit requires exactly one implicit dimension".into(),
            ));
        }
        let e: Vec<_> = c.explicit_dims().into_iter().cloned().collect();
        if e != e0 {
            return Err(Error::SchemaMismatch("explicit dimensions differ".into()));
        }
    }
    let aligned = cubes.windows(2).all(|w| {
        w[0].frags.len() == w[1].frags.len()
            && w[0]
                .frags
                .iter()
                .zip(&w[1].frags)
                .all(|(a, b)| a.row_start == b.row_start && a.row_count == b.row_count)
    });

    let mut coords = Vec::new();
    for c in cubes {
        coords.extend(c.dim(dim)?.coords.iter().copied());
    }
    let mut dims = e0;
    dims.push(Dimension::implicit(dim, coords));
    let total_ilen: usize = cubes.iter().map(|c| c.implicit_len()).sum();

    let frags = if aligned {
        let mut frags = Vec::with_capacity(first.frags.len());
        for fi in 0..first.frags.len() {
            let proto = &first.frags[fi];
            let data = SharedData::from_fn(proto.row_count * total_ilen, |out| {
                let mut w = 0usize;
                for local_row in 0..proto.row_count {
                    for c in cubes {
                        let ilen = c.implicit_len();
                        let f = &c.frags[fi];
                        out[w..w + ilen].copy_from_slice(
                            &f.data.as_slice()[local_row * ilen..(local_row + 1) * ilen],
                        );
                        w += ilen;
                    }
                }
            });
            frags.push(Fragment {
                row_start: proto.row_start,
                row_count: proto.row_count,
                server: proto.server,
                data,
            });
        }
        frags
    } else {
        // Mismatched layouts: interleave rows with per-cube fragment
        // lookups, re-partitioned like the first cube (single server, as
        // the previous dense re-split produced).
        let rows = first.rows();
        let orders: Vec<Vec<&Fragment>> = cubes.iter().map(|c| c.frags_in_row_order()).collect();
        let nfrag = first.frags.len().clamp(1, rows.max(1));
        let base = rows / nfrag;
        let extra = rows % nfrag;
        let mut frags = Vec::with_capacity(nfrag);
        let mut row0 = 0usize;
        for fidx in 0..nfrag {
            let count = base + usize::from(fidx < extra);
            let data = SharedData::from_fn(count * total_ilen, |out| {
                let mut w = 0usize;
                for r in row0..row0 + count {
                    for (c, ord) in cubes.iter().zip(&orders) {
                        let ilen = c.implicit_len();
                        if ilen == 0 {
                            continue;
                        }
                        let f = ord[ord.partition_point(|f| f.row_start + f.row_count <= r)];
                        let flo = (r - f.row_start) * ilen;
                        out[w..w + ilen].copy_from_slice(&f.data.as_slice()[flo..flo + ilen]);
                        w += ilen;
                    }
                }
            });
            frags.push(Fragment { row_start: row0, row_count: count, server: 0, data });
            row0 += count;
        }
        frags
    };
    let out = Cube {
        measure: first.measure.clone(),
        dims,
        frags,
        description: format!("concat_implicit({dim}, {} cubes)", cubes.len()),
    };
    out.validate()?;
    Ok(out)
}

/// Generic per-row series transform: each row's implicit array is mapped to
/// a new array of `out_len` values (`out_dim` names the resulting implicit
/// dimension). This is the extension point the heat-wave run-length
/// analytics build on.
pub fn map_series<F>(
    cube: &Cube,
    out_dim: &str,
    out_len: usize,
    cfg: ExecConfig,
    f: F,
) -> Result<Cube>
where
    F: Fn(&[f32]) -> Vec<f32> + Sync,
{
    let ilen = cube.implicit_len();
    let frags = par_map_fragments_named(cfg, "map_series", &cube.frags, |frag| {
        let mut out = Vec::with_capacity(frag.row_count * out_len);
        for row in frag.data.chunks(ilen.max(1)) {
            let mapped = f(row);
            // Per-row arity violations surface as validate() errors below;
            // truncate/pad defensively so we can detect them deterministically.
            out.extend_from_slice(&mapped);
        }
        SharedData::from(out)
    });
    // Verify arity before constructing the cube.
    for frag in &frags {
        if frag.data.len() != frag.row_count * out_len {
            return Err(Error::SeriesLength {
                expected: frag.row_count * out_len,
                actual: frag.data.len(),
            });
        }
    }
    let mut dims: Vec<Dimension> = cube.explicit_dims().into_iter().cloned().collect();
    if out_len > 0 {
        dims.push(Dimension::implicit(out_dim, (0..out_len).map(|i| i as f64).collect::<Vec<_>>()));
    }
    let out = Cube {
        measure: cube.measure.clone(),
        dims,
        frags,
        description: format!("map_series({out_dim})"),
    };
    out.validate()?;
    Ok(out)
}

/// Rolling-window reduction along the (single) implicit dimension
/// (Ophidia's time-series processing: `oph_apply` with moving-window
/// primitives). Output series length is `len - window + 1`; each element
/// is `op` over the trailing window.
pub fn rolling(cube: &Cube, op: ReduceOp, window: usize, cfg: ExecConfig) -> Result<Cube> {
    if window == 0 {
        return Err(Error::BadRange {
            dim: "window".into(),
            lo: 0,
            hi: 0,
            size: cube.implicit_len(),
        });
    }
    let idims = cube.implicit_dims();
    let dim = idims
        .first()
        .map(|d| d.name.clone())
        .ok_or_else(|| Error::SchemaMismatch("rolling needs an implicit dimension".into()))?;
    if idims.len() != 1 {
        return Err(Error::SchemaMismatch(
            "rolling requires exactly one implicit dimension".into(),
        ));
    }
    let len = cube.implicit_len();
    if window > len {
        return Err(Error::BadRange { dim, lo: 0, hi: window, size: len });
    }
    let out_len = len - window + 1;
    let out = map_series(cube, &format!("{dim}_rolling"), out_len, cfg, |row| {
        row.windows(window).map(|w| op.apply(w)).collect()
    })?;
    Ok(out)
}

/// Re-partitions a cube into `nfrag` fragments over `io_servers` servers
/// (Ophidia's `oph_merge`/`oph_split` fragmentation control). The logical
/// content is unchanged.
///
/// Target fragments fully contained in one source fragment become O(1)
/// windows into the source buffer; boundary-crossing targets are gathered
/// with block copies — the dense array is never materialized.
pub fn refragment(cube: &Cube, nfrag: usize, io_servers: usize) -> Result<Cube> {
    let rows = cube.rows();
    let ilen = cube.implicit_len();
    // Same clamping as `Cube::from_dense` so the partitions agree.
    let nfrag = nfrag.clamp(1, rows.max(1));
    let io_servers = io_servers.max(1);
    let base = rows / nfrag;
    let extra = rows % nfrag;

    let src_order = cube.frags_in_row_order();
    let mut frags = Vec::with_capacity(nfrag);
    let mut row = 0usize;
    for f in 0..nfrag {
        let count = base + usize::from(f < extra);
        let data = gather_rows(&src_order, ilen, count, |i| row + i);
        frags.push(Fragment { row_start: row, row_count: count, server: f % io_servers, data });
        row += count;
    }
    let out = Cube {
        measure: cube.measure.clone(),
        dims: cube.dims.clone(),
        frags,
        description: format!("{} | refragment({nfrag})", cube.description),
    };
    out.validate()?;
    Ok(out)
}

/// Reinterprets a cube with no implicit dimension as having a singleton
/// implicit dimension (`dim`, coordinate `coord`). This is how per-day
/// reductions (daily tmax maps) become stackable into a year series with
/// [`concat_implicit`]. Payloads are shared with the input.
pub fn add_singleton_implicit(cube: &Cube, dim: &str, coord: f64) -> Result<Cube> {
    if cube.implicit_len() != 1 || !cube.implicit_dims().is_empty() {
        return Err(Error::SchemaMismatch(
            "add_singleton_implicit requires a cube with no implicit dimension".into(),
        ));
    }
    let mut dims = cube.dims.clone();
    dims.push(Dimension::implicit(dim, vec![coord]));
    let out = Cube {
        measure: cube.measure.clone(),
        dims,
        frags: cube.frags.clone(),
        description: format!("{} + singleton {dim}", cube.description),
    };
    out.validate()?;
    Ok(out)
}

/// Exports a cube to an NCX file, with coordinate variables and provenance
/// attributes.
///
/// This is a materialization boundary, but even here the dense array is
/// never built: the output file is sized up front from the payload bytes,
/// coordinates are written from borrowed slices, and the measure streams
/// fragment-by-fragment (in row order) through the writer's reused encode
/// buffer.
pub fn exportnc(cube: &Cube, path: &Path) -> Result<()> {
    let mut w = Writer::create(path)?;
    for d in &cube.dims {
        w.add_dimension(&d.name, d.len())?;
    }
    let payload: u64 =
        cube.dims.iter().map(|d| d.len() as u64 * 8).sum::<u64>() + cube.len() as u64 * 4;
    w.reserve(payload)?;
    for d in &cube.dims {
        w.add_variable_f64(&d.name, &[d.name.as_str()], &d.coords, vec![])?;
    }
    let dim_names: Vec<&str> = cube.dims.iter().map(|d| d.name.as_str()).collect();
    w.begin_variable_f32(&cube.measure, &dim_names, vec![])?;
    for f in cube.frags_in_row_order() {
        w.write_chunk_f32(&f.data)?;
    }
    w.end_variable()?;
    w.set_attribute("description", Value::from(cube.description.clone()));
    w.set_attribute("source", Value::from("datacube::exportnc"));
    w.finish()?;
    Ok(())
}

/// Views a `(lat, lon)` cube with no implicit dimension as a gridded field
/// `(nlat, nlon, row-major data)` for map rendering. An explicit dense
/// accessor — the one place outside [`exportnc`] where a caller asks for
/// the materialized array.
pub fn to_grid_values(cube: &Cube) -> Result<(usize, usize, Vec<f32>)> {
    let e = cube.explicit_dims();
    if e.len() != 2 || cube.implicit_len() != 1 {
        return Err(Error::SchemaMismatch(format!(
            "expected 2 explicit dims and no implicit data, have {} explicit, implicit_len {}",
            e.len(),
            cube.implicit_len()
        )));
    }
    Ok((e[0].len(), e[1].len(), cube.to_dense()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncformat::Dataset;

    fn cfg() -> ExecConfig {
        ExecConfig::with_servers(2)
    }

    /// 2x2 grid, 4 timesteps: row r has series [r, r+10, r+20, r+30].
    fn sample() -> Cube {
        let dims = vec![
            Dimension::explicit("lat", vec![-45.0, 45.0]),
            Dimension::explicit("lon", vec![0.0, 180.0]),
            Dimension::implicit("time", vec![0.0, 1.0, 2.0, 3.0]),
        ];
        let mut data = Vec::new();
        for r in 0..4 {
            for t in 0..4 {
                data.push((r + t * 10) as f32);
            }
        }
        Cube::from_dense("v", dims, data, 3, 2).unwrap()
    }

    #[test]
    fn reduce_max_min_sum_avg() {
        let c = sample();
        let max = reduce(&c, ReduceOp::Max, "time", cfg()).unwrap();
        assert_eq!(max.to_dense(), vec![30.0, 31.0, 32.0, 33.0]);
        assert_eq!(max.implicit_len(), 1);
        assert!(max.dim("time").is_err());

        let min = reduce(&c, ReduceOp::Min, "time", cfg()).unwrap();
        assert_eq!(min.to_dense(), vec![0.0, 1.0, 2.0, 3.0]);

        let sum = reduce(&c, ReduceOp::Sum, "time", cfg()).unwrap();
        assert_eq!(sum.to_dense(), vec![60.0, 64.0, 68.0, 72.0]);

        let avg = reduce(&c, ReduceOp::Avg, "time", cfg()).unwrap();
        assert_eq!(avg.to_dense(), vec![15.0, 16.0, 17.0, 18.0]);
    }

    #[test]
    fn reduce_requires_implicit_dim() {
        let c = sample();
        assert!(matches!(
            reduce(&c, ReduceOp::Max, "lat", cfg()),
            Err(Error::WrongDimensionKind { .. })
        ));
        assert!(reduce(&c, ReduceOp::Max, "ghost", cfg()).is_err());
    }

    #[test]
    fn count_positive_counts() {
        let dims = vec![
            Dimension::explicit("x", vec![0.0]),
            Dimension::implicit("t", vec![0.0, 1.0, 2.0, 3.0]),
        ];
        let c = Cube::from_dense("m", dims, vec![-1.0, 0.0, 2.0, 5.0], 1, 1).unwrap();
        let n = reduce(&c, ReduceOp::CountPositive, "t", cfg()).unwrap();
        assert_eq!(n.to_dense(), vec![2.0]);
    }

    #[test]
    fn apply_threshold_mask() {
        let c = sample();
        let mask_expr = Expr::from_oph_predicate("x", ">15", "1", "0").unwrap();
        let m = apply(&c, &mask_expr, cfg());
        let dense = m.to_dense();
        let want: Vec<f32> =
            c.to_dense().iter().map(|&v| if v > 15.0 { 1.0 } else { 0.0 }).collect();
        assert_eq!(dense, want);
    }

    #[test]
    fn intercube_same_shape_and_broadcast() {
        let c = sample();
        let diff = intercube(&c, &c, InterOp::Sub, cfg()).unwrap();
        assert!(diff.to_dense().iter().all(|&v| v == 0.0));

        // Broadcast: subtract a per-row baseline (implicit_len = 1).
        let base = reduce(&c, ReduceOp::Min, "time", cfg()).unwrap();
        let anom = intercube(&c, &base, InterOp::Sub, cfg()).unwrap();
        // Every row's series minus its min: [0, 10, 20, 30].
        for r in 0..4 {
            assert_eq!(anom.row_series(r).unwrap(), &[0.0, 10.0, 20.0, 30.0]);
        }
    }

    #[test]
    fn intercube_handles_mismatched_fragmentation() {
        let c = sample(); // 3 fragments
        let b = refragment(&c, 2, 1).unwrap(); // different layout, same content
        let diff = intercube(&c, &b, InterOp::Sub, cfg()).unwrap();
        assert!(diff.to_dense().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn intercube_rejects_mismatched_shapes() {
        let c = sample();
        let dims = vec![Dimension::explicit("x", vec![0.0])];
        let other = Cube::from_dense("w", dims, vec![1.0], 1, 1).unwrap();
        assert!(intercube(&c, &other, InterOp::Add, cfg()).is_err());
    }

    #[test]
    fn subset_implicit_slices_series() {
        let c = sample();
        let s = subset_implicit(&c, "time", 1, 3, cfg()).unwrap();
        assert_eq!(s.implicit_len(), 2);
        assert_eq!(s.row_series(0).unwrap(), &[10.0, 20.0]);
        assert_eq!(s.dim("time").unwrap().coords.to_vec(), vec![1.0, 2.0]);
        assert!(subset_implicit(&c, "time", 3, 3, cfg()).is_err());
        assert!(subset_implicit(&c, "time", 0, 9, cfg()).is_err());
        assert!(subset_implicit(&c, "lat", 0, 1, cfg()).is_err());
    }

    #[test]
    fn subset_implicit_full_range_shares_buffers() {
        let c = sample();
        let s = subset_implicit(&c, "time", 0, 4, cfg()).unwrap();
        assert_eq!(s.to_dense(), c.to_dense());
        for (a, b) in c.frags.iter().zip(&s.frags) {
            assert!(a.data.same_buffer(&b.data), "full-range subset must not copy");
        }
    }

    #[test]
    fn subset_implicit_single_row_cube() {
        // One fragment per row, rows == 1: the smallest non-degenerate cube.
        let dims = vec![
            Dimension::explicit("x", vec![0.0]),
            Dimension::implicit("t", (0..5).map(|t| t as f64).collect::<Vec<_>>()),
        ];
        let c = Cube::from_dense("m", dims, vec![1.0, 2.0, 3.0, 4.0, 5.0], 4, 2).unwrap();
        assert_eq!(c.frags.len(), 1, "nfrag clamps to the row count");
        let s = subset_implicit(&c, "t", 1, 2, cfg()).unwrap();
        assert_eq!(s.to_dense(), vec![2.0]);
        assert_eq!(s.dim("t").unwrap().coords.to_vec(), vec![1.0]);
        s.validate().unwrap();
        // Degenerate index ranges stay rejected: empty and inverted.
        assert!(matches!(subset_implicit(&c, "t", 2, 2, cfg()), Err(Error::BadRange { .. })));
        assert!(matches!(subset_implicit(&c, "t", 3, 1, cfg()), Err(Error::BadRange { .. })));
    }

    #[test]
    fn subset_implicit_zero_row_cube_allocates_nothing() {
        // An empty explicit space still subsets cleanly; the zero-length
        // output windows must reuse the static empty buffer.
        let dims = vec![
            Dimension::explicit("x", Vec::<f64>::new()),
            Dimension::implicit("t", (0..5).map(|t| t as f64).collect::<Vec<_>>()),
        ];
        let z = Cube::from_dense("m", dims, Vec::new(), 2, 1).unwrap();
        let s = subset_implicit(&z, "t", 1, 3, cfg()).unwrap();
        assert_eq!(s.rows(), 0);
        assert_eq!(s.implicit_len(), 2);
        for f in &s.frags {
            assert!(f.data.is_empty());
            assert!(
                f.data.same_buffer(&SharedData::empty()),
                "zero-length subset window must not allocate"
            );
        }
        s.validate().unwrap();
    }

    #[test]
    fn subset_explicit_keeps_selected_rows() {
        let c = sample(); // lat {-45,45} x lon {0,180} x time 4
        let s = subset_explicit(&c, "lat", 1, 2).unwrap();
        assert_eq!(s.rows(), 2);
        assert_eq!(s.dim("lat").unwrap().coords.to_vec(), vec![45.0]);
        // Rows 2 and 3 of the original (lat index 1).
        assert_eq!(s.row_series(0).unwrap(), c.row_series(2).unwrap());
        assert_eq!(s.row_series(1).unwrap(), c.row_series(3).unwrap());
        s.validate().unwrap();

        let s = subset_explicit(&c, "lon", 0, 1).unwrap();
        assert_eq!(s.rows(), 2);
        assert_eq!(s.row_series(0).unwrap(), c.row_series(0).unwrap());
        assert_eq!(s.row_series(1).unwrap(), c.row_series(2).unwrap());

        assert!(subset_explicit(&c, "time", 0, 1).is_err(), "implicit dims rejected");
        assert!(subset_explicit(&c, "lat", 2, 2).is_err());
    }

    #[test]
    fn subset_by_coord_windows() {
        let c = sample();
        let s = subset_by_coord(&c, "lat", 0.0, 90.0).unwrap();
        assert_eq!(s.dim("lat").unwrap().coords.to_vec(), vec![45.0]);
        let s = subset_by_coord(&c, "lon", -10.0, 200.0).unwrap();
        assert_eq!(s.dim("lon").unwrap().coords.to_vec(), vec![0.0, 180.0]);
        assert!(subset_by_coord(&c, "lat", 50.0, 60.0).is_err(), "empty window");
    }

    #[test]
    fn concat_implicit_stacks_days() {
        let a = sample();
        let b = sample();
        let y = concat_implicit(&[&a, &b], "time").unwrap();
        assert_eq!(y.implicit_len(), 8);
        assert_eq!(y.row_series(2).unwrap(), &[2.0, 12.0, 22.0, 32.0, 2.0, 12.0, 22.0, 32.0]);
        assert_eq!(y.dim("time").unwrap().len(), 8);
    }

    #[test]
    fn concat_with_mismatched_fragmentation() {
        let a = sample(); // 3 fragments
        let dims = a.dims.clone();
        let b = Cube::from_dense("v", dims, a.to_dense(), 2, 1).unwrap(); // 2 fragments
        let y = concat_implicit(&[&a, &b], "time").unwrap();
        assert_eq!(y.implicit_len(), 8);
        assert_eq!(y.row_series(0).unwrap()[..4], a.to_dense()[..4]);
        y.validate().unwrap();
    }

    #[test]
    fn map_series_runs_custom_kernels() {
        let c = sample();
        // Cumulative sum per row.
        let out = map_series(&c, "csum", 4, cfg(), |row| {
            let mut acc = 0.0;
            row.iter()
                .map(|&v| {
                    acc += v;
                    acc
                })
                .collect()
        })
        .unwrap();
        assert_eq!(out.row_series(0).unwrap(), &[0.0, 10.0, 30.0, 60.0]);

        // Collapsing kernel.
        let out = map_series(&c, "n", 1, cfg(), |row| vec![row.len() as f32]).unwrap();
        assert_eq!(out.to_dense(), vec![4.0; 4]);

        // Wrong arity must be detected.
        assert!(matches!(
            map_series(&c, "bad", 2, cfg(), |_| vec![0.0]),
            Err(Error::SeriesLength { .. })
        ));
    }

    #[test]
    fn rolling_windows() {
        let dims = vec![
            Dimension::explicit("x", vec![0.0]),
            Dimension::implicit("t", (0..6).map(|t| t as f64).collect::<Vec<_>>()),
        ];
        let c = Cube::from_dense("m", dims, vec![1.0, 3.0, 2.0, 5.0, 4.0, 0.0], 1, 1).unwrap();
        let avg = rolling(&c, ReduceOp::Avg, 3, cfg()).unwrap();
        assert_eq!(avg.implicit_len(), 4);
        assert_eq!(avg.row_series(0).unwrap(), &[2.0, 10.0 / 3.0, 11.0 / 3.0, 3.0]);
        let max = rolling(&c, ReduceOp::Max, 2, cfg()).unwrap();
        assert_eq!(max.row_series(0).unwrap(), &[3.0, 3.0, 5.0, 5.0, 4.0]);
        // Window of 1 is the identity.
        let id = rolling(&c, ReduceOp::Sum, 1, cfg()).unwrap();
        assert_eq!(id.to_dense(), c.to_dense());
        // Degenerate windows rejected.
        assert!(rolling(&c, ReduceOp::Avg, 0, cfg()).is_err());
        assert!(rolling(&c, ReduceOp::Avg, 7, cfg()).is_err());
    }

    #[test]
    fn refragment_preserves_content() {
        let c = sample(); // 3 fragments
        for nfrag in [1, 2, 4, 100] {
            let r = refragment(&c, nfrag, 2).unwrap();
            assert_eq!(r.to_dense(), c.to_dense());
            assert_eq!(r.frags.len(), nfrag.min(c.rows()));
            r.validate().unwrap();
        }
    }

    #[test]
    fn refragment_contained_targets_are_views() {
        let c = sample(); // 4 rows, 3 fragments (2,1,1)
                          // Splitting finer: every target fragment sits inside one source.
        let r = refragment(&c, 4, 2).unwrap();
        assert_eq!(r.to_dense(), c.to_dense());
        for f in &r.frags {
            assert!(
                c.frags.iter().any(|s| f.data.same_buffer(&s.data)),
                "contained target should share a source buffer"
            );
        }
    }

    #[test]
    fn singleton_implicit_enables_day_stacking() {
        let day0 = reduce(&sample(), ReduceOp::Max, "time", cfg()).unwrap();
        let day1 = reduce(&sample(), ReduceOp::Min, "time", cfg()).unwrap();
        let d0 = add_singleton_implicit(&day0, "day", 0.0).unwrap();
        let d1 = add_singleton_implicit(&day1, "day", 1.0).unwrap();
        let year = concat_implicit(&[&d0, &d1], "day").unwrap();
        assert_eq!(year.implicit_len(), 2);
        assert_eq!(year.row_series(0).unwrap(), &[30.0, 0.0]);
        assert_eq!(year.dim("day").unwrap().coords.to_vec(), vec![0.0, 1.0]);
        // Cubes that still have a time axis are rejected.
        assert!(add_singleton_implicit(&sample(), "day", 0.0).is_err());
    }

    #[test]
    fn export_reimport_roundtrip() {
        let dir = std::env::temp_dir().join("datacube-ops");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("export.ncx");
        let c = reduce(&sample(), ReduceOp::Max, "time", cfg()).unwrap();
        exportnc(&c, &path).unwrap();

        let rd = Reader::open(&path).unwrap();
        assert_eq!(rd.read_all_f32("v").unwrap(), c.to_dense());
        assert_eq!(rd.read_all_f64("lat").unwrap(), vec![-45.0, 45.0]);
        let back = importnc(&rd, "v", &["lat", "lon"], &[], 2, cfg()).unwrap();
        assert_eq!(back.to_dense(), c.to_dense());
        assert_eq!(back.dim("lon").unwrap().coords.to_vec(), vec![0.0, 180.0]);
    }

    #[test]
    fn export_streams_fragments_in_row_order() {
        // A cube whose fragment vector is deliberately out of row order.
        let mut c = sample();
        c.frags.reverse();
        c.validate().unwrap();
        let dir = std::env::temp_dir().join("datacube-ops");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("export-rev.ncx");
        exportnc(&c, &path).unwrap();
        let rd = Reader::open(&path).unwrap();
        assert_eq!(rd.read_all_f32("v").unwrap(), c.to_dense());
    }

    #[test]
    fn importnc_validates_dim_names() {
        let dir = std::env::temp_dir().join("datacube-ops");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("dims.ncx");
        exportnc(&sample(), &path).unwrap();
        let rd = Reader::open(&path).unwrap();
        assert!(importnc(&rd, "v", &["lon", "lat"], &["time"], 1, cfg()).is_err());
        assert!(importnc(&rd, "nope", &["lat"], &[], 1, cfg()).is_err());
    }

    #[test]
    fn importnc_fragments_share_one_buffer() {
        let dir = std::env::temp_dir().join("datacube-ops");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("shared-import.ncx");
        exportnc(&sample(), &path).unwrap();
        let rd = Reader::open(&path).unwrap();
        let c = importnc(&rd, "v", &["lat", "lon"], &["time"], 3, cfg()).unwrap();
        assert!(c.frags.len() > 1);
        for f in &c.frags[1..] {
            assert!(f.data.same_buffer(&c.frags[0].data), "ingest must be single-allocation");
        }
    }

    #[test]
    fn import_transposed_gives_per_cell_series() {
        // Build a (time, lat, lon) file like the ESM writes.
        let dir = std::env::temp_dir().join("datacube-ops");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tyx.ncx");
        let (nt, ny, nx) = (3, 2, 2);
        let mut ds = Dataset::new();
        ds.add_dimension("time", nt).unwrap();
        ds.add_dimension("lat", ny).unwrap();
        ds.add_dimension("lon", nx).unwrap();
        let data: Vec<f32> = (0..nt * ny * nx).map(|i| i as f32).collect();
        ds.add_variable_f32("tas", &["time", "lat", "lon"], data).unwrap();
        ds.write_to_path(&path).unwrap();

        let rd = Reader::open(&path).unwrap();
        let cube = import_transposed(&rd, "tas", "time", "lat", "lon", 2, cfg()).unwrap();
        // Cell (0,0) series = values at linear offsets 0, 4, 8.
        assert_eq!(cube.row_series(0).unwrap(), &[0.0, 4.0, 8.0]);
        // Cell (1,1) = offsets 3, 7, 11.
        assert_eq!(cube.row_series(3).unwrap(), &[3.0, 7.0, 11.0]);
    }

    #[test]
    fn to_grid_values_shape_guard() {
        let c = reduce(&sample(), ReduceOp::Max, "time", cfg()).unwrap();
        let (nlat, nlon, vals) = to_grid_values(&c).unwrap();
        assert_eq!((nlat, nlon), (2, 2));
        assert_eq!(vals.len(), 4);
        assert!(to_grid_values(&sample()).is_err());
    }
}
