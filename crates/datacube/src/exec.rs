//! Parallel operator execution over fragments.
//!
//! Ophidia scales analytics by distributing fragments over in-memory I/O
//! servers that process them concurrently (Section 4.2.2: "the number of
//! Ophidia computing components can be scaled up ... over multiple nodes").
//! Here each I/O server is a thread; an operator maps every fragment
//! through a kernel, with fragments dealt to servers round-robin. Bench C4
//! measures the scaling this buys.

use crate::model::Fragment;
use std::sync::Mutex;
use std::time::Instant;

/// Execution configuration: how many simulated I/O servers (threads) run
/// operator kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecConfig {
    pub io_servers: usize,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig { io_servers: 4 }
    }
}

impl ExecConfig {
    /// Single-threaded execution (baseline for scaling benches).
    pub fn serial() -> Self {
        ExecConfig { io_servers: 1 }
    }

    /// `n`-server execution.
    pub fn with_servers(n: usize) -> Self {
        ExecConfig { io_servers: n.max(1) }
    }
}

/// Maps every fragment through `kernel` in parallel, preserving order.
/// The kernel receives the fragment and returns its transformed payload
/// (any length); `row_start`, `row_count` and `server` are preserved.
///
/// Unnamed convenience wrapper around [`par_map_fragments_named`]; the
/// operator shows up as `"map"` in traces and metrics.
pub fn par_map_fragments<F>(cfg: ExecConfig, frags: &[Fragment], kernel: F) -> Vec<Fragment>
where
    F: Fn(&Fragment) -> Vec<f32> + Sync,
{
    par_map_fragments_named(cfg, "map", frags, kernel)
}

/// Per-kernel execution record: which I/O server ran it, how many rows it
/// covered, and for how long.
struct KernelRun {
    out: Vec<f32>,
    server: usize,
    micros: u64,
}

/// [`par_map_fragments`] with an operator name for observability.
///
/// Every fragment kernel is timed; per-kernel timings land in the global
/// `datacube_kernel_us{op}` histogram and — when a tracer is subscribed to
/// [`obs::global`] — as [`obs::EventKind::KernelDone`] events whose
/// `server` is the I/O-server thread that ran the kernel (per-server
/// utilization). The whole operator emits one
/// [`obs::EventKind::OperatorDone`]. Without a subscriber the event cost
/// is a single atomic load; the timing cost is two clock reads per
/// fragment, negligible next to any real kernel.
pub fn par_map_fragments_named<F>(
    cfg: ExecConfig,
    op: &'static str,
    frags: &[Fragment],
    kernel: F,
) -> Vec<Fragment>
where
    F: Fn(&Fragment) -> Vec<f32> + Sync,
{
    if frags.is_empty() {
        return Vec::new();
    }
    let op_start = Instant::now();
    let n_threads = cfg.io_servers.min(frags.len()).max(1);
    let results: Vec<Mutex<Option<KernelRun>>> = frags.iter().map(|_| Mutex::new(None)).collect();

    let run = |f: &Fragment, server: usize| {
        let t0 = Instant::now();
        let out = kernel(f);
        KernelRun { out, server, micros: t0.elapsed().as_micros() as u64 }
    };

    if n_threads == 1 {
        for (i, f) in frags.iter().enumerate() {
            *results[i].lock().unwrap() = Some(run(f, 0));
        }
    } else {
        std::thread::scope(|scope| {
            for t in 0..n_threads {
                let results = &results;
                let run = &run;
                scope.spawn(move || {
                    // Round-robin deal: server t handles fragments t, t+n, ...
                    let mut i = t;
                    while i < frags.len() {
                        let out = run(&frags[i], t);
                        *results[i].lock().unwrap() = Some(out);
                        i += n_threads;
                    }
                });
            }
        });
    }

    let bus = obs::global();
    let kernel_us = obs::registry().histogram("datacube_kernel_us", &[("op", op)]);
    let out: Vec<Fragment> = frags
        .iter()
        .zip(results)
        .map(|(f, slot)| {
            let r = slot.into_inner().unwrap().expect("kernel did not run");
            kernel_us.observe(r.micros);
            bus.emit_with(|| obs::EventKind::KernelDone {
                op,
                server: r.server,
                rows: f.row_count,
                micros: r.micros,
            });
            Fragment {
                row_start: f.row_start,
                row_count: f.row_count,
                server: f.server,
                data: r.out,
            }
        })
        .collect();
    obs::registry().counter("datacube_fragments_total", &[("op", op)]).add(out.len() as u64);
    bus.emit_with(|| obs::EventKind::OperatorDone {
        op,
        fragments: out.len(),
        micros: op_start.elapsed().as_micros() as u64,
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frags(n: usize, rows_each: usize, ilen: usize) -> Vec<Fragment> {
        (0..n)
            .map(|i| Fragment {
                row_start: i * rows_each,
                row_count: rows_each,
                server: i % 2,
                data: (0..rows_each * ilen).map(|k| (i * 1000 + k) as f32).collect(),
            })
            .collect()
    }

    #[test]
    fn parallel_map_matches_serial() {
        let input = frags(7, 3, 5);
        let kernel = |f: &Fragment| f.data.iter().map(|v| v * 2.0 + 1.0).collect::<Vec<_>>();
        let serial = par_map_fragments(ExecConfig::serial(), &input, kernel);
        let parallel = par_map_fragments(ExecConfig::with_servers(4), &input, kernel);
        assert_eq!(serial, parallel);
        assert_eq!(serial[3].data[0], input[3].data[0] * 2.0 + 1.0);
    }

    #[test]
    fn order_and_metadata_preserved() {
        let input = frags(5, 2, 1);
        let out = par_map_fragments(ExecConfig::with_servers(3), &input, |f| f.data.clone());
        for (a, b) in input.iter().zip(&out) {
            assert_eq!(a.row_start, b.row_start);
            assert_eq!(a.row_count, b.row_count);
            assert_eq!(a.server, b.server);
            assert_eq!(a.data, b.data);
        }
    }

    #[test]
    fn kernel_may_change_payload_length() {
        let input = frags(3, 4, 6);
        // Collapse each row's 6 values to their sum (reduce-like kernel).
        let out = par_map_fragments(ExecConfig::with_servers(2), &input, |f| {
            f.data.chunks(6).map(|row| row.iter().sum()).collect()
        });
        assert_eq!(out[0].data.len(), 4);
        assert_eq!(out[0].data[0], input[0].data[..6].iter().sum::<f32>());
    }

    #[test]
    fn empty_input_is_fine() {
        let out = par_map_fragments(ExecConfig::default(), &[], |f| f.data.clone());
        assert!(out.is_empty());
    }

    #[test]
    fn more_servers_than_fragments_is_fine() {
        let input = frags(2, 1, 1);
        let out = par_map_fragments(ExecConfig::with_servers(16), &input, |f| f.data.clone());
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn named_map_emits_kernel_and_operator_events() {
        let rx = obs::global().subscribe();
        let input = frags(4, 2, 3);
        let out = par_map_fragments_named(ExecConfig::with_servers(2), "double", &input, |f| {
            f.data.iter().map(|v| v * 2.0).collect()
        });
        assert_eq!(out.len(), 4);
        // Other tests in the process may also be emitting to the global
        // bus; look only at this operator's events.
        let events = rx.drain();
        let kernels: Vec<_> = events
            .iter()
            .filter_map(|e| match e.kind {
                obs::EventKind::KernelDone { op: "double", server, rows, .. } => {
                    Some((server, rows))
                }
                _ => None,
            })
            .collect();
        assert_eq!(kernels.len(), 4);
        assert!(kernels.iter().all(|(server, rows)| *server < 2 && *rows == 2));
        assert!(events.iter().any(|e| matches!(
            e.kind,
            obs::EventKind::OperatorDone { op: "double", fragments: 4, .. }
        )));
    }
}
