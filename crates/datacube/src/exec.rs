//! Parallel operator execution over fragments.
//!
//! Ophidia scales analytics by distributing fragments over in-memory I/O
//! servers that process them concurrently (Section 4.2.2: "the number of
//! Ophidia computing components can be scaled up ... over multiple nodes").
//! Here each I/O server is a *lane* on the workspace-wide [`par`] pool:
//! an operator submits at most `io_servers` lane tasks which dynamically
//! claim fragments one at a time, so a slow fragment stalls only its own
//! lane instead of idling a statically dealt stripe, and no threads are
//! spawned per operator call. Bench C4 measures the scaling this buys;
//! `par_overhead` pins the dispatch cost.

use crate::model::{Fragment, SharedData};
use std::time::Instant;

/// Execution configuration: how many simulated I/O servers (parallel
/// lanes on the shared pool) run operator kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecConfig {
    pub io_servers: usize,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig { io_servers: 4 }
    }
}

impl ExecConfig {
    /// Single-threaded execution (baseline for scaling benches).
    pub fn serial() -> Self {
        ExecConfig { io_servers: 1 }
    }

    /// `n`-server execution.
    pub fn with_servers(n: usize) -> Self {
        ExecConfig { io_servers: n.max(1) }
    }
}

/// Maps every fragment through `kernel` in parallel, preserving order.
/// The kernel receives the fragment and returns its transformed payload
/// (any length, as a [`SharedData`] buffer — built once via
/// [`SharedData::from_fn`]/`collect()`, or an O(1) view of the input);
/// `row_start`, `row_count` and `server` are preserved.
///
/// Unnamed convenience wrapper around [`par_map_fragments_named`]; the
/// operator shows up as `"map"` in traces and metrics.
pub fn par_map_fragments<F>(cfg: ExecConfig, frags: &[Fragment], kernel: F) -> Vec<Fragment>
where
    F: Fn(&Fragment) -> SharedData + Sync,
{
    par_map_fragments_named(cfg, "map", frags, kernel)
}

/// Per-kernel execution record: which I/O-server lane actually ran it
/// and for how long.
struct KernelRun {
    out: SharedData,
    server: usize,
    micros: u64,
}

/// [`par_map_fragments`] with an operator name for observability.
///
/// Runs on the process-global [`par`] pool; see
/// [`par_map_fragments_named_on`] for the semantics.
pub fn par_map_fragments_named<F>(
    cfg: ExecConfig,
    op: &'static str,
    frags: &[Fragment],
    kernel: F,
) -> Vec<Fragment>
where
    F: Fn(&Fragment) -> SharedData + Sync,
{
    par_map_fragments_named_on(par::global(), cfg, op, frags, kernel)
}

/// [`par_map_fragments_named`] on an explicit pool (tests use dedicated
/// pools to pin down scheduling behaviour).
///
/// Every fragment kernel is timed; per-kernel timings land in the global
/// `datacube_kernel_us{op}` histogram and — when a tracer is subscribed
/// to [`obs::global`] — as [`obs::EventKind::KernelDone`] events whose
/// `server` is the I/O-server lane that *actually executed* the kernel
/// (dynamic attribution, not the static round-robin home), so per-server
/// utilization reflects real load balance. The whole operator emits one
/// [`obs::EventKind::OperatorDone`]. Without a subscriber the event cost
/// is a single atomic load; the timing cost is two clock reads per
/// fragment, negligible next to any real kernel.
pub fn par_map_fragments_named_on<F>(
    pool: &par::Pool,
    cfg: ExecConfig,
    op: &'static str,
    frags: &[Fragment],
    kernel: F,
) -> Vec<Fragment>
where
    F: Fn(&Fragment) -> SharedData + Sync,
{
    if frags.is_empty() {
        return Vec::new();
    }
    // Operator span: kernel lane tasks spawned below inherit this as
    // their parent, so a trace shows kernels nested under the operator
    // (and the operator under whatever workflow task invoked it).
    let _op_span = if obs::global_active() { Some(obs::trace::span(op)) } else { None };
    let op_start = Instant::now();

    // Lane tasks claim fragments dynamically and write into disjoint
    // output slots inside `par_map_lanes` — no per-fragment mutex, no
    // per-call thread spawn.
    let runs: Vec<KernelRun> = pool.par_map_lanes(cfg.io_servers, frags, |lane, _i, f| {
        let t0 = Instant::now();
        let out = kernel(f);
        KernelRun { out, server: lane, micros: t0.elapsed().as_micros() as u64 }
    });

    let bus = obs::global();
    let kernel_us = obs::registry().histogram("datacube_kernel_us", &[("op", op)]);
    let out: Vec<Fragment> = frags
        .iter()
        .zip(runs)
        .map(|(f, r)| {
            kernel_us.observe(r.micros);
            bus.emit_with(|| obs::EventKind::KernelDone {
                op,
                server: r.server,
                rows: f.row_count,
                micros: r.micros,
            });
            Fragment {
                row_start: f.row_start,
                row_count: f.row_count,
                server: f.server,
                data: r.out,
            }
        })
        .collect();
    obs::registry().counter("datacube_fragments_total", &[("op", op)]).add(out.len() as u64);
    bus.emit_with(|| obs::EventKind::OperatorDone {
        op,
        fragments: out.len(),
        micros: op_start.elapsed().as_micros() as u64,
    });
    out
}

/// [`par_map_fragments_named`] for kernels that produce **two** payloads
/// per fragment in one traversal: the primary output and a *tapped*
/// intermediate (the fused-pipeline pattern — e.g. materializing the
/// anomaly cube while also computing its reduction, without touching the
/// fragment twice). Returns `(primary, tapped)` fragment vectors; both
/// preserve `row_start`/`row_count`/`server` and the input order.
pub fn par_map_fragments_tapped<F>(
    cfg: ExecConfig,
    op: &'static str,
    frags: &[Fragment],
    kernel: F,
) -> (Vec<Fragment>, Vec<Fragment>)
where
    F: Fn(&Fragment) -> (SharedData, SharedData) + Sync,
{
    if frags.is_empty() {
        return (Vec::new(), Vec::new());
    }
    let _op_span = if obs::global_active() { Some(obs::trace::span(op)) } else { None };
    let op_start = Instant::now();

    struct TappedRun {
        out: SharedData,
        tap: SharedData,
        server: usize,
        micros: u64,
    }
    let runs: Vec<TappedRun> = par::global().par_map_lanes(cfg.io_servers, frags, |lane, _i, f| {
        let t0 = Instant::now();
        let (out, tap) = kernel(f);
        TappedRun { out, tap, server: lane, micros: t0.elapsed().as_micros() as u64 }
    });

    let bus = obs::global();
    let kernel_us = obs::registry().histogram("datacube_kernel_us", &[("op", op)]);
    let mut primary = Vec::with_capacity(frags.len());
    let mut tapped = Vec::with_capacity(frags.len());
    for (f, r) in frags.iter().zip(runs) {
        kernel_us.observe(r.micros);
        bus.emit_with(|| obs::EventKind::KernelDone {
            op,
            server: r.server,
            rows: f.row_count,
            micros: r.micros,
        });
        primary.push(Fragment {
            row_start: f.row_start,
            row_count: f.row_count,
            server: f.server,
            data: r.out,
        });
        tapped.push(Fragment {
            row_start: f.row_start,
            row_count: f.row_count,
            server: f.server,
            data: r.tap,
        });
    }
    obs::registry().counter("datacube_fragments_total", &[("op", op)]).add(primary.len() as u64);
    bus.emit_with(|| obs::EventKind::OperatorDone {
        op,
        fragments: primary.len(),
        micros: op_start.elapsed().as_micros() as u64,
    });
    (primary, tapped)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn frags(n: usize, rows_each: usize, ilen: usize) -> Vec<Fragment> {
        (0..n)
            .map(|i| Fragment {
                row_start: i * rows_each,
                row_count: rows_each,
                server: i % 2,
                data: (0..rows_each * ilen).map(|k| (i * 1000 + k) as f32).collect(),
            })
            .collect()
    }

    #[test]
    fn parallel_map_matches_serial() {
        let input = frags(7, 3, 5);
        let kernel = |f: &Fragment| f.data.iter().map(|v| v * 2.0 + 1.0).collect::<SharedData>();
        let serial = par_map_fragments(ExecConfig::serial(), &input, kernel);
        let parallel = par_map_fragments(ExecConfig::with_servers(4), &input, kernel);
        assert_eq!(serial, parallel);
        assert_eq!(serial[3].data[0], input[3].data[0] * 2.0 + 1.0);
    }

    #[test]
    fn order_and_metadata_preserved() {
        let input = frags(5, 2, 1);
        let out = par_map_fragments(ExecConfig::with_servers(3), &input, |f| f.data.clone());
        for (a, b) in input.iter().zip(&out) {
            assert_eq!(a.row_start, b.row_start);
            assert_eq!(a.row_count, b.row_count);
            assert_eq!(a.server, b.server);
            assert_eq!(a.data, b.data);
        }
    }

    #[test]
    fn kernel_may_change_payload_length() {
        let input = frags(3, 4, 6);
        // Collapse each row's 6 values to their sum (reduce-like kernel).
        let out = par_map_fragments(ExecConfig::with_servers(2), &input, |f| {
            f.data.chunks(6).map(|row| row.iter().sum()).collect()
        });
        assert_eq!(out[0].data.len(), 4);
        assert_eq!(out[0].data[0], input[0].data[..6].iter().sum::<f32>());
    }

    #[test]
    fn empty_input_is_fine() {
        let out = par_map_fragments(ExecConfig::default(), &[], |f| f.data.clone());
        assert!(out.is_empty());
    }

    #[test]
    fn more_servers_than_fragments_is_fine() {
        let input = frags(2, 1, 1);
        let out = par_map_fragments(ExecConfig::with_servers(16), &input, |f| f.data.clone());
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn tapped_map_returns_both_payloads_in_order() {
        let input = frags(5, 2, 3);
        let (primary, tapped) =
            par_map_fragments_tapped(ExecConfig::with_servers(3), "tap", &input, |f| {
                let out: SharedData = f.data.iter().map(|v| v + 1.0).collect();
                let tap: SharedData = f.data.iter().map(|v| v * 2.0).collect();
                (out, tap)
            });
        assert_eq!(primary.len(), 5);
        assert_eq!(tapped.len(), 5);
        for ((a, p), t) in input.iter().zip(&primary).zip(&tapped) {
            assert_eq!(p.row_start, a.row_start);
            assert_eq!(t.server, a.server);
            assert_eq!(p.data[0], a.data[0] + 1.0);
            assert_eq!(t.data[0], a.data[0] * 2.0);
        }
    }

    #[test]
    fn named_map_emits_kernel_and_operator_events() {
        let rx = obs::global().subscribe();
        let input = frags(4, 2, 3);
        let out = par_map_fragments_named(ExecConfig::with_servers(2), "double", &input, |f| {
            f.data.iter().map(|v| v * 2.0).collect()
        });
        assert_eq!(out.len(), 4);
        // Other tests in the process may also be emitting to the global
        // bus; look only at this operator's events.
        let events = rx.drain();
        let kernels: Vec<_> = events
            .iter()
            .filter_map(|e| match e.kind {
                obs::EventKind::KernelDone { op: "double", server, rows, .. } => {
                    Some((server, rows))
                }
                _ => None,
            })
            .collect();
        assert_eq!(kernels.len(), 4);
        assert!(kernels.iter().all(|(server, rows)| *server < 2 && *rows == 2));
        assert!(events.iter().any(|e| matches!(
            e.kind,
            obs::EventKind::OperatorDone { op: "double", fragments: 4, .. }
        )));
    }

    /// One pathologically slow fragment must not idle its stripe: with
    /// the old static round-robin deal, server 0 owned fragments
    /// {0, 4, 8} and the two fast ones waited behind the 150ms
    /// straggler. With dynamic lane scheduling the straggler's lane runs
    /// exactly one kernel while the other lanes drain the rest.
    #[test]
    fn skewed_fragment_sizes_keep_all_lanes_busy() {
        // A dedicated pool so the host's core count (possibly 1) cannot
        // serialize the lanes: 4 OS threads sleep concurrently.
        let pool = par::Pool::new(4);
        let input = frags(9, 1, 1);
        let rx = obs::global().subscribe();
        let t0 = Instant::now();
        let out =
            par_map_fragments_named_on(&pool, ExecConfig::with_servers(4), "skew", &input, |f| {
                if f.row_start == 0 {
                    std::thread::sleep(Duration::from_millis(150));
                }
                std::thread::sleep(Duration::from_millis(5));
                f.data.clone()
            });
        let wall = t0.elapsed();
        assert_eq!(out.len(), 9);

        let servers: Vec<usize> = rx
            .drain()
            .iter()
            .filter_map(|e| match e.kind {
                obs::EventKind::KernelDone { op: "skew", server, .. } => Some(server),
                _ => None,
            })
            .collect();
        assert_eq!(servers.len(), 9);
        // The lane that picked up the straggler ran nothing else; the
        // remaining 8 fast fragments spread over the other lanes.
        let slow_lane = servers[0];
        assert!(
            servers[1..].iter().all(|&s| s != slow_lane),
            "straggler lane also ran fast fragments: {servers:?}"
        );
        let distinct: std::collections::BTreeSet<usize> = servers.iter().copied().collect();
        assert!(distinct.len() >= 3, "expected >=3 busy lanes, got {distinct:?}");
        // Wall time ~ straggler (150ms), nowhere near the serial sum
        // (150 + 9*5 = 195ms serial; static-stripe worst case adds the
        // straggler's stripe on top).
        assert!(wall < Duration::from_millis(600), "lanes idled: {wall:?}");
    }
}
