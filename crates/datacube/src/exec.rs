//! Parallel operator execution over fragments.
//!
//! Ophidia scales analytics by distributing fragments over in-memory I/O
//! servers that process them concurrently (Section 4.2.2: "the number of
//! Ophidia computing components can be scaled up ... over multiple nodes").
//! Here each I/O server is a thread; an operator maps every fragment
//! through a kernel, with fragments dealt to servers round-robin. Bench C4
//! measures the scaling this buys.

use crate::model::Fragment;
use std::sync::Mutex;

/// Execution configuration: how many simulated I/O servers (threads) run
/// operator kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecConfig {
    pub io_servers: usize,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig { io_servers: 4 }
    }
}

impl ExecConfig {
    /// Single-threaded execution (baseline for scaling benches).
    pub fn serial() -> Self {
        ExecConfig { io_servers: 1 }
    }

    /// `n`-server execution.
    pub fn with_servers(n: usize) -> Self {
        ExecConfig { io_servers: n.max(1) }
    }
}

/// Maps every fragment through `kernel` in parallel, preserving order.
/// The kernel receives the fragment and returns its transformed payload
/// (any length); `row_start`, `row_count` and `server` are preserved.
pub fn par_map_fragments<F>(cfg: ExecConfig, frags: &[Fragment], kernel: F) -> Vec<Fragment>
where
    F: Fn(&Fragment) -> Vec<f32> + Sync,
{
    if frags.is_empty() {
        return Vec::new();
    }
    let n_threads = cfg.io_servers.min(frags.len()).max(1);
    let results: Vec<Mutex<Option<Vec<f32>>>> = frags.iter().map(|_| Mutex::new(None)).collect();

    if n_threads == 1 {
        for (i, f) in frags.iter().enumerate() {
            *results[i].lock().unwrap() = Some(kernel(f));
        }
    } else {
        std::thread::scope(|scope| {
            for t in 0..n_threads {
                let results = &results;
                let kernel = &kernel;
                scope.spawn(move || {
                    // Round-robin deal: server t handles fragments t, t+n, ...
                    let mut i = t;
                    while i < frags.len() {
                        let out = kernel(&frags[i]);
                        *results[i].lock().unwrap() = Some(out);
                        i += n_threads;
                    }
                });
            }
        });
    }

    frags
        .iter()
        .zip(results)
        .map(|(f, slot)| Fragment {
            row_start: f.row_start,
            row_count: f.row_count,
            server: f.server,
            data: slot.into_inner().unwrap().expect("kernel did not run"),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frags(n: usize, rows_each: usize, ilen: usize) -> Vec<Fragment> {
        (0..n)
            .map(|i| Fragment {
                row_start: i * rows_each,
                row_count: rows_each,
                server: i % 2,
                data: (0..rows_each * ilen).map(|k| (i * 1000 + k) as f32).collect(),
            })
            .collect()
    }

    #[test]
    fn parallel_map_matches_serial() {
        let input = frags(7, 3, 5);
        let kernel = |f: &Fragment| f.data.iter().map(|v| v * 2.0 + 1.0).collect::<Vec<_>>();
        let serial = par_map_fragments(ExecConfig::serial(), &input, kernel);
        let parallel = par_map_fragments(ExecConfig::with_servers(4), &input, kernel);
        assert_eq!(serial, parallel);
        assert_eq!(serial[3].data[0], input[3].data[0] * 2.0 + 1.0);
    }

    #[test]
    fn order_and_metadata_preserved() {
        let input = frags(5, 2, 1);
        let out = par_map_fragments(ExecConfig::with_servers(3), &input, |f| f.data.clone());
        for (a, b) in input.iter().zip(&out) {
            assert_eq!(a.row_start, b.row_start);
            assert_eq!(a.row_count, b.row_count);
            assert_eq!(a.server, b.server);
            assert_eq!(a.data, b.data);
        }
    }

    #[test]
    fn kernel_may_change_payload_length() {
        let input = frags(3, 4, 6);
        // Collapse each row's 6 values to their sum (reduce-like kernel).
        let out = par_map_fragments(ExecConfig::with_servers(2), &input, |f| {
            f.data.chunks(6).map(|row| row.iter().sum()).collect()
        });
        assert_eq!(out[0].data.len(), 4);
        assert_eq!(out[0].data[0], input[0].data[..6].iter().sum::<f32>());
    }

    #[test]
    fn empty_input_is_fine() {
        let out = par_map_fragments(ExecConfig::default(), &[], |f| f.data.clone());
        assert!(out.is_empty());
    }

    #[test]
    fn more_servers_than_fragments_is_fine() {
        let input = frags(2, 1, 1);
        let out = par_map_fragments(ExecConfig::with_servers(16), &input, |f| f.data.clone());
        assert_eq!(out.len(), 2);
    }
}
