//! The element-wise expression mini-language behind `apply`.
//!
//! Ophidia's `oph_apply` operator evaluates small array expressions such as
//! `oph_predicate('OPH_INT','OPH_INT',measure,'x','>0','1','0')` (Listing 1
//! of the paper). This module provides an equivalent language over the
//! scalar `x` (the measure value at each element):
//!
//! ```text
//! expr     := term (('+'|'-') term)*
//! term     := unary (('*'|'/') unary)*
//! unary    := '-' unary | atom
//! atom     := NUMBER | 'x' | 'measure' | '(' expr ')'
//!           | fn '(' expr (',' expr)* ')'
//! fn       := predicate | max | min | abs | sqrt | exp | ln
//! cond     := expr ('>'|'>='|'<'|'<='|'=='|'!=') expr   (inside predicate)
//! ```
//!
//! `predicate(cond, then, else)` is the `oph_predicate` equivalent; the
//! compatibility constructor [`Expr::from_oph_predicate`] accepts the
//! Ophidia-style argument triple directly.

use crate::error::{Error, Result};

/// A parsed, evaluable expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    Const(f64),
    X,
    Neg(Box<Expr>),
    Add(Box<Expr>, Box<Expr>),
    Sub(Box<Expr>, Box<Expr>),
    Mul(Box<Expr>, Box<Expr>),
    Div(Box<Expr>, Box<Expr>),
    /// `predicate(cond, then, else)`, cond = lhs cmp rhs.
    Predicate {
        lhs: Box<Expr>,
        cmp: Cmp,
        rhs: Box<Expr>,
        then: Box<Expr>,
        otherwise: Box<Expr>,
    },
    Max(Box<Expr>, Box<Expr>),
    Min(Box<Expr>, Box<Expr>),
    Abs(Box<Expr>),
    Sqrt(Box<Expr>),
    Exp(Box<Expr>),
    Ln(Box<Expr>),
}

/// Comparison operator inside a predicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cmp {
    Gt,
    Ge,
    Lt,
    Le,
    Eq,
    Ne,
}

impl Cmp {
    fn eval(self, a: f64, b: f64) -> bool {
        match self {
            Cmp::Gt => a > b,
            Cmp::Ge => a >= b,
            Cmp::Lt => a < b,
            Cmp::Le => a <= b,
            Cmp::Eq => a == b,
            Cmp::Ne => a != b,
        }
    }
}

impl Expr {
    /// Parses an expression from source text.
    pub fn parse(src: &str) -> Result<Expr> {
        let tokens = lex(src)?;
        let mut p = Parser { tokens, pos: 0 };
        let e = p.expr()?;
        if p.pos != p.tokens.len() {
            return Err(Error::Expr(format!("trailing input at token {}", p.pos)));
        }
        Ok(e)
    }

    /// Builds the Ophidia-compatible predicate: measure string (must be
    /// an expression over `x`), a comparison against zero written like
    /// `">0"` / `"<=5"` / `"!=0"`, and then/else expressions — mirroring
    /// `oph_predicate('…','…', measure, 'x', '>0', '1', '0')`.
    pub fn from_oph_predicate(
        measure: &str,
        cond: &str,
        then: &str,
        otherwise: &str,
    ) -> Result<Expr> {
        let lhs = Expr::parse(measure)?;
        let cond = cond.trim();
        let (cmp, rest) = if let Some(r) = cond.strip_prefix(">=") {
            (Cmp::Ge, r)
        } else if let Some(r) = cond.strip_prefix("<=") {
            (Cmp::Le, r)
        } else if let Some(r) = cond.strip_prefix("==") {
            (Cmp::Eq, r)
        } else if let Some(r) = cond.strip_prefix("!=") {
            (Cmp::Ne, r)
        } else if let Some(r) = cond.strip_prefix('>') {
            (Cmp::Gt, r)
        } else if let Some(r) = cond.strip_prefix('<') {
            (Cmp::Lt, r)
        } else {
            return Err(Error::Expr(format!("bad oph_predicate condition '{cond}'")));
        };
        let rhs = Expr::parse(rest)?;
        Ok(Expr::Predicate {
            lhs: Box::new(lhs),
            cmp,
            rhs: Box::new(rhs),
            then: Box::new(Expr::parse(then)?),
            otherwise: Box::new(Expr::parse(otherwise)?),
        })
    }

    /// Evaluates the expression at measure value `x`.
    pub fn eval(&self, x: f64) -> f64 {
        match self {
            Expr::Const(c) => *c,
            Expr::X => x,
            Expr::Neg(e) => -e.eval(x),
            Expr::Add(a, b) => a.eval(x) + b.eval(x),
            Expr::Sub(a, b) => a.eval(x) - b.eval(x),
            Expr::Mul(a, b) => a.eval(x) * b.eval(x),
            Expr::Div(a, b) => a.eval(x) / b.eval(x),
            Expr::Predicate { lhs, cmp, rhs, then, otherwise } => {
                if cmp.eval(lhs.eval(x), rhs.eval(x)) {
                    then.eval(x)
                } else {
                    otherwise.eval(x)
                }
            }
            Expr::Max(a, b) => a.eval(x).max(b.eval(x)),
            Expr::Min(a, b) => a.eval(x).min(b.eval(x)),
            Expr::Abs(e) => e.eval(x).abs(),
            Expr::Sqrt(e) => e.eval(x).sqrt(),
            Expr::Exp(e) => e.eval(x).exp(),
            Expr::Ln(e) => e.eval(x).ln(),
        }
    }
}

/// Lane width of the vectorized evaluator. Blocks of eight keep the
/// per-lane loops unrollable into SIMD by the optimizer without any
/// nightly features; callers pad partial tails (per-element operations
/// are pure, so computing garbage lanes and discarding them is safe).
pub const LANES: usize = 8;

/// One instruction of a compiled expression [`Tape`]: a postfix stack
/// operation over `[f64; LANES]` blocks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TapeOp {
    /// Push a constant, splatted across lanes.
    Const(f64),
    /// Push the measure block `x`.
    X,
    Neg,
    Add,
    Sub,
    Mul,
    Div,
    Max,
    Min,
    Abs,
    Sqrt,
    Exp,
    Ln,
    /// `predicate(lhs cmp rhs, then, else)`: pops `else`, `then`, `rhs`,
    /// `lhs` and pushes a per-lane select. Both branches are evaluated for
    /// all lanes; because every operation is a pure math function, the
    /// discarded branch's value is bit-for-bit irrelevant and the selected
    /// lane equals what [`Expr::eval`]'s short-circuit would have produced.
    Select(Cmp),
}

/// A flat, vectorizable compilation of an [`Expr`]: the tree is walked
/// once at compile time instead of once per element, and evaluation runs
/// on [`LANES`]-wide blocks. Per-lane results are bitwise identical to
/// [`Expr::eval`] — the same f64 operations are applied in the same
/// order to each element, with no cross-lane interaction.
#[derive(Debug, Clone, PartialEq)]
pub struct Tape {
    ops: Vec<TapeOp>,
    max_depth: usize,
}

impl Tape {
    /// The instruction stream (diagnostics/tests).
    pub fn ops(&self) -> &[TapeOp] {
        &self.ops
    }

    /// Maximum operand-stack depth evaluation needs.
    pub fn max_depth(&self) -> usize {
        self.max_depth
    }

    /// Creates a reusable evaluator (owns the operand stack so per-block
    /// evaluation allocates nothing).
    pub fn evaluator(&self) -> TapeEval<'_> {
        TapeEval { tape: self, stack: vec![[0.0; LANES]; self.max_depth.max(1)] }
    }

    /// Peephole: recognizes the mask idiom `predicate(x ⋈ c, a, b)` —
    /// the single hottest expression shape in the index pipelines — and
    /// collapses it to a branchless constant-select kernel. Returns
    /// `None` for every other tape. The kernel performs the exact f64
    /// compare-and-select the stack evaluator would, so results stay
    /// bitwise identical.
    pub fn const_select(&self) -> Option<ConstSelect> {
        match self.ops.as_slice() {
            [TapeOp::X, TapeOp::Const(rhs), TapeOp::Const(then_v), TapeOp::Const(otherwise), TapeOp::Select(cmp)] => {
                Some(ConstSelect { cmp: *cmp, rhs: *rhs, then_v: *then_v, otherwise: *otherwise })
            }
            _ => None,
        }
    }
}

/// A collapsed `predicate(x ⋈ rhs, then_v, otherwise)` kernel (see
/// [`Tape::const_select`]): one f64 compare and a constant pick per lane.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConstSelect {
    cmp: Cmp,
    rhs: f64,
    then_v: f64,
    otherwise: f64,
}

impl ConstSelect {
    /// Evaluates one element; bitwise equal to the full tape (and tree)
    /// evaluation of the originating predicate expression.
    #[inline]
    pub fn eval(self, x: f64) -> f64 {
        if self.cmp.eval(x, self.rhs) {
            self.then_v
        } else {
            self.otherwise
        }
    }
}

/// Reusable block evaluator for a [`Tape`].
pub struct TapeEval<'t> {
    tape: &'t Tape,
    stack: Vec<[f64; LANES]>,
}

impl TapeEval<'_> {
    /// Evaluates the tape on one block of lane inputs, writing the result
    /// block to `out`. Every lane `l` receives exactly `expr.eval(x[l])`.
    pub fn eval_block(&mut self, x: &[f64; LANES], out: &mut [f64; LANES]) {
        let stack = &mut self.stack;
        let mut sp = 0usize;
        for op in &self.tape.ops {
            match *op {
                TapeOp::Const(c) => {
                    stack[sp] = [c; LANES];
                    sp += 1;
                }
                TapeOp::X => {
                    stack[sp] = *x;
                    sp += 1;
                }
                TapeOp::Neg => {
                    for v in stack[sp - 1].iter_mut() {
                        *v = -*v;
                    }
                }
                TapeOp::Add => {
                    sp -= 1;
                    let (lo, hi) = stack.split_at_mut(sp);
                    let (a, b) = (&mut lo[sp - 1], &hi[0]);
                    for l in 0..LANES {
                        a[l] += b[l];
                    }
                }
                TapeOp::Sub => {
                    sp -= 1;
                    let (lo, hi) = stack.split_at_mut(sp);
                    let (a, b) = (&mut lo[sp - 1], &hi[0]);
                    for l in 0..LANES {
                        a[l] -= b[l];
                    }
                }
                TapeOp::Mul => {
                    sp -= 1;
                    let (lo, hi) = stack.split_at_mut(sp);
                    let (a, b) = (&mut lo[sp - 1], &hi[0]);
                    for l in 0..LANES {
                        a[l] *= b[l];
                    }
                }
                TapeOp::Div => {
                    sp -= 1;
                    let (lo, hi) = stack.split_at_mut(sp);
                    let (a, b) = (&mut lo[sp - 1], &hi[0]);
                    for l in 0..LANES {
                        a[l] /= b[l];
                    }
                }
                TapeOp::Max => {
                    sp -= 1;
                    let (lo, hi) = stack.split_at_mut(sp);
                    let (a, b) = (&mut lo[sp - 1], &hi[0]);
                    for l in 0..LANES {
                        a[l] = a[l].max(b[l]);
                    }
                }
                TapeOp::Min => {
                    sp -= 1;
                    let (lo, hi) = stack.split_at_mut(sp);
                    let (a, b) = (&mut lo[sp - 1], &hi[0]);
                    for l in 0..LANES {
                        a[l] = a[l].min(b[l]);
                    }
                }
                TapeOp::Abs => {
                    for v in stack[sp - 1].iter_mut() {
                        *v = v.abs();
                    }
                }
                TapeOp::Sqrt => {
                    for v in stack[sp - 1].iter_mut() {
                        *v = v.sqrt();
                    }
                }
                TapeOp::Exp => {
                    for v in stack[sp - 1].iter_mut() {
                        *v = v.exp();
                    }
                }
                TapeOp::Ln => {
                    for v in stack[sp - 1].iter_mut() {
                        *v = v.ln();
                    }
                }
                TapeOp::Select(cmp) => {
                    sp -= 3;
                    let (lo, hi) = stack.split_at_mut(sp);
                    let lhs = &mut lo[sp - 1];
                    let (rhs, rest) = hi.split_first().unwrap();
                    let (then, rest) = rest.split_first().unwrap();
                    let otherwise = &rest[0];
                    for l in 0..LANES {
                        lhs[l] = if cmp.eval(lhs[l], rhs[l]) { then[l] } else { otherwise[l] };
                    }
                }
            }
        }
        debug_assert_eq!(sp, 1, "tape must leave exactly one result");
        *out = stack[0];
    }
}

impl Expr {
    /// Compiles the expression to a flat [`Tape`] for block evaluation.
    pub fn tape(&self) -> Tape {
        fn emit(e: &Expr, ops: &mut Vec<TapeOp>, depth: usize, max: &mut usize) {
            // `depth` is the stack height *before* this node's result is
            // pushed; track the high-water mark as operands pile up.
            let bump = |d: usize, max: &mut usize| {
                if d > *max {
                    *max = d;
                }
            };
            match e {
                Expr::Const(c) => {
                    ops.push(TapeOp::Const(*c));
                    bump(depth + 1, max);
                }
                Expr::X => {
                    ops.push(TapeOp::X);
                    bump(depth + 1, max);
                }
                Expr::Neg(a) => {
                    emit(a, ops, depth, max);
                    ops.push(TapeOp::Neg);
                }
                Expr::Add(a, b) | Expr::Sub(a, b) | Expr::Mul(a, b) | Expr::Div(a, b) => {
                    emit(a, ops, depth, max);
                    emit(b, ops, depth + 1, max);
                    ops.push(match e {
                        Expr::Add(..) => TapeOp::Add,
                        Expr::Sub(..) => TapeOp::Sub,
                        Expr::Mul(..) => TapeOp::Mul,
                        _ => TapeOp::Div,
                    });
                }
                Expr::Max(a, b) | Expr::Min(a, b) => {
                    emit(a, ops, depth, max);
                    emit(b, ops, depth + 1, max);
                    ops.push(if matches!(e, Expr::Max(..)) { TapeOp::Max } else { TapeOp::Min });
                }
                Expr::Abs(a) | Expr::Sqrt(a) | Expr::Exp(a) | Expr::Ln(a) => {
                    emit(a, ops, depth, max);
                    ops.push(match e {
                        Expr::Abs(..) => TapeOp::Abs,
                        Expr::Sqrt(..) => TapeOp::Sqrt,
                        Expr::Exp(..) => TapeOp::Exp,
                        _ => TapeOp::Ln,
                    });
                }
                Expr::Predicate { lhs, cmp, rhs, then, otherwise } => {
                    emit(lhs, ops, depth, max);
                    emit(rhs, ops, depth + 1, max);
                    emit(then, ops, depth + 2, max);
                    emit(otherwise, ops, depth + 3, max);
                    ops.push(TapeOp::Select(*cmp));
                }
            }
        }
        let mut ops = Vec::new();
        let mut max_depth = 0usize;
        emit(self, &mut ops, 0, &mut max_depth);
        Tape { ops, max_depth }
    }
}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Num(f64),
    X,
    Ident(String),
    Plus,
    Minus,
    Star,
    Slash,
    LParen,
    RParen,
    Comma,
    Cmp(Cmp),
}

fn lex(src: &str) -> Result<Vec<Tok>> {
    let mut out = Vec::new();
    let bytes = src.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '+' => {
                out.push(Tok::Plus);
                i += 1;
            }
            '-' => {
                out.push(Tok::Minus);
                i += 1;
            }
            '*' => {
                out.push(Tok::Star);
                i += 1;
            }
            '/' => {
                out.push(Tok::Slash);
                i += 1;
            }
            '(' => {
                out.push(Tok::LParen);
                i += 1;
            }
            ')' => {
                out.push(Tok::RParen);
                i += 1;
            }
            ',' => {
                out.push(Tok::Comma);
                i += 1;
            }
            '>' | '<' | '=' | '!' => {
                let two = &src[i..(i + 2).min(src.len())];
                let (cmp, adv) = match two {
                    ">=" => (Cmp::Ge, 2),
                    "<=" => (Cmp::Le, 2),
                    "==" => (Cmp::Eq, 2),
                    "!=" => (Cmp::Ne, 2),
                    _ if c == '>' => (Cmp::Gt, 1),
                    _ if c == '<' => (Cmp::Lt, 1),
                    _ => return Err(Error::Expr(format!("unexpected character '{c}'"))),
                };
                out.push(Tok::Cmp(cmp));
                i += adv;
            }
            '0'..='9' | '.' => {
                let start = i;
                while i < bytes.len()
                    && (bytes[i].is_ascii_digit()
                        || bytes[i] == b'.'
                        || bytes[i] == b'e'
                        || bytes[i] == b'E'
                        || ((bytes[i] == b'-' || bytes[i] == b'+')
                            && i > start
                            && (bytes[i - 1] == b'e' || bytes[i - 1] == b'E')))
                {
                    i += 1;
                }
                let n: f64 = src[start..i]
                    .parse()
                    .map_err(|_| Error::Expr(format!("bad number '{}'", &src[start..i])))?;
                out.push(Tok::Num(n));
            }
            'a'..='z' | 'A'..='Z' | '_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                let word = &src[start..i];
                match word {
                    "x" | "measure" => out.push(Tok::X),
                    _ => out.push(Tok::Ident(word.to_string())),
                }
            }
            other => return Err(Error::Expr(format!("unexpected character '{other}'"))),
        }
    }
    Ok(out)
}

struct Parser {
    tokens: Vec<Tok>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, t: Tok) -> Result<()> {
        match self.next() {
            Some(got) if got == t => Ok(()),
            got => Err(Error::Expr(format!("expected {t:?}, got {got:?}"))),
        }
    }

    fn expr(&mut self) -> Result<Expr> {
        let mut lhs = self.term()?;
        loop {
            match self.peek() {
                Some(Tok::Plus) => {
                    self.next();
                    lhs = Expr::Add(Box::new(lhs), Box::new(self.term()?));
                }
                Some(Tok::Minus) => {
                    self.next();
                    lhs = Expr::Sub(Box::new(lhs), Box::new(self.term()?));
                }
                _ => return Ok(lhs),
            }
        }
    }

    fn term(&mut self) -> Result<Expr> {
        let mut lhs = self.unary()?;
        loop {
            match self.peek() {
                Some(Tok::Star) => {
                    self.next();
                    lhs = Expr::Mul(Box::new(lhs), Box::new(self.unary()?));
                }
                Some(Tok::Slash) => {
                    self.next();
                    lhs = Expr::Div(Box::new(lhs), Box::new(self.unary()?));
                }
                _ => return Ok(lhs),
            }
        }
    }

    fn unary(&mut self) -> Result<Expr> {
        if matches!(self.peek(), Some(Tok::Minus)) {
            self.next();
            return Ok(Expr::Neg(Box::new(self.unary()?)));
        }
        self.atom()
    }

    fn atom(&mut self) -> Result<Expr> {
        match self.next() {
            Some(Tok::Num(n)) => Ok(Expr::Const(n)),
            Some(Tok::X) => Ok(Expr::X),
            Some(Tok::LParen) => {
                let e = self.expr()?;
                self.expect(Tok::RParen)?;
                Ok(e)
            }
            Some(Tok::Ident(name)) => self.call(&name),
            got => Err(Error::Expr(format!("unexpected token {got:?}"))),
        }
    }

    fn call(&mut self, name: &str) -> Result<Expr> {
        self.expect(Tok::LParen)?;
        match name {
            "predicate" | "oph_predicate" => {
                // predicate(lhs CMP rhs, then, else)
                let lhs = self.expr()?;
                let cmp = match self.next() {
                    Some(Tok::Cmp(c)) => c,
                    got => return Err(Error::Expr(format!("expected comparison, got {got:?}"))),
                };
                let rhs = self.expr()?;
                self.expect(Tok::Comma)?;
                let then = self.expr()?;
                self.expect(Tok::Comma)?;
                let otherwise = self.expr()?;
                self.expect(Tok::RParen)?;
                Ok(Expr::Predicate {
                    lhs: Box::new(lhs),
                    cmp,
                    rhs: Box::new(rhs),
                    then: Box::new(then),
                    otherwise: Box::new(otherwise),
                })
            }
            "max" | "min" => {
                let a = self.expr()?;
                self.expect(Tok::Comma)?;
                let b = self.expr()?;
                self.expect(Tok::RParen)?;
                Ok(if name == "max" {
                    Expr::Max(Box::new(a), Box::new(b))
                } else {
                    Expr::Min(Box::new(a), Box::new(b))
                })
            }
            "abs" | "sqrt" | "exp" | "ln" => {
                let a = self.expr()?;
                self.expect(Tok::RParen)?;
                Ok(match name {
                    "abs" => Expr::Abs(Box::new(a)),
                    "sqrt" => Expr::Sqrt(Box::new(a)),
                    "exp" => Expr::Exp(Box::new(a)),
                    _ => Expr::Ln(Box::new(a)),
                })
            }
            other => Err(Error::Expr(format!("unknown function '{other}'"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(src: &str, x: f64) -> f64 {
        Expr::parse(src).unwrap().eval(x)
    }

    #[test]
    fn arithmetic_and_precedence() {
        assert_eq!(ev("1+2*3", 0.0), 7.0);
        assert_eq!(ev("(1+2)*3", 0.0), 9.0);
        assert_eq!(ev("2*x+1", 3.0), 7.0);
        assert_eq!(ev("-x*2", 4.0), -8.0);
        assert_eq!(ev("10/4", 0.0), 2.5);
        assert_eq!(ev("1 - 2 - 3", 0.0), -4.0, "subtraction is left-associative");
    }

    #[test]
    fn measure_alias() {
        assert_eq!(ev("measure + 1", 2.0), 3.0);
    }

    #[test]
    fn functions() {
        assert_eq!(ev("max(x, 0)", -3.0), 0.0);
        assert_eq!(ev("min(x, 0)", -3.0), -3.0);
        assert_eq!(ev("abs(x)", -2.5), 2.5);
        assert_eq!(ev("sqrt(x)", 9.0), 3.0);
        assert!((ev("ln(exp(x))", 1.5) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn predicate_forms() {
        let e = Expr::parse("predicate(x > 0, 1, 0)").unwrap();
        assert_eq!(e.eval(5.0), 1.0);
        assert_eq!(e.eval(-5.0), 0.0);
        assert_eq!(e.eval(0.0), 0.0);
        let e = Expr::parse("predicate(x >= 0, x, -x)").unwrap();
        assert_eq!(e.eval(-4.0), 4.0);
        let e = Expr::parse("predicate(x != 3, 10, 20)").unwrap();
        assert_eq!(e.eval(3.0), 20.0);
    }

    #[test]
    fn oph_predicate_compat() {
        // The paper's Listing 1 mask: oph_predicate(..., 'x', '>0', '1', '0').
        let e = Expr::from_oph_predicate("x", ">0", "1", "0").unwrap();
        assert_eq!(e.eval(2.0), 1.0);
        assert_eq!(e.eval(0.0), 0.0);
        let e = Expr::from_oph_predicate("x", "<=5", "x", "5").unwrap();
        assert_eq!(e.eval(3.0), 3.0);
        assert_eq!(e.eval(9.0), 5.0);
        assert!(Expr::from_oph_predicate("x", "~0", "1", "0").is_err());
    }

    #[test]
    fn scientific_notation() {
        assert_eq!(ev("1e3 + 2.5e-1", 0.0), 1000.25);
    }

    #[test]
    fn parse_errors() {
        assert!(Expr::parse("").is_err());
        assert!(Expr::parse("1 +").is_err());
        assert!(Expr::parse("foo(x)").is_err());
        assert!(Expr::parse("(1").is_err());
        assert!(Expr::parse("1 2").is_err());
        assert!(Expr::parse("x ? 1 : 0").is_err());
        assert!(Expr::parse("predicate(x, 1, 0)").is_err(), "predicate needs a comparison");
    }

    #[test]
    fn tape_matches_tree_eval_bitwise() {
        // Note: each binary node keeps at most one x-dependent operand.
        // When two *distinct* NaN bit patterns meet at a commutative op
        // (e.g. `-x * x` at x = NaN), IEEE leaves the result payload
        // unspecified and LLVM may lower the two code paths with swapped
        // operands — that case is outside the bitwise contract (see
        // DESIGN.md). Everything else, including NaN payloads through
        // selects and single-NaN arithmetic, must match exactly.
        let exprs = [
            "2*x + 1",
            "predicate(x > 0, 1, 0)",
            "predicate(x >= 0, sqrt(x), -x)",
            "max(min(x, 5), -5) / 3",
            "abs(x) + exp(-2*x) - ln(max(x, 0.5))",
            "predicate(x > 1, 2, predicate(x > 0, 1, 0))",
            "-(x - 2) / 3",
        ];
        let inputs =
            [-3.5, 0.0, -0.0, 1.0, 2.0, 1e30, -1e-30, f64::NAN, f64::INFINITY, f64::NEG_INFINITY];
        for src in exprs {
            let e = Expr::parse(src).unwrap();
            let tape = e.tape();
            let mut ev = tape.evaluator();
            // Exercise partial blocks too: the padded lanes repeat input 0.
            let mut x = [inputs[0]; LANES];
            x[..inputs.len().min(LANES)].copy_from_slice(&inputs[..inputs.len().min(LANES)]);
            let mut out = [0.0; LANES];
            ev.eval_block(&x, &mut out);
            for l in 0..LANES {
                assert_eq!(
                    out[l].to_bits(),
                    e.eval(x[l]).to_bits(),
                    "{src} at x={} lane {l}",
                    x[l]
                );
            }
        }
    }

    #[test]
    fn tape_depth_is_exact_for_predicate() {
        let e = Expr::parse("predicate(x > 0, 1, 0)").unwrap();
        let t = e.tape();
        assert_eq!(t.max_depth(), 4, "lhs+rhs+then+else live at once");
        assert_eq!(t.ops().len(), 5);
    }

    #[test]
    fn nested_predicates() {
        // Three-way classification.
        let e = Expr::parse("predicate(x > 1, 2, predicate(x > 0, 1, 0))").unwrap();
        assert_eq!(e.eval(5.0), 2.0);
        assert_eq!(e.eval(0.5), 1.0);
        assert_eq!(e.eval(-1.0), 0.0);
    }
}
