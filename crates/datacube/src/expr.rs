//! The element-wise expression mini-language behind `apply`.
//!
//! Ophidia's `oph_apply` operator evaluates small array expressions such as
//! `oph_predicate('OPH_INT','OPH_INT',measure,'x','>0','1','0')` (Listing 1
//! of the paper). This module provides an equivalent language over the
//! scalar `x` (the measure value at each element):
//!
//! ```text
//! expr     := term (('+'|'-') term)*
//! term     := unary (('*'|'/') unary)*
//! unary    := '-' unary | atom
//! atom     := NUMBER | 'x' | 'measure' | '(' expr ')'
//!           | fn '(' expr (',' expr)* ')'
//! fn       := predicate | max | min | abs | sqrt | exp | ln
//! cond     := expr ('>'|'>='|'<'|'<='|'=='|'!=') expr   (inside predicate)
//! ```
//!
//! `predicate(cond, then, else)` is the `oph_predicate` equivalent; the
//! compatibility constructor [`Expr::from_oph_predicate`] accepts the
//! Ophidia-style argument triple directly.

use crate::error::{Error, Result};

/// A parsed, evaluable expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    Const(f64),
    X,
    Neg(Box<Expr>),
    Add(Box<Expr>, Box<Expr>),
    Sub(Box<Expr>, Box<Expr>),
    Mul(Box<Expr>, Box<Expr>),
    Div(Box<Expr>, Box<Expr>),
    /// `predicate(cond, then, else)`, cond = lhs cmp rhs.
    Predicate {
        lhs: Box<Expr>,
        cmp: Cmp,
        rhs: Box<Expr>,
        then: Box<Expr>,
        otherwise: Box<Expr>,
    },
    Max(Box<Expr>, Box<Expr>),
    Min(Box<Expr>, Box<Expr>),
    Abs(Box<Expr>),
    Sqrt(Box<Expr>),
    Exp(Box<Expr>),
    Ln(Box<Expr>),
}

/// Comparison operator inside a predicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cmp {
    Gt,
    Ge,
    Lt,
    Le,
    Eq,
    Ne,
}

impl Cmp {
    fn eval(self, a: f64, b: f64) -> bool {
        match self {
            Cmp::Gt => a > b,
            Cmp::Ge => a >= b,
            Cmp::Lt => a < b,
            Cmp::Le => a <= b,
            Cmp::Eq => a == b,
            Cmp::Ne => a != b,
        }
    }
}

impl Expr {
    /// Parses an expression from source text.
    pub fn parse(src: &str) -> Result<Expr> {
        let tokens = lex(src)?;
        let mut p = Parser { tokens, pos: 0 };
        let e = p.expr()?;
        if p.pos != p.tokens.len() {
            return Err(Error::Expr(format!("trailing input at token {}", p.pos)));
        }
        Ok(e)
    }

    /// Builds the Ophidia-compatible predicate: measure string (must be
    /// an expression over `x`), a comparison against zero written like
    /// `">0"` / `"<=5"` / `"!=0"`, and then/else expressions — mirroring
    /// `oph_predicate('…','…', measure, 'x', '>0', '1', '0')`.
    pub fn from_oph_predicate(
        measure: &str,
        cond: &str,
        then: &str,
        otherwise: &str,
    ) -> Result<Expr> {
        let lhs = Expr::parse(measure)?;
        let cond = cond.trim();
        let (cmp, rest) = if let Some(r) = cond.strip_prefix(">=") {
            (Cmp::Ge, r)
        } else if let Some(r) = cond.strip_prefix("<=") {
            (Cmp::Le, r)
        } else if let Some(r) = cond.strip_prefix("==") {
            (Cmp::Eq, r)
        } else if let Some(r) = cond.strip_prefix("!=") {
            (Cmp::Ne, r)
        } else if let Some(r) = cond.strip_prefix('>') {
            (Cmp::Gt, r)
        } else if let Some(r) = cond.strip_prefix('<') {
            (Cmp::Lt, r)
        } else {
            return Err(Error::Expr(format!("bad oph_predicate condition '{cond}'")));
        };
        let rhs = Expr::parse(rest)?;
        Ok(Expr::Predicate {
            lhs: Box::new(lhs),
            cmp,
            rhs: Box::new(rhs),
            then: Box::new(Expr::parse(then)?),
            otherwise: Box::new(Expr::parse(otherwise)?),
        })
    }

    /// Evaluates the expression at measure value `x`.
    pub fn eval(&self, x: f64) -> f64 {
        match self {
            Expr::Const(c) => *c,
            Expr::X => x,
            Expr::Neg(e) => -e.eval(x),
            Expr::Add(a, b) => a.eval(x) + b.eval(x),
            Expr::Sub(a, b) => a.eval(x) - b.eval(x),
            Expr::Mul(a, b) => a.eval(x) * b.eval(x),
            Expr::Div(a, b) => a.eval(x) / b.eval(x),
            Expr::Predicate { lhs, cmp, rhs, then, otherwise } => {
                if cmp.eval(lhs.eval(x), rhs.eval(x)) {
                    then.eval(x)
                } else {
                    otherwise.eval(x)
                }
            }
            Expr::Max(a, b) => a.eval(x).max(b.eval(x)),
            Expr::Min(a, b) => a.eval(x).min(b.eval(x)),
            Expr::Abs(e) => e.eval(x).abs(),
            Expr::Sqrt(e) => e.eval(x).sqrt(),
            Expr::Exp(e) => e.eval(x).exp(),
            Expr::Ln(e) => e.eval(x).ln(),
        }
    }
}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Num(f64),
    X,
    Ident(String),
    Plus,
    Minus,
    Star,
    Slash,
    LParen,
    RParen,
    Comma,
    Cmp(Cmp),
}

fn lex(src: &str) -> Result<Vec<Tok>> {
    let mut out = Vec::new();
    let bytes = src.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '+' => {
                out.push(Tok::Plus);
                i += 1;
            }
            '-' => {
                out.push(Tok::Minus);
                i += 1;
            }
            '*' => {
                out.push(Tok::Star);
                i += 1;
            }
            '/' => {
                out.push(Tok::Slash);
                i += 1;
            }
            '(' => {
                out.push(Tok::LParen);
                i += 1;
            }
            ')' => {
                out.push(Tok::RParen);
                i += 1;
            }
            ',' => {
                out.push(Tok::Comma);
                i += 1;
            }
            '>' | '<' | '=' | '!' => {
                let two = &src[i..(i + 2).min(src.len())];
                let (cmp, adv) = match two {
                    ">=" => (Cmp::Ge, 2),
                    "<=" => (Cmp::Le, 2),
                    "==" => (Cmp::Eq, 2),
                    "!=" => (Cmp::Ne, 2),
                    _ if c == '>' => (Cmp::Gt, 1),
                    _ if c == '<' => (Cmp::Lt, 1),
                    _ => return Err(Error::Expr(format!("unexpected character '{c}'"))),
                };
                out.push(Tok::Cmp(cmp));
                i += adv;
            }
            '0'..='9' | '.' => {
                let start = i;
                while i < bytes.len()
                    && (bytes[i].is_ascii_digit()
                        || bytes[i] == b'.'
                        || bytes[i] == b'e'
                        || bytes[i] == b'E'
                        || ((bytes[i] == b'-' || bytes[i] == b'+')
                            && i > start
                            && (bytes[i - 1] == b'e' || bytes[i - 1] == b'E')))
                {
                    i += 1;
                }
                let n: f64 = src[start..i]
                    .parse()
                    .map_err(|_| Error::Expr(format!("bad number '{}'", &src[start..i])))?;
                out.push(Tok::Num(n));
            }
            'a'..='z' | 'A'..='Z' | '_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                let word = &src[start..i];
                match word {
                    "x" | "measure" => out.push(Tok::X),
                    _ => out.push(Tok::Ident(word.to_string())),
                }
            }
            other => return Err(Error::Expr(format!("unexpected character '{other}'"))),
        }
    }
    Ok(out)
}

struct Parser {
    tokens: Vec<Tok>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, t: Tok) -> Result<()> {
        match self.next() {
            Some(got) if got == t => Ok(()),
            got => Err(Error::Expr(format!("expected {t:?}, got {got:?}"))),
        }
    }

    fn expr(&mut self) -> Result<Expr> {
        let mut lhs = self.term()?;
        loop {
            match self.peek() {
                Some(Tok::Plus) => {
                    self.next();
                    lhs = Expr::Add(Box::new(lhs), Box::new(self.term()?));
                }
                Some(Tok::Minus) => {
                    self.next();
                    lhs = Expr::Sub(Box::new(lhs), Box::new(self.term()?));
                }
                _ => return Ok(lhs),
            }
        }
    }

    fn term(&mut self) -> Result<Expr> {
        let mut lhs = self.unary()?;
        loop {
            match self.peek() {
                Some(Tok::Star) => {
                    self.next();
                    lhs = Expr::Mul(Box::new(lhs), Box::new(self.unary()?));
                }
                Some(Tok::Slash) => {
                    self.next();
                    lhs = Expr::Div(Box::new(lhs), Box::new(self.unary()?));
                }
                _ => return Ok(lhs),
            }
        }
    }

    fn unary(&mut self) -> Result<Expr> {
        if matches!(self.peek(), Some(Tok::Minus)) {
            self.next();
            return Ok(Expr::Neg(Box::new(self.unary()?)));
        }
        self.atom()
    }

    fn atom(&mut self) -> Result<Expr> {
        match self.next() {
            Some(Tok::Num(n)) => Ok(Expr::Const(n)),
            Some(Tok::X) => Ok(Expr::X),
            Some(Tok::LParen) => {
                let e = self.expr()?;
                self.expect(Tok::RParen)?;
                Ok(e)
            }
            Some(Tok::Ident(name)) => self.call(&name),
            got => Err(Error::Expr(format!("unexpected token {got:?}"))),
        }
    }

    fn call(&mut self, name: &str) -> Result<Expr> {
        self.expect(Tok::LParen)?;
        match name {
            "predicate" | "oph_predicate" => {
                // predicate(lhs CMP rhs, then, else)
                let lhs = self.expr()?;
                let cmp = match self.next() {
                    Some(Tok::Cmp(c)) => c,
                    got => return Err(Error::Expr(format!("expected comparison, got {got:?}"))),
                };
                let rhs = self.expr()?;
                self.expect(Tok::Comma)?;
                let then = self.expr()?;
                self.expect(Tok::Comma)?;
                let otherwise = self.expr()?;
                self.expect(Tok::RParen)?;
                Ok(Expr::Predicate {
                    lhs: Box::new(lhs),
                    cmp,
                    rhs: Box::new(rhs),
                    then: Box::new(then),
                    otherwise: Box::new(otherwise),
                })
            }
            "max" | "min" => {
                let a = self.expr()?;
                self.expect(Tok::Comma)?;
                let b = self.expr()?;
                self.expect(Tok::RParen)?;
                Ok(if name == "max" {
                    Expr::Max(Box::new(a), Box::new(b))
                } else {
                    Expr::Min(Box::new(a), Box::new(b))
                })
            }
            "abs" | "sqrt" | "exp" | "ln" => {
                let a = self.expr()?;
                self.expect(Tok::RParen)?;
                Ok(match name {
                    "abs" => Expr::Abs(Box::new(a)),
                    "sqrt" => Expr::Sqrt(Box::new(a)),
                    "exp" => Expr::Exp(Box::new(a)),
                    _ => Expr::Ln(Box::new(a)),
                })
            }
            other => Err(Error::Expr(format!("unknown function '{other}'"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(src: &str, x: f64) -> f64 {
        Expr::parse(src).unwrap().eval(x)
    }

    #[test]
    fn arithmetic_and_precedence() {
        assert_eq!(ev("1+2*3", 0.0), 7.0);
        assert_eq!(ev("(1+2)*3", 0.0), 9.0);
        assert_eq!(ev("2*x+1", 3.0), 7.0);
        assert_eq!(ev("-x*2", 4.0), -8.0);
        assert_eq!(ev("10/4", 0.0), 2.5);
        assert_eq!(ev("1 - 2 - 3", 0.0), -4.0, "subtraction is left-associative");
    }

    #[test]
    fn measure_alias() {
        assert_eq!(ev("measure + 1", 2.0), 3.0);
    }

    #[test]
    fn functions() {
        assert_eq!(ev("max(x, 0)", -3.0), 0.0);
        assert_eq!(ev("min(x, 0)", -3.0), -3.0);
        assert_eq!(ev("abs(x)", -2.5), 2.5);
        assert_eq!(ev("sqrt(x)", 9.0), 3.0);
        assert!((ev("ln(exp(x))", 1.5) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn predicate_forms() {
        let e = Expr::parse("predicate(x > 0, 1, 0)").unwrap();
        assert_eq!(e.eval(5.0), 1.0);
        assert_eq!(e.eval(-5.0), 0.0);
        assert_eq!(e.eval(0.0), 0.0);
        let e = Expr::parse("predicate(x >= 0, x, -x)").unwrap();
        assert_eq!(e.eval(-4.0), 4.0);
        let e = Expr::parse("predicate(x != 3, 10, 20)").unwrap();
        assert_eq!(e.eval(3.0), 20.0);
    }

    #[test]
    fn oph_predicate_compat() {
        // The paper's Listing 1 mask: oph_predicate(..., 'x', '>0', '1', '0').
        let e = Expr::from_oph_predicate("x", ">0", "1", "0").unwrap();
        assert_eq!(e.eval(2.0), 1.0);
        assert_eq!(e.eval(0.0), 0.0);
        let e = Expr::from_oph_predicate("x", "<=5", "x", "5").unwrap();
        assert_eq!(e.eval(3.0), 3.0);
        assert_eq!(e.eval(9.0), 5.0);
        assert!(Expr::from_oph_predicate("x", "~0", "1", "0").is_err());
    }

    #[test]
    fn scientific_notation() {
        assert_eq!(ev("1e3 + 2.5e-1", 0.0), 1000.25);
    }

    #[test]
    fn parse_errors() {
        assert!(Expr::parse("").is_err());
        assert!(Expr::parse("1 +").is_err());
        assert!(Expr::parse("foo(x)").is_err());
        assert!(Expr::parse("(1").is_err());
        assert!(Expr::parse("1 2").is_err());
        assert!(Expr::parse("x ? 1 : 0").is_err());
        assert!(Expr::parse("predicate(x, 1, 0)").is_err(), "predicate needs a comparison");
    }

    #[test]
    fn nested_predicates() {
        // Three-way classification.
        let e = Expr::parse("predicate(x > 1, 2, predicate(x > 0, 1, 0))").unwrap();
        assert_eq!(e.eval(5.0), 2.0);
        assert_eq!(e.eval(0.5), 1.0);
        assert_eq!(e.eval(-1.0), 0.0);
    }
}
