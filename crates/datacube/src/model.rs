//! The datacube model: dimensions, fragments, and the cube container.
//!
//! Following Ophidia's storage model, a cube's dimensions are split into
//! **explicit** dimensions — the distributed index space; every combination
//! of explicit indices is one *row*, and rows are range-partitioned into
//! fragments homed on I/O servers — and **implicit** dimensions, stored
//! inside each row as a contiguous array (typically `time`). A cube of
//! `(lat, lon | time)` with 96×144 cells and 365 days is thus 13 824 rows
//! of 365-element arrays, sliced into `nfrag` fragments.
//!
//! # Ownership model
//!
//! Fragment payloads are windows into shared, immutable `Arc<[f32]>`
//! buffers ([`SharedData`]), and dimension coordinates are `Arc<[f64]>`.
//! Cloning a fragment, re-slicing a cube, or re-fragmenting along existing
//! boundaries is O(1) reference-count traffic — no payload copy. Mutation
//! goes through [`SharedData::make_mut`], which copies-on-write only when
//! the window is actually shared. Operators that produce new values build
//! their output buffers exactly once via [`SharedData::from_fn`] or
//! `collect()`; `to_dense()` survives only at export boundaries.

use crate::error::{Error, Result};
use std::sync::Arc;

/// A shared, immutable `f32` payload: a `[off, off+len)` window into an
/// `Arc<[f32]>` buffer. Cheap to clone and to re-slice; dereferences to
/// `&[f32]` for reading. Equality compares contents, not identity.
#[derive(Clone)]
pub struct SharedData {
    buf: Arc<[f32]>,
    off: usize,
    len: usize,
}

impl SharedData {
    /// An empty payload. Allocation-free: every call shares one static
    /// zero-length buffer, so operators that produce empty windows (e.g.
    /// `subset` of an empty range, `gather_rows` of zero rows) cost one
    /// refcount bump instead of an `Arc` allocation each.
    pub fn empty() -> Self {
        static EMPTY: std::sync::OnceLock<Arc<[f32]>> = std::sync::OnceLock::new();
        let buf = Arc::clone(EMPTY.get_or_init(|| Arc::from([])));
        SharedData { buf, off: 0, len: 0 }
    }

    /// Allocates a `len`-element buffer exactly once, lets `fill` write it,
    /// and returns it as an immutable shared payload. This is how operator
    /// kernels build outputs without an intermediate `Vec` → `Arc` copy.
    pub fn from_fn(len: usize, fill: impl FnOnce(&mut [f32])) -> Self {
        if len == 0 {
            return Self::empty();
        }
        let mut buf: Arc<[f32]> = std::iter::repeat_n(0.0f32, len).collect();
        fill(Arc::get_mut(&mut buf).expect("freshly allocated buffer is unique"));
        SharedData { buf, off: 0, len }
    }

    /// Builds from an exact-length iterator in a single pass (single
    /// allocation regardless of the iterator's `TrustedLen`-ness).
    pub fn from_iter_len(len: usize, it: impl IntoIterator<Item = f32>) -> Self {
        let mut it = it.into_iter();
        let out = Self::from_fn(len, |dst| {
            for slot in dst.iter_mut() {
                *slot = it.next().expect("iterator shorter than declared length");
            }
        });
        debug_assert!(it.next().is_none(), "iterator longer than declared length");
        out
    }

    /// O(1) sub-window `[lo, hi)` of this payload (shares the buffer).
    pub fn slice(&self, lo: usize, hi: usize) -> Self {
        assert!(lo <= hi && hi <= self.len, "slice {lo}..{hi} out of window len {}", self.len);
        SharedData { buf: Arc::clone(&self.buf), off: self.off + lo, len: hi - lo }
    }

    /// Window length in elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the window is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The window as a slice.
    pub fn as_slice(&self) -> &[f32] {
        &self.buf[self.off..self.off + self.len]
    }

    /// Mutable access with copy-on-write: if this window is the sole owner
    /// of its whole buffer the write happens in place; otherwise the window
    /// is first detached into a fresh unique buffer.
    pub fn make_mut(&mut self) -> &mut [f32] {
        let whole = self.off == 0 && self.len == self.buf.len();
        if !whole || Arc::get_mut(&mut self.buf).is_none() {
            self.buf = self.as_slice().iter().copied().collect();
            self.off = 0;
        }
        Arc::get_mut(&mut self.buf).expect("unique after copy-on-write")
    }

    /// True when `self` and `other` are windows into the same underlying
    /// allocation (used by tests asserting zero-copy behaviour).
    pub fn same_buffer(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.buf, &other.buf)
    }
}

impl std::ops::Deref for SharedData {
    type Target = [f32];
    fn deref(&self) -> &[f32] {
        self.as_slice()
    }
}

impl From<Vec<f32>> for SharedData {
    /// Adopts a dense vector (one copy into the shared buffer; prefer
    /// [`SharedData::from_fn`] on hot paths).
    fn from(v: Vec<f32>) -> Self {
        let len = v.len();
        SharedData { buf: Arc::from(v), off: 0, len }
    }
}

impl From<Arc<[f32]>> for SharedData {
    /// Adopts an already-shared buffer, zero-copy.
    fn from(buf: Arc<[f32]>) -> Self {
        let len = buf.len();
        SharedData { buf, off: 0, len }
    }
}

impl FromIterator<f32> for SharedData {
    fn from_iter<I: IntoIterator<Item = f32>>(it: I) -> Self {
        // Arc's FromIterator allocates once for exact-size iterators (the
        // kernel map/zip chains), falling back to a Vec pass otherwise.
        let buf: Arc<[f32]> = it.into_iter().collect();
        SharedData::from(buf)
    }
}

impl PartialEq for SharedData {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl std::fmt::Debug for SharedData {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SharedData({:?})", self.as_slice())
    }
}

/// Whether a dimension indexes rows (explicit) or in-row arrays (implicit).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DimKind {
    Explicit,
    Implicit,
}

/// One cube dimension with its coordinate values.
#[derive(Debug, Clone, PartialEq)]
pub struct Dimension {
    pub name: String,
    pub kind: DimKind,
    /// Coordinate value of each index (e.g. latitude degrees, day number).
    /// Shared: cloning a dimension (every operator does) is O(1).
    pub coords: Arc<[f64]>,
}

impl Dimension {
    /// Creates an explicit dimension.
    pub fn explicit(name: &str, coords: impl Into<Arc<[f64]>>) -> Self {
        Dimension { name: name.into(), kind: DimKind::Explicit, coords: coords.into() }
    }

    /// Creates an implicit dimension.
    pub fn implicit(name: &str, coords: impl Into<Arc<[f64]>>) -> Self {
        Dimension { name: name.into(), kind: DimKind::Implicit, coords: coords.into() }
    }

    /// Number of indices along this dimension.
    pub fn len(&self) -> usize {
        self.coords.len()
    }

    /// True when the dimension is empty.
    pub fn is_empty(&self) -> bool {
        self.coords.is_empty()
    }
}

/// One range-partition of a cube's rows. `data` is row-major:
/// `row_count × implicit_len` values, a window into a shared buffer.
#[derive(Debug, Clone, PartialEq)]
pub struct Fragment {
    /// Global index of the first row in this fragment.
    pub row_start: usize,
    /// Rows held.
    pub row_count: usize,
    /// Home I/O server of this fragment.
    pub server: usize,
    /// Payload (`row_count * implicit_len` f32 values).
    pub data: SharedData,
}

impl Fragment {
    /// O(1) view of local rows `[lo, hi)` of this fragment (`ilen` values
    /// per row), sharing the payload buffer.
    pub fn row_view(&self, lo: usize, hi: usize, ilen: usize) -> SharedData {
        self.data.slice(lo * ilen, hi * ilen)
    }
}

/// An in-memory datacube.
#[derive(Debug, Clone, PartialEq)]
pub struct Cube {
    /// Measured variable name (e.g. `tasmax`).
    pub measure: String,
    /// Dimensions, explicit first then implicit, each in storage order.
    pub dims: Vec<Dimension>,
    /// Row partitions.
    pub frags: Vec<Fragment>,
    /// Free-text provenance (operator that produced this cube).
    pub description: String,
}

impl Cube {
    /// Builds a cube from dense data. `dims` must list explicit dimensions
    /// first; `data` is row-major over `(explicit..., implicit...)`.
    /// The data is split into `nfrag` row-range fragments assigned
    /// round-robin to `io_servers` servers.
    pub fn from_dense(
        measure: &str,
        dims: Vec<Dimension>,
        data: Vec<f32>,
        nfrag: usize,
        io_servers: usize,
    ) -> Result<Self> {
        Self::from_shared(measure, dims, SharedData::from(data), nfrag, io_servers)
    }

    /// [`Cube::from_dense`] over an already-shared payload: fragments are
    /// O(1) windows into `data` — no per-fragment copies.
    pub fn from_shared(
        measure: &str,
        dims: Vec<Dimension>,
        data: SharedData,
        nfrag: usize,
        io_servers: usize,
    ) -> Result<Self> {
        // Explicit dims must precede implicit ones.
        let first_implicit = dims.iter().position(|d| d.kind == DimKind::Implicit);
        if let Some(fi) = first_implicit {
            if dims[fi..].iter().any(|d| d.kind == DimKind::Explicit) {
                return Err(Error::SchemaMismatch(
                    "explicit dimensions must precede implicit ones".into(),
                ));
            }
        }
        let rows: usize =
            dims.iter().filter(|d| d.kind == DimKind::Explicit).map(|d| d.len()).product();
        let ilen: usize =
            dims.iter().filter(|d| d.kind == DimKind::Implicit).map(|d| d.len()).product();
        if rows * ilen != data.len() {
            return Err(Error::SchemaMismatch(format!(
                "data length {} != rows {rows} x implicit {ilen}",
                data.len()
            )));
        }
        let nfrag = nfrag.clamp(1, rows.max(1));
        let io_servers = io_servers.max(1);
        let mut frags = Vec::with_capacity(nfrag);
        let base = rows / nfrag;
        let extra = rows % nfrag;
        let mut row = 0usize;
        for f in 0..nfrag {
            let count = base + usize::from(f < extra);
            frags.push(Fragment {
                row_start: row,
                row_count: count,
                server: f % io_servers,
                data: data.slice(row * ilen, (row + count) * ilen),
            });
            row += count;
        }
        Ok(Cube { measure: measure.into(), dims, frags, description: String::from("from_dense") })
    }

    /// Explicit dimensions in order.
    pub fn explicit_dims(&self) -> Vec<&Dimension> {
        self.dims.iter().filter(|d| d.kind == DimKind::Explicit).collect()
    }

    /// Implicit dimensions in order.
    pub fn implicit_dims(&self) -> Vec<&Dimension> {
        self.dims.iter().filter(|d| d.kind == DimKind::Implicit).collect()
    }

    /// Number of rows (product of explicit dimension sizes).
    pub fn rows(&self) -> usize {
        self.explicit_dims().iter().map(|d| d.len()).product()
    }

    /// In-row array length (product of implicit dimension sizes; 1 when the
    /// cube has no implicit dimension).
    pub fn implicit_len(&self) -> usize {
        self.implicit_dims().iter().map(|d| d.len()).product()
    }

    /// Total element count.
    pub fn len(&self) -> usize {
        self.rows() * self.implicit_len()
    }

    /// True when the cube holds no data.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Logical payload size in bytes (what `to_dense` would materialize;
    /// windows sharing one buffer count each time they appear).
    pub fn bytes(&self) -> usize {
        self.frags.iter().map(|f| f.data.len() * 4).sum()
    }

    /// Looks up a dimension by name.
    pub fn dim(&self, name: &str) -> Result<&Dimension> {
        self.dims
            .iter()
            .find(|d| d.name == name)
            .ok_or_else(|| Error::UnknownDimension(name.into()))
    }

    /// Reassembles the dense row-major array (export boundary / tests).
    pub fn to_dense(&self) -> Vec<f32> {
        let ilen = self.implicit_len();
        let mut out = vec![0.0f32; self.rows() * ilen];
        for f in &self.frags {
            let lo = f.row_start * ilen;
            out[lo..lo + f.data.len()].copy_from_slice(&f.data);
        }
        out
    }

    /// Iterates all values in global row-major order without materializing
    /// the dense array (read-only counting/scan boundary).
    pub fn values(&self) -> impl Iterator<Item = f32> + '_ {
        self.frags_in_row_order().into_iter().flat_map(|f| f.data.as_slice().iter().copied())
    }

    /// Fragments sorted by `row_start` (borrowed; fragments tile the row
    /// space, so this is global row order).
    pub fn frags_in_row_order(&self) -> Vec<&Fragment> {
        let mut order: Vec<&Fragment> = self.frags.iter().collect();
        order.sort_by_key(|f| f.row_start);
        order
    }

    /// The in-row series of one global row (borrowed).
    pub fn row_series(&self, row: usize) -> Option<&[f32]> {
        let ilen = self.implicit_len();
        for f in &self.frags {
            if row >= f.row_start && row < f.row_start + f.row_count {
                let lo = (row - f.row_start) * ilen;
                return Some(&f.data.as_slice()[lo..lo + ilen]);
            }
        }
        None
    }

    /// Validates internal consistency (fragments tile the row space, sizes
    /// match). Used by property tests and after operator construction.
    pub fn validate(&self) -> Result<()> {
        let ilen = self.implicit_len();
        let mut covered = 0usize;
        let mut next = 0usize;
        let mut frags: Vec<&Fragment> = self.frags.iter().collect();
        frags.sort_by_key(|f| f.row_start);
        for f in frags {
            if f.row_start != next {
                return Err(Error::SchemaMismatch(format!(
                    "fragment gap/overlap at row {next} (fragment starts at {})",
                    f.row_start
                )));
            }
            if f.data.len() != f.row_count * ilen {
                return Err(Error::SchemaMismatch(format!(
                    "fragment at {} holds {} values, expected {}",
                    f.row_start,
                    f.data.len(),
                    f.row_count * ilen
                )));
            }
            next += f.row_count;
            covered += f.row_count;
        }
        if covered != self.rows() {
            return Err(Error::SchemaMismatch(format!(
                "fragments cover {covered} rows, cube has {}",
                self.rows()
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cube_2x3_t4(nfrag: usize) -> Cube {
        let dims = vec![
            Dimension::explicit("lat", vec![-45.0, 45.0]),
            Dimension::explicit("lon", vec![0.0, 120.0, 240.0]),
            Dimension::implicit("time", (0..4).map(|t| t as f64).collect::<Vec<_>>()),
        ];
        let data: Vec<f32> = (0..24).map(|i| i as f32).collect();
        Cube::from_dense("v", dims, data, nfrag, 2).unwrap()
    }

    #[test]
    fn construction_and_shape_queries() {
        let c = cube_2x3_t4(3);
        assert_eq!(c.rows(), 6);
        assert_eq!(c.implicit_len(), 4);
        assert_eq!(c.len(), 24);
        assert_eq!(c.frags.len(), 3);
        assert_eq!(c.bytes(), 96);
        c.validate().unwrap();
    }

    #[test]
    fn fragmentation_round_trips_dense() {
        for nfrag in [1, 2, 3, 5, 6, 100] {
            let c = cube_2x3_t4(nfrag);
            assert_eq!(c.to_dense(), (0..24).map(|i| i as f32).collect::<Vec<_>>());
            c.validate().unwrap();
        }
    }

    #[test]
    fn fragments_share_one_buffer() {
        // from_dense fragments are O(1) windows into a single allocation.
        let c = cube_2x3_t4(3);
        assert!(c.frags[1].data.same_buffer(&c.frags[0].data));
        assert!(c.frags[2].data.same_buffer(&c.frags[0].data));
        // Cloning a cube shares everything.
        let c2 = c.clone();
        assert!(c2.frags[0].data.same_buffer(&c.frags[0].data));
    }

    #[test]
    fn shared_data_slice_and_cow() {
        let mut d = SharedData::from(vec![1.0, 2.0, 3.0, 4.0]);
        let view = d.slice(1, 3);
        assert_eq!(&view[..], &[2.0, 3.0]);
        assert!(view.same_buffer(&d));
        // Writing through a shared window detaches only the writer.
        d.make_mut()[0] = 9.0;
        assert_eq!(d[0], 9.0);
        assert_eq!(&view[..], &[2.0, 3.0], "view unaffected by CoW write");
        assert!(!view.same_buffer(&d));
    }

    #[test]
    fn shared_data_from_fn_single_buffer() {
        let d = SharedData::from_fn(4, |out| {
            for (i, v) in out.iter_mut().enumerate() {
                *v = i as f32;
            }
        });
        assert_eq!(&d[..], &[0.0, 1.0, 2.0, 3.0]);
        let e = SharedData::from_iter_len(3, [5.0, 6.0, 7.0]);
        assert_eq!(&e[..], &[5.0, 6.0, 7.0]);
        assert!(SharedData::empty().is_empty());
        assert!(SharedData::from_fn(0, |_| {}).is_empty());
    }

    #[test]
    fn empty_payloads_share_one_static_buffer() {
        let a = SharedData::empty();
        let b = SharedData::empty();
        let c = SharedData::from_fn(0, |_| unreachable!("fill must not run for len 0"));
        assert!(a.same_buffer(&b), "empty() must not allocate per call");
        assert!(a.same_buffer(&c), "from_fn(0, _) must reuse the static empty buffer");
    }

    #[test]
    fn uneven_fragmentation_distributes_remainder() {
        let c = cube_2x3_t4(4); // 6 rows over 4 frags: 2,2,1,1
        let counts: Vec<usize> = c.frags.iter().map(|f| f.row_count).collect();
        assert_eq!(counts.iter().sum::<usize>(), 6);
        assert_eq!(counts, vec![2, 2, 1, 1]);
        // Round-robin server assignment over 2 servers.
        let servers: Vec<usize> = c.frags.iter().map(|f| f.server).collect();
        assert_eq!(servers, vec![0, 1, 0, 1]);
    }

    #[test]
    fn row_series_reads_the_right_slice() {
        let c = cube_2x3_t4(3);
        assert_eq!(c.row_series(0).unwrap(), &[0.0, 1.0, 2.0, 3.0]);
        assert_eq!(c.row_series(5).unwrap(), &[20.0, 21.0, 22.0, 23.0]);
        assert!(c.row_series(6).is_none());
    }

    #[test]
    fn values_iterate_in_row_order() {
        let c = cube_2x3_t4(4);
        let vals: Vec<f32> = c.values().collect();
        assert_eq!(vals, c.to_dense());
    }

    #[test]
    fn explicit_after_implicit_rejected() {
        let dims =
            vec![Dimension::implicit("time", vec![0.0]), Dimension::explicit("lat", vec![0.0])];
        assert!(Cube::from_dense("v", dims, vec![0.0], 1, 1).is_err());
    }

    #[test]
    fn length_mismatch_rejected() {
        let dims = vec![Dimension::explicit("x", vec![0.0, 1.0])];
        assert!(Cube::from_dense("v", dims, vec![0.0; 3], 1, 1).is_err());
    }

    #[test]
    fn cube_without_implicit_dims() {
        let dims = vec![Dimension::explicit("x", vec![0.0, 1.0, 2.0])];
        let c = Cube::from_dense("v", dims, vec![5.0, 6.0, 7.0], 2, 1).unwrap();
        assert_eq!(c.implicit_len(), 1);
        assert_eq!(c.row_series(1).unwrap(), &[6.0]);
        c.validate().unwrap();
    }

    #[test]
    fn validate_detects_corruption() {
        let mut c = cube_2x3_t4(2);
        c.frags[1].row_start += 1;
        assert!(c.validate().is_err());
        let mut c = cube_2x3_t4(2);
        let shortened = c.frags[0].data.slice(0, c.frags[0].data.len() - 1);
        c.frags[0].data = shortened;
        assert!(c.validate().is_err());
    }

    #[test]
    fn dim_lookup() {
        let c = cube_2x3_t4(1);
        assert_eq!(c.dim("time").unwrap().kind, DimKind::Implicit);
        assert!(c.dim("depth").is_err());
    }
}
