//! Error type for datacube operations.

use std::fmt;

/// Errors produced by cube construction, operators and the server façade.
#[derive(Debug)]
pub enum Error {
    /// Underlying NCX file error.
    Nc(ncformat::Error),
    /// Requested dimension does not exist in the cube.
    UnknownDimension(String),
    /// Operator applied to an incompatible dimension kind (e.g. implicit
    /// reduce over an explicit dimension).
    WrongDimensionKind { dim: String, need: &'static str },
    /// Two cubes passed to a binary operator have incompatible schemas.
    SchemaMismatch(String),
    /// Subset range is empty or out of bounds.
    BadRange { dim: String, lo: usize, hi: usize, size: usize },
    /// Expression parse or evaluation error.
    Expr(String),
    /// Unknown cube id in the store.
    NoSuchCube(u64),
    /// A series transform returned the wrong output length.
    SeriesLength { expected: usize, actual: usize },
    /// Import found no usable variable/shape.
    BadImport(String),
    /// A shared-cache load failed; waiters that joined the in-flight
    /// load receive the loader's error message under the cache key.
    CacheLoad { key: String, message: String },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Nc(e) => write!(f, "ncformat: {e}"),
            Error::UnknownDimension(d) => write!(f, "unknown dimension '{d}'"),
            Error::WrongDimensionKind { dim, need } => {
                write!(f, "dimension '{dim}' must be {need} for this operator")
            }
            Error::SchemaMismatch(m) => write!(f, "cube schema mismatch: {m}"),
            Error::BadRange { dim, lo, hi, size } => {
                write!(f, "range [{lo}, {hi}) invalid for dimension '{dim}' of size {size}")
            }
            Error::Expr(m) => write!(f, "expression error: {m}"),
            Error::NoSuchCube(id) => write!(f, "no cube with id {id}"),
            Error::SeriesLength { expected, actual } => {
                write!(f, "series transform returned {actual} values, expected {expected}")
            }
            Error::BadImport(m) => write!(f, "import error: {m}"),
            Error::CacheLoad { key, message } => {
                write!(f, "cache load for '{key}' failed: {message}")
            }
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Nc(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ncformat::Error> for Error {
    fn from(e: ncformat::Error) -> Self {
        Error::Nc(e)
    }
}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_carry_context() {
        let e = Error::BadRange { dim: "lat".into(), lo: 5, hi: 3, size: 10 };
        let s = e.to_string();
        assert!(s.contains("lat") && s.contains('5') && s.contains("10"));
        assert!(Error::NoSuchCube(9).to_string().contains('9'));
        assert!(Error::WrongDimensionKind { dim: "time".into(), need: "implicit" }
            .to_string()
            .contains("implicit"));
    }
}
