//! # datacube — an Ophidia-style High Performance Data Analytics engine
//!
//! The paper's heat/cold-wave indices are computed with PyOphidia, the
//! Python bindings of the Ophidia HPDA framework (Section 4.2.2): an
//! array-based datacube engine that partitions multidimensional scientific
//! data into *fragments* distributed over in-memory I/O servers, executes
//! operator pipelines in parallel over those fragments, and keeps
//! intermediate cubes in memory between operators. This crate reimplements
//! that model:
//!
//! * [`model::Cube`] — datacubes with *explicit* (fragmented, e.g. lat/lon)
//!   and *implicit* (in-array, e.g. time) dimensions;
//! * [`ops`] — the operator set the workflow uses: `importnc`, `subset`,
//!   `reduce`, `apply` (with an `oph_predicate`-style expression language,
//!   [`expr`]), `intercube`, `concat_implicit`, `map_series`, `exportnc`;
//! * [`exec`] — parallel operator execution over fragments, with a
//!   configurable number of simulated I/O servers;
//! * [`fuse`] — the operator-chain compiler: collapses a
//!   subset→apply→intercube→reduce chain into one vectorized fused kernel
//!   per fragment, bitwise-equal to the scalar operator pipeline;
//! * [`store::CubeStore`] — the in-memory cube container that lets a
//!   pipeline load the 20-year baseline climatology **once** and reuse it
//!   across every year of the simulation (the paper's Section 5.3
//!   optimization, quantified by bench C2);
//! * [`server`] — a PyOphidia-like client façade (`Client`, `CubeHandle`)
//!   with an operator audit trail, mirroring how Listing 1 of the paper
//!   drives Ophidia from workflow tasks.

pub mod cache;
pub mod error;
pub mod exec;
pub mod expr;
pub mod fuse;
pub mod model;
pub mod ops;
pub mod server;
pub mod store;

pub use cache::{CacheStats, CubeCache};
pub use error::{Error, Result};
pub use exec::ExecConfig;
pub use expr::Expr;
pub use model::{Cube, DimKind, Dimension};
pub use ops::ReduceOp;
pub use server::{Client, CubeHandle};
pub use store::{CubeId, CubeStore};
