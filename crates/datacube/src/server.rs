//! PyOphidia-style client façade.
//!
//! Ophidia is client–server: PyOphidia dispatches operator requests to the
//! Ophidia Server, which runs them on the in-memory I/O servers (Section
//! 4.2.2). This module mirrors that shape — a [`Client`] connected to an
//! in-process [`Server`] holding the cube store, and a chainable
//! [`CubeHandle`] whose methods correspond one-to-one with the calls in the
//! paper's Listing 1 (`reduce`, `apply`, `exportnc2`, `delete`). Every
//! operator execution is recorded in an audit trail with its wall time,
//! which the benches read back.

use crate::error::Result;
use crate::exec::ExecConfig;
use crate::expr::Expr;
use crate::model::Cube;
use crate::ops::{self, InterOp, ReduceOp};
use crate::store::{CubeId, CubeStore};
use ncformat::Reader;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

/// One audit-trail entry.
#[derive(Debug, Clone)]
pub struct OpRecord {
    pub operator: String,
    pub micros: u128,
}

/// The in-process Ophidia-server equivalent: cube store + execution config
/// + operator audit trail.
pub struct Server {
    store: CubeStore,
    cfg: ExecConfig,
    log: Mutex<Vec<OpRecord>>,
    /// Key-value metadata per cube (Ophidia's metadata management).
    meta: Mutex<std::collections::HashMap<CubeId, BTreeMap<String, String>>>,
}

impl Server {
    fn record<T>(&self, name: &str, f: impl FnOnce() -> T) -> T {
        let start = Instant::now();
        let out = f();
        self.log.push_op(name, start.elapsed().as_micros());
        out
    }
}

trait LogExt {
    fn push_op(&self, name: &str, micros: u128);
}

impl LogExt for Mutex<Vec<OpRecord>> {
    fn push_op(&self, name: &str, micros: u128) {
        self.lock().push(OpRecord { operator: name.to_string(), micros });
    }
}

/// Client session against an in-process [`Server`].
#[derive(Clone)]
pub struct Client {
    server: Arc<Server>,
}

impl Client {
    /// Connects a new client with `io_servers` simulated I/O servers.
    pub fn connect(io_servers: usize) -> Self {
        Client {
            server: Arc::new(Server {
                store: CubeStore::new(),
                cfg: ExecConfig::with_servers(io_servers),
                log: Mutex::new(Vec::new()),
                meta: Mutex::new(std::collections::HashMap::new()),
            }),
        }
    }

    /// Imports a variable from an NCX file (`oph_importnc`).
    pub fn importnc(
        &self,
        path: &Path,
        var: &str,
        explicit: &[&str],
        implicit: &[&str],
        nfrag: usize,
    ) -> Result<CubeHandle> {
        let cfg = self.server.cfg;
        let cube = self.server.record("importnc", || -> Result<Cube> {
            let rd = Reader::open(path)?;
            ops::importnc(&rd, var, explicit, implicit, nfrag, cfg)
        })?;
        Ok(self.adopt(cube))
    }

    /// Imports a `(time, lat, lon)` variable as `(lat, lon | time)`.
    pub fn importnc_transposed(
        &self,
        path: &Path,
        var: &str,
        time_dim: &str,
        lat_dim: &str,
        lon_dim: &str,
        nfrag: usize,
    ) -> Result<CubeHandle> {
        let cfg = self.server.cfg;
        let cube = self.server.record("importnc_transposed", || -> Result<Cube> {
            let rd = Reader::open(path)?;
            ops::import_transposed(&rd, var, time_dim, lat_dim, lon_dim, nfrag, cfg)
        })?;
        Ok(self.adopt(cube))
    }

    /// Wraps an existing in-memory cube into a handle (used by pipelines
    /// that build cubes directly).
    pub fn adopt(&self, cube: Cube) -> CubeHandle {
        let id = self.server.store.put(cube);
        CubeHandle { server: Arc::clone(&self.server), id }
    }

    /// Re-opens a handle to a stored cube by id (workflow tasks pass cube
    /// ids between each other as lightweight references).
    pub fn open(&self, id: CubeId) -> Result<CubeHandle> {
        self.server.store.get(id)?; // existence check
        Ok(CubeHandle { server: Arc::clone(&self.server), id })
    }

    /// Number of cubes currently resident.
    pub fn resident_cubes(&self) -> usize {
        self.server.store.len()
    }

    /// Resident bytes across all cubes.
    pub fn resident_bytes(&self) -> usize {
        self.server.store.resident_bytes()
    }

    /// The operator audit trail so far.
    pub fn audit(&self) -> Vec<OpRecord> {
        self.server.log.lock().clone()
    }

    /// Per-operator `(count, total micros)` summary.
    pub fn operator_stats(&self) -> BTreeMap<String, (usize, u128)> {
        let mut m: BTreeMap<String, (usize, u128)> = BTreeMap::new();
        for r in self.server.log.lock().iter() {
            let e = m.entry(r.operator.clone()).or_insert((0, 0));
            e.0 += 1;
            e.1 += r.micros;
        }
        m
    }
}

/// Handle to one stored cube; operator methods produce new handles,
/// mirroring PyOphidia's `cube.Cube` chaining.
#[derive(Clone)]
pub struct CubeHandle {
    server: Arc<Server>,
    id: CubeId,
}

impl CubeHandle {
    /// Stored cube id.
    pub fn id(&self) -> CubeId {
        self.id
    }

    /// Snapshot of the cube (shared, cheap).
    pub fn cube(&self) -> Result<Arc<Cube>> {
        self.server.store.get(self.id)
    }

    fn derive(&self, cube: Cube) -> CubeHandle {
        let id = self.server.store.put(cube);
        CubeHandle { server: Arc::clone(&self.server), id }
    }

    /// Reduction over an implicit dimension (`oph_reduce`).
    pub fn reduce(&self, op: ReduceOp, dim: &str) -> Result<CubeHandle> {
        let src = self.cube()?;
        let cfg = self.server.cfg;
        let out = self.server.record("reduce", || ops::reduce(&src, op, dim, cfg))?;
        Ok(self.derive(out))
    }

    /// Element-wise expression (`oph_apply` with `oph_predicate` etc.).
    pub fn apply(&self, expr_src: &str) -> Result<CubeHandle> {
        let src = self.cube()?;
        let cfg = self.server.cfg;
        let expr = Expr::parse(expr_src)?;
        let out = self.server.record("apply", || ops::apply(&src, &expr, cfg));
        Ok(self.derive(out))
    }

    /// Cube–cube arithmetic (`oph_intercube`), broadcasting per-row scalars.
    pub fn intercube(&self, other: &CubeHandle, op: InterOp) -> Result<CubeHandle> {
        let a = self.cube()?;
        let b = other.cube()?;
        let cfg = self.server.cfg;
        let out = self.server.record("intercube", || ops::intercube(&a, &b, op, cfg))?;
        Ok(self.derive(out))
    }

    /// Implicit-dimension subset (`oph_subset`).
    pub fn subset(&self, dim: &str, lo: usize, hi: usize) -> Result<CubeHandle> {
        let src = self.cube()?;
        let cfg = self.server.cfg;
        let out = self.server.record("subset", || ops::subset_implicit(&src, dim, lo, hi, cfg))?;
        Ok(self.derive(out))
    }

    /// Per-row series transform (extension point for run-length analytics).
    pub fn map_series<F>(&self, out_dim: &str, out_len: usize, f: F) -> Result<CubeHandle>
    where
        F: Fn(&[f32]) -> Vec<f32> + Sync,
    {
        let src = self.cube()?;
        let cfg = self.server.cfg;
        let out =
            self.server.record("map_series", || ops::map_series(&src, out_dim, out_len, cfg, f))?;
        Ok(self.derive(out))
    }

    /// Spatial subset on an explicit dimension by coordinate window
    /// (`oph_subset` with coordinate filters).
    pub fn subset_by_coord(&self, dim: &str, lo: f64, hi: f64) -> Result<CubeHandle> {
        let src = self.cube()?;
        let out =
            self.server.record("subset_by_coord", || ops::subset_by_coord(&src, dim, lo, hi))?;
        Ok(self.derive(out))
    }

    /// Attaches (or replaces) a metadata key on this cube
    /// (`oph_metadata`-style management).
    pub fn set_metadata(&self, key: &str, value: &str) -> Result<()> {
        self.cube()?; // must still exist
        self.server
            .meta
            .lock()
            .entry(self.id)
            .or_default()
            .insert(key.to_string(), value.to_string());
        Ok(())
    }

    /// All metadata of this cube.
    pub fn metadata(&self) -> BTreeMap<String, String> {
        self.server.meta.lock().get(&self.id).cloned().unwrap_or_default()
    }

    /// Human-readable cube summary (`oph_cubeschema`-like).
    pub fn info(&self) -> Result<String> {
        let c = self.cube()?;
        let dims: Vec<String> = c
            .dims
            .iter()
            .map(|d| {
                format!(
                    "{}[{}]{}",
                    d.name,
                    d.len(),
                    if d.kind == crate::model::DimKind::Implicit { "*" } else { "" }
                )
            })
            .collect();
        Ok(format!(
            "cube #{} '{}': {} | {} rows x {} implicit | {} fragments | {} bytes | {}",
            self.id.0,
            c.measure,
            dims.join(" x "),
            c.rows(),
            c.implicit_len(),
            c.frags.len(),
            c.bytes(),
            c.description
        ))
    }

    /// Export to an NCX file (`exportnc2` in Listing 1).
    pub fn exportnc(&self, path: &Path) -> Result<()> {
        let src = self.cube()?;
        self.server.record("exportnc", || ops::exportnc(&src, path))
    }

    /// Drops the stored cube (`Mask.delete()` in Listing 1). The handle
    /// becomes unusable and its metadata is discarded.
    pub fn delete(self) -> Result<()> {
        self.server.meta.lock().remove(&self.id);
        self.server.record("delete", || self.server.store.delete(self.id))
    }
}

/// Concatenates same-schema cubes along an implicit dimension, adopting the
/// result into the same server as the first handle.
pub fn concat(handles: &[&CubeHandle], dim: &str) -> Result<CubeHandle> {
    let first = handles.first().expect("concat needs at least one cube");
    let cubes: Vec<Arc<Cube>> = handles.iter().map(|h| h.cube()).collect::<Result<_>>()?;
    let refs: Vec<&Cube> = cubes.iter().map(|c| c.as_ref()).collect();
    let out = first.server.record("concat", || ops::concat_implicit(&refs, dim))?;
    let id = first.server.store.put(out);
    Ok(CubeHandle { server: Arc::clone(&first.server), id })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Dimension;

    fn client_with_cube() -> (Client, CubeHandle) {
        let client = Client::connect(2);
        let dims = vec![
            Dimension::explicit("cell", vec![0.0, 1.0, 2.0]),
            Dimension::implicit("time", vec![0.0, 1.0, 2.0, 3.0]),
        ];
        let data: Vec<f32> = (0..12).map(|i| i as f32).collect();
        let h = client.adopt(Cube::from_dense("t", dims, data, 2, 2).unwrap());
        (client, h)
    }

    #[test]
    fn listing1_style_pipeline() {
        // The paper's IndexDurationNumber: mask = predicate(x>0), count,
        // delete mask, export count.
        let (client, duration) = client_with_cube();
        let mask = duration.apply("predicate(x > 5, 1, 0)").unwrap();
        let count = mask.reduce(ReduceOp::Sum, "time").unwrap();
        mask.delete().unwrap();

        let c = count.cube().unwrap();
        // Rows: [0..3], [4..7], [8..11] -> counts of values > 5: 0, 2, 4.
        assert_eq!(c.to_dense(), vec![0.0, 2.0, 4.0]);

        let dir = std::env::temp_dir().join("datacube-server");
        std::fs::create_dir_all(&dir).unwrap();
        count.exportnc(&dir.join("count.ncx")).unwrap();
        assert!(dir.join("count.ncx").exists());

        let stats = client.operator_stats();
        assert_eq!(stats["apply"].0, 1);
        assert_eq!(stats["reduce"].0, 1);
        assert_eq!(stats["delete"].0, 1);
        assert_eq!(stats["exportnc"].0, 1);
    }

    #[test]
    fn chaining_keeps_intermediates_in_memory() {
        let (client, h) = client_with_cube();
        assert_eq!(client.resident_cubes(), 1);
        let a = h.apply("x * 2").unwrap();
        let _b = a.reduce(ReduceOp::Max, "time").unwrap();
        assert_eq!(client.resident_cubes(), 3);
        assert!(client.resident_bytes() > 0);
        a.delete().unwrap();
        assert_eq!(client.resident_cubes(), 2);
    }

    #[test]
    fn intercube_between_handles() {
        let (_client, h) = client_with_cube();
        let base = h.reduce(ReduceOp::Min, "time").unwrap();
        let anom = h.intercube(&base, InterOp::Sub).unwrap();
        let c = anom.cube().unwrap();
        for r in 0..3 {
            assert_eq!(c.row_series(r).unwrap(), &[0.0, 1.0, 2.0, 3.0]);
        }
    }

    #[test]
    fn subset_and_map_series_via_handles() {
        let (_client, h) = client_with_cube();
        let s = h.subset("time", 2, 4).unwrap();
        assert_eq!(s.cube().unwrap().row_series(0).unwrap(), &[2.0, 3.0]);
        let m = h.map_series("sum", 1, |row| vec![row.iter().sum()]).unwrap();
        assert_eq!(m.cube().unwrap().to_dense(), vec![6.0, 22.0, 38.0]);
    }

    #[test]
    fn deleted_handle_operations_fail() {
        let (_client, h) = client_with_cube();
        let h2 = h.clone();
        h.delete().unwrap();
        assert!(h2.cube().is_err());
        assert!(h2.reduce(ReduceOp::Max, "time").is_err());
    }

    #[test]
    fn concat_handles() {
        let (_client, h) = client_with_cube();
        let other = h.apply("x + 100").unwrap();
        let y = concat(&[&h, &other], "time").unwrap();
        let c = y.cube().unwrap();
        assert_eq!(c.implicit_len(), 8);
        assert_eq!(c.row_series(0).unwrap(), &[0.0, 1.0, 2.0, 3.0, 100.0, 101.0, 102.0, 103.0]);
    }

    #[test]
    fn audit_records_timing() {
        let (client, h) = client_with_cube();
        h.apply("x").unwrap();
        let audit = client.audit();
        assert!(audit.iter().any(|r| r.operator == "apply"));
    }

    #[test]
    fn metadata_management() {
        let (_client, h) = client_with_cube();
        assert!(h.metadata().is_empty());
        h.set_metadata("units", "K").unwrap();
        h.set_metadata("standard_name", "air_temperature").unwrap();
        h.set_metadata("units", "degC").unwrap(); // replace
        let m = h.metadata();
        assert_eq!(m["units"], "degC");
        assert_eq!(m["standard_name"], "air_temperature");
        // Metadata is per cube: derived cubes start clean.
        let derived = h.apply("x").unwrap();
        assert!(derived.metadata().is_empty());
        // Deleting drops the metadata with the cube.
        let h2 = h.clone();
        h.delete().unwrap();
        assert!(h2.set_metadata("x", "y").is_err());
        assert!(h2.metadata().is_empty());
    }

    #[test]
    fn info_summarizes_schema() {
        let (_client, h) = client_with_cube();
        let info = h.info().unwrap();
        assert!(info.contains("'t'"));
        assert!(info.contains("cell[3]"));
        assert!(info.contains("time[4]*"), "implicit dims marked with *: {info}");
        assert!(info.contains("3 rows x 4 implicit"));
    }

    #[test]
    fn coordinate_subset_via_handle() {
        let (_client, h) = client_with_cube();
        let s = h.subset_by_coord("cell", 1.0, 2.0).unwrap();
        let c = s.cube().unwrap();
        assert_eq!(c.rows(), 2);
        assert_eq!(c.row_series(0).unwrap(), &[4.0, 5.0, 6.0, 7.0]);
    }

    #[test]
    fn importnc_via_client() {
        let dir = std::env::temp_dir().join("datacube-server");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("import.ncx");
        let (_c0, h) = client_with_cube();
        h.exportnc(&path).unwrap();

        let client = Client::connect(2);
        let back = client.importnc(&path, "t", &["cell"], &["time"], 2).unwrap();
        assert_eq!(back.cube().unwrap().to_dense(), h.cube().unwrap().to_dense());
    }
}
