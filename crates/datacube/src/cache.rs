//! Shared cross-tenant cube cache: "load the baseline once, reuse it all
//! workflow long" — extended across *users*.
//!
//! A [`CubeCache`] keys immutable [`Cube`]s (the zero-copy `SharedData`
//! plane makes clones shallow) by a deterministic string describing what
//! produced them. [`CubeCache::get_or_load`] is single-flight: the first
//! caller for a key runs the loader while concurrent callers for the
//! same key block and share the result, so N tenants asking for the same
//! baseline pay one materialisation.
//!
//! Entries are ref-counted `Arc<Cube>`s under an LRU byte budget. An
//! entry whose `Arc` is still held outside the cache is *pinned* —
//! eviction skips it, because dropping the map entry would not free the
//! bytes anyway, just destroy reuse. Only entries nobody else holds are
//! evicted, oldest-use first, until the budget is met.

use crate::error::{Error, Result};
use crate::model::Cube;
use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// Default byte budget for the process-wide cache when the
/// `CUBE_CACHE_BUDGET_MB` environment variable is unset.
const DEFAULT_BUDGET_MB: usize = 512;

/// One cache slot.
enum Slot {
    /// A loader is materialising this key; joiners wait on the condvar.
    Pending,
    /// Materialised and resident.
    Ready { cube: Arc<Cube>, bytes: usize, last_used: u64 },
    /// The last load failed; kept so joiners can read the message, and
    /// treated as absent (retried) by the next fresh lookup.
    Failed(String),
}

#[derive(Default)]
struct CacheState {
    slots: HashMap<String, Slot>,
    /// Monotonic use counter; `Ready.last_used` orders LRU eviction.
    tick: u64,
    resident_bytes: usize,
    stats: CacheStats,
}

/// Snapshot of cache counters (see [`CubeCache::stats`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from a resident entry.
    pub hits: u64,
    /// Lookups that joined an in-flight load by another caller.
    pub joins: u64,
    /// Lookups that ran the loader.
    pub misses: u64,
    /// Entries evicted to fit the byte budget.
    pub evictions: u64,
    /// Loader invocations that returned an error.
    pub load_failures: u64,
    /// Resident entries right now.
    pub entries: usize,
    /// Bytes resident right now.
    pub resident_bytes: usize,
    /// Configured byte budget.
    pub budget_bytes: usize,
}

impl CacheStats {
    /// All lookups, however they were answered.
    pub fn lookups(&self) -> u64 {
        self.hits + self.joins + self.misses
    }

    /// Fraction of lookups that avoided running the loader (resident
    /// hits plus single-flight joins).
    pub fn hit_rate(&self) -> f64 {
        let lookups = self.lookups();
        if lookups == 0 {
            return 0.0;
        }
        (self.hits + self.joins) as f64 / lookups as f64
    }
}

/// Ref-counted, byte-budgeted, single-flight cube cache.
pub struct CubeCache {
    state: Mutex<CacheState>,
    cv: Condvar,
    budget_bytes: usize,
}

impl CubeCache {
    /// Creates a cache that evicts LRU entries beyond `budget_bytes`.
    pub fn new(budget_bytes: usize) -> Self {
        CubeCache { state: Mutex::new(CacheState::default()), cv: Condvar::new(), budget_bytes }
    }

    /// The process-wide cache shared by every workflow in this process
    /// (budget from `CUBE_CACHE_BUDGET_MB`, default 512).
    pub fn global() -> &'static CubeCache {
        static GLOBAL: OnceLock<CubeCache> = OnceLock::new();
        GLOBAL.get_or_init(|| {
            let mb = std::env::var("CUBE_CACHE_BUDGET_MB")
                .ok()
                .and_then(|v| v.parse::<usize>().ok())
                .unwrap_or(DEFAULT_BUDGET_MB);
            CubeCache::new(mb.saturating_mul(1 << 20))
        })
    }

    /// Returns the cube for `key`, running `load` only if no resident or
    /// in-flight entry exists. Concurrent callers for the same key block
    /// and share one load. A loader error propagates to the running
    /// caller as-is and to joiners as [`Error::CacheLoad`]; failures are
    /// not cached — the next lookup retries.
    pub fn get_or_load<F>(&self, key: &str, load: F) -> Result<Arc<Cube>>
    where
        F: FnOnce() -> Result<Cube>,
    {
        enum Action {
            Hit(Arc<Cube>),
            Wait,
            JoinedFailure(String),
            StartLoad,
        }
        let mut st = self.state.lock().unwrap();
        let mut joined = false;
        loop {
            let action = match st.slots.get(key) {
                Some(Slot::Ready { cube, .. }) => Action::Hit(Arc::clone(cube)),
                Some(Slot::Pending) => Action::Wait,
                Some(Slot::Failed(message)) if joined => Action::JoinedFailure(message.clone()),
                // Stale failure from an earlier attempt: retry.
                Some(Slot::Failed(_)) | None => Action::StartLoad,
            };
            match action {
                Action::Hit(cube) => {
                    st.tick += 1;
                    let tick = st.tick;
                    if let Some(Slot::Ready { last_used, .. }) = st.slots.get_mut(key) {
                        *last_used = tick;
                    }
                    if joined {
                        st.stats.joins += 1;
                    } else {
                        st.stats.hits += 1;
                    }
                    return Ok(cube);
                }
                Action::Wait => {
                    joined = true;
                    st = self.cv.wait(st).unwrap();
                }
                Action::JoinedFailure(message) => {
                    // The load we were waiting on failed.
                    st.stats.joins += 1;
                    return Err(Error::CacheLoad { key: key.into(), message });
                }
                Action::StartLoad => {
                    st.slots.insert(key.to_string(), Slot::Pending);
                    break;
                }
            }
        }
        drop(st);

        let loaded = load();

        let mut st = self.state.lock().unwrap();
        let out = match loaded {
            Ok(cube) => {
                let bytes = cube.bytes();
                let cube = Arc::new(cube);
                st.tick += 1;
                let last_used = st.tick;
                st.slots.insert(
                    key.to_string(),
                    Slot::Ready { cube: Arc::clone(&cube), bytes, last_used },
                );
                st.resident_bytes += bytes;
                st.stats.misses += 1;
                Self::evict_to_budget(&mut st, self.budget_bytes, key);
                Ok(cube)
            }
            Err(e) => {
                st.slots.insert(key.to_string(), Slot::Failed(e.to_string()));
                st.stats.misses += 1;
                st.stats.load_failures += 1;
                Err(e)
            }
        };
        self.cv.notify_all();
        out
    }

    /// Evicts unpinned entries, oldest use first, until resident bytes
    /// fit the budget. `protect` (the just-inserted key) is never the
    /// victim, so a single over-budget cube still caches. Entries whose
    /// `Arc` is held outside the cache are pinned and skipped.
    fn evict_to_budget(st: &mut CacheState, budget: usize, protect: &str) {
        while st.resident_bytes > budget {
            let victim = st
                .slots
                .iter()
                .filter_map(|(k, slot)| match slot {
                    Slot::Ready { cube, last_used, .. }
                        if k != protect && Arc::strong_count(cube) == 1 =>
                    {
                        Some((*last_used, k.clone()))
                    }
                    _ => None,
                })
                .min_by_key(|(last_used, _)| *last_used)
                .map(|(_, k)| k);
            let Some(k) = victim else { break };
            if let Some(Slot::Ready { bytes, .. }) = st.slots.remove(&k) {
                st.resident_bytes -= bytes;
                st.stats.evictions += 1;
            }
        }
    }

    /// Counter snapshot, with residency filled in.
    pub fn stats(&self) -> CacheStats {
        let st = self.state.lock().unwrap();
        let mut stats = st.stats.clone();
        stats.entries = st.slots.values().filter(|s| matches!(s, Slot::Ready { .. })).count();
        stats.resident_bytes = st.resident_bytes;
        stats.budget_bytes = self.budget_bytes;
        stats
    }

    /// Drops every resident entry (outstanding `Arc`s stay valid) and
    /// forgets failures. Counters are preserved.
    pub fn purge(&self) {
        let mut st = self.state.lock().unwrap();
        st.slots.retain(|_, s| matches!(s, Slot::Pending));
        st.resident_bytes = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Dimension;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::time::Duration;

    /// A dense rows×4 cube of `rows * 4 * 4` payload bytes.
    fn cube(rows: usize, fill: f32) -> Cube {
        let lat = Dimension::explicit("lat", (0..rows).map(|i| i as f64).collect::<Vec<_>>());
        let time = Dimension::implicit("time", vec![0.0, 1.0, 2.0, 3.0]);
        Cube::from_dense("t", vec![lat, time], vec![fill; rows * 4], 1, 1).unwrap()
    }

    #[test]
    fn hit_after_miss_and_stats() {
        let cache = CubeCache::new(1 << 20);
        let a = cache.get_or_load("k", || Ok(cube(8, 1.0))).unwrap();
        let b = cache.get_or_load("k", || panic!("must not reload")).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.joins), (1, 1, 0));
        assert_eq!(stats.entries, 1);
        assert!(stats.resident_bytes > 0);
        assert!((stats.hit_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn concurrent_identical_loads_are_single_flight() {
        let cache = Arc::new(CubeCache::new(1 << 20));
        let loads = Arc::new(AtomicU64::new(0));
        let mut joins = Vec::new();
        for _ in 0..4 {
            let cache = Arc::clone(&cache);
            let loads = Arc::clone(&loads);
            joins.push(std::thread::spawn(move || {
                cache
                    .get_or_load("baseline", || {
                        loads.fetch_add(1, Ordering::SeqCst);
                        // Long enough that the other threads arrive
                        // while the load is in flight.
                        std::thread::sleep(Duration::from_millis(50));
                        Ok(cube(8, 2.0))
                    })
                    .unwrap()
            }));
        }
        let cubes: Vec<Arc<Cube>> = joins.into_iter().map(|j| j.join().unwrap()).collect();
        assert_eq!(loads.load(Ordering::SeqCst), 1, "one materialisation for 4 callers");
        for c in &cubes[1..] {
            assert!(Arc::ptr_eq(&cubes[0], c));
        }
        let stats = cache.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits + stats.joins, 3);
    }

    #[test]
    fn lru_eviction_respects_budget_and_recency() {
        let one = cube(8, 0.0).bytes();
        // Budget fits two cubes, not three.
        let cache = CubeCache::new(2 * one + one / 2);
        cache.get_or_load("a", || Ok(cube(8, 1.0))).unwrap();
        cache.get_or_load("b", || Ok(cube(8, 2.0))).unwrap();
        // Touch "a" so "b" is the least recently used.
        cache.get_or_load("a", || panic!("resident")).unwrap();
        cache.get_or_load("c", || Ok(cube(8, 3.0))).unwrap();
        let stats = cache.stats();
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.entries, 2);
        assert!(stats.resident_bytes <= 2 * one + one / 2);
        // "b" was evicted; "a" survived.
        let mut reloaded = false;
        cache
            .get_or_load("a", || {
                reloaded = true;
                Ok(cube(8, 1.0))
            })
            .unwrap();
        assert!(!reloaded, "recently-used entry must survive eviction");
    }

    #[test]
    fn pinned_entries_are_not_evicted() {
        let one = cube(8, 0.0).bytes();
        let cache = CubeCache::new(one + one / 2);
        // Hold the Arc: the entry is pinned.
        let pinned = cache.get_or_load("pinned", || Ok(cube(8, 1.0))).unwrap();
        cache.get_or_load("other", || Ok(cube(8, 2.0))).unwrap();
        let stats = cache.stats();
        // Over budget, but the only eviction candidate was "other"'s
        // protection or "pinned"'s refcount — "pinned" must remain.
        let again = cache.get_or_load("pinned", || panic!("pinned entry evicted")).unwrap();
        assert!(Arc::ptr_eq(&pinned, &again));
        assert!(stats.resident_bytes >= one);
    }

    #[test]
    fn failed_loads_propagate_and_are_retried() {
        let cache = CubeCache::new(1 << 20);
        let err =
            cache.get_or_load("bad", || Err(Error::BadImport("no such field".into()))).unwrap_err();
        assert!(matches!(err, Error::BadImport(_)));
        // The failure is not cached: the next lookup retries and succeeds.
        let ok = cache.get_or_load("bad", || Ok(cube(4, 1.0))).unwrap();
        assert_eq!(ok.rows(), 4);
        let stats = cache.stats();
        assert_eq!(stats.load_failures, 1);
        assert_eq!(stats.misses, 2);
    }

    #[test]
    fn purge_empties_but_outstanding_arcs_stay_valid() {
        let cache = CubeCache::new(1 << 20);
        let held = cache.get_or_load("k", || Ok(cube(8, 7.0))).unwrap();
        cache.purge();
        assert_eq!(cache.stats().entries, 0);
        assert_eq!(cache.stats().resident_bytes, 0);
        assert_eq!(held.rows(), 8);
        // Next lookup reloads.
        let mut reloaded = false;
        cache
            .get_or_load("k", || {
                reloaded = true;
                Ok(cube(8, 7.0))
            })
            .unwrap();
        assert!(reloaded);
    }

    #[test]
    fn global_cache_is_shared_and_env_tunable() {
        let g1 = CubeCache::global();
        let g2 = CubeCache::global();
        assert!(std::ptr::eq(g1, g2));
        assert!(g1.stats().budget_bytes > 0);
    }
}
