//! Property tests: operator results must be independent of fragmentation
//! and parallelism, and must agree with straightforward dense oracles.

use datacube::exec::ExecConfig;
use datacube::expr::Expr;
use datacube::model::{Cube, Dimension};
use datacube::ops::{self, InterOp, ReduceOp};
use proptest::prelude::*;

/// Builds a (rows | time) cube with deterministic pseudo-random data.
fn build(rows: usize, nt: usize, nfrag: usize, servers: usize, seed: u64) -> Cube {
    let dims = vec![
        Dimension::explicit("cell", (0..rows).map(|i| i as f64).collect::<Vec<_>>()),
        Dimension::implicit("time", (0..nt).map(|i| i as f64).collect::<Vec<_>>()),
    ];
    let data: Vec<f32> = (0..rows * nt)
        .map(|i| ((i as u64).wrapping_mul(seed | 1).wrapping_add(17) % 1000) as f32 / 10.0 - 50.0)
        .collect();
    Cube::from_dense("m", dims, data, nfrag, servers).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// The same logical cube must produce identical operator results for
    /// every fragmentation and server count.
    #[test]
    fn results_invariant_under_fragmentation(
        rows in 1usize..20,
        nt in 1usize..12,
        nfrag_a in 1usize..8,
        nfrag_b in 1usize..8,
        servers in 1usize..5,
        seed in any::<u64>(),
    ) {
        let a = build(rows, nt, nfrag_a, 1, seed);
        let b = build(rows, nt, nfrag_b, servers, seed);
        let cfg_a = ExecConfig::serial();
        let cfg_b = ExecConfig::with_servers(servers);

        for op in [ReduceOp::Max, ReduceOp::Min, ReduceOp::Sum, ReduceOp::Avg, ReduceOp::CountPositive] {
            let ra = ops::reduce(&a, op, "time", cfg_a).unwrap().to_dense();
            let rb = ops::reduce(&b, op, "time", cfg_b).unwrap().to_dense();
            prop_assert_eq!(ra, rb, "reduce {:?} differs across fragmentations", op);
        }

        let expr = Expr::parse("predicate(x > 0, x * 2, -1)").unwrap();
        prop_assert_eq!(
            ops::apply(&a, &expr, cfg_a).to_dense(),
            ops::apply(&b, &expr, cfg_b).to_dense()
        );
    }

    /// reduce agrees with a dense oracle.
    #[test]
    fn reduce_matches_oracle(
        rows in 1usize..15,
        nt in 1usize..10,
        nfrag in 1usize..6,
        seed in any::<u64>(),
    ) {
        let c = build(rows, nt, nfrag, 2, seed);
        let dense = c.to_dense();
        let cfg = ExecConfig::with_servers(3);

        let max = ops::reduce(&c, ReduceOp::Max, "time", cfg).unwrap().to_dense();
        let sum = ops::reduce(&c, ReduceOp::Sum, "time", cfg).unwrap().to_dense();
        for r in 0..rows {
            let series = &dense[r * nt..(r + 1) * nt];
            let want_max = series.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let want_sum: f32 = series.iter().sum();
            prop_assert_eq!(max[r], want_max);
            prop_assert!((sum[r] - want_sum).abs() < 1e-3);
        }
    }

    /// apply(expr) agrees with direct evaluation.
    #[test]
    fn apply_matches_eval(
        rows in 1usize..10,
        nt in 1usize..8,
        seed in any::<u64>(),
    ) {
        let c = build(rows, nt, 3, 2, seed);
        let expr = Expr::parse("max(x, 0) - min(x, 0) + predicate(x >= 10, 1, 0)").unwrap();
        let out = ops::apply(&c, &expr, ExecConfig::with_servers(2)).to_dense();
        for (o, v) in out.iter().zip(c.to_dense()) {
            prop_assert_eq!(*o, expr.eval(v as f64) as f32);
        }
    }

    /// a - a == 0 and (a - b) + b == a for intercube.
    #[test]
    fn intercube_algebra(
        rows in 1usize..12,
        nt in 1usize..8,
        seed_a in any::<u64>(),
        seed_b in any::<u64>(),
    ) {
        let cfg = ExecConfig::with_servers(2);
        let a = build(rows, nt, 2, 1, seed_a);
        let b = build(rows, nt, 2, 1, seed_b);
        let zero = ops::intercube(&a, &a, InterOp::Sub, cfg).unwrap();
        prop_assert!(zero.to_dense().iter().all(|&v| v == 0.0));
        let diff = ops::intercube(&a, &b, InterOp::Sub, cfg).unwrap();
        let back = ops::intercube(&diff, &b, InterOp::Add, cfg).unwrap();
        for (x, y) in back.to_dense().iter().zip(a.to_dense()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    /// Subset then concat of the two halves reproduces the original.
    #[test]
    fn subset_concat_roundtrip(
        rows in 1usize..10,
        nt in 2usize..10,
        split in 1usize..9,
        seed in any::<u64>(),
    ) {
        let split = split.min(nt - 1).max(1);
        let cfg = ExecConfig::with_servers(2);
        let c = build(rows, nt, 3, 2, seed);
        let left = ops::subset_implicit(&c, "time", 0, split, cfg).unwrap();
        let right = ops::subset_implicit(&c, "time", split, nt, cfg).unwrap();
        let joined = ops::concat_implicit(&[&left, &right], "time").unwrap();
        prop_assert_eq!(joined.to_dense(), c.to_dense());
        joined.validate().unwrap();
    }

    /// Expressions never panic on arbitrary finite input and predicates
    /// always yield one of their two branches.
    #[test]
    fn predicate_is_total(v in -1e6f64..1e6, t in -100f64..100.0, e in -100f64..100.0) {
        let expr = Expr::Predicate {
            lhs: Box::new(Expr::X),
            cmp: datacube::expr::Cmp::Gt,
            rhs: Box::new(Expr::Const(0.0)),
            then: Box::new(Expr::Const(t)),
            otherwise: Box::new(Expr::Const(e)),
        };
        let out = expr.eval(v);
        prop_assert!(out == t || out == e);
        prop_assert_eq!(out == t, v > 0.0);
    }
}
