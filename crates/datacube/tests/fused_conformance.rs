//! Differential kernel conformance: every fused pipeline must be
//! **bitwise**-equal (`f32::to_bits`) to the scalar operator-by-operator
//! oracle — same cells, same dims, same tapped intermediate — under
//! proptest-generated fragmentations, server counts, chain shapes,
//! non-multiple-of-`LANES` series lengths, and NaN/±inf payloads.
//!
//! Scope of the bitwise contract (see `fuse` module docs / DESIGN.md):
//! NaN payloads live only in the *source* cube, intercube partner cubes
//! are finite, and the expression pool is NaN-linear (each binary node
//! has at most one NaN-capable operand), because IEEE 754 leaves the
//! payload unspecified when two distinct NaNs meet at a commutative op —
//! there both results are NaN but the bit pattern is not pinned down.

use datacube::exec::ExecConfig;
use datacube::expr::Expr;
use datacube::fuse::Pipeline;
use datacube::model::{Cube, Dimension};
use datacube::ops::{InterOp, ReduceOp};
use proptest::prelude::*;

/// A quiet-NaN with a recognizable payload: survives every pipeline stage
/// unchanged only if the kernels really propagate bits, not just NaN-ness.
const NAN_PAYLOAD: u32 = 0x7fc0_1234;

/// Deterministic splitmix-style generator so chain shapes derive from one
/// proptest-supplied seed.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

/// Cell value mixing ordinary magnitudes with specials: NaN payloads,
/// ±inf, and -0.0 all appear with ~6% probability each.
fn cell_value(rng: &mut Rng) -> f32 {
    match rng.below(16) {
        0 => f32::from_bits(NAN_PAYLOAD),
        1 => f32::INFINITY,
        2 => f32::NEG_INFINITY,
        3 => -0.0,
        _ => (rng.below(2000) as f32 / 10.0) - 100.0,
    }
}

/// `(cell | time)` cube with specials in the payload.
fn build_src(rows: usize, nt: usize, nfrag: usize, servers: usize, rng: &mut Rng) -> Cube {
    let dims = vec![
        Dimension::explicit("cell", (0..rows).map(|i| i as f64).collect::<Vec<_>>()),
        Dimension::implicit("time", (0..nt).map(|i| i as f64).collect::<Vec<_>>()),
    ];
    let data: Vec<f32> = (0..rows * nt).map(|_| cell_value(rng)).collect();
    Cube::from_dense("m", dims, data, nfrag, servers).unwrap()
}

/// Finite partner cube for intercube stages, matching the source's
/// explicit dims and the chain's *current* implicit length (or no implicit
/// dim at all — the broadcast case — when `ilen` is 0).
fn build_partner(rows: usize, nfrag: usize, servers: usize, ilen: usize, rng: &mut Rng) -> Cube {
    let mut dims =
        vec![Dimension::explicit("cell", (0..rows).map(|i| i as f64).collect::<Vec<_>>())];
    if ilen > 0 {
        dims.push(Dimension::implicit("time", (0..ilen).map(|i| i as f64).collect::<Vec<_>>()));
    }
    let n = rows * ilen.max(1);
    // Offset away from zero so Div partners never divide by 0.
    let data: Vec<f32> = (0..n).map(|_| (rng.below(100) as f32 / 7.0) + 0.5).collect();
    Cube::from_dense("b", dims, data, nfrag, servers).unwrap()
}

/// NaN-linear expression pool: at most one x-dependent operand feeds each
/// binary node, so NaN bit patterns traverse deterministically.
fn expr_pool() -> Vec<Expr> {
    [
        "x * 2 + 1",
        "abs(x)",
        "-(x - 2) / 3",
        "max(x, 0.25)",
        "min(x, 10) * 0.5",
        "sqrt(abs(x))",
        "predicate(x > 0, x, -x)",
        "predicate(x >= 5, 1, 0)",
    ]
    .iter()
    .map(|s| Expr::parse(s).unwrap())
    .collect()
}

/// Builds a random legal chain over `src`: 0–4 element-wise stages
/// (subset / apply / intercube), an optional tap, and an optional terminal
/// (reduce or map_series). Returns the pipeline plus a shape string for
/// failure messages.
fn build_chain(
    rng: &mut Rng,
    rows: usize,
    nt: usize,
    nfrag: usize,
    servers: usize,
) -> (Pipeline, String) {
    let pool = expr_pool();
    let mut p = Pipeline::new();
    let mut shape = String::new();
    let mut cur = nt;
    let nstages = rng.below(5);
    for _ in 0..nstages {
        match rng.below(3) {
            0 if cur > 1 => {
                let lo = rng.below(cur as u64) as usize;
                let hi = lo + 1 + rng.below((cur - lo) as u64) as usize;
                p = p.subset_implicit("time", lo, hi);
                shape.push_str(&format!("subset({lo},{hi}) "));
                cur = hi - lo;
            }
            1 => {
                let e = &pool[rng.below(pool.len() as u64) as usize];
                shape.push_str("apply ");
                p = p.apply(e.clone());
            }
            _ => {
                let broadcast = rng.below(3) == 0;
                let ilen = if broadcast { 0 } else { cur };
                let b = build_partner(rows, nfrag, servers, ilen, rng);
                let op =
                    [InterOp::Add, InterOp::Sub, InterOp::Mul, InterOp::Div][rng.below(4) as usize];
                shape.push_str(&format!("inter({op:?},b{ilen}) "));
                p = p.intercube(&b, op);
            }
        }
    }
    if rng.below(3) == 0 {
        shape.push_str("tap ");
        p = p.tap();
    }
    match rng.below(3) {
        0 => {
            let op = [
                ReduceOp::Max,
                ReduceOp::Min,
                ReduceOp::Sum,
                ReduceOp::Avg,
                ReduceOp::CountPositive,
            ][rng.below(5) as usize];
            shape.push_str(&format!("reduce({op:?})"));
            p = p.reduce(op, "time");
        }
        1 => {
            shape.push_str(&format!("map_series(cumsum,{cur})"));
            p = p.map_series("csum", cur, |row, out| {
                let mut acc = 0.0f32;
                for (o, &v) in out.iter_mut().zip(row) {
                    acc += v;
                    *o = acc;
                }
            });
        }
        _ => {}
    }
    (p, shape)
}

/// Asserts bitwise equality between the fused run and the scalar oracle.
fn assert_bitwise(p: &Pipeline, src: &Cube, cfg: ExecConfig, shape: &str) {
    let fused = p.run(src, cfg).unwrap_or_else(|e| panic!("fused {shape}: {e}"));
    let oracle = p.run_scalar(src, cfg).unwrap_or_else(|e| panic!("oracle {shape}: {e}"));
    let fb: Vec<u32> = fused.cube.to_dense().iter().map(|v| v.to_bits()).collect();
    let ob: Vec<u32> = oracle.cube.to_dense().iter().map(|v| v.to_bits()).collect();
    prop_assert_eq!(fb, ob, "primary output differs for chain `{}`", shape);
    prop_assert_eq!(
        fused.cube.dims.len(),
        oracle.cube.dims.len(),
        "dim schema differs for chain `{}`",
        shape
    );
    match (&fused.tapped, &oracle.tapped) {
        (Some(ft), Some(ot)) => {
            let fb: Vec<u32> = ft.to_dense().iter().map(|v| v.to_bits()).collect();
            let ob: Vec<u32> = ot.to_dense().iter().map(|v| v.to_bits()).collect();
            prop_assert_eq!(fb, ob, "tapped output differs for chain `{}`", shape);
        }
        (None, None) => {}
        _ => prop_assert!(false, "tap presence differs for chain `{}`", shape),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The core differential property: random chain × random
    /// fragmentation × NaN/inf payloads — fused == scalar, bit for bit.
    #[test]
    fn fused_matches_scalar_oracle_bitwise(
        rows in 1usize..10,
        nt in 1usize..21,          // crosses the 8-lane boundary both ways
        nfrag in 1usize..8,
        servers in 1usize..5,
        seed in any::<u64>(),
    ) {
        let mut rng = Rng(seed);
        let src = build_src(rows, nt, nfrag, servers, &mut rng);
        let (p, shape) = build_chain(&mut rng, rows, nt, nfrag, servers);
        assert_bitwise(&p, &src, ExecConfig::with_servers(servers), &shape);
    }

    /// Refragmenting the same logical cube must not change a single bit of
    /// the fused result (fragment boundaries land mid-lane-block).
    #[test]
    fn fused_result_invariant_under_fragmentation(
        rows in 1usize..10,
        nt in 1usize..21,
        nfrag_a in 1usize..8,
        nfrag_b in 1usize..8,
        seed in any::<u64>(),
    ) {
        let mut rng = Rng(seed);
        // One data stream, two fragmentations: regenerate with a cloned rng.
        let mut rng_b = Rng(seed);
        let a = build_src(rows, nt, nfrag_a, 1, &mut rng);
        let b = build_src(rows, nt, nfrag_b, 3, &mut rng_b);
        let (p, shape) = build_chain(&mut rng, rows, nt, nfrag_a, 1);
        let ra = p.run(&a, ExecConfig::serial()).unwrap();
        let rb = p.run(&b, ExecConfig::with_servers(3)).unwrap();
        let bits_a: Vec<u32> = ra.cube.to_dense().iter().map(|v| v.to_bits()).collect();
        let bits_b: Vec<u32> = rb.cube.to_dense().iter().map(|v| v.to_bits()).collect();
        prop_assert_eq!(bits_a, bits_b, "fragmentation changed fused bits for `{}`", shape);
    }

    /// Every reduce op over every series length (including lengths far
    /// from lane multiples) agrees bitwise with the scalar oracle even
    /// when the series is all-specials.
    #[test]
    fn reduce_terminals_conform_on_special_payloads(
        nt in 1usize..33,
        nfrag in 1usize..5,
        seed in any::<u64>(),
    ) {
        let mut rng = Rng(seed);
        let src = build_src(4, nt, nfrag, 2, &mut rng);
        for op in [ReduceOp::Max, ReduceOp::Min, ReduceOp::Sum, ReduceOp::Avg, ReduceOp::CountPositive] {
            let p = Pipeline::new().apply(Expr::parse("x * 2").unwrap()).reduce(op, "time");
            assert_bitwise(&p, &src, ExecConfig::with_servers(2), &format!("apply+reduce({op:?})"));
        }
    }
}

/// Schema violations must surface identically from the fused path and the
/// scalar oracle (same error variants as the standalone operators).
#[test]
fn errors_conform_between_fused_and_scalar() {
    let mut rng = Rng(7);
    let src = build_src(3, 10, 2, 1, &mut rng);
    let cfg = ExecConfig::serial();
    let bad = [
        Pipeline::new().subset_implicit("nope", 0, 1),
        Pipeline::new().subset_implicit("cell", 0, 1),
        Pipeline::new().subset_implicit("time", 4, 2),
        Pipeline::new().reduce(ReduceOp::Sum, "missing"),
    ];
    for p in &bad {
        let ef = p.run(&src, cfg).map(|_| ()).unwrap_err();
        let eo = p.run_scalar(&src, cfg).map(|_| ()).unwrap_err();
        assert_eq!(
            std::mem::discriminant(&ef),
            std::mem::discriminant(&eo),
            "fused `{ef}` vs oracle `{eo}`"
        );
    }
}
