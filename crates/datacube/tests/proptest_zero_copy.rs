//! Property tests for the zero-copy data plane: every operator run on an
//! arbitrarily fragmented cube must produce output **bitwise identical**
//! (`f32::to_bits`) to the same operator run on the single-fragment, serial
//! equivalent. Floating-point tolerance is deliberately NOT used — the
//! shared-buffer kernels are required to preserve the exact iteration
//! order of a dense implementation, so results must match to the bit.

use datacube::exec::ExecConfig;
use datacube::model::{Cube, Dimension};
use datacube::ops::{self, InterOp, ReduceOp};
use proptest::prelude::*;

/// Builds a (lat, lon | time) cube with deterministic pseudo-random data
/// and the requested fragmentation.
fn build(nlat: usize, nlon: usize, nt: usize, nfrag: usize, servers: usize, seed: u64) -> Cube {
    let dims = vec![
        Dimension::explicit("lat", (0..nlat).map(|i| i as f64).collect::<Vec<_>>()),
        Dimension::explicit("lon", (0..nlon).map(|i| i as f64).collect::<Vec<_>>()),
        Dimension::implicit("time", (0..nt).map(|i| i as f64).collect::<Vec<_>>()),
    ];
    let data: Vec<f32> = (0..nlat * nlon * nt)
        .map(|i| {
            let h = (i as u64).wrapping_mul(seed | 1).wrapping_add(0x9e37_79b9);
            ((h >> 11) % 2000) as f32 / 7.0 - 140.0
        })
        .collect();
    Cube::from_dense("m", dims, data, nfrag, servers).unwrap()
}

/// Bitwise image of a dense payload — equality here is exact, NaN-safe and
/// sign-of-zero-sensitive.
fn bits(c: &Cube) -> Vec<u32> {
    c.to_dense().iter().map(|v| v.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Binary ops on fragmented operands (including mismatched layouts on
    /// the two sides and per-row broadcast) are bitwise equal to the
    /// single-fragment run.
    #[test]
    fn intercube_bitwise_equals_dense(
        nlat in 1usize..6,
        nlon in 1usize..6,
        nt in 1usize..8,
        nfrag_a in 1usize..9,
        nfrag_b in 1usize..9,
        servers in 1usize..4,
        seed_a in any::<u64>(),
        seed_b in any::<u64>(),
    ) {
        let cfg = ExecConfig::with_servers(servers);
        let serial = ExecConfig::serial();
        for op in [InterOp::Add, InterOp::Sub, InterOp::Mul, InterOp::Div] {
            let a = build(nlat, nlon, nt, nfrag_a, servers, seed_a);
            let b = build(nlat, nlon, nt, nfrag_b, 1, seed_b);
            let a1 = build(nlat, nlon, nt, 1, 1, seed_a);
            let b1 = build(nlat, nlon, nt, 1, 1, seed_b);
            let frag = ops::intercube(&a, &b, op, cfg).unwrap();
            let dense = ops::intercube(&a1, &b1, op, serial).unwrap();
            prop_assert_eq!(bits(&frag), bits(&dense), "intercube {:?} not bitwise equal", op);

            // Broadcast path: b reduced to one value per row.
            let bb = ops::reduce(&b, ReduceOp::Avg, "time", cfg).unwrap();
            let bb1 = ops::reduce(&b1, ReduceOp::Avg, "time", serial).unwrap();
            let frag = ops::intercube(&a, &bb, op, cfg).unwrap();
            let dense = ops::intercube(&a1, &bb1, op, serial).unwrap();
            prop_assert_eq!(bits(&frag), bits(&dense), "broadcast {:?} not bitwise equal", op);
        }
    }

    /// Reductions over the implicit axis are bitwise equal to the
    /// single-fragment run for every kernel.
    #[test]
    fn reduce_bitwise_equals_dense(
        nlat in 1usize..6,
        nlon in 1usize..6,
        nt in 1usize..10,
        nfrag in 1usize..9,
        servers in 1usize..4,
        seed in any::<u64>(),
    ) {
        let frag_cube = build(nlat, nlon, nt, nfrag, servers, seed);
        let dense_cube = build(nlat, nlon, nt, 1, 1, seed);
        for op in [ReduceOp::Max, ReduceOp::Min, ReduceOp::Sum, ReduceOp::Avg, ReduceOp::CountPositive] {
            let f = ops::reduce(&frag_cube, op, "time", ExecConfig::with_servers(servers)).unwrap();
            let d = ops::reduce(&dense_cube, op, "time", ExecConfig::serial()).unwrap();
            prop_assert_eq!(bits(&f), bits(&d), "reduce {:?} not bitwise equal", op);
        }
    }

    /// Implicit and explicit subsets (the copy-on-write view paths) are
    /// bitwise equal to the single-fragment run.
    #[test]
    fn subset_bitwise_equals_dense(
        nlat in 2usize..6,
        nlon in 1usize..6,
        nt in 2usize..10,
        nfrag in 1usize..9,
        lo_t in 0usize..5,
        lo_y in 0usize..3,
        seed in any::<u64>(),
    ) {
        let cfg = ExecConfig::with_servers(2);
        let frag_cube = build(nlat, nlon, nt, nfrag, 2, seed);
        let dense_cube = build(nlat, nlon, nt, 1, 1, seed);

        let (lo, hi) = (lo_t.min(nt - 1), nt);
        let f = ops::subset_implicit(&frag_cube, "time", lo, hi, cfg).unwrap();
        let d = ops::subset_implicit(&dense_cube, "time", lo, hi, ExecConfig::serial()).unwrap();
        prop_assert_eq!(bits(&f), bits(&d));

        let (lo, hi) = (lo_y.min(nlat - 1), nlat);
        let f = ops::subset_explicit(&frag_cube, "lat", lo, hi).unwrap();
        let d = ops::subset_explicit(&dense_cube, "lat", lo, hi).unwrap();
        prop_assert_eq!(bits(&f), bits(&d));
        f.validate().unwrap();
    }

    /// Merging day stacks (concat over the implicit axis) with arbitrary —
    /// including mutually mismatched — fragmentations is bitwise equal to
    /// the single-fragment run, and refragmenting afterwards changes
    /// nothing.
    #[test]
    fn merge_bitwise_equals_dense(
        nlat in 1usize..5,
        nlon in 1usize..5,
        nt_a in 1usize..6,
        nt_b in 1usize..6,
        nfrag_a in 1usize..8,
        nfrag_b in 1usize..8,
        refrag in 1usize..10,
        seed_a in any::<u64>(),
        seed_b in any::<u64>(),
    ) {
        let a = build(nlat, nlon, nt_a, nfrag_a, 2, seed_a);
        let b = build(nlat, nlon, nt_b, nfrag_b, 1, seed_b);
        let a1 = build(nlat, nlon, nt_a, 1, 1, seed_a);
        let b1 = build(nlat, nlon, nt_b, 1, 1, seed_b);
        let f = ops::concat_implicit(&[&a, &b], "time").unwrap();
        let d = ops::concat_implicit(&[&a1, &b1], "time").unwrap();
        prop_assert_eq!(bits(&f), bits(&d));

        let r = ops::refragment(&f, refrag, 3).unwrap();
        prop_assert_eq!(bits(&r), bits(&d));
        r.validate().unwrap();
    }

    /// Full-range subsets and fine refragmentations must *share* payload
    /// buffers with their source (the O(1) view guarantee), not copy them.
    #[test]
    fn views_share_buffers(
        nlat in 1usize..5,
        nlon in 1usize..5,
        nt in 1usize..6,
        nfrag in 1usize..6,
        seed in any::<u64>(),
    ) {
        let c = build(nlat, nlon, nt, nfrag, 2, seed);
        let s = ops::subset_implicit(&c, "time", 0, nt, ExecConfig::serial()).unwrap();
        for (a, b) in c.frags.iter().zip(&s.frags) {
            prop_assert!(a.data.same_buffer(&b.data), "full-range subset copied a payload");
        }
        // Splitting every row into its own fragment: each target is
        // contained in exactly one source fragment.
        let r = ops::refragment(&c, c.rows(), 2).unwrap();
        for f in &r.frags {
            prop_assert!(
                c.frags.iter().any(|s| f.data.same_buffer(&s.data)),
                "contained refragment target copied a payload"
            );
        }
    }
}
