//! Concurrency tests over the server façade: the paper's workflow runs
//! several per-year Ophidia pipelines at once against one deployment
//! (Section 6: "PyOphidia can run climate analytics in parallel on each
//! set of files"), so the client/store must tolerate concurrent operator
//! chains, deletes and metadata traffic.

use datacube::model::{Cube, Dimension};
use datacube::ops::ReduceOp;
use datacube::Client;
use std::sync::Arc;

fn year_cube(seed: u64, rows: usize, days: usize) -> Cube {
    let dims = vec![
        Dimension::explicit("cell", (0..rows).map(|i| i as f64).collect::<Vec<_>>()),
        Dimension::implicit("day", (0..days).map(|d| d as f64).collect::<Vec<_>>()),
    ];
    let data: Vec<f32> = (0..rows * days)
        .map(|i| 280.0 + (((i as u64).wrapping_mul(seed | 1)) % 400) as f32 / 10.0)
        .collect();
    Cube::from_dense("tas", dims, data, 4, 2).unwrap()
}

#[test]
fn concurrent_listing1_pipelines_share_one_server() {
    let client = Client::connect(2);
    let threads = 6;
    let mut joins = Vec::new();
    for t in 0..threads {
        let client = client.clone();
        joins.push(std::thread::spawn(move || {
            // One "year" per thread: the Listing-1 pipeline.
            let duration = client.adopt(year_cube(t as u64 + 1, 32, 30));
            let mask = duration.apply("predicate(x > 300, 1, 0)").unwrap();
            let count = mask.reduce(ReduceOp::Sum, "day").unwrap();
            mask.delete().unwrap();
            let max = duration.reduce(ReduceOp::Max, "day").unwrap();
            duration.delete().unwrap();
            // Results must be internally consistent.
            let counts = count.cube().unwrap().to_dense();
            assert!(counts.iter().all(|&c| (0.0..=30.0).contains(&c)));
            let maxima = max.cube().unwrap().to_dense();
            assert!(maxima.iter().all(|&m| (280.0..321.0).contains(&m)));
            (count.id(), max.id())
        }));
    }
    let ids: Vec<_> = joins.into_iter().map(|j| j.join().unwrap()).collect();
    // Every thread got distinct cube ids; survivors = 2 per thread.
    let mut all: Vec<u64> = ids.iter().flat_map(|(a, b)| [a.0, b.0]).collect();
    all.sort_unstable();
    all.dedup();
    assert_eq!(all.len(), threads * 2);
    assert_eq!(client.resident_cubes(), threads * 2);

    // The audit trail saw every operator from every thread.
    let stats = client.operator_stats();
    assert_eq!(stats["apply"].0, threads);
    assert_eq!(stats["reduce"].0, threads * 2);
    assert_eq!(stats["delete"].0, threads * 2);
}

#[test]
fn concurrent_metadata_and_reads() {
    let client = Client::connect(2);
    let h = Arc::new(client.adopt(year_cube(7, 16, 10)));
    let mut joins = Vec::new();
    for t in 0..8 {
        let h = Arc::clone(&h);
        joins.push(std::thread::spawn(move || {
            for i in 0..20 {
                h.set_metadata(&format!("k{t}"), &format!("v{i}")).unwrap();
                let c = h.cube().unwrap();
                assert_eq!(c.rows(), 16);
                let _ = h.info().unwrap();
            }
        }));
    }
    for j in joins {
        j.join().unwrap();
    }
    let meta = h.metadata();
    assert_eq!(meta.len(), 8, "one final key per thread");
    for t in 0..8 {
        assert_eq!(meta[&format!("k{t}")], "v19");
    }
}
