//! Chaos-engineering hook points: named fault-injection sites consulted
//! by instrumented subsystems.
//!
//! This module is deliberately tiny and lives in `obs` (the bottom of the
//! workspace layering) so that every crate — the dataflow runtime, the
//! compute pool, the HPCWaaS simulators, the ESM — can expose injection
//! sites without depending on the crate that *plans* the faults
//! (`dataflow::inject` builds seeded [`super::EventKind::FaultInjected`]
//! plans and installs them here). Disarmed, [`fire`] is a single relaxed
//! atomic load, so production paths pay nothing.
//!
//! Only one hook can be armed at a time: [`install`] takes a process-wide
//! gate lock that the returned [`ChaosGuard`] holds until dropped, which
//! serializes chaos tests running concurrently in one test binary.

use crate::event::EventKind;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError};

/// A fault to apply at an injection site. Sites interpret the variants
/// they understand and ignore the rest: the dataflow runtime honors
/// `Panic`/`Stall`/`Error`/`Poison`, the DLS honors `Drop`, the cluster
/// simulator honors `Requeue`, and the compute pool honors `Stall`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Panic inside the instrumented code path.
    Panic,
    /// Sleep for `millis` before proceeding (stall / slow-node).
    Stall { millis: u64 },
    /// Return an injected error from the instrumented operation.
    Error,
    /// Corrupt the operation's payload (surfaced as a distinct error).
    Poison,
    /// Drop a transfer stage (the DLS retries it).
    Drop,
    /// Bounce a batch job back to the queue (the cluster re-places it).
    Requeue,
}

impl Fault {
    /// Stable lowercase label (events, logs, plan descriptions).
    pub fn label(self) -> &'static str {
        match self {
            Fault::Panic => "panic",
            Fault::Stall { .. } => "stall",
            Fault::Error => "error",
            Fault::Poison => "poison",
            Fault::Drop => "drop",
            Fault::Requeue => "requeue",
        }
    }
}

/// The hook: given a site name, decide whether a fault fires there and
/// report the per-site occurrence index it fired at.
pub type Hook = dyn Fn(&str) -> Option<(Fault, u64)> + Send + Sync;

static ARMED: AtomicBool = AtomicBool::new(false);

fn hook_slot() -> &'static Mutex<Option<Arc<Hook>>> {
    static SLOT: OnceLock<Mutex<Option<Arc<Hook>>>> = OnceLock::new();
    SLOT.get_or_init(|| Mutex::new(None))
}

/// Process-wide exclusivity gate: only one armed plan at a time.
fn gate() -> &'static Mutex<()> {
    static GATE: OnceLock<Mutex<()>> = OnceLock::new();
    GATE.get_or_init(|| Mutex::new(()))
}

/// Disarms the hook when dropped (and releases the exclusivity gate).
pub struct ChaosGuard {
    _gate: MutexGuard<'static, ()>,
}

impl Drop for ChaosGuard {
    fn drop(&mut self) {
        ARMED.store(false, Ordering::Release);
        *hook_slot().lock().unwrap_or_else(PoisonError::into_inner) = None;
    }
}

/// Arms `hook` as the process's fault-injection decision function.
/// Blocks until any previously armed hook is dropped.
pub fn install(hook: Arc<Hook>) -> ChaosGuard {
    let gate = gate().lock().unwrap_or_else(PoisonError::into_inner);
    *hook_slot().lock().unwrap_or_else(PoisonError::into_inner) = Some(hook);
    ARMED.store(true, Ordering::Release);
    ChaosGuard { _gate: gate }
}

/// True when a fault plan is armed.
#[inline]
pub fn is_armed() -> bool {
    ARMED.load(Ordering::Acquire)
}

/// Consults the armed hook at `site`. Returns the fault to apply, if one
/// fires here. Disarmed this is one atomic load; armed it emits a
/// [`EventKind::FaultInjected`] event and bumps
/// `chaos_faults_injected_total` for every fault that fires.
pub fn fire(site: &str) -> Option<Fault> {
    if !is_armed() {
        return None;
    }
    let hook = hook_slot().lock().unwrap_or_else(PoisonError::into_inner).clone()?;
    let (fault, occurrence) = hook(site)?;
    crate::registry().counter("chaos_faults_injected_total", &[]).inc();
    crate::emit_with(|| EventKind::FaultInjected {
        site: site.into(),
        fault: fault.label(),
        occurrence,
    });
    Some(fault)
}

/// Applies the fault fired at `site` inline: `Stall` sleeps and succeeds,
/// `Panic` panics, everything else becomes an `Err` naming the fault.
/// Convenience for sites with no fault-specific handling of their own.
pub fn point(site: &str) -> Result<(), String> {
    match fire(site) {
        None => Ok(()),
        Some(Fault::Stall { millis }) => {
            std::thread::sleep(std::time::Duration::from_millis(millis));
            Ok(())
        }
        Some(Fault::Panic) => panic!("chaos: injected panic at {site}"),
        Some(f) => Err(format!("chaos: injected {} fault at {site}", f.label())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn disarmed_fire_is_none() {
        assert!(fire("nowhere").is_none());
        assert!(point("nowhere").is_ok());
    }

    #[test]
    fn armed_hook_fires_and_disarms_on_drop() {
        let calls = Arc::new(AtomicU64::new(0));
        let c = Arc::clone(&calls);
        let guard = install(Arc::new(move |site: &str| {
            let n = c.fetch_add(1, Ordering::SeqCst);
            (site == "x").then_some((Fault::Error, n))
        }));
        assert_eq!(fire("x"), Some(Fault::Error));
        assert_eq!(fire("y"), None);
        assert!(point("x").unwrap_err().contains("injected error"));
        drop(guard);
        assert!(!is_armed());
        assert!(fire("x").is_none());
        assert_eq!(calls.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn stall_point_sleeps_and_succeeds() {
        let _guard = install(Arc::new(|_: &str| Some((Fault::Stall { millis: 1 }, 0))));
        let t0 = std::time::Instant::now();
        assert!(point("anywhere").is_ok());
        assert!(t0.elapsed() >= std::time::Duration::from_millis(1));
    }

    #[test]
    fn fault_labels_are_stable() {
        assert_eq!(Fault::Panic.label(), "panic");
        assert_eq!(Fault::Stall { millis: 3 }.label(), "stall");
        assert_eq!(Fault::Poison.label(), "poison");
        assert_eq!(Fault::Drop.label(), "drop");
        assert_eq!(Fault::Requeue.label(), "requeue");
    }
}
