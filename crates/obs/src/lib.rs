//! # obs — workspace-wide observability substrate
//!
//! Dependency-free building blocks for watching the climate workflow
//! system run:
//!
//! * [`Bus`] / [`EventReceiver`] — a typed event bus with multi-subscriber
//!   fan-out, bounded drop-oldest queues, and a no-subscriber fast path
//!   that costs a single relaxed atomic load;
//! * [`Registry`] with [`Counter`] / [`Gauge`] / [`Histogram`] handles —
//!   instruments addressable by `&'static str` name + label pairs;
//! * [`SpanTimer`] — RAII span timing feeding the bus and/or histograms;
//! * exporters — JSONL event log ([`jsonl`]), Chrome trace format
//!   ([`chrome_trace`], loadable in `chrome://tracing`/Perfetto), and a
//!   Prometheus text dump ([`Registry::render_prometheus`]).
//!
//! Instrumented crates emit to both their local bus (scoped observation,
//! e.g. `dataflow::Runtime::subscribe`) and the process-wide [`global`]
//! bus (whole-run tracing, e.g. `climate-wf run --trace`). With nothing
//! subscribed both paths are a branch on an atomic.
//!
//! ```
//! let rx = obs::global().subscribe();
//! obs::emit(obs::EventKind::QueueDepth { ready: 3, running: 2 });
//! let events = rx.drain();
//! assert_eq!(events.len(), 1);
//! println!("{}", obs::chrome_trace(&events));
//! ```

mod bus;
pub mod chaos;
mod event;
mod export;
pub mod flight;
mod metrics;
mod span;
pub mod trace;

pub use bus::{Bus, EventReceiver, DEFAULT_CAPACITY};
pub use event::{thread_ordinal, Event, EventKind, TaskOutcome};
pub use export::{chrome_trace, json_escape, jsonl};
pub use metrics::{registry, Counter, Gauge, Histogram, Registry, HISTOGRAM_BUCKETS};
pub use span::{timed, SpanTimer};
pub use trace::{Span, SpanContext};

use std::sync::OnceLock;

/// The process-wide event bus. Subscribe here to observe every
/// instrumented subsystem in one ordered stream. Exports its own
/// backpressure instruments (`obs_bus_*{bus="global"}`) so drops are
/// visible in the Prometheus dump, not just on individual receivers.
pub fn global() -> &'static Bus {
    static GLOBAL: OnceLock<Bus> = OnceLock::new();
    GLOBAL.get_or_init(|| {
        let bus = Bus::new();
        bus.export_metrics("global");
        bus
    })
}

/// Emit onto the [`global`] bus (fast-path no-op with no subscriber).
#[inline]
pub fn emit(kind: EventKind) {
    global().emit(kind);
}

/// Emit onto the [`global`] bus, constructing the event lazily.
#[inline]
pub fn emit_with<F: FnOnce() -> EventKind>(f: F) {
    global().emit_with(f);
}

/// True when something is subscribed to the [`global`] bus.
#[inline]
pub fn global_active() -> bool {
    global().is_active()
}
